//! `epplan` — command-line interface to the event-participant planner.
//!
//! ```text
//! epplan generate --users 500 --events 50 [--seed 42] --out instance.json
//! epplan generate --city vancouver --out instance.json
//! epplan solve --instance instance.json [--solver greedy|gap|exact]
//!              [--seed 7] [--out plan.json]
//! epplan validate --instance instance.json --plan plan.json
//! epplan apply --instance instance.json --plan plan.json --ops ops.json
//!              [--out-instance i2.json] [--out-plan p2.json]
//! epplan example [--out instance.json]
//! ```
//!
//! Instances and plans are JSON; operation streams are JSON arrays of
//! internally-tagged [`AtomicOp`] values, e.g.
//!
//! ```json
//! [{"op": "eta_decrease", "event": 3, "new_upper": 1},
//!  {"op": "budget_change", "user": 7, "new_budget": 12.5}]
//! ```

use epplan::core::incremental::{AtomicOp, IncrementalPlanner};
use epplan::core::plan::Plan;
use epplan::datagen::{generate, City, GeneratorConfig};
use epplan::prelude::*;
use std::collections::HashMap;
use std::path::Path;
use std::process::exit;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(1)
}

fn usage() -> ! {
    eprintln!(
        "usage: epplan <generate|solve|validate|apply|example> [flags]\n\
         run with a subcommand; see crate docs for the flag list"
    );
    exit(2)
}

/// Parses `--flag value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(k) = it.next() {
        let Some(name) = k.strip_prefix("--") else {
            fail(&format!("unexpected argument {k}"));
        };
        let Some(v) = it.next() else {
            fail(&format!("flag --{name} needs a value"));
        };
        flags.insert(name.to_string(), v.clone());
    }
    flags
}

fn load_instance(flags: &HashMap<String, String>) -> Instance {
    let path = flags
        .get("instance")
        .unwrap_or_else(|| fail("--instance <file> is required"));
    epplan::datagen::load_instance(Path::new(path))
        .unwrap_or_else(|e| fail(&format!("cannot load instance {path}: {e}")))
}

fn load_plan(flags: &HashMap<String, String>) -> Plan {
    let path = flags
        .get("plan")
        .unwrap_or_else(|| fail("--plan <file> is required"));
    let data = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read plan {path}: {e}")));
    serde_json::from_str(&data)
        .unwrap_or_else(|e| fail(&format!("cannot parse plan {path}: {e}")))
}

fn write_json<T: serde::Serialize>(value: &T, path: &str) {
    let json = serde_json::to_string_pretty(value).expect("serializable");
    std::fs::write(path, json)
        .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
    println!("wrote {path}");
}

fn summarize(instance: &Instance, plan: &Plan) {
    let v = plan.validate(instance);
    println!("utility        : {:.3}", plan.total_utility(instance));
    println!("assignments    : {}", plan.total_assignments());
    println!(
        "hard-feasible  : {}",
        if v.hard_ok() { "yes" } else { "NO" }
    );
    let shortfalls = v.shortfall_events();
    println!(
        "events below xi: {}{}",
        shortfalls.len(),
        if shortfalls.is_empty() {
            String::new()
        } else {
            format!(" ({shortfalls:?})")
        }
    );
}

fn cmd_generate(flags: HashMap<String, String>) {
    let instance = if let Some(city) = flags.get("city") {
        let city = match city.to_lowercase().as_str() {
            "beijing" => City::Beijing,
            "vancouver" => City::Vancouver,
            "auckland" => City::Auckland,
            "singapore" => City::Singapore,
            other => fail(&format!("unknown city {other}")),
        };
        city.instance()
    } else {
        let get = |k: &str, d: usize| -> usize {
            flags
                .get(k)
                .map(|v| v.parse().unwrap_or_else(|_| fail(&format!("bad --{k}"))))
                .unwrap_or(d)
        };
        let cfg = GeneratorConfig {
            n_users: get("users", 500),
            n_events: get("events", 50),
            seed: get("seed", 42) as u64,
            ..Default::default()
        };
        generate(&cfg)
    };
    println!(
        "generated {} users × {} events",
        instance.n_users(),
        instance.n_events()
    );
    match flags.get("out") {
        Some(path) => {
            epplan::datagen::save_instance(&instance, Path::new(path))
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            println!("wrote {path}");
        }
        None => println!("{}", serde_json::to_string(&instance).expect("serializable")),
    }
}

fn cmd_solve(flags: HashMap<String, String>) {
    let instance = load_instance(&flags);
    let seed: u64 = flags
        .get("seed")
        .map(|v| v.parse().unwrap_or_else(|_| fail("bad --seed")))
        .unwrap_or(0);
    let solver: Box<dyn GepcSolver> =
        match flags.get("solver").map(String::as_str).unwrap_or("greedy") {
            "greedy" => Box::new(GreedySolver::seeded(seed)),
            "gap" => Box::new(GapBasedSolver::default()),
            "exact" => Box::new(ExactSolver::default()),
            other => fail(&format!("unknown solver {other} (greedy|gap|exact)")),
        };
    let start = std::time::Instant::now();
    let solution = solver.solve(&instance);
    println!(
        "solved with {} in {:.3}s",
        solver.name(),
        start.elapsed().as_secs_f64()
    );
    summarize(&instance, &solution.plan);
    if flags.contains_key("stats") {
        println!("\n{}", epplan::core::plan::PlanStatistics::of(&instance, &solution.plan));
        let hist =
            epplan::core::plan::PlanStatistics::plan_length_histogram(&instance, &solution.plan);
        println!("plan-length hist : {hist:?}");
    }
    if let Some(path) = flags.get("out") {
        write_json(&solution.plan, path);
    }
}

fn cmd_validate(flags: HashMap<String, String>) {
    let instance = load_instance(&flags);
    let plan = load_plan(&flags);
    summarize(&instance, &plan);
    let v = plan.validate(&instance);
    for violation in &v.violations {
        println!("  {violation:?}");
    }
    if !v.hard_ok() {
        exit(1);
    }
}

fn cmd_apply(flags: HashMap<String, String>) {
    let instance = load_instance(&flags);
    let plan = load_plan(&flags);
    let ops_path = flags
        .get("ops")
        .unwrap_or_else(|| fail("--ops <file> is required"));
    let data = std::fs::read_to_string(ops_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {ops_path}: {e}")));
    let ops: Vec<AtomicOp> = serde_json::from_str(&data)
        .unwrap_or_else(|e| fail(&format!("cannot parse {ops_path}: {e}")));
    println!("applying {} atomic operation(s)", ops.len());
    let outcome = IncrementalPlanner.apply_batch(&instance, &plan, &ops);
    println!("step difs      : {:?}", outcome.step_difs);
    println!("net dif        : {}", outcome.net_dif);
    summarize(&outcome.instance, &outcome.plan);
    if let Some(path) = flags.get("out-instance") {
        write_json(&outcome.instance, path);
    }
    if let Some(path) = flags.get("out-plan") {
        write_json(&outcome.plan, path);
    }
}

fn cmd_example(flags: HashMap<String, String>) {
    let instance = epplan::datagen::paper_example();
    println!("the paper's Example 1: 5 users, 4 events");
    let solution = ExactSolver::default().solve(&instance);
    summarize(&instance, &solution.plan);
    if let Some(path) = flags.get("out") {
        epplan::datagen::save_instance(&instance, Path::new(path))
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        println!("wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let flags = parse_flags(rest);
    match cmd.as_str() {
        "generate" => cmd_generate(flags),
        "solve" => cmd_solve(flags),
        "validate" => cmd_validate(flags),
        "apply" => cmd_apply(flags),
        "example" => cmd_example(flags),
        _ => usage(),
    }
}
