//! `epplan` — command-line interface to the event-participant planner.
//!
//! ```text
//! epplan generate --users 500 --events 50 [--seed 42] [--pruned]
//!                 [--budget-frac 0.3,0.5] --out instance.json
//! epplan generate --city vancouver --out instance.json
//! epplan solve --instance instance.json [--solver greedy|gap|exact]
//!              [--seed 7] [--time-limit-ms 500] [--max-iters 10000]
//!              [--out plan.json] [--stats] [--metrics] [--json-metrics]
//!              [--trace trace.jsonl]
//! epplan validate --instance instance.json --plan plan.json
//! epplan apply --instance instance.json --plan plan.json --ops ops.json
//!              [--out-instance i2.json] [--out-plan p2.json]
//! epplan example [--out instance.json]
//! epplan opstream --instance instance.json [--count 1000] [--seed 42]
//!                 [--start-id 1] [--burst LEN,GAP] [--out ops.jsonl]
//! epplan serve --instance instance.json [--ops ops.jsonl | --socket s.sock]
//!              [--state-dir dir] [--restore] [--snapshot-every 1000]
//!              [--op-time-limit-ms 50] [--op-max-iters 100000]
//!              [--max-retries 3] [--drift-threshold 500]
//!              [--resolve-time-limit-ms 5000] [--resolve-max-iters N]
//!              [--metrics-socket m.sock] [--slo-p99-us N] [--slo-window-ops 1024]
//!              [--op-deadline-ops N] [--brownout DOWN,UP] [--quarantine-after N]
//!              [--out plan.json] [--quiet] [--metrics] [--json-metrics]
//! epplan serve --state-dir dir --dump-dead-letter
//! epplan report --trace trace.jsonl [--perfetto out.json] [--top 20]
//! ```
//!
//! Instances and plans are JSON; operation streams are JSON arrays of
//! internally-tagged [`AtomicOp`] values, e.g.
//!
//! ```json
//! [{"op": "eta_decrease", "event": 3, "new_upper": 1},
//!  {"op": "budget_change", "user": 7, "new_budget": 12.5}]
//! ```
//!
//! `serve` instead speaks newline-delimited JSON of *sequenced* ops
//! (`{"id": 17, "op": {...}}`), read from `--ops`, a Unix socket, or
//! stdin; every op is acknowledged with one JSON response line, and the
//! stream ends with a JSON summary line. With `--state-dir` the daemon
//! write-ahead-logs every op and snapshots periodically; `--restore`
//! recovers the pre-crash certified plan from that directory.
//!
//! Overload resilience: `--op-deadline-ops N` sheds ops that arrive
//! more than `N` ops behind the work clock (status `"shed"`);
//! `--brownout DOWN,UP` (requires `--slo-p99-us`) arms the brownout
//! ladder — after `DOWN` consecutive burning ops the daemon steps one
//! degradation level down, after `UP` healthy ops one level back up;
//! `--quarantine-after N` dead-letters an op whose replay attempts hit
//! `N` and skips it; `--dump-dead-letter` prints every quarantined op
//! as one JSON line and exits. All decisions are recorded in the WAL
//! before being acted on, so `--restore` retraces them bit-identically.
//!
//! `--metrics-socket` additionally binds a Unix socket that answers
//! every connection with one point-in-time Prometheus text scrape
//! (counters, gauges, histograms, sliding-window latency quantiles and
//! an `epplan_health` line) — polled between ops from the serving
//! thread, so a slow or dead scraper can never stall ingestion or
//! perturb the plan. `--slo-p99-us` arms SLO burn accounting over the
//! last `--slo-window-ops` operations.
//!
//! `report` turns a `--trace` JSONL file (from `solve --trace` or
//! `serve --trace`) into a per-stage self-time table, a critical-path
//! attribution, and optionally a Perfetto/chrome://tracing JSON file.
//!
//! # Exit codes
//!
//! Failures are classified, each with a distinct non-zero exit code and
//! a machine-readable JSON error object on stderr (last stderr line):
//!
//! | code | class              | meaning                                    |
//! |------|--------------------|--------------------------------------------|
//! | 1    | `internal`         | unexpected internal failure                |
//! | 2    | `usage`            | bad flags / unknown subcommand             |
//! | 3    | `io`               | file unreadable or unwritable              |
//! | 4    | `parse`            | malformed JSON in an input file            |
//! | 5    | `invalid-instance` | instance fails strict model validation     |
//! | 6    | `infeasible`       | plan violates hard constraints / no plan   |
//! | 7    | `budget-exhausted` | solve budget ran out (partial plan saved)  |

use epplan::core::incremental::{AtomicOp, IncrementalPlanner};
use epplan::core::plan::Plan;
use epplan::core::solver::{FailureKind, SolveBudget};
use epplan::datagen::{generate, City, GeneratorConfig};
use epplan::prelude::*;
use serde::Serialize;
use std::collections::HashMap;
use std::path::Path;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

// Count allocations so per-span `mem_peak_bytes` / `alloc_calls` in
// trace output reflect real allocator traffic, as in the bench binary.
#[global_allocator]
static ALLOC: epplan::memtrack::Tracking = epplan::memtrack::Tracking;

/// Failure classes, each mapping to a stable exit code.
#[derive(Debug, Clone, Copy)]
enum FailClass {
    Internal,
    Usage,
    Io,
    Parse,
    InvalidInstance,
    Infeasible,
    BudgetExhausted,
}

impl FailClass {
    fn exit_code(self) -> i32 {
        match self {
            FailClass::Internal => 1,
            FailClass::Usage => 2,
            FailClass::Io => 3,
            FailClass::Parse => 4,
            FailClass::InvalidInstance => 5,
            FailClass::Infeasible => 6,
            FailClass::BudgetExhausted => 7,
        }
    }

    fn name(self) -> &'static str {
        match self {
            FailClass::Internal => "internal",
            FailClass::Usage => "usage",
            FailClass::Io => "io",
            FailClass::Parse => "parse",
            FailClass::InvalidInstance => "invalid-instance",
            FailClass::Infeasible => "infeasible",
            FailClass::BudgetExhausted => "budget-exhausted",
        }
    }

    fn for_failure_kind(kind: FailureKind) -> FailClass {
        match kind {
            FailureKind::BadInput => FailClass::InvalidInstance,
            FailureKind::Infeasible => FailClass::Infeasible,
            FailureKind::BudgetExhausted => FailClass::BudgetExhausted,
            FailureKind::NumericalInstability => FailClass::Internal,
        }
    }
}

/// The machine-readable error object printed as the last stderr line.
#[derive(Serialize)]
struct ErrorObject {
    class: String,
    exit_code: i32,
    message: String,
}

fn fail(class: FailClass, msg: &str) -> ! {
    eprintln!("error: {msg}");
    let obj = ErrorObject {
        class: class.name().to_string(),
        exit_code: class.exit_code(),
        message: msg.to_string(),
    };
    if let Ok(json) = serde_json::to_string(&obj) {
        eprintln!("{json}");
    }
    exit(class.exit_code())
}

fn usage() -> ! {
    fail(
        FailClass::Usage,
        "usage: epplan <generate|solve|validate|apply|example|opstream|serve|report> [flags]; \
         run with a subcommand; see crate docs for the flag list",
    )
}

/// Per-subcommand flag grammar: which `--flag value` pairs and which
/// bare `--flag` booleans a subcommand accepts. Anything else is a
/// usage error — silently swallowing a typo like `--solvr gap` would
/// run the wrong solver without complaint.
struct FlagSpec {
    value: &'static [&'static str],
    boolean: &'static [&'static str],
}

fn flag_spec(cmd: &str) -> FlagSpec {
    match cmd {
        "generate" => FlagSpec {
            value: &["users", "events", "seed", "out", "city", "threads", "budget-frac"],
            boolean: &["pruned"],
        },
        "solve" => FlagSpec {
            value: &[
                "instance", "solver", "seed", "time-limit-ms", "max-iters", "out", "trace",
                "threads",
            ],
            boolean: &["stats", "metrics", "json-metrics", "certify"],
        },
        "validate" => FlagSpec {
            value: &["instance", "plan", "threads"],
            boolean: &[],
        },
        "apply" => FlagSpec {
            value: &["instance", "plan", "ops", "out-instance", "out-plan", "threads"],
            boolean: &[],
        },
        "example" => FlagSpec {
            value: &["out", "threads"],
            boolean: &[],
        },
        "opstream" => FlagSpec {
            value: &["instance", "count", "seed", "start-id", "burst", "out", "threads"],
            boolean: &[],
        },
        "serve" => FlagSpec {
            value: &[
                "instance",
                "ops",
                "socket",
                "state-dir",
                "snapshot-every",
                "op-time-limit-ms",
                "op-max-iters",
                "max-retries",
                "drift-threshold",
                "resolve-time-limit-ms",
                "resolve-max-iters",
                "crash-after-ops",
                "crash-in-op",
                "op-deadline-ops",
                "brownout",
                "quarantine-after",
                "metrics-socket",
                "slo-p99-us",
                "slo-window-ops",
                "out",
                "threads",
                "trace",
            ],
            boolean: &["restore", "quiet", "metrics", "json-metrics", "dump-dead-letter"],
        },
        "report" => FlagSpec {
            value: &["trace", "perfetto", "top", "threads"],
            boolean: &[],
        },
        _ => usage(),
    }
}

/// Parses the arguments after the subcommand against its [`FlagSpec`].
/// Boolean flags are stored with an empty value; test for presence
/// with `contains_key`.
fn parse_flags(cmd: &str, args: &[String], spec: &FlagSpec) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(k) = it.next() {
        let Some(name) = k.strip_prefix("--") else {
            fail(FailClass::Usage, &format!("unexpected argument {k}"));
        };
        if spec.boolean.contains(&name) {
            flags.insert(name.to_string(), String::new());
            continue;
        }
        if !spec.value.contains(&name) {
            fail(
                FailClass::Usage,
                &format!("unknown flag --{name} for `{cmd}`"),
            );
        }
        let Some(v) = it.next() else {
            fail(FailClass::Usage, &format!("flag --{name} needs a value"));
        };
        flags.insert(name.to_string(), v.clone());
    }
    flags
}

/// Applies `--threads N` (accepted by every subcommand) to the shared
/// worker-count knob. Without the flag the `EPPLAN_THREADS` env var or
/// the machine's available parallelism decides, inside `epplan::par`.
fn apply_threads(flags: &HashMap<String, String>) {
    if let Some(v) = flags.get("threads") {
        let n: usize = v
            .parse()
            .unwrap_or_else(|_| fail(FailClass::Usage, "bad --threads (want a positive integer)"));
        if n == 0 {
            fail(FailClass::Usage, "bad --threads (want a positive integer)");
        }
        epplan::par::set_threads(n);
    }
}

fn load_instance(flags: &HashMap<String, String>) -> Instance {
    let path = flags
        .get("instance")
        .unwrap_or_else(|| fail(FailClass::Usage, "--instance <file> is required"));
    let instance = epplan::datagen::load_instance(Path::new(path)).unwrap_or_else(|e| {
        let class = if e.kind() == std::io::ErrorKind::InvalidData {
            FailClass::Parse
        } else {
            FailClass::Io
        };
        fail(class, &format!("cannot parse or read instance {path}: {e}"))
    });
    // Deserialization bypasses every constructor check; reject broken
    // instances (NaN utilities, inverted windows, η < ξ, …) up front.
    if let Err(e) = instance.validate_strict() {
        fail(
            FailClass::InvalidInstance,
            &format!("invalid instance {path}: {e}"),
        );
    }
    instance
}

fn load_plan(flags: &HashMap<String, String>) -> Plan {
    let path = flags
        .get("plan")
        .unwrap_or_else(|| fail(FailClass::Usage, "--plan <file> is required"));
    let data = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(FailClass::Io, &format!("cannot read plan {path}: {e}")));
    serde_json::from_str(&data)
        .unwrap_or_else(|e| fail(FailClass::Parse, &format!("cannot parse plan {path}: {e}")))
}

fn to_json<T: serde::Serialize>(value: &T, pretty: bool) -> String {
    let res = if pretty {
        serde_json::to_string_pretty(value)
    } else {
        serde_json::to_string(value)
    };
    res.unwrap_or_else(|e| fail(FailClass::Internal, &format!("cannot serialize output: {e}")))
}

fn write_json<T: serde::Serialize>(value: &T, path: &str) {
    let json = to_json(value, true);
    std::fs::write(path, json)
        .unwrap_or_else(|e| fail(FailClass::Io, &format!("cannot write {path}: {e}")));
    println!("wrote {path}");
}

fn summarize(instance: &Instance, plan: &Plan) {
    let v = plan.validate(instance);
    println!("utility        : {:.3}", plan.total_utility(instance));
    println!("assignments    : {}", plan.total_assignments());
    println!(
        "hard-feasible  : {}",
        if v.hard_ok() { "yes" } else { "NO" }
    );
    let shortfalls = v.shortfall_events();
    println!(
        "events below xi: {}{}",
        shortfalls.len(),
        if shortfalls.is_empty() {
            String::new()
        } else {
            format!(" ({shortfalls:?})")
        }
    );
}

fn cmd_generate(flags: HashMap<String, String>) {
    let instance = if let Some(city) = flags.get("city") {
        let city = match city.to_lowercase().as_str() {
            "beijing" => City::Beijing,
            "vancouver" => City::Vancouver,
            "auckland" => City::Auckland,
            "singapore" => City::Singapore,
            other => fail(FailClass::Usage, &format!("unknown city {other}")),
        };
        city.instance()
    } else {
        let get = |k: &str, d: usize| -> usize {
            flags
                .get(k)
                .map(|v| {
                    v.parse()
                        .unwrap_or_else(|_| fail(FailClass::Usage, &format!("bad --{k}")))
                })
                .unwrap_or(d)
        };
        // `--budget-frac lo,hi` narrows the travel-budget window (as
        // fractions of the city extent); with `--pruned` the utility
        // matrix is emitted in CSR candidate form — the only layout
        // that fits the |U| ≥ 10⁵ scale instances in memory.
        let budget_frac = match flags.get("budget-frac") {
            Some(v) => {
                let parts: Vec<f64> = v
                    .split(',')
                    .map(|p| {
                        p.trim()
                            .parse()
                            .unwrap_or_else(|_| fail(FailClass::Usage, "bad --budget-frac"))
                    })
                    .collect();
                match parts.as_slice() {
                    [lo, hi] if 0.0 < *lo && lo <= hi => (*lo, *hi),
                    _ => fail(FailClass::Usage, "--budget-frac wants LO,HI with 0 < LO <= HI"),
                }
            }
            None => GeneratorConfig::default().budget_frac,
        };
        let cfg = GeneratorConfig {
            n_users: get("users", 500),
            n_events: get("events", 50),
            seed: get("seed", 42) as u64,
            candidate_pruned: flags.contains_key("pruned"),
            budget_frac,
            ..Default::default()
        };
        generate(&cfg)
    };
    println!(
        "generated {} users × {} events",
        instance.n_users(),
        instance.n_events()
    );
    match flags.get("out") {
        Some(path) => {
            epplan::datagen::save_instance(&instance, Path::new(path))
                .unwrap_or_else(|e| fail(FailClass::Io, &format!("cannot write {path}: {e}")));
            println!("wrote {path}");
        }
        None => println!("{}", to_json(&instance, false)),
    }
}

/// Reads the optional `--time-limit-ms` / `--max-iters` flags into a
/// [`SolveBudget`]. Both absent means unlimited.
fn parse_budget(flags: &HashMap<String, String>) -> SolveBudget {
    let mut budget = SolveBudget::UNLIMITED;
    if let Some(v) = flags.get("time-limit-ms") {
        let ms: u64 = v
            .parse()
            .unwrap_or_else(|_| fail(FailClass::Usage, "bad --time-limit-ms"));
        budget = budget.with_time_limit(Duration::from_millis(ms));
    }
    if let Some(v) = flags.get("max-iters") {
        let n: u64 = v
            .parse()
            .unwrap_or_else(|_| fail(FailClass::Usage, "bad --max-iters"));
        budget = budget.with_iteration_cap(n);
    }
    budget
}

/// Which observability outputs `solve` was asked for, set up from the
/// `--trace` / `--metrics` / `--json-metrics` flags.
struct ObsConfig {
    tracing: bool,
    metrics: bool,
    json_metrics: bool,
}

fn setup_obs(flags: &HashMap<String, String>) -> ObsConfig {
    let tracing = match flags.get("trace") {
        Some(path) => {
            let file = std::fs::File::create(path).unwrap_or_else(|e| {
                fail(FailClass::Io, &format!("cannot create trace file {path}: {e}"))
            });
            epplan::obs::install_sink(Arc::new(epplan::obs::JsonlSink::new(
                std::io::BufWriter::new(file),
            )));
            true
        }
        None => false,
    };
    let metrics = flags.contains_key("metrics");
    let json_metrics = flags.contains_key("json-metrics");
    if metrics || json_metrics {
        epplan::obs::enable_metrics();
    }
    ObsConfig { tracing, metrics, json_metrics }
}

/// Flushes the trace sink and emits the metrics snapshot. Must run on
/// every `solve` exit path — including the degraded-fallback one — so a
/// failed run still yields its trace and cost table.
fn finish_obs(cfg: &ObsConfig) {
    if cfg.tracing {
        drop(epplan::obs::uninstall_sink());
    }
    if cfg.metrics || cfg.json_metrics {
        let snap = epplan::obs::snapshot();
        if cfg.metrics {
            eprintln!("{}", snap.render_table());
        }
        if cfg.json_metrics {
            println!("{}", snap.to_json());
        }
    }
}

fn cmd_solve(flags: HashMap<String, String>) {
    let instance = load_instance(&flags);
    let obs = setup_obs(&flags);
    let certify = flags.contains_key("certify");
    let seed: u64 = flags
        .get("seed")
        .map(|v| v.parse().unwrap_or_else(|_| fail(FailClass::Usage, "bad --seed")))
        .unwrap_or(0);
    let solver: Box<dyn GepcSolver> =
        match flags.get("solver").map(String::as_str).unwrap_or("greedy") {
            "greedy" => Box::new(GreedySolver::seeded(seed)),
            "gap" => Box::new(GapBasedSolver::default().with_certify(certify)),
            "exact" => Box::new(ExactSolver::default()),
            other => fail(
                FailClass::Usage,
                &format!("unknown solver {other} (greedy|gap|exact)"),
            ),
        };
    let budget = parse_budget(&flags);
    // epplan-lint: allow(determinism/wall-clock) — end-to-end wall time printed to the user; never fed back into the solve
    let start = std::time::Instant::now();
    let solution = match solver.try_solve(&instance, budget) {
        Ok(solution) => solution,
        Err(e) => {
            let class = FailClass::for_failure_kind(e.kind);
            let Some(partial) = e.partial else {
                fail(class, &format!("solve failed at {}: {}", e.stage, e.message));
            };
            // A degraded (but hard-feasible) plan exists: report it,
            // persist it when asked, then exit with the typed code so
            // scripts can tell degraded runs from clean ones.
            eprintln!(
                "warning: solve failed at {} ({}); falling back to {}",
                e.stage,
                e.message,
                partial.report
            );
            if certify {
                let cert = partial.report.certificate.clone().unwrap_or_else(|| {
                    epplan::core::certify::certify(&instance, &partial.plan)
                });
                println!("certificate    : {cert}");
            }
            finish_obs(&obs);
            summarize(&instance, &partial.plan);
            if let Some(path) = flags.get("out") {
                write_json(&partial.plan, path);
            }
            fail(class, &format!("solve failed at {}: {}", e.stage, e.message));
        }
    };
    println!(
        "solved with {} in {:.3}s",
        solver.name(),
        start.elapsed().as_secs_f64()
    );
    if !solution.report.attempts.is_empty() {
        println!("solve chain    : {}", solution.report);
    }
    if certify {
        // The gap solver certifies tier-internally (the certificate
        // rides on the report); other solvers are checked here. Either
        // way an uncertified plan never exits 0.
        let cert = solution
            .report
            .certificate
            .clone()
            .unwrap_or_else(|| epplan::core::certify::certify(&instance, &solution.plan));
        println!("certificate    : {cert}");
        if !cert.hard_ok() {
            finish_obs(&obs);
            fail(
                FailClass::Infeasible,
                &format!("certification rejected the final plan: {cert}"),
            );
        }
    }
    summarize(&instance, &solution.plan);
    if flags.contains_key("stats") {
        println!("\n{}", epplan::core::plan::PlanStatistics::of(&instance, &solution.plan));
        let hist =
            epplan::core::plan::PlanStatistics::plan_length_histogram(&instance, &solution.plan);
        println!("plan-length hist : {hist:?}");
    }
    if let Some(path) = flags.get("out") {
        write_json(&solution.plan, path);
    }
    finish_obs(&obs);
}

fn cmd_validate(flags: HashMap<String, String>) {
    let instance = load_instance(&flags);
    let plan = load_plan(&flags);
    summarize(&instance, &plan);
    let v = plan.validate(&instance);
    for violation in &v.violations {
        println!("  {violation:?}");
    }
    if !v.hard_ok() {
        fail(
            FailClass::Infeasible,
            &format!("plan violates {} hard constraint(s)", v.violations.len()),
        );
    }
}

fn cmd_apply(flags: HashMap<String, String>) {
    let instance = load_instance(&flags);
    let plan = load_plan(&flags);
    let ops_path = flags
        .get("ops")
        .unwrap_or_else(|| fail(FailClass::Usage, "--ops <file> is required"));
    let data = std::fs::read_to_string(ops_path)
        .unwrap_or_else(|e| fail(FailClass::Io, &format!("cannot read {ops_path}: {e}")));
    let ops: Vec<AtomicOp> = serde_json::from_str(&data)
        .unwrap_or_else(|e| fail(FailClass::Parse, &format!("cannot parse {ops_path}: {e}")));
    println!("applying {} atomic operation(s)", ops.len());
    let outcome = match IncrementalPlanner.try_apply_batch(&instance, &plan, &ops) {
        Ok(outcome) => outcome,
        Err(e) => fail(
            FailClass::InvalidInstance,
            &format!("cannot apply operation stream: {}", e.message),
        ),
    };
    println!("step difs      : {:?}", outcome.step_difs);
    println!("net dif        : {}", outcome.net_dif);
    summarize(&outcome.instance, &outcome.plan);
    if let Some(path) = flags.get("out-instance") {
        write_json(&outcome.instance, path);
    }
    if let Some(path) = flags.get("out-plan") {
        write_json(&outcome.plan, path);
    }
}

fn cmd_example(flags: HashMap<String, String>) {
    let instance = epplan::datagen::paper_example();
    println!("the paper's Example 1: 5 users, 4 events");
    let solution = ExactSolver::default().solve(&instance);
    summarize(&instance, &solution.plan);
    if let Some(path) = flags.get("out") {
        epplan::datagen::save_instance(&instance, Path::new(path))
            .unwrap_or_else(|e| fail(FailClass::Io, &format!("cannot write {path}: {e}")));
        println!("wrote {path}");
    }
}

fn cmd_opstream(flags: HashMap<String, String>) {
    let instance = load_instance(&flags);
    let parse_u64 = |k: &str, d: u64| -> u64 {
        flags
            .get(k)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| fail(FailClass::Usage, &format!("bad --{k}")))
            })
            .unwrap_or(d)
    };
    let count = parse_u64("count", 1000) as usize;
    let seed = parse_u64("seed", 42);
    let start_id = parse_u64("start-id", 1);
    if start_id == 0 {
        fail(FailClass::Usage, "bad --start-id (id 0 is reserved)");
    }
    // The sampler weights ops by what the current plan looks like;
    // a deterministic greedy plan supplies that context.
    let plan = GreedySolver::seeded(seed).solve(&instance).plan;
    let mut sampler = epplan::datagen::OpStreamSampler::new(seed);
    let ops = match flags.get("burst") {
        Some(spec) => {
            let burst = epplan::datagen::BurstSpec::parse(spec)
                .unwrap_or_else(|e| fail(FailClass::for_failure_kind(e.kind), &e.to_string()));
            sampler.sequenced_burst_stream(&instance, &plan, count, start_id, burst)
        }
        None => sampler.sequenced_stream(&instance, &plan, count, start_id),
    };
    let mut lines = String::new();
    for sop in &ops {
        lines.push_str(&to_json(sop, false));
        lines.push('\n');
    }
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, lines)
                .unwrap_or_else(|e| fail(FailClass::Io, &format!("cannot write {path}: {e}")));
            eprintln!("wrote {} op(s) to {path}", ops.len());
        }
        None => print!("{lines}"),
    }
}

fn serve_fail(obs: &ObsConfig, e: &epplan::serve::ServeError) -> ! {
    finish_obs(obs);
    let class = match e.kind {
        epplan::serve::ServeErrorKind::Io => FailClass::Io,
        epplan::serve::ServeErrorKind::Corrupt => FailClass::Parse,
        epplan::serve::ServeErrorKind::Solve(kind) => FailClass::for_failure_kind(kind),
    };
    fail(class, &e.to_string())
}

/// Feeds every op line of `reader` through the daemon, acknowledging
/// each with one flushed JSON line on `writer` (a client that has read
/// the ack for op `k` knows `k` is durable and the plan certified).
///
/// Pending scrape connections on `metrics` are answered between ops —
/// never concurrently with one — so a scrape observes a consistent
/// point-in-time state and cannot perturb the plan.
fn run_op_stream<R: std::io::BufRead, W: std::io::Write>(
    daemon: &mut epplan::serve::Daemon,
    reader: R,
    writer: &mut W,
    quiet: bool,
    metrics: Option<&epplan::serve::MetricsEndpoint>,
) -> Result<(), epplan::serve::ServeError> {
    use epplan::serve::ServeError;
    if let Some(ep) = metrics {
        ep.poll(daemon);
    }
    for line in reader.lines() {
        let line =
            line.map_err(|e| ServeError::io(format!("reading op stream: {e}")))?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let sop = epplan::serve::parse_op_line(line)?;
        let resp = daemon.process(&sop)?;
        if !quiet {
            let json = serde_json::to_string(&resp)
                .map_err(|e| ServeError::io(format!("encoding response: {e}")))?;
            writeln!(writer, "{json}")
                .and_then(|()| writer.flush())
                .map_err(|e| ServeError::io(format!("writing response: {e}")))?;
        }
        if let Some(ep) = metrics {
            ep.poll(daemon);
        }
    }
    Ok(())
}

fn cmd_serve(flags: HashMap<String, String>) {
    use epplan::serve::{BrownoutKnobs, Daemon, OverloadConfig, ServeConfig};
    // Dead-letter export is a pure read of the state directory: no
    // instance, no daemon, no WAL replay.
    if flags.contains_key("dump-dead-letter") {
        let Some(dir) = flags.get("state-dir") else {
            fail(FailClass::Usage, "--dump-dead-letter requires --state-dir");
        };
        let recs = epplan::serve::read_dead_letters(Path::new(dir)).unwrap_or_else(|e| {
            let class = match e.kind {
                epplan::serve::ServeErrorKind::Corrupt => FailClass::Parse,
                _ => FailClass::Io,
            };
            fail(class, &e.to_string())
        });
        for rec in &recs {
            println!("{}", to_json(rec, false));
        }
        return;
    }
    let obs = setup_obs(&flags);
    let parse_u64 = |k: &str| -> Option<u64> {
        flags.get(k).map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail(FailClass::Usage, &format!("bad --{k}")))
        })
    };
    let brownout = flags.get("brownout").map(|spec| {
        let parts: Vec<u64> = spec
            .split(',')
            .map(|p| {
                p.trim().parse().unwrap_or_else(|_| {
                    fail(FailClass::Usage, "bad --brownout (want DOWN,UP, both >= 1)")
                })
            })
            .collect();
        match parts.as_slice() {
            [down, up] if *down >= 1 && *up >= 1 => {
                BrownoutKnobs { down_after: *down, up_after: *up }
            }
            _ => fail(FailClass::Usage, "bad --brownout (want DOWN,UP, both >= 1)"),
        }
    });
    if brownout.is_some() && !flags.contains_key("slo-p99-us") {
        // Without an SLO nothing ever burns, so the ladder would be a
        // silent no-op — reject the combination instead.
        fail(FailClass::Usage, "--brownout requires --slo-p99-us");
    }
    let mut op_budget = SolveBudget::UNLIMITED;
    if let Some(ms) = parse_u64("op-time-limit-ms") {
        op_budget = op_budget.with_time_limit(Duration::from_millis(ms));
    }
    if let Some(n) = parse_u64("op-max-iters") {
        op_budget = op_budget.with_iteration_cap(n);
    }
    let mut resolve_budget = SolveBudget::UNLIMITED;
    if let Some(ms) = parse_u64("resolve-time-limit-ms") {
        resolve_budget = resolve_budget.with_time_limit(Duration::from_millis(ms));
    }
    if let Some(n) = parse_u64("resolve-max-iters") {
        resolve_budget = resolve_budget.with_iteration_cap(n);
    }
    let config = ServeConfig {
        op_budget,
        resolve_budget,
        max_retries: parse_u64("max-retries").map(|v| v as u32).unwrap_or(3),
        drift_threshold: parse_u64("drift-threshold"),
        snapshot_every: Some(parse_u64("snapshot-every").unwrap_or(1000)),
        crash_after_ops: parse_u64("crash-after-ops"),
        crash_in_op: parse_u64("crash-in-op"),
        slo_p99_us: parse_u64("slo-p99-us"),
        slo_window_ops: parse_u64("slo-window-ops").unwrap_or(1024).max(1),
        overload: OverloadConfig {
            op_deadline_ops: parse_u64("op-deadline-ops"),
            brownout,
            quarantine_after: parse_u64("quarantine-after").map(|v| v as u32),
        },
    };
    // A metrics socket implies the metrics registry: scrapes would
    // otherwise be empty.
    let metrics_endpoint = flags.get("metrics-socket").map(|path| {
        epplan::obs::enable_metrics();
        epplan::serve::MetricsEndpoint::bind(Path::new(path))
            .unwrap_or_else(|e| fail(FailClass::Io, &e.to_string()))
    });
    let state_dir = flags.get("state-dir").map(std::path::PathBuf::from);
    let quiet = flags.contains_key("quiet");
    let mut daemon = if flags.contains_key("restore") {
        let Some(dir) = &state_dir else {
            fail(FailClass::Usage, "--restore requires --state-dir");
        };
        Daemon::restore(config, dir).unwrap_or_else(|e| serve_fail(&obs, &e))
    } else {
        let instance = load_instance(&flags);
        Daemon::start(instance, config, state_dir.as_deref())
            .unwrap_or_else(|e| serve_fail(&obs, &e))
    };
    if !quiet {
        eprintln!("certificate    : {}", daemon.certificate());
    }
    let result = if let Some(path) = flags.get("socket") {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)
            .unwrap_or_else(|e| fail(FailClass::Io, &format!("cannot bind socket {path}: {e}")));
        let (stream, _) = listener
            .accept()
            .unwrap_or_else(|e| fail(FailClass::Io, &format!("accepting on {path}: {e}")));
        let mut writer = stream
            .try_clone()
            .unwrap_or_else(|e| fail(FailClass::Io, &format!("cloning socket stream: {e}")));
        run_op_stream(
            &mut daemon,
            std::io::BufReader::new(stream),
            &mut writer,
            quiet,
            metrics_endpoint.as_ref(),
        )
    } else if let Some(path) = flags.get("ops") {
        let file = std::fs::File::open(path)
            .unwrap_or_else(|e| fail(FailClass::Io, &format!("cannot read {path}: {e}")));
        let stdout = std::io::stdout();
        run_op_stream(
            &mut daemon,
            std::io::BufReader::new(file),
            &mut stdout.lock(),
            quiet,
            metrics_endpoint.as_ref(),
        )
    } else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        run_op_stream(
            &mut daemon,
            stdin.lock(),
            &mut stdout.lock(),
            quiet,
            metrics_endpoint.as_ref(),
        )
    };
    if let Err(e) = result {
        serve_fail(&obs, &e);
    }
    // One last poll so a scraper connecting right at end-of-stream
    // still gets the final state before the socket is torn down.
    if let Some(ep) = &metrics_endpoint {
        ep.poll(&daemon);
    }
    let summary = daemon.summary();
    println!("{}", to_json(&summary, false));
    if !quiet {
        eprintln!("certificate    : {}", daemon.certificate());
    }
    if let Some(path) = flags.get("out") {
        write_json(daemon.plan(), path);
    }
    finish_obs(&obs);
    if !summary.certified {
        fail(
            FailClass::Infeasible,
            "final plan failed certification (this is a bug: serve must never expose uncertified state)",
        );
    }
}

/// One line of a `--trace` JSONL file, mirroring the `JsonlSink`
/// schema. Numeric fields default to 0 so hand-trimmed traces (or
/// future schema extensions) still parse.
#[derive(serde::Deserialize)]
struct TraceLine {
    ts: u64,
    id: u64,
    #[serde(default)]
    parent: Option<u64>,
    span: String,
    #[serde(default)]
    dur_us: u64,
    #[serde(default)]
    iters: u64,
    #[serde(default)]
    mem_peak_bytes: u64,
    #[serde(default)]
    alloc_calls: u64,
}

fn cmd_report(flags: HashMap<String, String>) {
    let path = flags
        .get("trace")
        .unwrap_or_else(|| fail(FailClass::Usage, "--trace <trace.jsonl> is required"));
    let top: usize = flags
        .get("top")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail(FailClass::Usage, "bad --top (want a positive integer)"))
        })
        .unwrap_or(20);
    let data = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(FailClass::Io, &format!("cannot read trace {path}: {e}")));
    let mut events: Vec<epplan::obs::OwnedTraceEvent> = Vec::new();
    for (idx, line) in data.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let t: TraceLine = serde_json::from_str(line).unwrap_or_else(|e| {
            fail(
                FailClass::Parse,
                &format!("bad trace line {} in {path}: {e}", idx + 1),
            )
        });
        events.push(epplan::obs::OwnedTraceEvent {
            ts_us: t.ts,
            id: t.id,
            parent: t.parent,
            span: t.span,
            dur_us: t.dur_us,
            iters: t.iters,
            mem_peak_delta: t.mem_peak_bytes,
            alloc_calls: t.alloc_calls,
        });
    }
    if events.is_empty() {
        fail(FailClass::Parse, &format!("trace {path} holds no events"));
    }
    println!("{} span(s) in {path}", events.len());
    let rows = epplan::obs::self_time(&events);
    println!("\n{}", epplan::obs::render_self_time(&rows, top));
    let cp = epplan::obs::critical_path(&events);
    println!("{}", epplan::obs::render_critical_path(&cp, top));
    if let Some(out) = flags.get("perfetto") {
        std::fs::write(out, epplan::obs::perfetto_json(&events))
            .unwrap_or_else(|e| fail(FailClass::Io, &format!("cannot write {out}: {e}")));
        println!("wrote {out} (load in ui.perfetto.dev or chrome://tracing)");
    }
}

fn main() {
    // Arm deterministic fault injection when EPPLAN_FAULTS is set; a
    // malformed spec is a usage error, not a silent no-op.
    if let Err(e) = epplan::fault::install_from_env() {
        fail(FailClass::Usage, &format!("bad EPPLAN_FAULTS: {e}"));
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let flags = parse_flags(cmd, rest, &flag_spec(cmd));
    apply_threads(&flags);
    match cmd.as_str() {
        "generate" => cmd_generate(flags),
        "solve" => cmd_solve(flags),
        "validate" => cmd_validate(flags),
        "apply" => cmd_apply(flags),
        "example" => cmd_example(flags),
        "opstream" => cmd_opstream(flags),
        "serve" => cmd_serve(flags),
        "report" => cmd_report(flags),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CLI exit-code table (crate docs, README, DESIGN.md) and the
    /// library's own [`FailureKind::exit_code`] contract must agree for
    /// every failure kind — exhaustively, so adding a kind without
    /// updating the mapping fails here instead of drifting silently.
    #[test]
    fn cli_exit_codes_agree_with_failure_kinds() {
        for kind in FailureKind::ALL {
            assert_eq!(
                FailClass::for_failure_kind(kind).exit_code(),
                kind.exit_code(),
                "exit-code drift for {kind:?}: CLI maps it to {} but the library documents {}",
                FailClass::for_failure_kind(kind).exit_code(),
                kind.exit_code(),
            );
        }
    }

    /// Every failure class keeps its documented code and name — the
    /// table in the crate docs is a contract for scripts.
    #[test]
    fn fail_classes_match_documented_table() {
        let table: [(FailClass, i32, &str); 7] = [
            (FailClass::Internal, 1, "internal"),
            (FailClass::Usage, 2, "usage"),
            (FailClass::Io, 3, "io"),
            (FailClass::Parse, 4, "parse"),
            (FailClass::InvalidInstance, 5, "invalid-instance"),
            (FailClass::Infeasible, 6, "infeasible"),
            (FailClass::BudgetExhausted, 7, "budget-exhausted"),
        ];
        for (class, code, name) in table {
            assert_eq!(class.exit_code(), code);
            assert_eq!(class.name(), name);
        }
        let mut codes: Vec<i32> = table.iter().map(|(c, _, _)| c.exit_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), table.len(), "exit codes must stay distinct");
    }
}
