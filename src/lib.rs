//! # epplan — complex event-participant planning
//!
//! A Rust implementation of the GEPC (Global Event Planning with
//! Constraints) and IEP (Incremental Event Planning) problems from
//! *"Complex Event-Participant Planning and Its Incremental Variant"*
//! (Cheng, Yuan, Chen, Giraud-Carrier, Wang — ICDE 2017), together with
//! every substrate the paper depends on: a simplex LP solver, a
//! min-cost-flow/matching engine, a Generalized Assignment Problem
//! solver with Shmoys–Tardos rounding, a spatial index, a synthetic
//! Meetup-like data generator, and a memory-tracking allocator.
//!
//! This umbrella crate re-exports the public API of all member crates
//! so downstream users can depend on a single crate:
//!
//! ```
//! use epplan::prelude::*;
//!
//! // Build the 5-user / 4-event instance from Example 1 of the paper
//! // and solve it with the greedy algorithm.
//! let instance = epplan::datagen::paper_example();
//! let solver = GreedySolver::seeded(42);
//! let solution = solver.solve(&instance);
//! assert!(solution.plan.validate(&instance).hard_ok());
//! ```

// Solver-adjacent code must not panic (uniform workspace gate; the
// epplan-lint `robustness/unwrap` rule enforces the same contract).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub use epplan_core as core;
pub use epplan_datagen as datagen;
pub use epplan_fault as fault;
pub use epplan_flow as flow;
pub use epplan_gap as gap;
pub use epplan_geo as geo;
pub use epplan_lp as lp;
pub use epplan_memtrack as memtrack;
pub use epplan_obs as obs;
pub use epplan_par as par;
pub use epplan_serve as serve;
pub use epplan_solve as solve;

/// Commonly used items, re-exported for `use epplan::prelude::*`.
pub mod prelude {
    pub use epplan_core::incremental::{
        AtomicOp, BatchOutcome, IncrementalOutcome, IncrementalPlanner,
    };
    pub use epplan_core::model::{Event, EventId, Instance, TimeInterval, User, UserId};
    pub use epplan_core::plan::{Plan, Validation};
    pub use epplan_core::solver::{
        ExactSolver, GapBasedSolver, GepcSolver, GreedySolver, Solution,
    };
    pub use epplan_geo::Point;
}
