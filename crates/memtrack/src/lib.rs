//! A byte-counting global allocator for memory-cost experiments.
//!
//! Every experiment table in the paper (Tables VI–IX, Figs. 3 and 5)
//! reports a *memory cost*, measured in the original C++ implementation
//! "using system functions that monitor current memory usage". The Rust
//! harness reproduces that with an allocator shim: [`Tracking`] wraps
//! the system allocator and maintains the current and peak number of
//! live heap bytes.
//!
//! Install it in a binary with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: epplan_memtrack::Tracking = epplan_memtrack::Tracking;
//! ```
//!
//! and measure a region with [`MemoryProbe`]:
//!
//! ```
//! let probe = epplan_memtrack::MemoryProbe::start();
//! let v: Vec<u64> = (0..100_000).collect();
//! let report = probe.finish();
//! drop(v);
//! // Without the global allocator installed the counters stay at 0;
//! // with it, `report.peak_delta_bytes` ≈ 800 KB.
//! assert!(report.peak_delta_bytes == 0 || report.peak_delta_bytes >= 800_000);
//! ```

// Solver-adjacent code must not panic (uniform workspace gate; the
// epplan-lint `robustness/unwrap` rule enforces the same contract).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

/// The tracking allocator. Forwards to [`System`] and keeps byte
/// counters updated with relaxed atomics (precision does not require
/// stronger ordering: we only read the counters at quiescent points).
pub struct Tracking;

fn on_alloc(size: usize) {
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    let cur = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(cur, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    CURRENT.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: delegates all allocation to `System`, only adding counter
// bookkeeping around the calls.
unsafe impl GlobalAlloc for Tracking {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Live heap bytes right now (0 unless [`Tracking`] is installed).
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes since process start or the last
/// [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Total number of allocation calls observed.
pub fn alloc_calls() -> usize {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Resets the peak to the current live byte count, so subsequent
/// [`peak_bytes`] reads reflect only the region after the reset.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Memory usage of a region, produced by [`MemoryProbe::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryReport {
    /// Peak live bytes during the region minus live bytes at its start:
    /// the *additional* memory the region needed. This is the number
    /// reported as "memory cost" in the experiment tables.
    pub peak_delta_bytes: usize,
    /// Live bytes at the start of the region.
    pub start_bytes: usize,
    /// Peak live bytes during the region (absolute).
    pub peak_bytes: usize,
    /// Allocation calls made during the region.
    pub alloc_calls: usize,
}

impl MemoryReport {
    /// Peak delta in mebibytes, the unit used by the paper's tables.
    pub fn peak_delta_mib(&self) -> f64 {
        self.peak_delta_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// Measures the extra peak memory used between `start()` and
/// `finish()`.
#[derive(Debug)]
pub struct MemoryProbe {
    start_bytes: usize,
    start_calls: usize,
}

impl MemoryProbe {
    /// Starts a measurement region (resets the peak watermark).
    pub fn start() -> Self {
        reset_peak();
        MemoryProbe {
            start_bytes: current_bytes(),
            start_calls: alloc_calls(),
        }
    }

    /// Ends the region and reports its memory usage.
    pub fn finish(self) -> MemoryReport {
        let peak = peak_bytes();
        MemoryReport {
            peak_delta_bytes: peak.saturating_sub(self.start_bytes),
            start_bytes: self.start_bytes,
            peak_bytes: peak,
            alloc_calls: alloc_calls() - self.start_calls,
        }
    }

    /// Starts a *nest-safe* measurement region for RAII use (e.g. by
    /// `epplan-obs` spans). Unlike [`MemoryProbe::start`], which simply
    /// resets the global peak watermark, the returned [`ScopedProbe`]
    /// remembers the watermark it clobbered and re-merges it on finish
    /// (or drop), so an inner probe cannot erase the peak observed by
    /// an enclosing one.
    pub fn scoped() -> ScopedProbe {
        let saved_peak = peak_bytes();
        reset_peak();
        ScopedProbe {
            saved_peak,
            start_bytes: current_bytes(),
            start_calls: alloc_calls(),
            finished: false,
        }
    }
}

/// RAII measurement region created by [`MemoryProbe::scoped`].
///
/// Safe to nest: on finish/drop it folds the pre-region peak watermark
/// back into the global counter with a `fetch_max`, so enclosing
/// regions still see their true peak.
#[derive(Debug)]
pub struct ScopedProbe {
    saved_peak: usize,
    start_bytes: usize,
    start_calls: usize,
    finished: bool,
}

impl ScopedProbe {
    /// Ends the region, restores the outer peak watermark and reports
    /// the region's memory usage.
    pub fn finish(mut self) -> MemoryReport {
        let peak = peak_bytes();
        self.restore();
        MemoryReport {
            peak_delta_bytes: peak.saturating_sub(self.start_bytes),
            start_bytes: self.start_bytes,
            peak_bytes: peak,
            alloc_calls: alloc_calls().saturating_sub(self.start_calls),
        }
    }

    fn restore(&mut self) {
        if !self.finished {
            self.finished = true;
            PEAK.fetch_max(self.saved_peak, Ordering::Relaxed);
        }
    }
}

impl Drop for ScopedProbe {
    fn drop(&mut self) {
        self.restore();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the allocator is not installed in unit tests (that would
    // affect the whole test binary), so the counters stay at zero and
    // we test the bookkeeping logic directly. The counters are global,
    // so tests touching them serialize on a lock.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn counters_start_consistent() {
        let _g = LOCK.lock().unwrap();
        let c = current_bytes();
        let p = peak_bytes();
        assert!(p >= c || p == 0);
    }

    #[test]
    fn on_alloc_dealloc_roundtrip() {
        let _g = LOCK.lock().unwrap();
        let before = current_bytes();
        on_alloc(1024);
        assert_eq!(current_bytes(), before + 1024);
        assert!(peak_bytes() >= before + 1024);
        on_dealloc(1024);
        assert_eq!(current_bytes(), before);
    }

    #[test]
    fn probe_reports_peak_delta() {
        let _g = LOCK.lock().unwrap();
        let probe = MemoryProbe::start();
        on_alloc(4096);
        on_dealloc(4096);
        let report = probe.finish();
        assert!(report.peak_delta_bytes >= 4096);
        assert!(report.alloc_calls >= 1);
    }

    #[test]
    fn mib_conversion() {
        let r = MemoryReport {
            peak_delta_bytes: 2 * 1024 * 1024,
            start_bytes: 0,
            peak_bytes: 2 * 1024 * 1024,
            alloc_calls: 1,
        };
        assert_eq!(r.peak_delta_mib(), 2.0);
    }

    #[test]
    fn reset_peak_clamps_to_current() {
        let _g = LOCK.lock().unwrap();
        on_alloc(100);
        on_dealloc(100);
        reset_peak();
        assert_eq!(peak_bytes(), current_bytes());
    }

    #[test]
    fn scoped_probe_restores_outer_watermark() {
        let _g = LOCK.lock().unwrap();
        reset_peak();
        on_alloc(10_000);
        on_dealloc(10_000);
        let outer_peak_before = peak_bytes();
        assert!(outer_peak_before >= 10_000);

        // An inner scoped probe resets the watermark to measure its own
        // region, but must not erase the outer high-water mark.
        let inner = MemoryProbe::scoped();
        on_alloc(256);
        on_dealloc(256);
        let report = inner.finish();
        assert!(report.peak_delta_bytes >= 256);
        assert!(report.alloc_calls >= 1);
        assert!(peak_bytes() >= outer_peak_before);
    }

    #[test]
    fn scoped_probe_drop_restores_watermark() {
        let _g = LOCK.lock().unwrap();
        reset_peak();
        on_alloc(5_000);
        on_dealloc(5_000);
        let before = peak_bytes();
        {
            let _inner = MemoryProbe::scoped();
            on_alloc(64);
            on_dealloc(64);
            // dropped without finish()
        }
        assert!(peak_bytes() >= before);
    }
}
