//! `epplan-serve` — a crash-recoverable incremental planning daemon.
//!
//! The serving layer keeps a *certified* plan for one GEPC instance
//! alive across an unbounded stream of [`SequencedOp`] atomic
//! operations (the IEP setting of Cheng et al., ICDE 2017 §V–VI):
//!
//! * every operation is repaired via the incremental entry points
//!   under a per-op [`SolveBudget`], with deterministic budget
//!   doubling on retryable exhaustion, then a full re-solve, then a
//!   typed rejection — the visible plan is certified at every step;
//! * a write-ahead log records each op *before* it is applied and an
//!   outcome marker *after*, so a crash at any point — injected fault
//!   or literal `SIGKILL` — can be recovered by replaying the WAL on
//!   top of the last snapshot, converging to the pre-crash plan;
//! * snapshots are length-prefixed, checksummed, and atomically
//!   renamed into place, so a torn snapshot write never corrupts the
//!   previous good one;
//! * accumulated plan drift (`dif` since the last full solve) triggers
//!   a background re-solve whose result is swapped in only after
//!   certification, with ops-denominated exponential backoff after
//!   failed attempts;
//! * an overload layer ([`overload`]) keeps the daemon live under
//!   bursts: deterministic admission control sheds stale ops (the
//!   `Shed` outcome is in the WAL before it is acted on), a brownout
//!   ladder degrades solve effort when the windowed p99 burns its
//!   SLO, and poison ops that repeatedly kill the process are
//!   quarantined to a dead-letter log instead of wedging the stream.
//!
//! [`SequencedOp`]: epplan_core::incremental::SequencedOp
//! [`SolveBudget`]: epplan_solve::SolveBudget

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use epplan_solve::FailureKind;

pub mod daemon;
pub mod overload;
pub mod proto;
pub mod scrape;
pub mod wal;

pub use daemon::{Daemon, ServeConfig, ServeStats};
pub use overload::{BrownoutKnobs, OverloadConfig, OverloadState};
pub use proto::{parse_op_line, OpResponse, ServeSummary};
pub use scrape::{render_scrape, MetricsEndpoint};
pub use wal::{
    read_dead_letters, read_snapshot, read_wal, write_snapshot, DeadLetterRec,
    OutcomeMeta, OutcomeMode, Snapshot, WalRecord, WalWriter, FORMAT_VERSION,
};

/// Classified serving failure. The kind maps onto the CLI's exit-code
/// contract: I/O trouble, on-disk corruption, and solver failures are
/// distinguishable by exit status alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Failure class (drives the process exit code).
    pub kind: ServeErrorKind,
    /// Human-readable context: what failed, and where.
    pub message: String,
}

/// The failure classes a serving session can end with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeErrorKind {
    /// WAL append, snapshot write, or socket/file I/O failed.
    Io,
    /// On-disk state (WAL frame or snapshot) failed checksum or
    /// structural validation — or a protocol line was malformed.
    Corrupt,
    /// The solver layer failed (bad input, infeasible, budget
    /// exhausted, numerical instability).
    Solve(FailureKind),
}

impl ServeError {
    /// An I/O failure (exit code 3).
    pub fn io(message: impl Into<String>) -> Self {
        ServeError {
            kind: ServeErrorKind::Io,
            message: message.into(),
        }
    }

    /// A corruption / parse failure (exit code 4).
    pub fn corrupt(message: impl Into<String>) -> Self {
        ServeError {
            kind: ServeErrorKind::Corrupt,
            message: message.into(),
        }
    }

    /// A solver-layer failure (exit code = the kind's code).
    pub fn solve(kind: FailureKind, message: impl Into<String>) -> Self {
        ServeError {
            kind: ServeErrorKind::Solve(kind),
            message: message.into(),
        }
    }

    /// The process exit code this failure maps to, matching the CLI
    /// contract: 3 = io, 4 = parse/corrupt, solver kinds keep their
    /// own codes (5 bad input, 6 infeasible, 7 budget, 1 numerical).
    pub fn exit_code(&self) -> i32 {
        match self.kind {
            ServeErrorKind::Io => 3,
            ServeErrorKind::Corrupt => 4,
            ServeErrorKind::Solve(k) => k.exit_code(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            ServeErrorKind::Io => "io",
            ServeErrorKind::Corrupt => "corrupt",
            ServeErrorKind::Solve(k) => k.short_code(),
        };
        write!(f, "serve error [{kind}]: {}", self.message)
    }
}

impl std::error::Error for ServeError {}
