//! Overload management: deterministic admission control, the brownout
//! ladder, poison-op quarantine bookkeeping, and ops-denominated
//! backoff for drift-triggered re-solves.
//!
//! ## Determinism contract
//!
//! Everything in this module is a *pure fold over recorded op
//! outcomes*. The daemon makes each overload decision live, writes
//! the decision into the op's WAL outcome record ([`OutcomeMeta`]),
//! and then folds the record into [`OverloadState`] via
//! [`OverloadState::absorb`] — the same fold recovery replays. Two
//! consequences:
//!
//! * Replay never re-decides. A brownout step that raced the SLO
//!   window live is reproduced from the recorded `level`, exactly.
//! * Any two daemons that have absorbed the same outcome records hold
//!   bit-identical `OverloadState`, regardless of `EPPLAN_THREADS`,
//!   wall-clock speed, or how many crash/restore cycles happened in
//!   between.
//!
//! The only wall-clock input is the SLO burn flag itself, and it is
//! recorded per op (`burn`) before it is folded. Admission staleness,
//! quarantine attempt counts, and re-solve backoff are denominated in
//! *ops* (the [`OverloadState::work_clock`]) and never read a clock.

use serde::{Deserialize, Serialize};

use epplan_solve::SolveBudget;

use crate::wal::{OutcomeMeta, OutcomeMode};

/// Deepest brownout level. The ladder, from healthy to most degraded:
///
/// * **0** — normal operation.
/// * **1** — per-op repair budgets halved.
/// * **2** — additionally, full re-solves switch from the gap-based
///   pipeline to budgeted LNS with the final `LocalSearch` polish
///   skipped (`LnsSolver::solve_budgeted`, `polish: false`).
/// * **3** — additionally, the drift re-solve threshold is raised
///   4×, so background re-solves become rare.
pub const MAX_BROWNOUT_LEVEL: u8 = 3;

/// Work-clock cost charged, on top of `1 + retries`, for any op whose
/// outcome involved a full re-solve attempt (successful or not). A
/// re-solve is the expensive path; charging it several op-widths is
/// what makes the admission staleness bound respond to real load
/// while staying ops-denominated.
pub const RESOLVE_WORK_OPS: u64 = 4;

/// Cap on the exponential backoff shift for failed drift re-solves
/// (`2^min(failures, CAP)` ops).
const BACKOFF_MAX_SHIFT: u32 = 16;

/// Brownout controller knobs, parsed from `--brownout DOWN,UP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutKnobs {
    /// Consecutive SLO-burning ops before stepping one level down.
    pub down_after: u64,
    /// Consecutive healthy ops before stepping one level back up.
    pub up_after: u64,
}

/// Overload knobs. The all-`None` default reproduces the daemon's
/// pre-overload behavior exactly: nothing is shed, the ladder never
/// engages, and a wedged op retries forever across restores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Admission staleness bound, in work-clock ops. An op whose id
    /// lags the work clock by more than this is shed unexecuted.
    pub op_deadline_ops: Option<u64>,
    /// Brownout controller; requires SLO accounting to be on.
    pub brownout: Option<BrownoutKnobs>,
    /// Quarantine an op after this many attempts that each died
    /// mid-execution (op record with no outcome record).
    pub quarantine_after: Option<u32>,
}

/// Controller state — a pure function of the outcome records absorbed
/// so far. Serialized into snapshots (serde defaults keep v1
/// snapshots readable) and compared bit-for-bit in recovery tests.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverloadState {
    /// Ops-denominated progress clock: advances by at least the op id
    /// and additionally by the recorded cost of each executed op.
    /// `work_clock - id` is the staleness admission checks.
    #[serde(default)]
    pub work_clock: u64,
    /// Current brownout level, `0..=MAX_BROWNOUT_LEVEL`.
    #[serde(default)]
    pub level: u8,
    /// Consecutive executed ops recorded as SLO-burning.
    #[serde(default)]
    pub burn_streak: u64,
    /// Consecutive executed ops recorded as healthy.
    #[serde(default)]
    pub healthy_streak: u64,
    /// Consecutive failed drift-triggered re-solves.
    #[serde(default)]
    pub resolve_failures: u32,
    /// Op id before which drift re-solves are suppressed.
    #[serde(default)]
    pub resolve_backoff_until: u64,
}

impl OverloadState {
    /// How far the work clock has run ahead of this op's id. Ids are
    /// the stream's arrival order, so this is the queueing delay the
    /// op has already suffered, denominated in ops.
    pub fn staleness(&self, id: u64) -> u64 {
        self.work_clock.saturating_sub(id)
    }

    /// Whether a drift-triggered re-solve may be attempted for `id`
    /// (backoff from earlier failures has elapsed).
    pub fn backoff_clear(&self, id: u64) -> bool {
        id >= self.resolve_backoff_until
    }

    /// The brownout level that *would* be recorded after an executed
    /// op with this burn flag — prospective streaks, so the op that
    /// completes a streak carries the new level in its own record.
    pub fn decide_level(&self, burn: bool, knobs: &BrownoutKnobs) -> u8 {
        if burn {
            if self.burn_streak + 1 >= knobs.down_after && self.level < MAX_BROWNOUT_LEVEL {
                self.level + 1
            } else {
                self.level
            }
        } else if self.healthy_streak + 1 >= knobs.up_after && self.level > 0 {
            self.level - 1
        } else {
            self.level
        }
    }

    /// Fold one recorded outcome into the state. Shared verbatim by
    /// the live path and recovery replay — this function *is* the
    /// determinism contract.
    pub fn absorb(&mut self, meta: &OutcomeMeta) {
        match meta.mode {
            OutcomeMode::Shed | OutcomeMode::Quarantine => {
                // Not executed: the clock catches up to the id but no
                // work is charged, which is what lets a shedding
                // daemon drain its backlog.
                self.work_clock = self.work_clock.max(meta.id);
            }
            _ => {
                let cost = 1 + meta.retries as u64 + if meta.resolve_attempted() {
                    RESOLVE_WORK_OPS
                } else {
                    0
                };
                self.work_clock = self.work_clock.max(meta.id).saturating_add(cost - 1);
                if meta.burn {
                    self.burn_streak += 1;
                    self.healthy_streak = 0;
                } else {
                    self.healthy_streak += 1;
                    self.burn_streak = 0;
                }
                if meta.level != self.level {
                    self.level = meta.level;
                    self.burn_streak = 0;
                    self.healthy_streak = 0;
                }
                match meta.mode {
                    OutcomeMode::Resolve | OutcomeMode::RepairResolve => {
                        self.resolve_failures = 0;
                        self.resolve_backoff_until = 0;
                    }
                    _ if meta.rsfail => {
                        self.resolve_failures = self.resolve_failures.saturating_add(1);
                        let shift = self.resolve_failures.min(BACKOFF_MAX_SHIFT);
                        self.resolve_backoff_until = meta.id.saturating_add(1u64 << shift);
                    }
                    _ => {}
                }
            }
        }
    }
}

/// `base` with both limits halved (floored at one iteration) — the
/// brownout level ≥ 1 repair budget. Unlimited budgets stay
/// unlimited; brownout cannot conjure a bound the operator never set.
pub fn shrink_budget(base: SolveBudget, level: u8) -> SolveBudget {
    if level == 0 {
        return base;
    }
    SolveBudget {
        time_limit: base.time_limit.map(|t| t / 2),
        max_iterations: base.max_iterations.map(|c| (c / 2).max(1)),
    }
}

/// The drift threshold in effect at `level`: raised 4× at the deepest
/// brownout level so background re-solves become rare under sustained
/// overload.
pub fn effective_drift_threshold(threshold: Option<u64>, level: u8) -> Option<u64> {
    threshold.map(|t| {
        if level >= MAX_BROWNOUT_LEVEL {
            t.saturating_mul(4)
        } else {
            t
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64, mode: OutcomeMode) -> OutcomeMeta {
        OutcomeMeta::plain(id, mode)
    }

    #[test]
    fn work_clock_charges_resolves_and_drains_on_shed() {
        let mut s = OverloadState::default();
        s.absorb(&meta(1, OutcomeMode::Repair));
        assert_eq!(s.work_clock, 1);
        assert_eq!(s.staleness(2), 0);

        // A full re-solve charges RESOLVE_WORK_OPS extra.
        s.absorb(&meta(2, OutcomeMode::Resolve));
        assert_eq!(s.work_clock, 2 + RESOLVE_WORK_OPS);

        // Retries are charged one op-width each.
        let mut m = meta(3, OutcomeMode::Repair);
        m.retries = 2;
        s.absorb(&m);
        // max(6, 3) + (1 + 2 retries) - 1 = 8.
        assert_eq!(s.work_clock, 8);
        assert!(s.staleness(4) > 0);

        // Shed ops charge nothing; a big id gap drains staleness.
        s.absorb(&meta(100, OutcomeMode::Shed));
        assert_eq!(s.work_clock, 100);
        assert_eq!(s.staleness(101), 0);
    }

    #[test]
    fn rejected_ops_charge_the_failed_resolve() {
        let mut s = OverloadState::default();
        s.absorb(&meta(1, OutcomeMode::Reject));
        // A rejection means the fallback full re-solve also failed.
        assert_eq!(s.work_clock, 1 + RESOLVE_WORK_OPS);
    }

    #[test]
    fn brownout_steps_down_then_back_up() {
        let knobs = BrownoutKnobs { down_after: 2, up_after: 3 };
        let mut s = OverloadState::default();

        // First burning op: streak 1 < 2, no step.
        assert_eq!(s.decide_level(true, &knobs), 0);
        let mut m = meta(1, OutcomeMode::Repair);
        m.burn = true;
        s.absorb(&m);

        // Second burning op completes the streak: step down, and the
        // absorbed level change resets both streaks.
        assert_eq!(s.decide_level(true, &knobs), 1);
        let mut m = meta(2, OutcomeMode::Repair);
        m.burn = true;
        m.level = 1;
        s.absorb(&m);
        assert_eq!(s.level, 1);
        assert_eq!(s.burn_streak, 0);

        // Three healthy ops step back up.
        for (i, id) in (3..6).enumerate() {
            let want = if i == 2 { 0 } else { 1 };
            assert_eq!(s.decide_level(false, &knobs), want);
            let mut m = meta(id, OutcomeMode::Repair);
            m.level = want;
            s.absorb(&m);
        }
        assert_eq!(s.level, 0);
    }

    #[test]
    fn level_is_capped_at_max() {
        let knobs = BrownoutKnobs { down_after: 1, up_after: 1 };
        let mut s = OverloadState::default();
        for id in 1..10 {
            let next = s.decide_level(true, &knobs);
            let mut m = meta(id, OutcomeMode::Repair);
            m.burn = true;
            m.level = next;
            s.absorb(&m);
        }
        assert_eq!(s.level, MAX_BROWNOUT_LEVEL);
    }

    #[test]
    fn replay_trusts_the_recorded_level_over_its_own_streaks() {
        // A fault suppressed the live step: the record says level 0
        // even though the streak says 1. The fold must follow the
        // record, or recovery would diverge from the live run.
        let knobs = BrownoutKnobs { down_after: 2, up_after: 2 };
        let mut s = OverloadState::default();
        for id in 1..=4 {
            let mut m = meta(id, OutcomeMode::Repair);
            m.burn = true;
            m.level = 0; // live step suppressed every time
            s.absorb(&m);
        }
        assert_eq!(s.level, 0);
        assert!(s.decide_level(true, &knobs) == 1, "streaks keep counting");
    }

    #[test]
    fn failed_resolves_back_off_exponentially_in_ops() {
        let mut s = OverloadState::default();
        let mut m = meta(10, OutcomeMode::Repair);
        m.rsfail = true;
        s.absorb(&m);
        assert_eq!(s.resolve_backoff_until, 12); // 10 + 2^1
        assert!(!s.backoff_clear(11));
        assert!(s.backoff_clear(12));

        let mut m = meta(12, OutcomeMode::Repair);
        m.rsfail = true;
        s.absorb(&m);
        assert_eq!(s.resolve_backoff_until, 16); // 12 + 2^2

        // A successful re-solve clears the backoff entirely.
        s.absorb(&meta(16, OutcomeMode::RepairResolve));
        assert_eq!(s.resolve_failures, 0);
        assert!(s.backoff_clear(17));
    }

    #[test]
    fn shrink_budget_halves_limits_but_leaves_unlimited_alone() {
        let b = SolveBudget { time_limit: None, max_iterations: Some(7) };
        assert_eq!(shrink_budget(b, 0).max_iterations, Some(7));
        assert_eq!(shrink_budget(b, 1).max_iterations, Some(3));
        assert_eq!(
            shrink_budget(SolveBudget { time_limit: None, max_iterations: Some(1) }, 2)
                .max_iterations,
            Some(1)
        );
        assert_eq!(shrink_budget(SolveBudget::UNLIMITED, 3).max_iterations, None);
    }

    #[test]
    fn drift_threshold_is_raised_only_at_the_deepest_level() {
        assert_eq!(effective_drift_threshold(Some(100), 0), Some(100));
        assert_eq!(effective_drift_threshold(Some(100), 2), Some(100));
        assert_eq!(effective_drift_threshold(Some(100), 3), Some(400));
        assert_eq!(effective_drift_threshold(None, 3), None);
    }

    #[test]
    fn state_serializes_with_defaults_for_old_snapshots() {
        let s: OverloadState = serde_json::from_str("{}").unwrap();
        assert_eq!(s, OverloadState::default());
        let mut s2 = OverloadState::default();
        s2.absorb(&meta(5, OutcomeMode::Resolve));
        let json = serde_json::to_string(&s2).unwrap();
        let back: OverloadState = serde_json::from_str(&json).unwrap();
        assert_eq!(s2, back);
    }
}
