//! Write-ahead log and snapshot persistence for `epplan serve`.
//!
//! ## On-disk format
//!
//! The WAL (`wal.log`), the snapshot (`snapshot.bin`), and the
//! dead-letter log (`dead_letter.log`) are sequences of
//! self-delimiting *frames*:
//!
//! ```text
//! [ tag: u8 ][ len: u32 LE ][ checksum: u32 LE ][ payload: len bytes ]
//! ```
//!
//! The payload is the JSON encoding of the record; the checksum is
//! FNV-1a over the payload bytes. Four tags exist: `1` = op record
//! (a [`SequencedOp`], appended *before* the op is applied), `2` =
//! outcome record (op id + [`OutcomeMeta`], appended *after* the op
//! is decided — including `shed` and `quarantine` decisions, which
//! are durable before they are acted on), `3` = snapshot (the whole
//! daemon state, sole frame of `snapshot.bin`), `4` = dead-letter
//! record (a quarantined op, appended to `dead_letter.log`).
//!
//! ## Crash semantics
//!
//! * A *torn tail* — the file ends mid-frame because the process died
//!   during an append — is tolerated: the reader stops at the last
//!   complete frame. This is the expected shape after a `SIGKILL`.
//! * A *checksum mismatch* or *unknown tag* before the tail is
//!   corruption and is reported as a typed error (CLI exit code 4)
//!   naming the byte offset and frame tag of the damaged frame;
//!   recovery never silently skips a damaged record.
//! * Snapshots are written to `snapshot.bin.tmp`, synced, then
//!   atomically renamed over `snapshot.bin` — a crash mid-write
//!   leaves the previous good snapshot in place. After a successful
//!   snapshot the WAL is truncated; a crash *between* rename and
//!   truncate is safe because replay skips ops at or below the
//!   snapshot's `last_op_id`.
//! * The dead-letter log is append-only and never truncated — a
//!   quarantined op must survive every later snapshot so
//!   `--dump-dead-letter` can export it.

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use epplan_core::incremental::SequencedOp;
use epplan_core::model::Instance;
use epplan_core::plan::Plan;
use serde::{Deserialize, Serialize};

use crate::overload::OverloadState;
use crate::ServeError;

/// WAL file name inside the state directory.
pub const WAL_FILE: &str = "wal.log";
/// Snapshot file name inside the state directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Temporary snapshot name; only ever observed after a crash between
/// write and rename, and ignored by recovery.
pub const SNAPSHOT_TMP_FILE: &str = "snapshot.bin.tmp";
/// Dead-letter log file name inside the state directory.
pub const DEAD_LETTER_FILE: &str = "dead_letter.log";
/// Version stamp embedded in every snapshot; bumped on layout change.
/// v2 added the overload-controller state ([`OverloadState`]).
pub const FORMAT_VERSION: u32 = 2;

const TAG_OP: u8 = 1;
const TAG_OUTCOME: u8 = 2;
const TAG_SNAPSHOT: u8 = 3;
const TAG_DEADLETTER: u8 = 4;
const FRAME_HEADER_LEN: usize = 9;

/// 32-bit FNV-1a over `bytes` — the frame checksum. Deliberately a
/// tiny self-contained function: the WAL must be readable with no
/// dependencies beyond the standard library.
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// How an op was ultimately processed — recorded in the WAL so replay
/// retraces the *decision*, not just the input. Budget escalation and
/// drift triggers involve wall-clock time and are therefore not
/// re-derivable; the recorded mode makes replay deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeMode {
    /// The op was repaired incrementally (IEP) and certified.
    Repair,
    /// Repaired, then the accumulated drift crossed the threshold and
    /// a certified full re-solve was swapped in.
    RepairResolve,
    /// Repair failed or was rejected by certification; a certified
    /// full re-solve replaced the plan.
    Resolve,
    /// The op was rejected; the previous certified plan is retained
    /// and only the op cursor advanced.
    Reject,
    /// Admission control shed the op unexecuted — it exceeded its
    /// ops-denominated staleness bound. Only the op cursor advanced.
    Shed,
    /// The op was quarantined to the dead-letter log after repeatedly
    /// dying mid-execution. Only the op cursor advanced.
    Quarantine,
}

impl OutcomeMode {
    /// Stable on-disk keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            OutcomeMode::Repair => "repair",
            OutcomeMode::RepairResolve => "repair_resolve",
            OutcomeMode::Resolve => "resolve",
            OutcomeMode::Reject => "reject",
            OutcomeMode::Shed => "shed",
            OutcomeMode::Quarantine => "quarantine",
        }
    }

    /// Parses a stable keyword back; `None` on unknown input.
    pub fn from_keyword(s: &str) -> Option<Self> {
        match s {
            "repair" => Some(OutcomeMode::Repair),
            "repair_resolve" => Some(OutcomeMode::RepairResolve),
            "resolve" => Some(OutcomeMode::Resolve),
            "reject" => Some(OutcomeMode::Reject),
            "shed" => Some(OutcomeMode::Shed),
            "quarantine" => Some(OutcomeMode::Quarantine),
            _ => None,
        }
    }
}

/// Everything the daemon decided about one op, recorded durably so
/// recovery replays the decisions instead of re-making them. The
/// overload controller ([`OverloadState::absorb`]) folds exactly
/// these fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutcomeMeta {
    /// Id of the op this outcome belongs to.
    pub id: u64,
    /// How the op was processed.
    pub mode: OutcomeMode,
    /// Budget-escalation retries this op consumed.
    pub retries: u32,
    /// Whether the windowed p99 was burning the SLO when the op
    /// completed — the only wall-clock input to the brownout
    /// controller, recorded so replay never re-derives it.
    pub burn: bool,
    /// Brownout level *after* this op (the level the controller
    /// decided to record, even if a fault suppressed a live step).
    pub level: u8,
    /// A drift-triggered re-solve was attempted for this op and
    /// failed; the outcome stayed `Repair` but backoff must advance.
    pub rsfail: bool,
}

impl OutcomeMeta {
    /// A metadata record with no overload activity — what the daemon
    /// writes when every overload knob is off.
    pub fn plain(id: u64, mode: OutcomeMode) -> Self {
        OutcomeMeta {
            id,
            mode,
            retries: 0,
            burn: false,
            level: 0,
            rsfail: false,
        }
    }

    /// Whether processing this op involved a full re-solve attempt,
    /// successful or not — the expensive path the work clock charges
    /// [`crate::overload::RESOLVE_WORK_OPS`] extra for. A `Reject`
    /// implies the fallback re-solve ran and failed.
    pub fn resolve_attempted(&self) -> bool {
        self.rsfail
            || matches!(
                self.mode,
                OutcomeMode::Resolve | OutcomeMode::RepairResolve | OutcomeMode::Reject
            )
    }
}

/// JSON payload of an outcome frame. A named struct rather than a
/// tagged enum: the op id plus the mode keyword. The overload fields
/// default to their inert values so v1 logs (which never wrote them)
/// decode unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct OutcomeRec {
    id: u64,
    mode: String,
    #[serde(default)]
    retries: u32,
    #[serde(default)]
    burn: bool,
    #[serde(default)]
    level: u8,
    #[serde(default)]
    rsfail: bool,
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An op was durably logged before being applied.
    Op(SequencedOp),
    /// The op finished processing with the recorded decisions.
    Outcome(OutcomeMeta),
}

/// One quarantined op, exported by `epplan serve --dump-dead-letter`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeadLetterRec {
    /// Id of the poisoned op.
    pub id: u64,
    /// How many attempts died mid-execution before quarantine.
    pub attempts: u32,
    /// The op itself, for offline diagnosis or manual replay.
    pub op: SequencedOp,
}

/// The full daemon state persisted at a snapshot point. Restoring a
/// snapshot and replaying the WAL suffix reproduces the pre-crash
/// certified plan bit-for-bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Layout version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// Highest op id folded into this snapshot (0 = initial solve).
    pub last_op_id: u64,
    /// Accumulated `dif` since the last full solve.
    pub drift: u64,
    /// Overload-controller state as of `last_op_id`.
    #[serde(default)]
    pub overload: OverloadState,
    /// The instance as of `last_op_id`.
    pub instance: Instance,
    /// The certified plan as of `last_op_id`.
    pub plan: Plan,
}

fn io_err(context: &str, e: std::io::Error) -> ServeError {
    ServeError::io(format!("{context}: {e}"))
}

fn encode_frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.push(tag);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

fn to_json<T: Serialize>(what: &str, value: &T) -> Result<Vec<u8>, ServeError> {
    serde_json::to_string(value)
        .map(String::into_bytes)
        .map_err(|e| ServeError::corrupt(format!("encoding {what}: {e}")))
}

/// Append-only WAL writer. Every append is flushed to the operating
/// system before returning, so a process kill (the crash model this
/// daemon defends against) loses at most the frame being written —
/// which the reader then treats as a torn tail. Durability against
/// power loss additionally requires [`WalWriter::sync`], which the
/// daemon invokes at snapshot points.
#[derive(Debug)]
pub struct WalWriter {
    out: BufWriter<File>,
    path: PathBuf,
}

impl WalWriter {
    /// Creates (truncating) a fresh WAL at `path`.
    pub fn create(path: &Path) -> Result<Self, ServeError> {
        let file = File::create(path)
            .map_err(|e| io_err(&format!("creating WAL {}", path.display()), e))?;
        Ok(WalWriter {
            out: BufWriter::new(file),
            path: path.to_path_buf(),
        })
    }

    /// Opens the WAL at `path` for appending (creating it if absent).
    pub fn open_append(path: &Path) -> Result<Self, ServeError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err(&format!("opening WAL {}", path.display()), e))?;
        Ok(WalWriter {
            out: BufWriter::new(file),
            path: path.to_path_buf(),
        })
    }

    /// Durably logs an op *before* it is applied. Fault site
    /// `serve.wal.append` fires here, upstream of any write, modelling
    /// a full disk or I/O error at the worst possible moment.
    pub fn append_op(&mut self, sop: &SequencedOp) -> Result<(), ServeError> {
        if let Some(action) = epplan_fault::point("serve.wal.append") {
            return Err(ServeError::io(format!(
                "injected fault at serve.wal.append ({action})"
            )));
        }
        let payload = to_json("op record", sop)?;
        self.append(TAG_OP, &payload)
    }

    /// Logs the outcome record for one op *after* the decision is
    /// made but *before* it is acted on externally — shed and
    /// quarantine decisions are durable first, so `--restore`
    /// retraces them instead of re-deciding.
    pub fn append_outcome(&mut self, meta: &OutcomeMeta) -> Result<(), ServeError> {
        let rec = OutcomeRec {
            id: meta.id,
            mode: meta.mode.keyword().to_string(),
            retries: meta.retries,
            burn: meta.burn,
            level: meta.level,
            rsfail: meta.rsfail,
        };
        let payload = to_json("outcome record", &rec)?;
        self.append(TAG_OUTCOME, &payload)
    }

    fn append(&mut self, tag: u8, payload: &[u8]) -> Result<(), ServeError> {
        let frame = encode_frame(tag, payload);
        self.out
            .write_all(&frame)
            .and_then(|()| self.out.flush())
            .map_err(|e| io_err(&format!("appending to WAL {}", self.path.display()), e))
    }

    /// Forces the log to stable storage (`fdatasync`).
    pub fn sync(&mut self) -> Result<(), ServeError> {
        self.out
            .flush()
            .and_then(|()| self.out.get_ref().sync_data())
            .map_err(|e| io_err(&format!("syncing WAL {}", self.path.display()), e))
    }
}

/// Appends one quarantined op to the dead-letter log in `dir`, fully
/// synced — a quarantine decision must never be lost to a crash.
/// Fault site `serve.deadletter.append` fires before any write.
pub fn append_dead_letter(dir: &Path, rec: &DeadLetterRec) -> Result<(), ServeError> {
    if let Some(action) = epplan_fault::point("serve.deadletter.append") {
        return Err(ServeError::io(format!(
            "injected fault at serve.deadletter.append ({action})"
        )));
    }
    let path = dir.join(DEAD_LETTER_FILE);
    let payload = to_json("dead-letter record", rec)?;
    let frame = encode_frame(TAG_DEADLETTER, &payload);
    let mut file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| io_err(&format!("opening dead-letter log {}", path.display()), e))?;
    file.write_all(&frame)
        .and_then(|()| file.sync_data())
        .map_err(|e| io_err(&format!("appending to dead-letter log {}", path.display()), e))
}

/// Reads every record of the dead-letter log in `dir`. A missing file
/// is an empty log; a torn tail is tolerated (the crash model allows
/// dying mid-append); corruption before the tail is an error.
pub fn read_dead_letters(dir: &Path) -> Result<Vec<DeadLetterRec>, ServeError> {
    let path = dir.join(DEAD_LETTER_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)
                .map_err(|e| io_err(&format!("reading dead-letter log {}", path.display()), e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(io_err(
                &format!("opening dead-letter log {}", path.display()),
                e,
            ))
        }
    }
    let source = format!("dead-letter log {}", path.display());
    let mut records = Vec::new();
    for (tag, off, payload) in decode_frames(&bytes, &source)? {
        if tag != TAG_DEADLETTER {
            return Err(ServeError::corrupt(format!(
                "{source}: unknown frame tag {tag} at byte {off}"
            )));
        }
        let text = std::str::from_utf8(&payload)
            .map_err(|e| ServeError::corrupt(format!("{source}: non-UTF-8 payload: {e}")))?;
        let rec: DeadLetterRec = serde_json::from_str(text).map_err(|e| {
            ServeError::corrupt(format!("{source}: undecodable dead-letter record: {e}"))
        })?;
        records.push(rec);
    }
    Ok(records)
}

/// Decodes every frame of the byte buffer `bytes` (from `source`, for
/// error context) into `(tag, byte offset, payload)` triples. A torn
/// tail is tolerated; everything before it must checksum.
fn decode_frames(bytes: &[u8], source: &str) -> Result<Vec<(u8, usize, Vec<u8>)>, ServeError> {
    let mut frames = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        if bytes.len() - off < FRAME_HEADER_LEN {
            break; // torn header at the tail — crash mid-append
        }
        let tag = bytes[off];
        let mut len_buf = [0u8; 4];
        len_buf.copy_from_slice(&bytes[off + 1..off + 5]);
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut crc_buf = [0u8; 4];
        crc_buf.copy_from_slice(&bytes[off + 5..off + 9]);
        let crc = u32::from_le_bytes(crc_buf);
        let start = off + FRAME_HEADER_LEN;
        if bytes.len() - start < len {
            break; // torn payload at the tail
        }
        let payload = &bytes[start..start + len];
        if fnv1a(payload) != crc {
            return Err(ServeError::corrupt(format!(
                "{source}: checksum mismatch in frame tag {tag} at byte {off} \
                 (stored {crc:#010x}, computed {:#010x})",
                fnv1a(payload)
            )));
        }
        frames.push((tag, off, payload.to_vec()));
        off = start + len;
    }
    Ok(frames)
}

/// Reads and validates the whole WAL. A missing file is an empty log;
/// a torn tail is tolerated; corruption anywhere else is an error.
pub fn read_wal(path: &Path) -> Result<Vec<WalRecord>, ServeError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)
                .map_err(|e| io_err(&format!("reading WAL {}", path.display()), e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(&format!("opening WAL {}", path.display()), e)),
    }
    let source = format!("WAL {}", path.display());
    let mut records = Vec::new();
    for (tag, off, payload) in decode_frames(&bytes, &source)? {
        let text = std::str::from_utf8(&payload)
            .map_err(|e| ServeError::corrupt(format!("{source}: non-UTF-8 payload: {e}")))?;
        match tag {
            TAG_OP => {
                let sop: SequencedOp = serde_json::from_str(text).map_err(|e| {
                    ServeError::corrupt(format!("{source}: undecodable op record: {e}"))
                })?;
                records.push(WalRecord::Op(sop));
            }
            TAG_OUTCOME => {
                let rec: OutcomeRec = serde_json::from_str(text).map_err(|e| {
                    ServeError::corrupt(format!("{source}: undecodable outcome record: {e}"))
                })?;
                let mode = OutcomeMode::from_keyword(&rec.mode).ok_or_else(|| {
                    ServeError::corrupt(format!(
                        "{source}: unknown outcome mode {:?}",
                        rec.mode
                    ))
                })?;
                records.push(WalRecord::Outcome(OutcomeMeta {
                    id: rec.id,
                    mode,
                    retries: rec.retries,
                    burn: rec.burn,
                    level: rec.level,
                    rsfail: rec.rsfail,
                }));
            }
            other => {
                return Err(ServeError::corrupt(format!(
                    "{source}: unknown frame tag {other} at byte {off}"
                )));
            }
        }
    }
    Ok(records)
}

/// Writes `snap` atomically into `dir`: temp file, sync, rename.
/// Fault site `serve.snapshot.write` fires before the temp file is
/// created, so an injected failure leaves the previous snapshot (and
/// the WAL) fully intact.
pub fn write_snapshot(dir: &Path, snap: &Snapshot) -> Result<(), ServeError> {
    if let Some(action) = epplan_fault::point("serve.snapshot.write") {
        return Err(ServeError::io(format!(
            "injected fault at serve.snapshot.write ({action})"
        )));
    }
    let payload = to_json("snapshot", snap)?;
    let frame = encode_frame(TAG_SNAPSHOT, &payload);
    let tmp = dir.join(SNAPSHOT_TMP_FILE);
    let fin = dir.join(SNAPSHOT_FILE);
    let mut file = File::create(&tmp)
        .map_err(|e| io_err(&format!("creating snapshot temp {}", tmp.display()), e))?;
    file.write_all(&frame)
        .and_then(|()| file.sync_all())
        .map_err(|e| io_err(&format!("writing snapshot temp {}", tmp.display()), e))?;
    drop(file);
    fs::rename(&tmp, &fin).map_err(|e| {
        io_err(
            &format!("renaming snapshot {} -> {}", tmp.display(), fin.display()),
            e,
        )
    })
}

/// Loads the snapshot from `dir`. `Ok(None)` when no snapshot exists;
/// corruption (bad checksum, torn frame, version mismatch) is an
/// error — a snapshot is written atomically and must never be torn.
pub fn read_snapshot(dir: &Path) -> Result<Option<Snapshot>, ServeError> {
    let path = dir.join(SNAPSHOT_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)
                .map_err(|e| io_err(&format!("reading snapshot {}", path.display()), e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(&format!("opening snapshot {}", path.display()), e)),
    }
    let source = format!("snapshot {}", path.display());
    let frames = decode_frames(&bytes, &source)?;
    let (tag, payload) = match frames.as_slice() {
        [single] => (single.0, &single.2),
        _ => {
            return Err(ServeError::corrupt(format!(
                "{source}: expected exactly one complete frame, found {}",
                frames.len()
            )));
        }
    };
    if tag != TAG_SNAPSHOT {
        return Err(ServeError::corrupt(format!(
            "{source}: unexpected frame tag {tag}"
        )));
    }
    let text = std::str::from_utf8(payload)
        .map_err(|e| ServeError::corrupt(format!("{source}: non-UTF-8 payload: {e}")))?;
    let snap: Snapshot = serde_json::from_str(text)
        .map_err(|e| ServeError::corrupt(format!("{source}: undecodable snapshot: {e}")))?;
    if snap.version != FORMAT_VERSION {
        return Err(ServeError::corrupt(format!(
            "{source}: format version {} (supported: {FORMAT_VERSION})",
            snap.version
        )));
    }
    Ok(Some(snap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeErrorKind;
    use epplan_core::incremental::{AtomicOp, SequencedOp};
    use epplan_core::model::EventId;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "epplan-wal-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ops() -> Vec<SequencedOp> {
        vec![
            SequencedOp::new(
                1,
                AtomicOp::EtaDecrease {
                    event: EventId(0),
                    new_upper: 3,
                },
            ),
            SequencedOp::new(
                2,
                AtomicOp::UtilityChange {
                    user: epplan_core::model::UserId(0),
                    event: EventId(0),
                    new_utility: 0.5,
                },
            ),
        ]
    }

    #[test]
    fn wal_round_trips_ops_and_outcomes() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join(WAL_FILE);
        let ops = sample_ops();
        let rich = OutcomeMeta {
            id: 2,
            mode: OutcomeMode::Resolve,
            retries: 3,
            burn: true,
            level: 2,
            rsfail: true,
        };
        {
            let mut w = WalWriter::create(&path).unwrap();
            w.append_op(&ops[0]).unwrap();
            w.append_outcome(&OutcomeMeta::plain(1, OutcomeMode::Repair))
                .unwrap();
            w.append_op(&ops[1]).unwrap();
            w.append_outcome(&rich).unwrap();
            w.sync().unwrap();
        }
        let records = read_wal(&path).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0], WalRecord::Op(ops[0].clone()));
        assert_eq!(
            records[1],
            WalRecord::Outcome(OutcomeMeta::plain(1, OutcomeMode::Repair))
        );
        assert_eq!(records[2], WalRecord::Op(ops[1].clone()));
        // Every overload field round-trips bit-for-bit.
        assert_eq!(records[3], WalRecord::Outcome(rich));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shed_and_quarantine_keywords_round_trip() {
        for mode in [OutcomeMode::Shed, OutcomeMode::Quarantine] {
            assert_eq!(OutcomeMode::from_keyword(mode.keyword()), Some(mode));
        }
        // v1 outcome records (no overload fields) decode with inert
        // defaults via serde.
        let rec: OutcomeRec = serde_json::from_str(r#"{"id":7,"mode":"repair"}"#).unwrap();
        assert_eq!(rec.retries, 0);
        assert!(!rec.burn && !rec.rsfail);
        assert_eq!(rec.level, 0);
    }

    #[test]
    fn torn_tail_is_tolerated_but_mid_file_corruption_is_not() {
        let dir = tmp_dir("torn");
        let path = dir.join(WAL_FILE);
        let ops = sample_ops();
        {
            let mut w = WalWriter::create(&path).unwrap();
            w.append_op(&ops[0]).unwrap();
            w.append_outcome(&OutcomeMeta::plain(1, OutcomeMode::Repair))
                .unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the end.
        let full = fs::read(&path).unwrap();
        for cut in [1, 5, full.len() / 2] {
            fs::write(&path, &full[..full.len() - cut]).unwrap();
            let records = read_wal(&path).unwrap();
            assert!(records.len() < 2, "cut {cut} should drop the tail record");
        }
        // Flip a payload byte in the middle: corruption, not a tear.
        // The error must name the frame's byte offset and tag.
        let mut evil = full.clone();
        evil[FRAME_HEADER_LEN + 2] ^= 0xff;
        fs::write(&path, &evil).unwrap();
        let err = read_wal(&path).unwrap_err();
        assert_eq!(err.kind, ServeErrorKind::Corrupt);
        assert_eq!(err.exit_code(), 4);
        let msg = err.to_string();
        assert!(msg.contains("at byte 0"), "no offset in: {msg}");
        assert!(msg.contains("frame tag 1"), "no tag in: {msg}");
        // Unknown tag: also corruption, also located by offset.
        let mut unk = full;
        unk[0] = 9;
        fs::write(&path, &unk).unwrap();
        // checksum still matches payload, so the tag check fires
        let err = read_wal(&path).unwrap_err();
        assert_eq!(err.kind, ServeErrorKind::Corrupt);
        let msg = err.to_string();
        assert!(msg.contains("unknown frame tag 9"), "no tag in: {msg}");
        assert!(msg.contains("at byte 0"), "no offset in: {msg}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_wal_reads_as_empty() {
        let dir = tmp_dir("missing");
        assert!(read_wal(&dir.join(WAL_FILE)).unwrap().is_empty());
        assert!(read_snapshot(&dir).unwrap().is_none());
        assert!(read_dead_letters(&dir).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_round_trips_and_rejects_wrong_version() {
        let dir = tmp_dir("snap");
        let instance = epplan_datagen::paper_example();
        let plan = Plan::for_instance(&instance);
        let mut overload = OverloadState::default();
        overload.absorb(&OutcomeMeta::plain(42, OutcomeMode::Resolve));
        let snap = Snapshot {
            version: FORMAT_VERSION,
            last_op_id: 42,
            drift: 7,
            overload: overload.clone(),
            instance,
            plan,
        };
        write_snapshot(&dir, &snap).unwrap();
        let back = read_snapshot(&dir).unwrap().unwrap();
        assert_eq!(back.last_op_id, 42);
        assert_eq!(back.drift, 7);
        assert_eq!(back.overload, overload);
        // Temp file must not linger after the rename.
        assert!(!dir.join(SNAPSHOT_TMP_FILE).exists());

        let wrong = Snapshot {
            version: FORMAT_VERSION + 1,
            ..snap
        };
        write_snapshot(&dir, &wrong).unwrap();
        let err = read_snapshot(&dir).unwrap_err();
        assert_eq!(err.kind, ServeErrorKind::Corrupt);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dead_letter_log_round_trips_and_survives_appends() {
        let dir = tmp_dir("deadletter");
        let ops = sample_ops();
        let first = DeadLetterRec {
            id: 1,
            attempts: 3,
            op: ops[0].clone(),
        };
        let second = DeadLetterRec {
            id: 2,
            attempts: 5,
            op: ops[1].clone(),
        };
        append_dead_letter(&dir, &first).unwrap();
        append_dead_letter(&dir, &second).unwrap();
        let back = read_dead_letters(&dir).unwrap();
        assert_eq!(back, vec![first, second]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_faults_surface_as_io_errors() {
        let dir = tmp_dir("fault");
        let path = dir.join(WAL_FILE);
        let mut w = WalWriter::create(&path).unwrap();
        epplan_fault::install(
            epplan_fault::FaultPlan::single(
                "serve.wal.append",
                epplan_fault::FaultAction::TypedError,
            )
            .unwrap(),
        );
        let err = w.append_op(&sample_ops()[0]).unwrap_err();
        epplan_fault::clear();
        assert_eq!(err.kind, ServeErrorKind::Io);
        assert_eq!(err.exit_code(), 3);

        let instance = epplan_datagen::paper_example();
        let plan = Plan::for_instance(&instance);
        let snap = Snapshot {
            version: FORMAT_VERSION,
            last_op_id: 0,
            drift: 0,
            overload: OverloadState::default(),
            instance,
            plan,
        };
        epplan_fault::install(
            epplan_fault::FaultPlan::single(
                "serve.snapshot.write",
                epplan_fault::FaultAction::TypedError,
            )
            .unwrap(),
        );
        let err = write_snapshot(&dir, &snap).unwrap_err();
        epplan_fault::clear();
        assert_eq!(err.kind, ServeErrorKind::Io);
        // The failed attempt must not have disturbed the directory.
        assert!(!dir.join(SNAPSHOT_FILE).exists());
        assert!(!dir.join(SNAPSHOT_TMP_FILE).exists());

        // The dead-letter fault site blocks the append before any
        // write, so the log file is never even created.
        epplan_fault::install(
            epplan_fault::FaultPlan::single(
                "serve.deadletter.append",
                epplan_fault::FaultAction::TypedError,
            )
            .unwrap(),
        );
        let rec = DeadLetterRec {
            id: 9,
            attempts: 2,
            op: sample_ops()[0].clone(),
        };
        let err = append_dead_letter(&dir, &rec).unwrap_err();
        epplan_fault::clear();
        assert_eq!(err.kind, ServeErrorKind::Io);
        assert!(!dir.join(DEAD_LETTER_FILE).exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
