//! The `epplan serve` wire protocol: newline-delimited JSON.
//!
//! Requests are [`SequencedOp`] values, one JSON object per line:
//!
//! ```text
//! {"id": 17, "op": {"op": "eta_decrease", "event": 3, "new_upper": 40}}
//! ```
//!
//! Each op produces exactly one [`OpResponse`] line on the output
//! stream, flushed before the next op is read — a client that has
//! seen the response for op `k` knows `k` is durably logged and the
//! visible plan is certified. The stream ends with one
//! [`ServeSummary`] line.

use epplan_core::incremental::SequencedOp;
use serde::Serialize;

use crate::ServeError;

/// Parses one request line into a [`SequencedOp`]. Blank lines are
/// the caller's concern (skip them); malformed JSON is a protocol
/// corruption error (exit code 4).
pub fn parse_op_line(line: &str) -> Result<SequencedOp, ServeError> {
    serde_json::from_str(line)
        .map_err(|e| ServeError::corrupt(format!("malformed op line {line:?}: {e}")))
}

/// Per-op acknowledgement, serialized as one JSON line.
#[derive(Debug, Clone, Serialize)]
pub struct OpResponse {
    /// Id of the op this responds to.
    pub id: u64,
    /// `"applied"` (IEP repair), `"resolved"` (full re-solve swapped
    /// in), `"rejected"` (previous plan retained), `"skipped"`
    /// (duplicate id at or below the cursor), or `"shed"` (admission
    /// control dropped the op unexecuted — it exceeded its
    /// ops-denominated staleness deadline).
    pub status: String,
    /// `dif` between the pre-op and post-op plan (0 when rejected or
    /// skipped).
    pub dif: u64,
    /// Accumulated `dif` since the last full solve, after this op.
    pub drift: u64,
    /// Global utility `U_P` of the (certified) visible plan.
    pub utility: f64,
    /// Budget-escalation retries consumed by this op.
    pub retries: u32,
    /// Failure detail when `status` is `"rejected"`, or the repair
    /// failure that forced a `"resolved"` fallback.
    pub error: Option<String>,
    /// `true` while the windowed p99 latency exceeds the configured
    /// `--slo-p99-us` target (always `false` when no SLO is set).
    pub slo_burning: bool,
}

/// End-of-stream summary, serialized as the final JSON line.
#[derive(Debug, Clone, Serialize)]
pub struct ServeSummary {
    /// Ops read from the stream (including skipped duplicates).
    pub ops: u64,
    /// Ops repaired incrementally.
    pub applied: u64,
    /// Ops that ended in a certified full re-solve.
    pub resolved: u64,
    /// Ops rejected with a typed error.
    pub rejected: u64,
    /// Duplicate ids skipped.
    pub skipped: u64,
    /// Total budget-escalation retries.
    pub retries: u64,
    /// Full re-solves performed (fallback + drift-triggered).
    pub resolves: u64,
    /// Snapshots written.
    pub snapshots: u64,
    /// Final accumulated drift.
    pub drift: u64,
    /// Final plan utility.
    pub utility: f64,
    /// Whether the final plan re-certified (it always must).
    pub certified: bool,
    /// Wall-clock seconds spent processing ops.
    pub wall_s: f64,
    /// Throughput over the whole stream.
    pub ops_per_sec: f64,
    /// Median per-op latency, microseconds (whole stream, exact
    /// order statistic via the shared estimator).
    pub p50_us: u64,
    /// 95th-percentile per-op latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile per-op latency, microseconds.
    pub p99_us: u64,
    /// Windowed (recent) median latency at stream end.
    pub window_p50_us: u64,
    /// Windowed 95th-percentile latency at stream end.
    pub window_p95_us: u64,
    /// Windowed 99th-percentile latency at stream end.
    pub window_p99_us: u64,
    /// Ops processed while the windowed p99 exceeded the SLO target
    /// (0 when no `--slo-p99-us` is set).
    pub slo_burning_ops: u64,
    /// Ops shed by admission control (`--op-deadline-ops`).
    pub shed: u64,
    /// Poison ops quarantined to the dead-letter log
    /// (`--quarantine-after`).
    pub quarantined: u64,
    /// Brownout ladder transitions this session (both directions).
    pub brownout_steps: u64,
}
