//! The serving daemon: certified plan state + the per-op processing
//! ladder (repair → retry with doubled budget → full re-solve →
//! typed rejection), WAL/snapshot durability, crash recovery, and
//! the overload-management layer (admission control, the brownout
//! ladder, poison-op quarantine — see [`crate::overload`]).
//!
//! ## Invariant
//!
//! The *visible* plan — the one a caller observes via
//! [`Daemon::plan`] or any [`OpResponse`] — is certified at all
//! times. State transitions happen only after
//! [`certify_incremental`]/[`certify`] confirms zero hard violations;
//! a failed repair or re-solve leaves the previous certified plan in
//! place and rejects the op with a typed error.
//!
//! ## Wall-clock use
//!
//! This module reads `Instant` for two purposes only: per-op latency
//! histograms and throughput reporting. No *planning decision* except
//! explicit wall-clock budgets (`time_limit`) depends on it, and the
//! outcome of every budget race is recorded in the WAL as an
//! [`OutcomeMode`], which is what replay follows — so recovery is
//! deterministic even when the original run raced a deadline.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use epplan_core::certify::{certify, certify_incremental};
use epplan_core::incremental::{IncrementalOutcome, IncrementalPlanner, SequencedOp};
use epplan_core::model::Instance;
use epplan_core::plan::{dif, Plan};
use epplan_core::solver::{GapBasedSolver, GepcSolver, LnsSolver};
use epplan_obs::{HistogramSnapshot, WindowConfig, WindowedHistogram};
use epplan_solve::{Certificate, FailureKind, SolveBudget, SolveError};

use crate::overload::{self, OverloadConfig, OverloadState};
use crate::proto::{OpResponse, ServeSummary};
use crate::wal::{
    self, OutcomeMeta, OutcomeMode, Snapshot, WalRecord, WalWriter, FORMAT_VERSION,
};
use crate::ServeError;

const STAGE: &str = "serve.daemon";

/// Serving knobs. Budgets use plain [`SolveBudget`]; for *provably*
/// convergent crash recovery prefer iteration caps (or no limit) over
/// wall-clock limits — time-based budgets still recover correctly
/// (outcome modes are recorded), but identical re-runs from scratch
/// are only guaranteed when budget decisions are clock-free.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Budget for one incremental repair attempt (before escalation).
    pub op_budget: SolveBudget,
    /// Budget for a full re-solve (fallback and drift-triggered).
    pub resolve_budget: SolveBudget,
    /// Budget-doubling retries after a retryable exhaustion.
    pub max_retries: u32,
    /// Accumulated `dif` that triggers a certified full re-solve.
    /// `None` disables drift-triggered re-solves.
    pub drift_threshold: Option<u64>,
    /// Snapshot after every this many processed ops. `None` keeps
    /// only the initial snapshot (WAL grows unboundedly).
    pub snapshot_every: Option<u64>,
    /// Test hook: `abort()` the process after fully processing this
    /// many ops — a deterministic stand-in for `SIGKILL`.
    pub crash_after_ops: Option<u64>,
    /// SLO target for the *windowed* p99 op latency, microseconds.
    /// While the windowed p99 exceeds this, the daemon counts burn
    /// (`serve.slo.burning_ops`) and flags per-op acks. `None`
    /// disables SLO accounting.
    pub slo_p99_us: Option<u64>,
    /// Approximate number of recent ops the latency window covers
    /// (ring of 8 count-rotated slots; see `epplan_obs::window`).
    pub slo_window_ops: u64,
    /// Overload knobs: admission deadline, brownout ladder,
    /// quarantine threshold. All-`None` (the default) disables the
    /// overload layer entirely.
    pub overload: OverloadConfig,
    /// Test hook: `abort()` *inside* the processing of this op id —
    /// after its op record is durable but before any outcome. Models
    /// an op that reproducibly wedges the repair path.
    pub crash_in_op: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            op_budget: SolveBudget::UNLIMITED,
            resolve_budget: SolveBudget::UNLIMITED,
            max_retries: 3,
            drift_threshold: None,
            snapshot_every: Some(1000),
            crash_after_ops: None,
            slo_p99_us: None,
            slo_window_ops: 1024,
            overload: OverloadConfig::default(),
            crash_in_op: None,
        }
    }
}

/// Monotonic per-session counters, exposed for benchmarks and tests.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Ops repaired incrementally (status `applied`).
    pub applied: u64,
    /// Ops that ended in a certified full re-solve (status `resolved`).
    pub resolved: u64,
    /// Ops rejected with a typed error.
    pub rejected: u64,
    /// Duplicate ids skipped.
    pub skipped: u64,
    /// Budget-escalation retries across all ops.
    pub retries: u64,
    /// Full re-solves (fallback + drift-triggered).
    pub resolves: u64,
    /// Snapshots written (including the initial one).
    pub snapshots: u64,
    /// Ops processed while the windowed p99 exceeded the SLO target.
    pub slo_burning_ops: u64,
    /// Ops shed by admission control (status `shed`).
    pub shed: u64,
    /// Poison ops quarantined to the dead-letter log.
    pub quarantined: u64,
    /// Brownout ladder transitions (up and down both count).
    pub brownout_steps: u64,
    /// Per-op latencies in microseconds, insertion order.
    pub latencies_us: Vec<u64>,
}

/// `base` doubled `attempt` times (both limits), saturating.
fn escalated(base: SolveBudget, attempt: u32) -> SolveBudget {
    if attempt == 0 {
        return base;
    }
    let factor = 1u64 << attempt.min(16);
    SolveBudget {
        time_limit: base.time_limit.map(|t| t.saturating_mul(factor as u32)),
        max_iterations: base.max_iterations.map(|c| c.saturating_mul(factor)),
    }
}

/// A long-lived, crash-recoverable incremental planning session.
#[derive(Debug)]
pub struct Daemon {
    instance: Instance,
    plan: Plan,
    utility: f64,
    /// Highest op id folded into the visible plan.
    last_op_id: u64,
    /// Accumulated `dif` since the last full solve.
    drift: u64,
    /// Non-skipped ops processed this session (drives snapshots and
    /// the crash hook, *not* recovery — that uses `last_op_id`).
    processed: u64,
    wal: Option<WalWriter>,
    state_dir: Option<PathBuf>,
    config: ServeConfig,
    stats: ServeStats,
    started: Instant,
    /// Sliding window over recent per-op latencies (serial, count-
    /// rotated — see the determinism note on `epplan_obs::window`).
    window: WindowedHistogram,
    /// Whether the windowed p99 currently exceeds the SLO target.
    slo_burning: bool,
    /// `last_op_id` at the most recent snapshot (0 before any).
    snapshot_op: u64,
    /// Overload-controller state: a pure fold over the outcome
    /// records absorbed so far (see `crate::overload`).
    overload: OverloadState,
}

/// Stable name of the per-op latency histogram. Both constants are
/// symbol-resolved against the `epplan-lint` stable-name registries
/// (`obs/stable-names`), so a drifting rename fails the lint gate.
const OP_LATENCY_HIST: &str = "serve.op_latency_us";
/// Stable name of the sliding latency window over recent ops.
const OP_LATENCY_WINDOW: &str = "serve.window.op_latency_us";

/// The daemon's latency window, keyed by the registered stable name.
fn latency_window(config: &ServeConfig) -> WindowedHistogram {
    epplan_obs::window(
        OP_LATENCY_WINDOW,
        WindowConfig::covering(config.slo_window_ops.max(1)),
    )
}

impl Daemon {
    /// Solves `instance` from scratch, certifies, writes the initial
    /// snapshot (id 0) and a fresh WAL when `state_dir` is given.
    pub fn start(
        instance: Instance,
        config: ServeConfig,
        state_dir: Option<&Path>,
    ) -> Result<Daemon, ServeError> {
        let (plan, utility) = Self::full_solve(&instance, config.resolve_budget, false)?;
        let window = latency_window(&config);
        let mut daemon = Daemon {
            instance,
            plan,
            utility,
            last_op_id: 0,
            drift: 0,
            processed: 0,
            wal: None,
            state_dir: state_dir.map(Path::to_path_buf),
            config,
            stats: ServeStats::default(),
            started: Instant::now(),
            window,
            slo_burning: false,
            snapshot_op: 0,
            overload: OverloadState::default(),
        };
        if let Some(dir) = daemon.state_dir.clone() {
            fs::create_dir_all(&dir).map_err(|e| {
                ServeError::io(format!("creating state dir {}: {e}", dir.display()))
            })?;
            daemon.write_snapshot()?; // also creates the fresh WAL
        }
        // Warm the candidate-list cache so the first op's repair pays
        // the O(candidates) build here, not inside its latency budget.
        let _ = daemon.instance.candidates();
        daemon.publish_gauges();
        Ok(daemon)
    }

    /// Recovers a session from `state_dir`: loads the snapshot,
    /// re-certifies it (disk is never trusted), replays the WAL
    /// suffix honoring recorded [`OutcomeMeta`]s, and finishes a
    /// torn tail op (logged but never completed) live — or, when the
    /// tail op has already died `--quarantine-after` times,
    /// quarantines it to the dead-letter log instead.
    pub fn restore(config: ServeConfig, state_dir: &Path) -> Result<Daemon, ServeError> {
        let mut sp = epplan_obs::span("serve.restore");
        sp.add_iters(1);
        let snap = wal::read_snapshot(state_dir)?.ok_or_else(|| {
            ServeError::corrupt(format!("no snapshot in {}", state_dir.display()))
        })?;
        let utility = snap.plan.total_utility(&snap.instance);
        let window = latency_window(&config);
        let snapshot_op = snap.last_op_id;
        let mut daemon = Daemon {
            instance: snap.instance,
            plan: snap.plan,
            utility,
            last_op_id: snap.last_op_id,
            drift: snap.drift,
            processed: 0,
            wal: None,
            state_dir: Some(state_dir.to_path_buf()),
            config,
            stats: ServeStats::default(),
            started: Instant::now(),
            window,
            slo_burning: false,
            snapshot_op,
            overload: snap.overload,
        };
        let cert = certify(&daemon.instance, &daemon.plan);
        if !cert.hard_ok() {
            return Err(ServeError::corrupt(format!(
                "restored snapshot failed certification: {cert}"
            )));
        }
        // Warm the candidate-list cache before the WAL replay: replayed
        // ops repair through the same sparse paths as live ones.
        let _ = daemon.instance.candidates();
        let records = wal::read_wal(&state_dir.join(wal::WAL_FILE))?;
        // (op, outcome, attempts). Consecutive op records with the
        // same id and no outcome in between are *attempt markers*:
        // each one is a session that durably logged the op and then
        // died executing it, so `attempts` counts how often this op
        // has already killed the daemon.
        let mut pending: Vec<(SequencedOp, Option<OutcomeMeta>, u32)> = Vec::new();
        for rec in records {
            match rec {
                WalRecord::Op(sop) => match pending.last_mut() {
                    Some(last) if last.1.is_none() && last.0.id == sop.id => {
                        last.2 = last.2.saturating_add(1);
                    }
                    _ => pending.push((sop, None, 1)),
                },
                WalRecord::Outcome(meta) => match pending.last_mut() {
                    Some(last) if last.0.id == meta.id && last.1.is_none() => {
                        last.1 = Some(meta);
                    }
                    _ => {
                        return Err(ServeError::corrupt(format!(
                            "WAL outcome for op {} does not follow its op record",
                            meta.id
                        )));
                    }
                },
            }
        }
        // Only the final record may lack an outcome (crash mid-op).
        let n_pending = pending.len();
        let mut tail: Option<(SequencedOp, u32)> = None;
        for (i, (sop, meta, attempts)) in pending.into_iter().enumerate() {
            if sop.id <= daemon.last_op_id {
                continue; // already folded into the snapshot
            }
            match meta {
                Some(m) => daemon.replay(&sop, &m)?,
                None if i + 1 == n_pending => tail = Some((sop, attempts)),
                None => {
                    return Err(ServeError::corrupt(format!(
                        "WAL op {} has no outcome but is not the final record",
                        sop.id
                    )));
                }
            }
        }
        daemon.wal = Some(WalWriter::open_append(&state_dir.join(wal::WAL_FILE))?);
        if let Some((sop, attempts)) = tail {
            let poisoned = daemon
                .config
                .overload
                .quarantine_after
                .is_some_and(|q| attempts >= q);
            if poisoned {
                daemon.quarantine(&sop, attempts)?;
            } else {
                // Durably logged, never completed: try again live.
                // A fresh op record goes in first, so if this attempt
                // also dies the next restore sees one more marker.
                if let Some(w) = daemon.wal.as_mut() {
                    w.append_op(&sop)?;
                }
                if daemon.config.crash_in_op == Some(sop.id) {
                    std::process::abort();
                }
                daemon.run_admitted(&sop, Instant::now())?;
            }
        }
        daemon.publish_gauges();
        Ok(daemon)
    }

    /// Processes one op end to end: duplicate check, admission
    /// control, WAL append, the repair/re-solve ladder, outcome
    /// record, periodic snapshot. Returns the response to acknowledge
    /// to the client; a returned error (WAL/snapshot I/O) is fatal to
    /// the session — the plan state is still certified, but
    /// durability is gone.
    pub fn process(&mut self, sop: &SequencedOp) -> Result<OpResponse, ServeError> {
        let t0 = Instant::now();
        let mut sp = epplan_obs::span("serve.op");
        sp.add_iters(1);
        epplan_obs::counter_add("serve.ops", 1);
        if sop.id <= self.last_op_id {
            self.stats.skipped += 1;
            epplan_obs::counter_add("serve.ops_skipped", 1);
            return Ok(self.response(sop.id, "skipped", 0, 0, None));
        }
        if self.admission_sheds(sop.id) {
            return self.shed(sop);
        }
        if let Some(w) = self.wal.as_mut() {
            w.append_op(sop)?;
        }
        if self.config.crash_in_op == Some(sop.id) {
            // Deterministic poison op: dies after its op record is
            // durable but before any outcome — exactly the shape the
            // quarantine attempt counter is built to recognize.
            std::process::abort();
        }
        self.run_admitted(sop, t0)
    }

    /// Whether admission control sheds op `id`: its queueing delay
    /// (work clock minus id, both ops-denominated — no wall clock)
    /// exceeds the configured staleness bound. Fault site
    /// `serve.admission.decide` models a failed decision; it fails
    /// closed (shed), because shedding is always safe and executing a
    /// stale op is not.
    fn admission_sheds(&self, id: u64) -> bool {
        let Some(deadline) = self.config.overload.op_deadline_ops else {
            return false;
        };
        if epplan_fault::point("serve.admission.decide").is_some() {
            return true;
        }
        self.overload.staleness(id) > deadline
    }

    /// Sheds one op: the `Shed` outcome is durable *before* the
    /// decision is acted on, so `--restore` retraces it bit-
    /// identically instead of re-deciding admission.
    fn shed(&mut self, sop: &SequencedOp) -> Result<OpResponse, ServeError> {
        let stale = self.overload.staleness(sop.id);
        let meta = OutcomeMeta {
            level: self.overload.level,
            ..OutcomeMeta::plain(sop.id, OutcomeMode::Shed)
        };
        if let Some(w) = self.wal.as_mut() {
            w.append_op(sop)?;
            w.append_outcome(&meta)?;
        }
        self.overload.absorb(&meta);
        self.last_op_id = sop.id;
        self.stats.shed += 1;
        epplan_obs::counter_add("serve.ops_shed", 1);
        self.processed += 1;
        if let Some(every) = self.config.snapshot_every {
            if every > 0 && self.processed.is_multiple_of(every) {
                self.write_snapshot()?;
            }
        }
        let resp = self.response(
            sop.id,
            "shed",
            0,
            0,
            Some(format!(
                "admission: stale by {stale} ops (deadline {} ops)",
                self.config.overload.op_deadline_ops.unwrap_or(0)
            )),
        );
        if let Some(n) = self.config.crash_after_ops {
            if self.processed >= n {
                std::process::abort();
            }
        }
        Ok(resp)
    }

    /// Everything after an op is admitted and durably logged: the
    /// execute ladder, latency/SLO accounting, the brownout decision,
    /// the outcome record, the controller fold, and the periodic
    /// snapshot. Shared verbatim by [`Daemon::process`] and the
    /// torn-tail re-attempt in [`Daemon::restore`], so both paths
    /// record (and therefore replay) identically.
    fn run_admitted(&mut self, sop: &SequencedOp, t0: Instant) -> Result<OpResponse, ServeError> {
        let (mode, rsfail, mut resp) = self.execute(sop);
        let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.stats.latencies_us.push(us);
        epplan_obs::observe(OP_LATENCY_HIST, us);
        self.window.observe(us);
        self.update_slo();
        let burn = self.slo_burning;
        let level = self.decide_brownout(burn);
        let meta = OutcomeMeta {
            id: sop.id,
            mode,
            retries: resp.retries,
            burn,
            level,
            rsfail,
        };
        if let Some(w) = self.wal.as_mut() {
            w.append_outcome(&meta)?;
        }
        self.overload.absorb(&meta);
        self.publish_gauges();
        self.processed += 1;
        if let Some(every) = self.config.snapshot_every {
            if every > 0 && self.processed.is_multiple_of(every) {
                self.write_snapshot()?;
            }
        }
        resp.slo_burning = self.slo_burning;
        if let Some(n) = self.config.crash_after_ops {
            if self.processed >= n {
                // Deterministic SIGKILL stand-in: no unwinding, no
                // flushes beyond what already happened.
                std::process::abort();
            }
        }
        Ok(resp)
    }

    /// The brownout level to record for the op that just executed.
    /// Streak accounting is prospective (see
    /// [`OverloadState::decide_level`]); fault site
    /// `serve.brownout.step` suppresses a pending transition — the
    /// *recorded* level is what keeps live state and replay agreeing
    /// even then.
    fn decide_brownout(&mut self, burn: bool) -> u8 {
        let Some(knobs) = self.config.overload.brownout else {
            return self.overload.level;
        };
        let next = self.overload.decide_level(burn, &knobs);
        if next == self.overload.level {
            return next;
        }
        if epplan_fault::point("serve.brownout.step").is_some() {
            return self.overload.level;
        }
        self.stats.brownout_steps += 1;
        epplan_obs::counter_add("serve.brownout.steps", 1);
        next
    }

    /// Quarantines the poison op `sop` during restore: the dead-
    /// letter record goes to `dead_letter.log` first (never lose an
    /// exported op), then the `Quarantine` outcome makes the skip
    /// durable in the WAL. A crash between the two appends can
    /// duplicate the dead-letter record — benign — but can never skip
    /// an op without exporting it.
    fn quarantine(&mut self, sop: &SequencedOp, attempts: u32) -> Result<(), ServeError> {
        let Some(dir) = self.state_dir.clone() else {
            return Err(ServeError::io(
                "quarantine requires a state directory".to_string(),
            ));
        };
        let rec = wal::DeadLetterRec {
            id: sop.id,
            attempts,
            op: sop.clone(),
        };
        wal::append_dead_letter(&dir, &rec)?;
        let meta = OutcomeMeta {
            level: self.overload.level,
            ..OutcomeMeta::plain(sop.id, OutcomeMode::Quarantine)
        };
        if let Some(w) = self.wal.as_mut() {
            w.append_outcome(&meta)?;
        }
        self.overload.absorb(&meta);
        self.last_op_id = sop.id;
        self.stats.quarantined += 1;
        epplan_obs::counter_add("serve.ops_quarantined", 1);
        Ok(())
    }

    /// The per-op ladder. Infallible by construction: every branch
    /// ends in a certified state or an explicit rejection that keeps
    /// the previous certified plan. The middle `bool` is the `rsfail`
    /// flag: a drift-triggered re-solve was attempted and failed (the
    /// outcome stays `Repair`, but backoff must advance).
    fn execute(&mut self, sop: &SequencedOp) -> (OutcomeMode, bool, OpResponse) {
        let op = &sop.op;
        let mut retries = 0u32;
        let repair_failure: String;
        // Brownout level ≥ 1: repair budgets are halved before
        // escalation. The level is part of the controller state, so
        // replay (which re-runs this ladder only via the recorded
        // modes) never needs to re-derive the shrink.
        let repair_budget = overload::shrink_budget(self.config.op_budget, self.overload.level);
        loop {
            let attempt: Result<IncrementalOutcome, SolveError> =
                match epplan_fault::point("serve.op.ingest") {
                    Some(action) => {
                        Err(SolveError::from_fault(STAGE, "serve.op.ingest", action))
                    }
                    None => IncrementalPlanner
                        .try_apply_budgeted(
                            &self.instance,
                            &self.plan,
                            op,
                            escalated(repair_budget, retries),
                        )
                        .map_err(SolveError::discard_partial),
                };
            match attempt {
                Ok(out) => {
                    let cert = certify_incremental(&out.instance, &self.plan, &out.plan);
                    if cert.hard_ok() {
                        let op_dif = out.dif as u64;
                        self.instance = out.instance;
                        self.plan = out.plan;
                        self.utility = out.utility;
                        self.drift += op_dif;
                        self.last_op_id = sop.id;
                        // Drift-triggered background re-solve, gated
                        // by the ops-denominated backoff from earlier
                        // failures (exponential in op ids, no clock).
                        let mut rsfail = false;
                        if self.drift_exceeded() && self.overload.backoff_clear(sop.id) {
                            match self.resolve_in_place() {
                                Ok(()) => {
                                    self.stats.resolved += 1;
                                    epplan_obs::counter_add("serve.ops_resolved", 1);
                                    self.publish_gauges();
                                    return (
                                        OutcomeMode::RepairResolve,
                                        false,
                                        self.response(sop.id, "resolved", op_dif, retries, None),
                                    );
                                }
                                Err(_) => rsfail = true,
                            }
                        }
                        self.stats.applied += 1;
                        epplan_obs::counter_add("serve.ops_applied", 1);
                        self.publish_gauges();
                        return (
                            OutcomeMode::Repair,
                            rsfail,
                            self.response(sop.id, "applied", op_dif, retries, None),
                        );
                    }
                    repair_failure =
                        format!("repair rejected by certification: {cert}");
                    break;
                }
                Err(e) => {
                    if e.kind == FailureKind::BadInput {
                        // Malformed op: no amount of re-solving helps.
                        // Advance the cursor, keep the certified plan.
                        self.last_op_id = sop.id;
                        self.stats.rejected += 1;
                        epplan_obs::counter_add("serve.ops_rejected", 1);
                        return (
                            OutcomeMode::Reject,
                            false,
                            self.response(sop.id, "rejected", 0, retries, Some(e.to_string())),
                        );
                    }
                    if e.is_retryable() && retries < self.config.max_retries {
                        retries += 1;
                        self.stats.retries += 1;
                        epplan_obs::counter_add("serve.retries", 1);
                        continue;
                    }
                    repair_failure = e.to_string();
                    break;
                }
            }
        }
        // Graceful degradation: rebuild the plan from scratch on the
        // post-op instance; swap in only if it certifies.
        let next = IncrementalPlanner::apply_to_instance(&self.instance, op);
        let degraded = self.overload.level >= 2;
        match Self::full_solve(&next, self.config.resolve_budget, degraded) {
            Ok((new_plan, utility)) => {
                let op_dif = dif(&self.plan, &new_plan) as u64;
                self.instance = next;
                self.plan = new_plan;
                self.utility = utility;
                self.drift = 0;
                self.last_op_id = sop.id;
                self.stats.resolved += 1;
                self.stats.resolves += 1;
                epplan_obs::counter_add("serve.ops_resolved", 1);
                epplan_obs::counter_add("serve.resolves", 1);
                self.publish_gauges();
                (
                    OutcomeMode::Resolve,
                    false,
                    self.response(sop.id, "resolved", op_dif, retries, Some(repair_failure)),
                )
            }
            Err(resolve_failure) => {
                self.last_op_id = sop.id;
                self.stats.rejected += 1;
                epplan_obs::counter_add("serve.ops_rejected", 1);
                (
                    OutcomeMode::Reject,
                    false,
                    self.response(
                        sop.id,
                        "rejected",
                        0,
                        retries,
                        Some(format!(
                            "repair failed ({repair_failure}); re-solve failed ({resolve_failure})"
                        )),
                    ),
                )
            }
        }
    }

    /// Re-applies one WAL record during recovery, following the
    /// recorded decision instead of re-deciding (budget escalation
    /// and drift triggers are not re-derivable after a crash).
    fn replay(&mut self, sop: &SequencedOp, meta: &OutcomeMeta) -> Result<(), ServeError> {
        match meta.mode {
            OutcomeMode::Repair => self.replay_repair(sop)?,
            OutcomeMode::RepairResolve => {
                self.replay_repair(sop)?;
                // Uses the pre-op brownout level for solver choice,
                // exactly like the live run did (absorb comes after).
                self.resolve_in_place()?;
            }
            OutcomeMode::Resolve => {
                self.instance = IncrementalPlanner::apply_to_instance(&self.instance, &sop.op);
                self.last_op_id = sop.id;
                self.resolve_in_place()?;
            }
            OutcomeMode::Reject | OutcomeMode::Shed | OutcomeMode::Quarantine => {
                self.last_op_id = sop.id;
            }
        }
        // The controller fold is driven by the recorded fields — the
        // same absorb the live run applied after writing the record.
        self.overload.absorb(meta);
        Ok(())
    }

    fn replay_repair(&mut self, sop: &SequencedOp) -> Result<(), ServeError> {
        let out = IncrementalPlanner
            .try_apply(&self.instance, &self.plan, &sop.op)
            .map_err(|e| {
                ServeError::solve(
                    e.kind,
                    format!("replaying op {}: {}", sop.id, e.message),
                )
            })?;
        self.drift += out.dif as u64;
        self.instance = out.instance;
        self.plan = out.plan;
        self.utility = out.utility;
        self.last_op_id = sop.id;
        Ok(())
    }

    /// Full re-solve of the *current* instance; the result replaces
    /// the plan only on success (and it is certified by
    /// [`Daemon::full_solve`]). Resets drift.
    fn resolve_in_place(&mut self) -> Result<(), ServeError> {
        let degraded = self.overload.level >= 2;
        let (plan, utility) =
            Self::full_solve(&self.instance, self.config.resolve_budget, degraded)?;
        self.plan = plan;
        self.utility = utility;
        self.drift = 0;
        self.stats.resolves += 1;
        epplan_obs::counter_add("serve.resolves", 1);
        Ok(())
    }

    /// Solves `instance` from scratch and certifies the result.
    /// Degrades to the solver's partial (fallback) plan when one
    /// exists, but *never* returns an uncertified plan. At brownout
    /// level ≥ 2 (`degraded`), the gap-based pipeline is swapped for
    /// budgeted LNS with the final `LocalSearch` polish skipped —
    /// cheaper, still certified.
    fn full_solve(
        instance: &Instance,
        budget: SolveBudget,
        degraded: bool,
    ) -> Result<(Plan, f64), ServeError> {
        let mut sp = epplan_obs::span("serve.resolve");
        sp.add_iters(1);
        let attempt = if degraded {
            let solver = LnsSolver {
                polish: false,
                ..LnsSolver::seeded(0)
            };
            solver.solve_budgeted(instance, budget)
        } else {
            GapBasedSolver::default()
                .with_certify(false)
                .try_solve(instance, budget)
        };
        let solution = match attempt {
            Ok(s) => s,
            Err(e) => match e.partial {
                Some(best_effort) => best_effort,
                None => {
                    return Err(ServeError::solve(
                        e.kind,
                        format!("full solve failed: {}", e.message),
                    ));
                }
            },
        };
        let cert = certify(instance, &solution.plan);
        if !cert.hard_ok() {
            return Err(ServeError::solve(
                FailureKind::Infeasible,
                format!("full solve produced an uncertifiable plan: {cert}"),
            ));
        }
        Ok((solution.plan, cert.utility))
    }

    fn drift_exceeded(&self) -> bool {
        overload::effective_drift_threshold(self.config.drift_threshold, self.overload.level)
            .is_some_and(|t| self.drift >= t)
    }

    /// Snapshots current state atomically, then truncates the WAL
    /// (the snapshot supersedes it). Called at start and every
    /// `snapshot_every` ops.
    fn write_snapshot(&mut self) -> Result<(), ServeError> {
        let Some(dir) = self.state_dir.clone() else {
            return Ok(());
        };
        let mut sp = epplan_obs::span("serve.snapshot");
        sp.add_iters(1);
        if let Some(w) = self.wal.as_mut() {
            w.sync()?;
        }
        let snap = Snapshot {
            version: FORMAT_VERSION,
            last_op_id: self.last_op_id,
            drift: self.drift,
            overload: self.overload.clone(),
            instance: self.instance.clone(),
            plan: self.plan.clone(),
        };
        wal::write_snapshot(&dir, &snap)?;
        // A crash between the rename above and the truncate below is
        // benign: replay skips ops at or below snap.last_op_id.
        self.wal = Some(WalWriter::create(&dir.join(wal::WAL_FILE))?);
        self.snapshot_op = self.last_op_id;
        self.stats.snapshots += 1;
        epplan_obs::counter_add("serve.snapshots", 1);
        Ok(())
    }

    fn publish_gauges(&self) {
        epplan_obs::gauge_set("serve.drift", self.drift as f64);
        epplan_obs::gauge_set("serve.utility", self.utility);
        epplan_obs::gauge_set("serve.brownout.level", f64::from(self.overload.level));
    }

    /// Recomputes windowed quantiles after each op, publishes them as
    /// gauges (when metrics are on), and tracks SLO burn. Telemetry
    /// only — never feeds back into planning decisions.
    fn update_slo(&mut self) {
        let publish = epplan_obs::metrics_enabled();
        if self.config.slo_p99_us.is_none() && !publish {
            return;
        }
        let p99 = self.window.quantile(0.99);
        if publish {
            epplan_obs::gauge_set("serve.window.p50_us", self.window.quantile(0.50) as f64);
            epplan_obs::gauge_set("serve.window.p95_us", self.window.quantile(0.95) as f64);
            epplan_obs::gauge_set("serve.window.p99_us", p99 as f64);
        }
        if let Some(target) = self.config.slo_p99_us {
            self.slo_burning = p99 > target;
            if self.slo_burning {
                self.stats.slo_burning_ops += 1;
                epplan_obs::counter_add("serve.slo.burning_ops", 1);
            }
            if publish {
                epplan_obs::gauge_set("serve.slo.target_us", target as f64);
                epplan_obs::gauge_set(
                    "serve.slo.burning",
                    if self.slo_burning { 1.0 } else { 0.0 },
                );
            }
        }
    }

    fn response(
        &self,
        id: u64,
        status: &str,
        op_dif: u64,
        retries: u32,
        error: Option<String>,
    ) -> OpResponse {
        OpResponse {
            id,
            status: status.to_string(),
            dif: op_dif,
            drift: self.drift,
            utility: self.utility,
            retries,
            error,
            slo_burning: self.slo_burning,
        }
    }

    /// End-of-stream summary (latency percentiles, throughput, and a
    /// final re-certification of the visible plan). Lifetime
    /// percentiles are exact order statistics; windowed ones come from
    /// the pow2 ring — both through the one shared estimator.
    pub fn summary(&self) -> ServeSummary {
        let exact = HistogramSnapshot::from_values(&self.stats.latencies_us);
        let ops = self.stats.applied + self.stats.resolved + self.stats.rejected
            + self.stats.skipped + self.stats.shed + self.stats.quarantined;
        let wall_s = self.started.elapsed().as_secs_f64();
        ServeSummary {
            ops,
            applied: self.stats.applied,
            resolved: self.stats.resolved,
            rejected: self.stats.rejected,
            skipped: self.stats.skipped,
            retries: self.stats.retries,
            resolves: self.stats.resolves,
            snapshots: self.stats.snapshots,
            drift: self.drift,
            utility: self.utility,
            certified: certify(&self.instance, &self.plan).hard_ok(),
            wall_s,
            ops_per_sec: if wall_s > 0.0 { ops as f64 / wall_s } else { 0.0 },
            p50_us: exact.quantile(0.50),
            p95_us: exact.quantile(0.95),
            p99_us: exact.quantile(0.99),
            window_p50_us: self.window.quantile(0.50),
            window_p95_us: self.window.quantile(0.95),
            window_p99_us: self.window.quantile(0.99),
            slo_burning_ops: self.stats.slo_burning_ops,
            shed: self.stats.shed,
            quarantined: self.stats.quarantined,
            brownout_steps: self.stats.brownout_steps,
        }
    }

    /// The certificate of the visible plan, with accumulated drift
    /// attached (rendered as `drift = N since full solve`).
    pub fn certificate(&self) -> Certificate {
        certify(&self.instance, &self.plan).with_drift(self.drift)
    }

    /// The current (always certified) plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The current instance (after all folded ops).
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Global utility of the visible plan.
    pub fn utility(&self) -> f64 {
        self.utility
    }

    /// Accumulated `dif` since the last full solve.
    pub fn drift(&self) -> u64 {
        self.drift
    }

    /// Highest op id folded into the visible plan.
    pub fn last_op_id(&self) -> u64 {
        self.last_op_id
    }

    /// Session counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Point-in-time copy of the sliding latency window (pow2
    /// buckets), for scrapes and tests.
    pub fn window_snapshot(&self) -> HistogramSnapshot {
        self.window.snapshot()
    }

    /// Windowed latency quantile via the shared estimator.
    pub fn window_quantile(&self, p: f64) -> u64 {
        self.window.quantile(p)
    }

    /// Observations currently retained in the latency window.
    pub fn window_len(&self) -> u64 {
        self.window.len()
    }

    /// `true` while the windowed p99 exceeds the configured SLO.
    pub fn slo_burning(&self) -> bool {
        self.slo_burning
    }

    /// `last_op_id` as of the most recent snapshot (0 before any).
    pub fn snapshot_op(&self) -> u64 {
        self.snapshot_op
    }

    /// The overload-controller state (work clock, brownout level,
    /// streaks, re-solve backoff) — a pure fold over recorded op
    /// outcomes, compared bit-for-bit in recovery tests.
    pub fn overload_state(&self) -> &OverloadState {
        &self.overload
    }

    /// Ops applied since the last snapshot — the WAL replay distance
    /// a crash right now would incur.
    pub fn wal_pending_ops(&self) -> u64 {
        self.last_op_id.saturating_sub(self.snapshot_op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epplan_core::incremental::AtomicOp;
    use epplan_core::model::EventId;
    use epplan_datagen::{generate, GeneratorConfig, OpStreamSampler};

    fn small_instance() -> Instance {
        generate(&GeneratorConfig {
            n_users: 60,
            n_events: 8,
            seed: 7,
            ..GeneratorConfig::default()
        })
    }

    fn ops_for(instance: &Instance, plan: &Plan, n: usize) -> Vec<SequencedOp> {
        let mut sampler = OpStreamSampler::new(99);
        sampler.sequenced_stream(instance, plan, n, 1)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "epplan-daemon-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn plan_bytes(d: &Daemon) -> String {
        serde_json::to_string(d.plan()).unwrap()
    }

    #[test]
    fn stream_processing_keeps_state_certified_and_skips_duplicates() {
        let instance = small_instance();
        let mut d = Daemon::start(instance, ServeConfig::default(), None).unwrap();
        let ops = ops_for(d.instance(), d.plan(), 12);
        for sop in &ops {
            let resp = d.process(sop).unwrap();
            assert_ne!(resp.status, "skipped");
            assert!(d.certificate().hard_ok(), "visible state must certify");
        }
        assert_eq!(d.last_op_id(), 12);
        // Replaying any earlier id is a no-op acknowledgement.
        let before = plan_bytes(&d);
        let resp = d.process(&ops[3]).unwrap();
        assert_eq!(resp.status, "skipped");
        assert_eq!(plan_bytes(&d), before);
        let s = d.summary();
        assert!(s.certified);
        assert_eq!(s.ops, 13);
        assert_eq!(s.skipped, 1);
    }

    #[test]
    fn bad_input_is_rejected_and_cursor_advances_past_it() {
        let instance = small_instance();
        let mut d = Daemon::start(instance, ServeConfig::default(), None).unwrap();
        let before = plan_bytes(&d);
        let bogus = SequencedOp::new(
            1,
            AtomicOp::EtaDecrease {
                event: EventId(10_000),
                new_upper: 1,
            },
        );
        let resp = d.process(&bogus).unwrap();
        assert_eq!(resp.status, "rejected");
        assert!(resp.error.is_some());
        assert_eq!(plan_bytes(&d), before, "rejection must not disturb the plan");
        assert_eq!(d.last_op_id(), 1, "cursor advances past rejected ops");
        assert!(d.certificate().hard_ok());
    }

    #[test]
    fn exhausted_op_budget_degrades_to_certified_full_resolve() {
        let instance = small_instance();
        let config = ServeConfig {
            // Zero iterations stays zero under doubling: every repair
            // attempt exhausts, forcing the full re-solve fallback.
            op_budget: SolveBudget::from_iteration_cap(0),
            max_retries: 2,
            ..ServeConfig::default()
        };
        let mut d = Daemon::start(instance, config, None).unwrap();
        let ops = ops_for(d.instance(), d.plan(), 3);
        for sop in &ops {
            let resp = d.process(sop).unwrap();
            assert_eq!(resp.status, "resolved");
            assert_eq!(resp.retries, 2, "all retries consumed before fallback");
            assert!(d.certificate().hard_ok());
        }
        assert_eq!(d.stats().resolves, 3);
        assert_eq!(d.stats().retries, 6);
        assert_eq!(d.drift(), 0, "full re-solve resets drift");
    }

    #[test]
    fn drift_threshold_zero_resolves_after_every_repair() {
        let instance = small_instance();
        let config = ServeConfig {
            drift_threshold: Some(0),
            ..ServeConfig::default()
        };
        let mut d = Daemon::start(instance, config, None).unwrap();
        let ops = ops_for(d.instance(), d.plan(), 4);
        for sop in &ops {
            let resp = d.process(sop).unwrap();
            assert_eq!(resp.status, "resolved");
            assert_eq!(d.drift(), 0);
        }
        assert_eq!(d.stats().resolved, 4);
    }

    #[test]
    fn crash_and_restore_converges_to_the_uninterrupted_plan() {
        let instance = small_instance();
        let dir = tmp_dir("restore");
        let config = ServeConfig {
            snapshot_every: Some(4),
            drift_threshold: Some(30),
            ..ServeConfig::default()
        };

        // Uninterrupted reference run (no state dir).
        let mut reference = Daemon::start(instance.clone(), config.clone(), None).unwrap();
        let ops = ops_for(reference.instance(), reference.plan(), 15);
        for sop in &ops {
            reference.process(sop).unwrap();
        }

        // Crashed run: process a prefix, then drop the daemon without
        // any shutdown — state must be recoverable from disk alone.
        {
            let mut d = Daemon::start(instance, config.clone(), Some(&dir)).unwrap();
            for sop in &ops[..9] {
                d.process(sop).unwrap();
            }
            // d dropped here: simulated crash after op 9.
        }
        let mut restored = Daemon::restore(config, &dir).unwrap();
        assert_eq!(restored.last_op_id(), 9);
        // Re-feed the whole stream; the prefix is skipped as duplicates.
        for sop in &ops {
            restored.process(sop).unwrap();
        }
        assert_eq!(plan_bytes(&restored), plan_bytes(&reference));
        assert_eq!(restored.drift(), reference.drift());
        assert_eq!(restored.utility(), reference.utility());
        assert!(restored.certificate().hard_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn admission_sheds_stale_ops_and_restore_retraces_them() {
        let instance = small_instance();
        let dir = tmp_dir("shed");
        let config = ServeConfig {
            // Every repair exhausts instantly, forcing the expensive
            // full re-solve path — each executed op charges the work
            // clock several op-widths, so staleness builds fast.
            op_budget: SolveBudget::from_iteration_cap(0),
            max_retries: 1,
            snapshot_every: Some(4),
            overload: OverloadConfig {
                op_deadline_ops: Some(0),
                ..OverloadConfig::default()
            },
            ..ServeConfig::default()
        };

        let mut reference = Daemon::start(instance.clone(), config.clone(), None).unwrap();
        let ops = ops_for(reference.instance(), reference.plan(), 12);
        let mut statuses = Vec::new();
        for sop in &ops {
            statuses.push(reference.process(sop).unwrap().status);
        }
        assert!(reference.stats().shed > 0, "overload must shed: {statuses:?}");
        assert!(reference.stats().resolved > 0);
        let s = reference.summary();
        assert_eq!(s.ops, 12);
        assert_eq!(s.shed, reference.stats().shed);
        assert!(s.certified);

        // Crash mid-stream, restore, re-feed: the shed pattern is
        // retraced from the WAL, not re-decided, so everything —
        // plan bytes and controller state — converges bit-for-bit.
        {
            let mut d = Daemon::start(instance, config.clone(), Some(&dir)).unwrap();
            for sop in &ops[..7] {
                d.process(sop).unwrap();
            }
        }
        let mut restored = Daemon::restore(config, &dir).unwrap();
        let mut replayed = Vec::new();
        for sop in &ops {
            replayed.push(restored.process(sop).unwrap().status);
        }
        assert!(replayed[..7].iter().all(|st| st == "skipped"));
        assert_eq!(replayed[7..], statuses[7..], "post-crash decisions diverged");
        assert_eq!(plan_bytes(&restored), plan_bytes(&reference));
        assert_eq!(restored.overload_state(), reference.overload_state());
        assert_eq!(restored.drift(), reference.drift());
        assert!(restored.certificate().hard_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn brownout_descends_under_burn_and_replay_converges() {
        let instance = small_instance();
        let dir = tmp_dir("brownout");
        let config = ServeConfig {
            // Target 0µs: every op burns, deterministically, so the
            // ladder walks straight down to the deepest level.
            slo_p99_us: Some(0),
            overload: OverloadConfig {
                brownout: Some(crate::overload::BrownoutKnobs {
                    down_after: 2,
                    up_after: 100,
                }),
                ..OverloadConfig::default()
            },
            ..ServeConfig::default()
        };
        let live_state;
        {
            let mut d = Daemon::start(instance, config.clone(), Some(&dir)).unwrap();
            let ops = ops_for(d.instance(), d.plan(), 8);
            for sop in &ops {
                d.process(sop).unwrap();
            }
            assert_eq!(d.overload_state().level, crate::overload::MAX_BROWNOUT_LEVEL);
            assert_eq!(d.stats().brownout_steps, 3);
            assert!(d.certificate().hard_ok());
            live_state = d.overload_state().clone();
        }
        // Replay folds the recorded burn flags and levels — no clock,
        // no window, yet the controller state matches exactly.
        let restored = Daemon::restore(config, &dir).unwrap();
        assert_eq!(restored.overload_state(), &live_state);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poison_op_is_quarantined_after_repeated_mid_op_deaths() {
        let instance = small_instance();
        let dir = tmp_dir("quarantine");
        let config = ServeConfig {
            overload: OverloadConfig {
                quarantine_after: Some(2),
                ..OverloadConfig::default()
            },
            ..ServeConfig::default()
        };
        let ops;
        {
            let mut d = Daemon::start(instance, config.clone(), Some(&dir)).unwrap();
            ops = ops_for(d.instance(), d.plan(), 4);
            d.process(&ops[0]).unwrap();
            d.process(&ops[1]).unwrap();
        }
        // Simulate two sessions that each durably logged op 3 and then
        // died executing it: two op records, no outcome in between.
        {
            let mut w = WalWriter::open_append(&dir.join(wal::WAL_FILE)).unwrap();
            w.append_op(&ops[2]).unwrap();
            w.append_op(&ops[2]).unwrap();
            w.sync().unwrap();
        }
        let mut restored = Daemon::restore(config.clone(), &dir).unwrap();
        assert_eq!(restored.stats().quarantined, 1);
        assert_eq!(restored.last_op_id(), 3, "cursor advanced past the poison op");
        let dead = wal::read_dead_letters(&dir).unwrap();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].id, 3);
        assert_eq!(dead[0].attempts, 2);
        assert_eq!(dead[0].op, ops[2]);
        // The stream continues; a re-fed poison op is a duplicate.
        assert_eq!(restored.process(&ops[3]).unwrap().status, "applied");
        assert_eq!(restored.process(&ops[2]).unwrap().status, "skipped");
        assert!(restored.certificate().hard_ok());
        // A second restore retraces the recorded quarantine instead of
        // appending another dead-letter record.
        drop(restored);
        let again = Daemon::restore(config, &dir).unwrap();
        assert_eq!(again.stats().quarantined, 0, "quarantine replayed, not redone");
        assert_eq!(again.last_op_id(), 4);
        assert_eq!(wal::read_dead_letters(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_attempts_below_the_threshold_retry_live() {
        let instance = small_instance();
        let dir = tmp_dir("tail-retry");
        let config = ServeConfig {
            overload: OverloadConfig {
                quarantine_after: Some(5),
                ..OverloadConfig::default()
            },
            ..ServeConfig::default()
        };
        let ops;
        {
            let mut d = Daemon::start(instance, config.clone(), Some(&dir)).unwrap();
            ops = ops_for(d.instance(), d.plan(), 2);
            d.process(&ops[0]).unwrap();
        }
        {
            let mut w = WalWriter::open_append(&dir.join(wal::WAL_FILE)).unwrap();
            w.append_op(&ops[1]).unwrap();
            w.sync().unwrap();
        }
        // One attempt < 5: the tail op is finished live on restore.
        let restored = Daemon::restore(config, &dir).unwrap();
        assert_eq!(restored.last_op_id(), 2);
        assert_eq!(restored.stats().quarantined, 0);
        assert!(wal::read_dead_letters(&dir).unwrap().is_empty());
        assert!(restored.certificate().hard_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_without_snapshot_is_a_typed_corruption_error() {
        let dir = tmp_dir("nosnap");
        fs::create_dir_all(&dir).unwrap();
        let err = Daemon::restore(ServeConfig::default(), &dir).unwrap_err();
        assert_eq!(err.exit_code(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }
}
