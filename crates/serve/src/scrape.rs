//! The live metrics endpoint: a Unix socket answering each connection
//! with one point-in-time Prometheus-text scrape of the daemon.
//!
//! ## Isolation contract
//!
//! Scrapes must never perturb op processing. The listener is
//! **non-blocking** and polled *between* ops from the single serving
//! thread (no thread is spawned — the workspace bans raw threads
//! outside `crates/par`), so a scrape can only observe daemon state at
//! op boundaries and the served plan bytes are bit-identical to a
//! no-scrape run. Writes to an accepted connection carry a short
//! timeout so a stalled scraper cannot wedge ingestion, and every
//! failure path (including the registered `serve.metrics.scrape`
//! fault site) just counts `obs.scrape.errors` and drops the
//! connection.

use std::io::Write;
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::time::Duration;

use epplan_fault::FaultAction;

use crate::daemon::Daemon;
use crate::ServeError;

/// How long a single scrape write may block before the connection is
/// dropped (the daemon never waits on a slow scraper longer than this
/// per poll).
const WRITE_TIMEOUT: Duration = Duration::from_secs(1);

/// Renders the full scrape body for the current daemon state: every
/// registered counter/gauge/histogram, the windowed latency summary
/// (shared estimator), and an `epplan_health` line carrying
/// certification status, drift and WAL/snapshot positions.
pub fn render_scrape(daemon: &Daemon) -> String {
    let mut out = epplan_obs::snapshot().to_prometheus();
    out.push_str(&epplan_obs::prometheus_summary(
        "serve.window.op_latency_us",
        &daemon.window_snapshot(),
        &[0.5, 0.95, 0.99],
    ));
    let certified = daemon.certificate().hard_ok();
    out.push_str("# TYPE epplan_health gauge\n");
    out.push_str(&format!(
        "epplan_health{{certified=\"{}\",drift=\"{}\",last_op_id=\"{}\",snapshot_op=\"{}\",wal_pending=\"{}\",slo_burning=\"{}\",brownout_level=\"{}\",shed=\"{}\"}} 1\n",
        certified,
        daemon.drift(),
        daemon.last_op_id(),
        daemon.snapshot_op(),
        daemon.wal_pending_ops(),
        daemon.slo_burning(),
        daemon.overload_state().level,
        daemon.stats().shed,
    ));
    out.push_str(&format!(
        "# TYPE epplan_serve_brownout_level gauge\nepplan_serve_brownout_level {}\n",
        daemon.overload_state().level
    ));
    out.push_str(&format!(
        "# TYPE epplan_serve_last_op_id gauge\nepplan_serve_last_op_id {}\n",
        daemon.last_op_id()
    ));
    out.push_str(&format!(
        "# TYPE epplan_serve_snapshot_op gauge\nepplan_serve_snapshot_op {}\n",
        daemon.snapshot_op()
    ));
    out.push_str(&format!(
        "# TYPE epplan_serve_wal_pending_ops gauge\nepplan_serve_wal_pending_ops {}\n",
        daemon.wal_pending_ops()
    ));
    out
}

/// A bound, non-blocking metrics socket. Created once at daemon
/// startup (`--metrics-socket`), polled between ops.
#[derive(Debug)]
pub struct MetricsEndpoint {
    listener: UnixListener,
    path: PathBuf,
}

impl MetricsEndpoint {
    /// Binds the scrape socket at `path` (replacing a stale socket
    /// file if one exists) and switches it to non-blocking accepts.
    pub fn bind(path: &Path) -> Result<MetricsEndpoint, ServeError> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path).map_err(|e| {
            ServeError::io(format!("binding metrics socket {}: {e}", path.display()))
        })?;
        listener.set_nonblocking(true).map_err(|e| {
            ServeError::io(format!(
                "setting metrics socket {} non-blocking: {e}",
                path.display()
            ))
        })?;
        Ok(MetricsEndpoint {
            listener,
            path: path.to_path_buf(),
        })
    }

    /// The socket path this endpoint is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Accepts and answers every pending scrape connection. Never
    /// blocks on a missing client and never returns an error: scrape
    /// failures are counted (`obs.scrape.errors`) and dropped so op
    /// ingestion always continues. Returns the number of scrapes
    /// answered successfully.
    pub fn poll(&self, daemon: &Daemon) -> u64 {
        let mut served = 0u64;
        loop {
            match self.listener.accept() {
                Ok((mut stream, _addr)) => {
                    let body = match epplan_fault::point("serve.metrics.scrape") {
                        // PoisonValue corrupts the payload (the client
                        // sees garbage); every other action fails the
                        // scrape outright. Either way the daemon only
                        // bumps the error counter and moves on.
                        Some(FaultAction::PoisonValue) => {
                            epplan_obs::counter_add("obs.scrape.errors", 1);
                            "!! corrupted scrape !!\n".to_string()
                        }
                        Some(_) => {
                            epplan_obs::counter_add("obs.scrape.errors", 1);
                            continue; // drop the connection unanswered
                        }
                        None => render_scrape(daemon),
                    };
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
                    match stream.write_all(body.as_bytes()).and_then(|()| stream.flush()) {
                        Ok(()) => {
                            epplan_obs::counter_add("obs.scrape.requests", 1);
                            served += 1;
                        }
                        Err(_) => epplan_obs::counter_add("obs.scrape.errors", 1),
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    epplan_obs::counter_add("obs.scrape.errors", 1);
                    break;
                }
            }
        }
        served
    }
}

impl Drop for MetricsEndpoint {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::ServeConfig;
    use epplan_datagen::{generate, GeneratorConfig};
    use std::io::Read;
    use std::os::unix::net::UnixStream;

    fn small_daemon() -> Daemon {
        let instance = generate(&GeneratorConfig {
            n_users: 40,
            n_events: 6,
            seed: 11,
            ..GeneratorConfig::default()
        });
        Daemon::start(instance, ServeConfig::default(), None)
            .unwrap_or_else(|e| panic!("daemon start: {e}"))
    }

    #[test]
    fn scrape_body_is_valid_prometheus_with_health() {
        let d = small_daemon();
        let body = render_scrape(&d);
        epplan_obs::validate_prometheus(&body)
            .unwrap_or_else(|e| panic!("invalid exposition: {e}"));
        assert!(body.contains("epplan_health{certified=\"true\",drift=\"0\""));
        assert!(body.contains("# TYPE epplan_serve_window_op_latency_us summary"));
        assert!(body.contains("epplan_serve_window_op_latency_us{quantile=\"0.99\"}"));
        assert!(body.contains("epplan_serve_wal_pending_ops 0"));
        assert!(body.contains("brownout_level=\"0\""));
        assert!(body.contains("epplan_serve_brownout_level 0"));
    }

    #[test]
    fn endpoint_answers_pending_connections_and_cleans_up() {
        let d = small_daemon();
        let sock = std::env::temp_dir().join(format!(
            "epplan-scrape-test-{}.sock",
            std::process::id()
        ));
        let ep = MetricsEndpoint::bind(&sock).unwrap_or_else(|e| panic!("bind: {e}"));
        assert_eq!(ep.poll(&d), 0, "no client yet");
        let mut client = UnixStream::connect(&sock).unwrap_or_else(|e| panic!("connect: {e}"));
        assert_eq!(ep.poll(&d), 1);
        let mut body = String::new();
        client
            .read_to_string(&mut body)
            .unwrap_or_else(|e| panic!("read: {e}"));
        epplan_obs::validate_prometheus(&body)
            .unwrap_or_else(|e| panic!("invalid exposition: {e}"));
        drop(ep);
        assert!(!sock.exists(), "socket file removed on drop");
    }
}
