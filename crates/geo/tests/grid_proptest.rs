//! Property tests: the grid index must agree with a naive linear scan
//! for arbitrary point clouds, query centers and radii.

use epplan_geo::{GridIndex, Point};
use proptest::prelude::*;

fn naive_within(points: &[Point], q: &Point, r: f64) -> Vec<usize> {
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| q.distance(p) <= r)
        .map(|(i, _)| i)
        .collect()
}

fn arb_point() -> impl Strategy<Value = Point> {
    (-1000.0..1000.0f64, -1000.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn within_agrees_with_naive(
        pts in prop::collection::vec(arb_point(), 0..200),
        q in arb_point(),
        r in 0.0..500.0f64,
    ) {
        let idx = GridIndex::build(&pts);
        let mut got = idx.within(&q, r);
        got.sort_unstable();
        prop_assert_eq!(got, naive_within(&pts, &q, r));
    }

    #[test]
    fn count_within_agrees(
        pts in prop::collection::vec(arb_point(), 0..150),
        q in arb_point(),
        r in 0.0..2000.0f64,
    ) {
        let idx = GridIndex::build(&pts);
        prop_assert_eq!(idx.count_within(&q, r), naive_within(&pts, &q, r).len());
    }

    #[test]
    fn nearest_agrees_with_naive(
        pts in prop::collection::vec(arb_point(), 1..120),
        q in arb_point(),
    ) {
        let idx = GridIndex::build(&pts);
        let got = idx.nearest(&q).expect("non-empty index");
        let best = pts
            .iter()
            .map(|p| q.distance(p))
            .fold(f64::INFINITY, f64::min);
        // Ties allowed: the returned point must be at the minimum distance.
        prop_assert!((q.distance(&pts[got]) - best).abs() < 1e-9);
    }

    #[test]
    fn distance_triangle_inequality(
        a in arb_point(),
        b in arb_point(),
        c in arb_point(),
    ) {
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
    }

    #[test]
    fn bbox_contains_all_points(
        pts in prop::collection::vec(arb_point(), 1..100),
    ) {
        let bb = epplan_geo::BoundingBox::of(pts.iter()).unwrap();
        for p in &pts {
            prop_assert!(bb.contains(p));
        }
    }
}
