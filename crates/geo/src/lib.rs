//! Planar geometry primitives for event-participant planning.
//!
//! The paper ("Complex Event-Participant Planning and Its Incremental
//! Variant", ICDE 2017) models users and events as points on a 2-D plane
//! and uses Euclidean distance for all travel costs. This crate provides:
//!
//! * [`Point`] — a 2-D location with [`Point::distance`];
//! * [`BoundingBox`] — axis-aligned extent of a point set, used by the
//!   data generator to calibrate travel budgets to a "city" size;
//! * [`GridIndex`] — a uniform-grid spatial index answering radius
//!   queries. It backs the computation of `Uc_i`, the number of events
//!   within distance `B_i / 2` of a user, which appears in every
//!   approximation-ratio bound of the paper (`1/(Uc_max − 1)` for the
//!   GAP-based algorithm, `1/(2·Uc_max)` for the greedy one).
//!
//! All types are plain data (`Copy` where possible) and carry no
//! interior mutability; indexes are built once and can be queried from
//! multiple threads.

// Solver-adjacent code must not panic (uniform workspace gate; the
// epplan-lint `robustness/unwrap` rule enforces the same contract).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
mod grid;
mod point;

pub use bbox::BoundingBox;
pub use grid::GridIndex;
pub use point::Point;
