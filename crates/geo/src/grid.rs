use crate::{BoundingBox, Point};

/// A uniform-grid spatial index over a fixed set of points.
///
/// Built once from a slice of points (event locations in practice) and
/// then queried for "all points within radius `r` of `q`". The index is
/// used to compute `Uc_i` — the number of events a user `u_i` could in
/// principle reach on budget `B_i` (all events within `B_i / 2`, since a
/// round trip costs at least twice the one-way distance). `Uc_max`
/// appears in all approximation-ratio bounds of the paper.
///
/// The grid resolution is chosen so the expected bucket occupancy is
/// O(1); radius queries visit only the buckets overlapping the query
/// disk, giving near-linear total work for the batched `Uc` computation
/// instead of the naive O(|U|·|E|).
#[derive(Debug, Clone)]
pub struct GridIndex {
    points: Vec<Point>,
    bbox: BoundingBox,
    cell: f64,
    cols: usize,
    rows: usize,
    /// `buckets[row * cols + col]` holds indices into `points`.
    buckets: Vec<Vec<u32>>,
}

impl GridIndex {
    /// Builds an index over `points`.
    ///
    /// Degenerate inputs (empty set, or all points coincident) are
    /// handled by collapsing to a single bucket.
    pub fn build(points: &[Point]) -> Self {
        let bbox = BoundingBox::of(points.iter()).unwrap_or_else(|| {
            BoundingBox::new(Point::new(0.0, 0.0), Point::new(0.0, 0.0))
        });
        let n = points.len().max(1);
        // Aim for ~1 point per cell: side ≈ extent / sqrt(n).
        let extent = bbox.width().max(bbox.height()).max(f64::MIN_POSITIVE);
        let target = (n as f64).sqrt().ceil().max(1.0);
        let cell = (extent / target).max(f64::MIN_POSITIVE);
        let cols = ((bbox.width() / cell).floor() as usize + 1).max(1);
        let rows = ((bbox.height() / cell).floor() as usize + 1).max(1);
        let mut buckets = vec![Vec::new(); cols * rows];
        for (i, p) in points.iter().enumerate() {
            let (c, r) = Self::cell_of_raw(&bbox, cell, cols, rows, p);
            buckets[r * cols + c].push(i as u32);
        }
        GridIndex {
            points: points.to_vec(),
            bbox,
            cell,
            cols,
            rows,
            buckets,
        }
    }

    fn cell_of_raw(
        bbox: &BoundingBox,
        cell: f64,
        cols: usize,
        rows: usize,
        p: &Point,
    ) -> (usize, usize) {
        let c = (((p.x - bbox.min.x) / cell).floor().max(0.0) as usize).min(cols - 1);
        let r = (((p.y - bbox.min.y) / cell).floor().max(0.0) as usize).min(rows - 1);
        (c, r)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points, in insertion order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Indices (into the original slice) of all points within Euclidean
    /// distance `radius` of `q` (inclusive).
    pub fn within(&self, q: &Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(q, radius, |i| out.push(i));
        out
    }

    /// Counts points within `radius` of `q` without materializing them.
    pub fn count_within(&self, q: &Point, radius: f64) -> usize {
        let mut n = 0;
        self.for_each_within(q, radius, |_| n += 1);
        n
    }

    /// Visits every point within `radius` of `q` (inclusive boundary).
    pub fn for_each_within<F: FnMut(usize)>(&self, q: &Point, radius: f64, mut f: F) {
        if self.points.is_empty() || radius < 0.0 {
            return;
        }
        let r2 = radius * radius;
        // Clamp the query window to the grid.
        let lo = Point::new(q.x - radius, q.y - radius);
        let hi = Point::new(q.x + radius, q.y + radius);
        if hi.x < self.bbox.min.x
            || hi.y < self.bbox.min.y
            || lo.x > self.bbox.max.x
            || lo.y > self.bbox.max.y
        {
            return;
        }
        let (c0, r0) = Self::cell_of_raw(&self.bbox, self.cell, self.cols, self.rows, &lo);
        let (c1, r1) = Self::cell_of_raw(&self.bbox, self.cell, self.cols, self.rows, &hi);
        for row in r0..=r1 {
            for col in c0..=c1 {
                for &i in &self.buckets[row * self.cols + col] {
                    if q.distance_sq(&self.points[i as usize]) <= r2 {
                        f(i as usize);
                    }
                }
            }
        }
    }

    /// Index of the nearest point to `q`, or `None` when empty.
    ///
    /// Scans rings of cells outward from the query cell; falls back to a
    /// full scan when the grid is degenerate.
    pub fn nearest(&self, q: &Point) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        // The grids here are small enough that an expanding-radius probe
        // backed by `within` is simpler than ring bookkeeping and still
        // avoids most full scans.
        let mut radius = self.cell.max(1e-9);
        let max_r = self.bbox.diagonal().max(q.distance(&self.bbox.center())) + radius;
        loop {
            let mut best: Option<(usize, f64)> = None;
            self.for_each_within(q, radius, |i| {
                let d = q.distance_sq(&self.points[i]);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            });
            if let Some((i, _)) = best {
                return Some(i);
            }
            if radius > max_r {
                // Degenerate: brute force (guaranteed to find something).
                return self
                    .points
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        q.distance_sq(a).total_cmp(&q.distance_sq(b))
                    })
                    .map(|(i, _)| i);
            }
            radius *= 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_within(points: &[Point], q: &Point, r: f64) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| q.distance(p) <= r)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn within_matches_naive_on_grid() {
        let pts: Vec<Point> = (0..10)
            .flat_map(|x| (0..10).map(move |y| Point::new(x as f64, y as f64)))
            .collect();
        let idx = GridIndex::build(&pts);
        for q in [
            Point::new(5.0, 5.0),
            Point::new(0.0, 0.0),
            Point::new(9.5, 2.3),
            Point::new(-3.0, -3.0),
            Point::new(20.0, 20.0),
        ] {
            for r in [0.0, 0.5, 1.0, 2.5, 7.0, 30.0] {
                let mut got = idx.within(&q, r);
                got.sort_unstable();
                let want = naive_within(&pts, &q, r);
                assert_eq!(got, want, "q={q} r={r}");
            }
        }
    }

    #[test]
    fn count_matches_within() {
        let pts: Vec<Point> = (0..50)
            .map(|i| Point::new((i * 7 % 13) as f64, (i * 11 % 17) as f64))
            .collect();
        let idx = GridIndex::build(&pts);
        let q = Point::new(6.0, 8.0);
        assert_eq!(idx.count_within(&q, 5.0), idx.within(&q, 5.0).len());
    }

    #[test]
    fn empty_index() {
        let idx = GridIndex::build(&[]);
        assert!(idx.is_empty());
        assert!(idx.within(&Point::new(0.0, 0.0), 10.0).is_empty());
        assert_eq!(idx.nearest(&Point::new(0.0, 0.0)), None);
    }

    #[test]
    fn coincident_points() {
        let pts = vec![Point::new(1.0, 1.0); 5];
        let idx = GridIndex::build(&pts);
        assert_eq!(idx.count_within(&Point::new(1.0, 1.0), 0.0), 5);
        assert_eq!(idx.count_within(&Point::new(2.0, 1.0), 0.5), 0);
    }

    #[test]
    fn nearest_finds_closest() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 5.0),
        ];
        let idx = GridIndex::build(&pts);
        assert_eq!(idx.nearest(&Point::new(9.0, 1.0)), Some(1));
        assert_eq!(idx.nearest(&Point::new(0.1, -0.2)), Some(0));
        assert_eq!(idx.nearest(&Point::new(100.0, 100.0)), Some(2));
    }

    #[test]
    fn negative_radius_is_empty() {
        let idx = GridIndex::build(&[Point::new(0.0, 0.0)]);
        assert!(idx.within(&Point::new(0.0, 0.0), -1.0).is_empty());
    }

    #[test]
    fn boundary_is_inclusive() {
        let idx = GridIndex::build(&[Point::new(3.0, 4.0)]);
        // distance from origin is exactly 5
        assert_eq!(idx.count_within(&Point::new(0.0, 0.0), 5.0), 1);
        assert_eq!(idx.count_within(&Point::new(0.0, 0.0), 4.999), 0);
    }
}
