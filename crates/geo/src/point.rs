use serde::{Deserialize, Serialize};

/// A location on the 2-D plane.
///
/// Users and events both carry a `Point`; the paper's worked example
/// places them on an integer grid but nothing requires integrality.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    ///
    /// This is the travel-cost metric used throughout the paper
    /// (Section II: "here we simply use Euclidean distance").
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared Euclidean distance; cheaper when only comparisons are
    /// needed (e.g. radius filtering in the grid index).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint of the segment between `self` and `other`.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Returns `true` when both coordinates are finite.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-4.0, 7.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(12.0, 9.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Point::new(2.0, 3.0);
        let b = Point::new(-1.0, 9.5);
        let d = a.distance(&b);
        assert!((a.distance_sq(&b) - d * d).abs() < 1e-12);
    }

    #[test]
    fn paper_example_distances() {
        // From Example 1 of the paper: d(u1, e1) = sqrt(17),
        // d(e1, e2) = sqrt(41), d(e2, u1) = 6, summing to ~16.53.
        let u1 = Point::new(2.0, 3.0);
        let e1 = Point::new(3.0, 7.0);
        let e2 = Point::new(8.0, 3.0);
        let total = u1.distance(&e1) + e1.distance(&e2) + e2.distance(&u1);
        assert!((u1.distance(&e1) - 17f64.sqrt()).abs() < 1e-12);
        assert!((e1.distance(&e2) - 41f64.sqrt()).abs() < 1e-12);
        assert!((e2.distance(&u1) - 6.0).abs() < 1e-12);
        assert!((total - 16.5262).abs() < 1e-3);
    }

    #[test]
    fn midpoint_is_between() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 6.0);
        assert_eq!(a.midpoint(&b), Point::new(1.0, 3.0));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
    }

    #[test]
    fn display_format() {
        assert_eq!(Point::new(1.0, 2.5).to_string(), "(1, 2.5)");
    }

    #[test]
    fn finite_check() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
