use crate::Point;
use serde::{Deserialize, Serialize};

/// Axis-aligned bounding box of a set of points.
///
/// The data generator uses the box of a synthetic "city" to calibrate
/// travel budgets: a budget is meaningful only relative to how far apart
/// users and events can be.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl BoundingBox {
    /// An "empty" box that expands to fit the first point added.
    pub fn empty() -> Self {
        BoundingBox {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Box spanning exactly the given corners.
    pub fn new(min: Point, max: Point) -> Self {
        BoundingBox { min, max }
    }

    /// Smallest box containing every point of `points`; `None` when the
    /// iterator is empty.
    pub fn of<'a, I: IntoIterator<Item = &'a Point>>(points: I) -> Option<Self> {
        let mut bb = BoundingBox::empty();
        let mut any = false;
        for p in points {
            bb.expand(p);
            any = true;
        }
        any.then_some(bb)
    }

    /// Grows the box to include `p`.
    pub fn expand(&mut self, p: &Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Width along the x axis (zero for an empty/degenerate box).
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height along the y axis.
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Length of the diagonal — the largest possible distance between
    /// two points in the box. Budget calibration is expressed as a
    /// fraction of this value.
    pub fn diagonal(&self) -> f64 {
        self.width().hypot(self.height())
    }

    /// Whether `p` lies inside the box (inclusive of edges).
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Center of the box.
    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_points() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ];
        let bb = BoundingBox::of(pts.iter()).unwrap();
        assert_eq!(bb.min, Point::new(-2.0, -1.0));
        assert_eq!(bb.max, Point::new(4.0, 5.0));
        assert_eq!(bb.width(), 6.0);
        assert_eq!(bb.height(), 6.0);
    }

    #[test]
    fn of_empty_is_none() {
        assert!(BoundingBox::of([].iter()).is_none());
    }

    #[test]
    fn contains_edges() {
        let bb = BoundingBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        assert!(bb.contains(&Point::new(0.0, 0.0)));
        assert!(bb.contains(&Point::new(10.0, 10.0)));
        assert!(bb.contains(&Point::new(5.0, 5.0)));
        assert!(!bb.contains(&Point::new(10.1, 5.0)));
    }

    #[test]
    fn diagonal_of_unit_square() {
        let bb = BoundingBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        assert!((bb.diagonal() - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_point_box_is_degenerate() {
        let bb = BoundingBox::of([Point::new(3.0, 4.0)].iter()).unwrap();
        assert_eq!(bb.width(), 0.0);
        assert_eq!(bb.height(), 0.0);
        assert_eq!(bb.diagonal(), 0.0);
        assert_eq!(bb.center(), Point::new(3.0, 4.0));
    }

    #[test]
    fn expand_grows_monotonically() {
        let mut bb = BoundingBox::empty();
        bb.expand(&Point::new(1.0, 1.0));
        let before = bb;
        bb.expand(&Point::new(0.5, 0.5));
        assert!(bb.contains(&before.min) && bb.contains(&before.max));
    }
}
