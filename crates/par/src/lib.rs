//! `epplan-par` — a zero-dependency, deterministic, scoped
//! data-parallel runtime for the epplan workspace.
//!
//! The build environment is fully offline (no `rayon`), so this crate
//! provides the minimal fork/join surface the solver hot loops need,
//! built entirely on [`std::thread::scope`]. The design goal is a
//! *determinism contract* strong enough for tier-1 tests to enforce:
//!
//! > **Parallel output is bit-identical to serial output.**
//!
//! Three rules make that hold by construction:
//!
//! 1. **Fixed chunk boundaries.** Work of length `len` is split into
//!    chunks of `chunk_size(len, min_chunk)` elements — a function of
//!    the *problem size only*, never of the thread count. Running with
//!    1 thread or 64 threads produces the same chunks.
//! 2. **Pure chunk closures.** A chunk closure may read shared state
//!    but mutates only its own chunk (or returns a value). Scheduling
//!    order therefore cannot influence any result.
//! 3. **Index-ordered merge.** Chunk results are collected by chunk
//!    index and merged left-to-right, so reductions (including
//!    floating-point sums) associate the same way at every thread
//!    count.
//!
//! The serial path (`threads() == 1`, or fewer chunks than threads)
//! runs the *same* chunked code inline; "serial" and "parallel" differ
//! only in which OS thread executes a chunk.
//!
//! # Thread-count control
//!
//! The worker count is a process-global setting resolved in order:
//! [`set_threads`] (e.g. from a `--threads N` CLI flag), else the
//! `EPPLAN_THREADS` environment variable, else
//! [`std::thread::available_parallelism`]. Worker threads are spawned
//! per parallel region and joined before it returns (scoped — borrowed
//! data needs no `'static` bound, and no idle pool lingers between
//! solves).
//!
//! # Cancellation
//!
//! The `try_*` variants stop early when a chunk closure returns `Err`
//! (e.g. a [`SolveBudget`] deadline flag tripping inside a worker):
//! the first error — by chunk index, deterministically — is returned
//! and remaining chunks are abandoned via a shared atomic stop flag.
//!
//! [`SolveBudget`]: https://docs.rs/epplan-solve

// Solver-adjacent code must not panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::convert::Infallible;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Upper bound on configured worker threads (sanity clamp for wild
/// `EPPLAN_THREADS` values).
pub const MAX_THREADS: usize = 512;

/// Upper bound on chunks per parallel region: keeps per-chunk
/// bookkeeping (result slots, partial accumulators) bounded on huge
/// inputs while `min_chunk` bounds it on small ones.
pub const MAX_CHUNKS_PER_OP: usize = 1024;

/// Process-global worker count; 0 = not yet resolved.
static THREADS: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("EPPLAN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n.clamp(1, MAX_THREADS);
            }
        }
    }
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .clamp(1, MAX_THREADS)
}

/// The worker count parallel regions will use. Resolved lazily from
/// `EPPLAN_THREADS` / available parallelism on first call unless
/// [`set_threads`] ran earlier.
pub fn threads() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let resolved = default_threads();
    // Racing first calls agree on the value unless set_threads() wins,
    // which is exactly the precedence we want.
    let _ = THREADS.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
    THREADS.load(Ordering::Relaxed)
}

/// Overrides the worker count for the whole process (clamped to
/// `1..=`[`MAX_THREADS`]). By the determinism contract this changes
/// wall-clock only, never results.
pub fn set_threads(n: usize) {
    THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// The fixed chunk size for a region over `len` items: at least
/// `min_chunk` (amortizing per-chunk overhead) and at least
/// `len / `[`MAX_CHUNKS_PER_OP`]. Depends only on the problem size —
/// never on [`threads`] — which is what makes chunk boundaries stable
/// across thread counts.
pub fn chunk_size(len: usize, min_chunk: usize) -> usize {
    min_chunk.max(1).max(len.div_ceil(MAX_CHUNKS_PER_OP))
}

/// Number of chunks a region over `len` items splits into.
pub fn chunk_count(len: usize, min_chunk: usize) -> usize {
    if len == 0 {
        0
    } else {
        len.div_ceil(chunk_size(len, min_chunk))
    }
}

#[inline]
fn chunk_range(i: usize, cs: usize, len: usize) -> Range<usize> {
    let start = i * cs;
    start..(start + cs).min(len)
}

/// Maps fixed chunks of `0..len` through `f` (called with each chunk's
/// index range), fanning out across [`threads`] workers, with
/// early-exit on the first `Err`. Results come back in chunk order; on
/// error the `Err` from the lowest-indexed failing chunk is returned.
///
/// `f` runs concurrently on borrowed state — it must confine writes to
/// chunk-local data for the determinism contract to hold.
pub fn try_par_range_map<R, E>(
    len: usize,
    min_chunk: usize,
    f: impl Fn(Range<usize>) -> Result<R, E> + Sync,
) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
{
    if len == 0 {
        return Ok(Vec::new());
    }
    let cs = chunk_size(len, min_chunk);
    let n_chunks = len.div_ceil(cs);
    let workers = threads().min(n_chunks);
    if workers <= 1 {
        // Inline path: same chunk boundaries, same merge order.
        let mut out = Vec::with_capacity(n_chunks);
        for i in 0..n_chunks {
            out.push(f(chunk_range(i, cs, len))?);
        }
        return Ok(out);
    }

    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    // Each worker claims chunk indices from the shared counter (work
    // chunking: fast workers take more chunks) and keeps its results
    // tagged by index for the ordered merge below.
    let worker = |_w: usize| {
        let mut local: Vec<(usize, R)> = Vec::new();
        let mut err: Option<(usize, E)> = None;
        while !stop.load(Ordering::Relaxed) {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_chunks {
                break;
            }
            match f(chunk_range(i, cs, len)) {
                Ok(r) => local.push((i, r)),
                Err(e) => {
                    stop.store(true, Ordering::Relaxed);
                    err = Some((i, e));
                    break;
                }
            }
        }
        (local, err)
    };

    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n_chunks);
    let mut first_err: Option<(usize, E)> = None;
    std::thread::scope(|s| {
        let worker = &worker;
        let handles: Vec<_> = (0..workers).map(|w| s.spawn(move || worker(w))).collect();
        for h in handles {
            match h.join() {
                Ok((local, err)) => {
                    tagged.extend(local);
                    if let Some((i, e)) = err {
                        if first_err.as_ref().is_none_or(|(fi, _)| i < *fi) {
                            first_err = Some((i, e));
                        }
                    }
                }
                // A panicking chunk closure panics the region, exactly
                // like its serial counterpart would.
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), n_chunks);
    Ok(tagged.into_iter().map(|(_, r)| r).collect())
}

/// Infallible [`try_par_range_map`].
pub fn par_range_map<R: Send>(
    len: usize,
    min_chunk: usize,
    f: impl Fn(Range<usize>) -> R + Sync,
) -> Vec<R> {
    match try_par_range_map::<R, Infallible>(len, min_chunk, |r| Ok(f(r))) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Parallel fold-then-merge over `0..len`: `fold` produces one
/// accumulator per fixed chunk (in parallel), `merge` combines them
/// **left-to-right in chunk order** (serially), so the reduction tree
/// is identical at every thread count. Returns `None` for `len == 0`.
pub fn par_range_reduce<A: Send>(
    len: usize,
    min_chunk: usize,
    fold: impl Fn(Range<usize>) -> A + Sync,
    merge: impl FnMut(A, A) -> A,
) -> Option<A> {
    par_range_map(len, min_chunk, fold).into_iter().reduce(merge)
}

/// Fallible [`par_range_reduce`]; the first chunk error (by index)
/// aborts the region.
pub fn try_par_range_reduce<A: Send, E: Send>(
    len: usize,
    min_chunk: usize,
    fold: impl Fn(Range<usize>) -> Result<A, E> + Sync,
    merge: impl FnMut(A, A) -> A,
) -> Result<Option<A>, E> {
    Ok(try_par_range_map(len, min_chunk, fold)?
        .into_iter()
        .reduce(merge))
}

/// Maps fixed chunks of a slice through `f` (called with each chunk's
/// start offset and contents), results in chunk order.
pub fn par_chunks_map<T: Sync, R: Send>(
    items: &[T],
    min_chunk: usize,
    f: impl Fn(usize, &[T]) -> R + Sync,
) -> Vec<R> {
    par_range_map(items.len(), min_chunk, |r| f(r.start, &items[r]))
}

/// Runs `f` over disjoint mutable chunks of `items` (start offset +
/// chunk), with early-exit on the first `Err`. Chunks are distributed
/// round-robin across workers up front (no claiming counter needed —
/// every chunk must run anyway, and mutable slices cannot be handed
/// out through a shared queue without locking).
pub fn try_par_chunks_for_each_mut<T: Send, E: Send>(
    items: &mut [T],
    min_chunk: usize,
    f: impl Fn(usize, &mut [T]) -> Result<(), E> + Sync,
) -> Result<(), E> {
    let len = items.len();
    if len == 0 {
        return Ok(());
    }
    let cs = chunk_size(len, min_chunk);
    let n_chunks = len.div_ceil(cs);
    let workers = threads().min(n_chunks);
    if workers <= 1 {
        for (i, chunk) in items.chunks_mut(cs).enumerate() {
            f(i * cs, chunk)?;
        }
        return Ok(());
    }

    let stop = AtomicBool::new(false);
    let mut per_worker: Vec<Vec<(usize, &mut [T])>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (i, chunk) in items.chunks_mut(cs).enumerate() {
        per_worker[i % workers].push((i * cs, chunk));
    }
    let mut first_err: Option<(usize, E)> = None;
    std::thread::scope(|s| {
        let f = &f;
        let stop = &stop;
        let handles: Vec<_> = per_worker
            .into_iter()
            .map(|mine| {
                s.spawn(move || {
                    for (start, chunk) in mine {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        if let Err(e) = f(start, chunk) {
                            stop.store(true, Ordering::Relaxed);
                            return Some((start, e));
                        }
                    }
                    None
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(Some((start, e))) => {
                    if first_err.as_ref().is_none_or(|(fs, _)| start < *fs) {
                        first_err = Some((start, e));
                    }
                }
                Ok(None) => {}
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    match first_err {
        Some((_, e)) => Err(e),
        None => Ok(()),
    }
}

/// Infallible [`try_par_chunks_for_each_mut`].
pub fn par_chunks_for_each_mut<T: Send>(
    items: &mut [T],
    min_chunk: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    match try_par_chunks_for_each_mut::<T, Infallible>(items, min_chunk, |i, c| {
        f(i, c);
        Ok(())
    }) {
        Ok(()) => (),
        Err(e) => match e {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that flip the global thread count.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        set_threads(n);
        let r = f();
        set_threads(1);
        r
    }

    #[test]
    fn chunk_plan_ignores_thread_count() {
        let _g = lock();
        assert_eq!(chunk_size(100, 8), 8);
        assert_eq!(chunk_count(100, 8), 13);
        assert_eq!(chunk_count(0, 8), 0);
        // Huge inputs are capped at MAX_CHUNKS_PER_OP chunks.
        assert!(chunk_count(10_000_000, 1) <= MAX_CHUNKS_PER_OP);
        // The plan is a pure function of (len, min_chunk).
        for t in [1, 2, 7] {
            with_threads(t, || {
                assert_eq!(chunk_size(100, 8), 8);
                assert_eq!(chunk_count(100, 8), 13);
            });
        }
    }

    #[test]
    fn map_is_identical_across_thread_counts() {
        let _g = lock();
        let items: Vec<u64> = (0..10_001).collect();
        let run = |t: usize| {
            with_threads(t, || {
                par_chunks_map(&items, 16, |start, chunk| {
                    (start, chunk.iter().map(|&x| x * x).sum::<u64>())
                })
            })
        };
        let serial = run(1);
        for t in [2, 4, 9] {
            assert_eq!(run(t), serial, "threads={t}");
        }
    }

    #[test]
    fn float_reduction_is_bit_identical() {
        let _g = lock();
        // A sum whose value depends on association order: determinism
        // requires the merge tree to be fixed.
        let xs: Vec<f64> = (0..4_999).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let run = |t: usize| {
            with_threads(t, || {
                par_range_reduce(
                    xs.len(),
                    32,
                    |r| xs[r].iter().sum::<f64>(),
                    |a, b| a + b,
                )
                .unwrap_or(0.0)
            })
        };
        let serial = run(1).to_bits();
        for t in [2, 4, 16] {
            assert_eq!(run(t).to_bits(), serial, "threads={t}");
        }
    }

    #[test]
    fn for_each_mut_writes_every_chunk() {
        let _g = lock();
        let run = |t: usize| {
            with_threads(t, || {
                let mut v = vec![0usize; 1_000];
                par_chunks_for_each_mut(&mut v, 7, |start, chunk| {
                    for (k, x) in chunk.iter_mut().enumerate() {
                        *x = start + k;
                    }
                });
                v
            })
        };
        let want: Vec<usize> = (0..1_000).collect();
        assert_eq!(run(1), want);
        assert_eq!(run(4), want);
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let _g = lock();
        for t in [1, 4] {
            let got = with_threads(t, || {
                try_par_range_map(1_000, 10, |r| {
                    if r.start >= 500 {
                        Err(r.start)
                    } else {
                        Ok(r.start)
                    }
                })
            });
            // With 1 thread the scan stops at the first failing chunk;
            // with several, lower-indexed chunks may fail concurrently —
            // but never one below the first failing index.
            let err = got.err().unwrap_or(usize::MAX);
            assert!((500..1_000).contains(&err), "threads={t}: {err}");
        }
        let ok = try_par_range_map(100, 10, |r| Ok::<_, ()>(r.len()));
        assert_eq!(ok, Ok(vec![10; 10]));
    }

    #[test]
    fn try_for_each_mut_propagates_error() {
        let _g = lock();
        for t in [1, 3] {
            let r = with_threads(t, || {
                let mut v = vec![0u8; 100];
                try_par_chunks_for_each_mut(&mut v, 10, |start, _| {
                    if start == 50 {
                        Err("boom")
                    } else {
                        Ok(())
                    }
                })
            });
            assert_eq!(r, Err("boom"), "threads={t}");
        }
    }

    #[test]
    fn empty_inputs() {
        let _g = lock();
        assert!(par_range_map(0, 8, |r| r.len()).is_empty());
        assert_eq!(par_range_reduce(0, 8, |_| 1, |a, b| a + b), None);
        par_chunks_for_each_mut::<u8>(&mut [], 8, |_, _| {});
    }

    #[test]
    fn set_threads_clamps() {
        let _g = lock();
        set_threads(0);
        assert_eq!(threads(), 1);
        set_threads(usize::MAX);
        assert_eq!(threads(), MAX_THREADS);
        set_threads(1);
    }

    #[test]
    fn panics_propagate() {
        let _g = lock();
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_range_map(100, 10, |r| {
                    if r.start == 30 {
                        panic!("chunk panic");
                    }
                    r.len()
                })
            })
        });
        assert!(caught.is_err());
        set_threads(1);
    }
}
