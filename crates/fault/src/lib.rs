//! Deterministic fault injection for the epplan solver stack.
//!
//! PR 1's degradation contract (gap → greedy → empty, typed
//! [`SolveError`]s, budget exhaustion with partials) is only as
//! trustworthy as the failure modes the tests actually drive. This
//! crate lets tests and CI *schedule* a failure at any registered
//! injection site — deterministically, by hit count — instead of
//! hoping a pathological instance happens to trip the right branch.
//!
//! [`SolveError`]: https://docs.rs/epplan-solve
//!
//! # Model
//!
//! * **Sites** — every injectable point in the solver pipeline has a
//!   stable dotted name (e.g. `flow.mcmf.augment`), registered in
//!   [`SITES`] and checked by the `fault/unregistered-site` lint rule.
//!   The naming follows the span-name registry from `epplan-obs`
//!   (DESIGN.md § Observability).
//! * **Plans** — a [`FaultPlan`] maps `(site, hit-count)` pairs to a
//!   [`FaultAction`]. The textual spec grammar (also accepted from the
//!   `EPPLAN_FAULTS` environment variable) is:
//!
//!   ```text
//!   spec    := entry (';' entry)*
//!   entry   := site ['@' hit] '=' action
//!   site    := registered dotted name        (see SITES)
//!   hit     := 1-based decimal hit count     (default 1)
//!   action  := 'error' | 'deadline' | 'nan' | 'alloc'
//!   ```
//!
//!   `flow.mcmf.augment@3=error` fails the *third* time the
//!   augmentation site is reached; earlier and later hits pass.
//! * **Points** — instrumented code calls [`point`] with its site
//!   name. With no plan armed the entire cost is **one relaxed atomic
//!   load** (mirroring the `epplan-obs` disabled path). With a plan
//!   armed, the site's hit counter is incremented under a mutex and
//!   the scheduled [`FaultAction`] is returned on the matching hit.
//!
//! Sites are only placed in *serial* sections of the solvers (loop
//! heads, pre-dispatch checks), never inside `epplan-par` worker
//! closures — so hit counts, and therefore injected failures, are
//! identical at any thread count.
//!
//! # What a fired action means
//!
//! The crate only *reports* the scheduled action; the instrumented
//! site decides how to realise it. The conventional mapping (helper:
//! `SolveError::from_fault` in `epplan-solve`) is: `error` → a typed
//! `NumericalInstability`, `deadline`/`alloc` → a typed
//! `BudgetExhausted`, `nan` → a site-local poisoned value where the
//! site can propagate one (exercising downstream detection and the
//! certification escalation path), else a typed error.

// Fault injection must never panic the solver it is testing.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// The registry of injection sites. Every `point(...)` literal in the
/// workspace must name an entry here (lint rule
/// `fault/unregistered-site`); the list is mirrored in
/// `crates/lint/src/rules.rs` and DESIGN.md § Fault model.
pub const SITES: &[&str] = &[
    "lp.simplex.pivot",
    "flow.mcmf.augment",
    "gap.lp_relax.solve",
    "gap.packing.oracle",
    "gap.rounding.match",
    "core.reduction.build",
    "core.conflict_adjust.apply",
    "core.greedy.fallback",
    "core.iep.apply",
    "solve.budget.tick",
    "serve.wal.append",
    "serve.snapshot.write",
    "serve.op.ingest",
    "serve.metrics.scrape",
    "serve.admission.decide",
    "serve.deadletter.append",
    "serve.brownout.step",
];

/// `true` when `site` names a registered injection site.
pub fn is_registered(site: &str) -> bool {
    site_index(site).is_some()
}

fn site_index(site: &str) -> Option<usize> {
    SITES.iter().position(|&s| s == site)
}

/// How a scheduled fault should manifest at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultAction {
    /// Fail with a typed error (conventionally `NumericalInstability`).
    TypedError,
    /// Trip the deadline: fail as if the solve budget ran out.
    DeadlineTrip,
    /// Inject a poisoned value (NaN) into the site's data where the
    /// site supports it; otherwise realised as a typed error.
    PoisonValue,
    /// Simulate allocation pressure: fail as if memory ran out
    /// (realised as a typed budget-class error — the solvers never
    /// abort on OOM, they degrade).
    AllocPressure,
}

impl FaultAction {
    /// The spec keyword for this action.
    pub fn keyword(self) -> &'static str {
        match self {
            FaultAction::TypedError => "error",
            FaultAction::DeadlineTrip => "deadline",
            FaultAction::PoisonValue => "nan",
            FaultAction::AllocPressure => "alloc",
        }
    }

    fn from_keyword(kw: &str) -> Option<Self> {
        match kw {
            "error" => Some(FaultAction::TypedError),
            "deadline" => Some(FaultAction::DeadlineTrip),
            "nan" => Some(FaultAction::PoisonValue),
            "alloc" => Some(FaultAction::AllocPressure),
            _ => None,
        }
    }
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A malformed or unregistered fault spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Human-readable description of the problem.
    pub message: String,
}

impl SpecError {
    fn new(message: String) -> Self {
        SpecError { message }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

/// One scheduled fault: fire `action` on the `hit`-th visit to `site`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FaultEntry {
    site: usize,
    hit: u64,
    action: FaultAction,
}

/// A deterministic schedule of injected faults.
///
/// Built from a textual spec ([`FaultPlan::from_spec`]) or
/// programmatically ([`FaultPlan::single`]); armed process-wide with
/// [`install`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// The empty plan: no faults fire.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single fault on the first hit of `site`.
    ///
    /// Returns a [`SpecError`] for unregistered sites.
    pub fn single(site: &str, action: FaultAction) -> Result<Self, SpecError> {
        Self::single_at(site, 1, action)
    }

    /// A plan with a single fault on the `hit`-th (1-based) visit to
    /// `site`.
    pub fn single_at(site: &str, hit: u64, action: FaultAction) -> Result<Self, SpecError> {
        let idx = site_index(site)
            .ok_or_else(|| SpecError::new(format!("unregistered site {site:?}")))?;
        if hit == 0 {
            return Err(SpecError::new("hit counts are 1-based; 0 is invalid".into()));
        }
        Ok(FaultPlan {
            entries: vec![FaultEntry { site: idx, hit, action }],
        })
    }

    /// Parses the `EPPLAN_FAULTS` spec grammar (see the crate docs).
    pub fn from_spec(spec: &str) -> Result<Self, SpecError> {
        let mut entries = Vec::new();
        for raw in spec.split(';') {
            let part = raw.trim();
            if part.is_empty() {
                continue;
            }
            let (target, action_kw) = part.split_once('=').ok_or_else(|| {
                SpecError::new(format!("entry {part:?} is missing '=action'"))
            })?;
            let action = FaultAction::from_keyword(action_kw.trim()).ok_or_else(|| {
                SpecError::new(format!(
                    "unknown action {:?} (expected error|deadline|nan|alloc)",
                    action_kw.trim()
                ))
            })?;
            let (site_name, hit) = match target.trim().split_once('@') {
                Some((s, h)) => {
                    let hit: u64 = h.trim().parse().map_err(|_| {
                        SpecError::new(format!("hit count {:?} is not a number", h.trim()))
                    })?;
                    (s.trim(), hit)
                }
                None => (target.trim(), 1),
            };
            if hit == 0 {
                return Err(SpecError::new(format!(
                    "hit count for {site_name:?} is 0; counts are 1-based"
                )));
            }
            let idx = site_index(site_name).ok_or_else(|| {
                SpecError::new(format!("unregistered site {site_name:?}"))
            })?;
            entries.push(FaultEntry { site: idx, hit, action });
        }
        Ok(FaultPlan { entries })
    }

    /// `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, e) in self.entries.iter().enumerate() {
            if k > 0 {
                f.write_str(";")?;
            }
            write!(f, "{}@{}={}", SITES[e.site], e.hit, e.action)?;
        }
        Ok(())
    }
}

/// Armed plan + per-site visit counters. `None` when disarmed.
struct ArmedPlan {
    plan: FaultPlan,
    hits: Vec<u64>,
}

/// Fast-path gate: `false` means [`point`] returns after one relaxed
/// load, exactly like the `epplan-obs` disabled path.
static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<ArmedPlan>> = Mutex::new(None);

/// Locks the state mutex, tolerating poison: a panicking test thread
/// must not wedge fault injection for the rest of the process.
fn lock() -> MutexGuard<'static, Option<ArmedPlan>> {
    STATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Arms `plan` process-wide, resetting all hit counters. Installing
/// the empty plan still counts hits but never fires.
pub fn install(plan: FaultPlan) {
    let mut state = lock();
    *state = Some(ArmedPlan {
        hits: vec![0; SITES.len()],
        plan,
    });
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disarms fault injection and drops the hit counters. [`point`]
/// reverts to its single-atomic-load no-op path.
pub fn clear() {
    let mut state = lock();
    *state = None;
    ENABLED.store(false, Ordering::Relaxed);
}

/// `true` when a plan is armed.
pub fn is_armed() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Reads `EPPLAN_FAULTS` and arms the parsed plan. Returns `Ok(true)`
/// when a plan was installed, `Ok(false)` when the variable is unset
/// or empty, and the parse error otherwise (callers should surface it
/// as a usage error — a silently ignored fault spec would defeat the
/// point of a chaos run).
pub fn install_from_env() -> Result<bool, SpecError> {
    match std::env::var("EPPLAN_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            let plan = FaultPlan::from_spec(&spec)?;
            install(plan);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// The injection point. Instrumented code calls this with its
/// registered site name; a `Some(action)` return means the scheduled
/// fault fires *now* and the site must realise it.
///
/// Disabled cost: one relaxed atomic load. Unregistered names never
/// fire (and are rejected at lint time).
pub fn point(site: &str) -> Option<FaultAction> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    point_slow(site)
}

#[cold]
fn point_slow(site: &str) -> Option<FaultAction> {
    let idx = site_index(site)?;
    let mut state = lock();
    let armed = state.as_mut()?;
    armed.hits[idx] += 1;
    let visit = armed.hits[idx];
    armed
        .plan
        .entries
        .iter()
        .find(|e| e.site == idx && e.hit == visit)
        .map(|e| e.action)
}

/// Number of times `site` has been visited since the current plan was
/// armed (0 when disarmed or unregistered). Test-facing: lets chaos
/// tests assert that a site was actually reached.
pub fn hits(site: &str) -> u64 {
    if !ENABLED.load(Ordering::Relaxed) {
        return 0;
    }
    let idx = match site_index(site) {
        Some(i) => i,
        None => return 0,
    };
    let state = lock();
    state.as_ref().map_or(0, |armed| armed.hits[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    /// Fault state is process-global; tests in this binary serialise
    /// on this lock so parallel `cargo test` threads don't interleave
    /// installs.
    static GUARD: TestMutex<()> = TestMutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        GUARD.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn registry_is_sorted_unique_and_dotted() {
        for w in SITES.windows(2) {
            assert!(w[0] != w[1], "duplicate site {:?}", w[0]);
        }
        for s in SITES {
            assert!(s.contains('.'), "site {s:?} is not dotted");
            assert!(is_registered(s));
        }
        assert!(!is_registered("no.such.site"));
    }

    #[test]
    fn spec_round_trips() {
        let plan = FaultPlan::from_spec(
            "flow.mcmf.augment@3=error; lp.simplex.pivot=nan;gap.rounding.match@2=deadline",
        )
        .unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(
            plan.to_string(),
            "flow.mcmf.augment@3=error;lp.simplex.pivot@1=nan;gap.rounding.match@2=deadline"
        );
        // Display output parses back to the same plan.
        assert_eq!(FaultPlan::from_spec(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn spec_rejects_malformed_input() {
        for bad in [
            "flow.mcmf.augment",             // missing action
            "flow.mcmf.augment=explode",     // unknown action
            "no.such.site=error",            // unregistered site
            "flow.mcmf.augment@zero=error",  // non-numeric hit
            "flow.mcmf.augment@0=error",     // 0 is not 1-based
        ] {
            assert!(FaultPlan::from_spec(bad).is_err(), "accepted {bad:?}");
        }
        // Empty and separator-only specs are the empty plan.
        assert!(FaultPlan::from_spec("").unwrap().is_empty());
        assert!(FaultPlan::from_spec(" ; ; ").unwrap().is_empty());
    }

    #[test]
    fn disabled_path_returns_none() {
        let _x = exclusive();
        clear();
        assert!(!is_armed());
        assert_eq!(point("flow.mcmf.augment"), None);
        assert_eq!(hits("flow.mcmf.augment"), 0);
    }

    #[test]
    fn fires_on_exact_hit_only() {
        let _x = exclusive();
        install(FaultPlan::single_at("lp.simplex.pivot", 3, FaultAction::TypedError).unwrap());
        assert_eq!(point("lp.simplex.pivot"), None);
        assert_eq!(point("lp.simplex.pivot"), None);
        assert_eq!(point("lp.simplex.pivot"), Some(FaultAction::TypedError));
        assert_eq!(point("lp.simplex.pivot"), None);
        assert_eq!(hits("lp.simplex.pivot"), 4);
        // Other sites are counted but never fire.
        assert_eq!(point("flow.mcmf.augment"), None);
        assert_eq!(hits("flow.mcmf.augment"), 1);
        clear();
    }

    #[test]
    fn reinstall_resets_counters() {
        let _x = exclusive();
        install(FaultPlan::single("core.iep.apply", FaultAction::PoisonValue).unwrap());
        assert_eq!(point("core.iep.apply"), Some(FaultAction::PoisonValue));
        install(FaultPlan::single("core.iep.apply", FaultAction::PoisonValue).unwrap());
        assert_eq!(hits("core.iep.apply"), 0);
        assert_eq!(point("core.iep.apply"), Some(FaultAction::PoisonValue));
        clear();
    }

    #[test]
    fn unregistered_point_never_fires() {
        let _x = exclusive();
        install(FaultPlan::new());
        assert_eq!(point("not.a.site"), None);
        assert_eq!(hits("not.a.site"), 0);
        clear();
    }

    #[test]
    fn single_rejects_unregistered_and_zero_hit() {
        assert!(FaultPlan::single("nope", FaultAction::TypedError).is_err());
        assert!(FaultPlan::single_at("lp.simplex.pivot", 0, FaultAction::TypedError).is_err());
    }
}
