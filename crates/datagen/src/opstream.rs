//! Random atomic-operation workloads for IEP simulations.
//!
//! Section V-C evaluates single operations in isolation; real EBSN
//! platforms face *streams* of them. [`OpStreamSampler`] draws
//! operations from a weighted mix, always relative to the **current**
//! instance and plan (so, e.g., an `η` decrease targets an event that
//! actually has attendees, and a `NewEvent` op is consistent with the
//! current user count). Drive it in a loop with
//! `IncrementalPlanner::apply`, or feed a batch to `apply_batch`.

use epplan_core::incremental::{AtomicOp, SequencedOp};
use epplan_core::model::{Event, EventId, Instance, TimeInterval, UserId};
use epplan_core::plan::Plan;
use epplan_core::solver::SolveError;
use epplan_geo::{BoundingBox, Point};
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// Relative frequencies of the operation kinds. Zero disables a kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpWeights {
    /// `η` decreased (venue shrinks).
    pub eta_decrease: f64,
    /// `η` increased (bigger venue).
    pub eta_increase: f64,
    /// `ξ` increased (organizer raises break-even).
    pub xi_increase: f64,
    /// `ξ` decreased.
    pub xi_decrease: f64,
    /// Start/end time moved.
    pub time_change: f64,
    /// Venue moved.
    pub location_change: f64,
    /// New event posted.
    pub new_event: f64,
    /// A user's interest changes (including dropping to 0).
    pub utility_change: f64,
    /// A user's budget changes.
    pub budget_change: f64,
    /// Admission fee changes (the Section VII extension).
    pub fee_change: f64,
}

impl Default for OpWeights {
    fn default() -> Self {
        // Roughly: user-driven changes dominate, organizer changes are
        // rarer, brand-new events rarer still.
        OpWeights {
            eta_decrease: 1.0,
            eta_increase: 0.5,
            xi_increase: 1.0,
            xi_decrease: 0.5,
            time_change: 1.0,
            location_change: 0.5,
            new_event: 0.3,
            utility_change: 2.0,
            budget_change: 2.0,
            fee_change: 0.3,
        }
    }
}

impl OpWeights {
    fn total(&self) -> f64 {
        self.eta_decrease
            + self.eta_increase
            + self.xi_increase
            + self.xi_decrease
            + self.time_change
            + self.location_change
            + self.new_event
            + self.utility_change
            + self.budget_change
            + self.fee_change
    }
}

/// Stateful sampler of atomic operations.
#[derive(Debug)]
pub struct OpStreamSampler {
    rng: StdRng,
    weights: OpWeights,
}

impl OpStreamSampler {
    /// Sampler with the default operation mix.
    pub fn new(seed: u64) -> Self {
        OpStreamSampler {
            rng: StdRng::seed_from_u64(seed),
            weights: OpWeights::default(),
        }
    }

    /// Sampler with a custom mix; panics if every weight is zero.
    pub fn with_weights(seed: u64, weights: OpWeights) -> Self {
        assert!(weights.total() > 0.0, "all operation weights are zero");
        OpStreamSampler {
            rng: StdRng::seed_from_u64(seed),
            weights,
        }
    }

    /// Bounding box of all event venues. `next_op` asserts events
    /// exist before calling this, so the empty (`None`) arm is
    /// unreachable; a degenerate box at the origin keeps the path
    /// total instead of panicking.
    fn event_bbox(instance: &Instance) -> BoundingBox {
        BoundingBox::of(instance.events().iter().map(|e| &e.location))
            .unwrap_or_else(|| BoundingBox::new(Point::new(0.0, 0.0), Point::new(0.0, 0.0)))
    }

    fn random_event(&mut self, instance: &Instance) -> EventId {
        EventId(self.rng.gen_range(0..instance.n_events()) as u32)
    }

    fn random_user(&mut self, instance: &Instance) -> UserId {
        UserId(self.rng.gen_range(0..instance.n_users()) as u32)
    }

    /// Draws the next operation, consistent with the current state.
    /// Panics on instances without users or events.
    pub fn next_op(&mut self, instance: &Instance, plan: &Plan) -> AtomicOp {
        assert!(instance.n_users() > 0, "no users to operate on");
        assert!(instance.n_events() > 0, "no events to operate on");
        let w = self.weights.clone();
        let mut x = self.rng.gen_range(0.0..w.total());
        let mut pick = |weight: f64| -> bool {
            if x < weight {
                true
            } else {
                x -= weight;
                false
            }
        };

        if pick(w.eta_decrease) {
            let event = self.random_event(instance);
            let n = plan.attendance(event);
            let new_upper = if n > 1 {
                self.rng.gen_range(1..n)
            } else {
                n.max(1)
            };
            return AtomicOp::EtaDecrease { event, new_upper };
        }
        if pick(w.eta_increase) {
            let event = self.random_event(instance);
            let bump = self.rng.gen_range(1..=10);
            return AtomicOp::EtaIncrease {
                event,
                new_upper: instance.event(event).upper + bump,
            };
        }
        if pick(w.xi_increase) {
            let event = self.random_event(instance);
            let n = plan.attendance(event);
            let new_lower = (n + self.rng.gen_range(1..=3)).min(instance.event(event).upper);
            return AtomicOp::XiIncrease { event, new_lower };
        }
        if pick(w.xi_decrease) {
            let event = self.random_event(instance);
            return AtomicOp::XiDecrease {
                event,
                new_lower: instance.event(event).lower / 2,
            };
        }
        if pick(w.time_change) {
            let event = self.random_event(instance);
            let anchor = self.random_event(instance);
            let base = instance.event(anchor).time;
            let dur = instance.event(event).time.duration();
            let start = base.start.saturating_add(self.rng.gen_range(0..45));
            return AtomicOp::TimeChange {
                event,
                new_time: TimeInterval::new(start, start + dur),
            };
        }
        if pick(w.location_change) {
            let event = self.random_event(instance);
            let bb = Self::event_bbox(instance);
            return AtomicOp::LocationChange {
                event,
                new_location: Point::new(
                    self.rng.gen_range(bb.min.x..=bb.max.x.max(bb.min.x + 1e-9)),
                    self.rng.gen_range(bb.min.y..=bb.max.y.max(bb.min.y + 1e-9)),
                ),
            };
        }
        if pick(w.new_event) {
            let center = Self::event_bbox(instance).center();
            // Place the new event after everything else on the
            // timeline (the asserted-nonempty event set makes the
            // `max()` fallback unreachable).
            let latest = instance
                .events()
                .iter()
                .map(|e| e.time.end)
                .max()
                .unwrap_or(0);
            let start = latest + self.rng.gen_range(10..120);
            let dur = self.rng.gen_range(60..180);
            let upper = self.rng.gen_range(10..40);
            let lower = self.rng.gen_range(0..=upper / 3);
            let utilities: Vec<f64> = (0..instance.n_users())
                .map(|_| {
                    if self.rng.gen_bool(0.3) {
                        self.rng.gen_range(0.1..1.0)
                    } else {
                        0.0
                    }
                })
                .collect();
            return AtomicOp::NewEvent {
                event: Event::new(center, lower, upper, TimeInterval::new(start, start + dur)),
                utilities,
            };
        }
        if pick(w.utility_change) {
            let user = self.random_user(instance);
            let event = self.random_event(instance);
            let new_utility = if self.rng.gen_bool(0.4) {
                0.0 // the "can no longer attend" case
            } else {
                self.rng.gen_range(0.05..1.0)
            };
            return AtomicOp::UtilityChange {
                user,
                event,
                new_utility,
            };
        }
        if pick(w.budget_change) {
            let user = self.random_user(instance);
            let old = instance.user(user).budget;
            let factor = self.rng.gen_range(0.3..1.7);
            return AtomicOp::BudgetChange {
                user,
                new_budget: old * factor,
            };
        }
        // Remaining mass: fee change.
        let event = self.random_event(instance);
        AtomicOp::FeeChange {
            event,
            new_fee: self.rng.gen_range(0.0..instance.user(UserId(0)).budget / 2.0),
        }
    }

    /// Draws `n` operations, applying each to an evolving copy of the
    /// state so later operations stay consistent (e.g. they may target
    /// events created by earlier `NewEvent` ops). Returns the ops.
    pub fn stream(
        &mut self,
        instance: &Instance,
        plan: &Plan,
        n: usize,
    ) -> Vec<AtomicOp> {
        use epplan_core::incremental::IncrementalPlanner;
        let planner = IncrementalPlanner;
        let mut inst = instance.clone();
        let mut cur = plan.clone();
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            let op = self.next_op(&inst, &cur);
            let out = planner.apply(&inst, &cur, &op);
            inst = out.instance;
            cur = out.plan;
            ops.push(op);
        }
        ops
    }

    /// [`OpStreamSampler::stream`], with each operation tagged by a
    /// strictly monotonic stream id starting at `first_id` (≥ 1; id 0
    /// is reserved for "nothing applied yet"). Sequenced streams are
    /// the durable/replayable form — `epplan serve` skips any id at or
    /// below its high-water mark, so replaying a whole stream after a
    /// crash is idempotent. The result always passes
    /// [`epplan_core::incremental::validate_sequence`].
    ///
    /// Panics if `first_id` is 0 or the ids would overflow `u64`.
    pub fn sequenced_stream(
        &mut self,
        instance: &Instance,
        plan: &Plan,
        n: usize,
        first_id: u64,
    ) -> Vec<SequencedOp> {
        assert!(first_id >= 1, "stream id 0 is reserved");
        assert!(
            u64::MAX - first_id >= n as u64,
            "stream ids would overflow u64"
        );
        self.stream(instance, plan, n)
            .into_iter()
            .enumerate()
            .map(|(k, op)| SequencedOp::new(first_id + k as u64, op))
            .collect()
    }

    /// [`OpStreamSampler::sequenced_stream`] with a bursty arrival
    /// pattern: ids come in dense runs of `burst.len`, and after each
    /// run the next id jumps ahead by `burst.gap`. The id gaps model
    /// quiet periods between bursts — `epplan serve`'s ops-denominated
    /// admission control drains accumulated staleness across them, so
    /// this is the reproducible overload workload (deterministic from
    /// the sampler seed, like every other stream).
    ///
    /// Panics if `first_id` is 0 or the ids would overflow `u64`.
    pub fn sequenced_burst_stream(
        &mut self,
        instance: &Instance,
        plan: &Plan,
        n: usize,
        first_id: u64,
        burst: BurstSpec,
    ) -> Vec<SequencedOp> {
        assert!(first_id >= 1, "stream id 0 is reserved");
        let n_gaps = (n as u64) / burst.len;
        let span = match n_gaps
            .checked_mul(burst.gap)
            .and_then(|gaps| (n as u64).checked_add(gaps))
        {
            Some(span) => span,
            None => panic!("burst ids overflow u64"),
        };
        assert!(u64::MAX - first_id >= span, "stream ids would overflow u64");
        self.stream(instance, plan, n)
            .into_iter()
            .enumerate()
            .map(|(k, op)| {
                let k = k as u64;
                SequencedOp::new(first_id + k + (k / burst.len) * burst.gap, op)
            })
            .collect()
    }
}

/// A bursty arrival preset: `len` dense ids, then a gap of `gap` ids
/// before the next burst. Parsed from the CLI `--burst LEN,GAP` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstSpec {
    /// Ops per burst (≥ 1).
    pub len: u64,
    /// Id gap between consecutive bursts.
    pub gap: u64,
}

impl BurstSpec {
    /// Parses `"LEN,GAP"` (two base-10 integers, `LEN ≥ 1`). A
    /// malformed spec is a typed `BadInput` failure, so the CLI maps
    /// it onto the invalid-instance exit code instead of panicking.
    pub fn parse(spec: &str) -> Result<BurstSpec, SolveError> {
        let bad = |why: &str| {
            SolveError::bad_input(
                "datagen.opstream",
                format!("malformed burst spec {spec:?} (want LEN,GAP): {why}"),
            )
        };
        let (len_s, gap_s) = spec
            .split_once(',')
            .ok_or_else(|| bad("missing comma"))?;
        let len: u64 = len_s
            .trim()
            .parse()
            .map_err(|e| bad(&format!("bad LEN: {e}")))?;
        let gap: u64 = gap_s
            .trim()
            .parse()
            .map_err(|e| bad(&format!("bad GAP: {e}")))?;
        if len == 0 {
            return Err(bad("LEN must be at least 1"));
        }
        Ok(BurstSpec { len, gap })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorConfig};
    use epplan_core::incremental::IncrementalPlanner;
    use epplan_core::solver::{GepcSolver, GreedySolver};

    fn setup() -> (Instance, Plan) {
        let inst = generate(&GeneratorConfig {
            n_users: 40,
            n_events: 10,
            mean_lower: 2,
            mean_upper: 8,
            ..Default::default()
        });
        let plan = GreedySolver::seeded(1).solve(&inst).plan;
        (inst, plan)
    }

    #[test]
    fn deterministic_for_seed() {
        let (inst, plan) = setup();
        let a = OpStreamSampler::new(5).stream(&inst, &plan, 10);
        let b = OpStreamSampler::new(5).stream(&inst, &plan, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn burst_stream_ids_jump_by_gap_between_dense_runs() {
        use epplan_core::incremental::validate_sequence;
        let (inst, plan) = setup();
        let burst = BurstSpec::parse("3,10").unwrap();
        let seq = OpStreamSampler::new(5).sequenced_burst_stream(&inst, &plan, 8, 1, burst);
        let ids: Vec<u64> = seq.iter().map(|s| s.id).collect();
        // Bursts of 3 dense ids, then a jump of 10.
        assert_eq!(ids, vec![1, 2, 3, 14, 15, 16, 27, 28]);
        validate_sequence(&seq).unwrap();

        // Deterministic from the seed, and the op payloads match the
        // plain stream exactly (only the ids differ).
        let again = OpStreamSampler::new(5).sequenced_burst_stream(&inst, &plan, 8, 1, burst);
        assert_eq!(seq, again);
        let plain = OpStreamSampler::new(5).sequenced_stream(&inst, &plan, 8, 1);
        let ops: Vec<_> = seq.iter().map(|s| &s.op).collect();
        let plain_ops: Vec<_> = plain.iter().map(|s| &s.op).collect();
        assert_eq!(ops, plain_ops);

        // A zero gap degenerates to the dense stream ids.
        let dense = OpStreamSampler::new(5).sequenced_burst_stream(
            &inst,
            &plan,
            8,
            1,
            BurstSpec::parse("3,0").unwrap(),
        );
        let dense_ids: Vec<u64> = dense.iter().map(|s| s.id).collect();
        assert_eq!(dense_ids, (1..=8).collect::<Vec<u64>>());
    }

    #[test]
    fn malformed_burst_specs_are_typed_bad_input() {
        use epplan_core::solver::FailureKind;
        for spec in ["", "5", "a,b", "3;4", "0,7", ",", "4,-1", "4,"] {
            let err = BurstSpec::parse(spec)
                .expect_err(&format!("spec {spec:?} should be rejected"));
            assert_eq!(err.kind, FailureKind::BadInput, "spec {spec:?}");
            assert!(err.to_string().contains("burst spec"), "spec {spec:?}");
        }
        assert_eq!(
            BurstSpec::parse(" 64 , 16 ").unwrap(),
            BurstSpec { len: 64, gap: 16 }
        );
    }

    #[test]
    fn stream_is_replayable_via_batch() {
        let (inst, plan) = setup();
        let ops = OpStreamSampler::new(9).stream(&inst, &plan, 15);
        let out = IncrementalPlanner.apply_batch(&inst, &plan, &ops);
        assert!(out.plan.validate(&out.instance).hard_ok());
        assert_eq!(out.step_difs.len(), 15);
    }

    #[test]
    fn disabled_kinds_never_sampled() {
        let (inst, plan) = setup();
        let weights = OpWeights {
            eta_decrease: 0.0,
            eta_increase: 0.0,
            xi_increase: 0.0,
            xi_decrease: 0.0,
            time_change: 0.0,
            location_change: 0.0,
            new_event: 0.0,
            utility_change: 0.0,
            budget_change: 1.0,
            fee_change: 0.0,
        };
        let mut sampler = OpStreamSampler::with_weights(3, weights);
        for _ in 0..20 {
            let op = sampler.next_op(&inst, &plan);
            assert!(matches!(op, AtomicOp::BudgetChange { .. }), "{op:?}");
        }
    }

    #[test]
    #[should_panic(expected = "all operation weights are zero")]
    fn zero_weights_panic() {
        let weights = OpWeights {
            eta_decrease: 0.0,
            eta_increase: 0.0,
            xi_increase: 0.0,
            xi_decrease: 0.0,
            time_change: 0.0,
            location_change: 0.0,
            new_event: 0.0,
            utility_change: 0.0,
            budget_change: 0.0,
            fee_change: 0.0,
        };
        let _ = OpStreamSampler::with_weights(1, weights);
    }

    #[test]
    fn new_events_extend_later_ops_range() {
        let (inst, plan) = setup();
        let weights = OpWeights {
            new_event: 5.0,
            ..Default::default()
        };
        let mut sampler = OpStreamSampler::with_weights(11, weights);
        let ops = sampler.stream(&inst, &plan, 30);
        let n_new = ops
            .iter()
            .filter(|o| matches!(o, AtomicOp::NewEvent { .. }))
            .count();
        assert!(n_new >= 2, "expected several NewEvent ops, got {n_new}");
        // Replay must succeed even with the growing event set.
        let out = IncrementalPlanner.apply_batch(&inst, &plan, &ops);
        assert_eq!(out.instance.n_events(), inst.n_events() + n_new);
    }

    #[test]
    fn sequenced_stream_is_strictly_monotonic_and_validates() {
        use epplan_core::incremental::validate_sequence;
        let (inst, plan) = setup();
        let seq = OpStreamSampler::new(5).sequenced_stream(&inst, &plan, 25, 1);
        assert_eq!(seq.len(), 25);
        validate_sequence(&seq).expect("generator output must validate");
        for (k, sop) in seq.iter().enumerate() {
            assert_eq!(sop.id, 1 + k as u64, "ids are dense from first_id");
        }
        // Ids carry the configured offset and the ops match the
        // unsequenced stream for the same seed.
        let offset = OpStreamSampler::new(5).sequenced_stream(&inst, &plan, 25, 100);
        assert_eq!(offset[0].id, 100);
        assert_eq!(offset[24].id, 124);
        let plain = OpStreamSampler::new(5).stream(&inst, &plan, 25);
        let unwrapped: Vec<_> = seq.into_iter().map(|s| s.op).collect();
        assert_eq!(unwrapped, plain);
    }

    #[test]
    fn duplicate_id_replay_is_rejected_at_validation_time() {
        use epplan_core::incremental::validate_sequence;
        let (inst, plan) = setup();
        let mut seq = OpStreamSampler::new(7).sequenced_stream(&inst, &plan, 10, 1);
        // A double-applied record (the WAL-replay hazard this guards).
        seq.push(seq[4].clone());
        let err = validate_sequence(&seq).unwrap_err();
        assert_eq!(err.kind, epplan_core::solver::FailureKind::BadInput);
    }

    #[test]
    #[should_panic(expected = "stream id 0 is reserved")]
    fn sequenced_stream_rejects_reserved_first_id() {
        let (inst, plan) = setup();
        let _ = OpStreamSampler::new(1).sequenced_stream(&inst, &plan, 1, 0);
    }

    #[test]
    fn all_default_kinds_eventually_appear() {
        let (inst, plan) = setup();
        let mut sampler = OpStreamSampler::new(17);
        let ops = sampler.stream(&inst, &plan, 250);
        // BTreeSet over a stable per-kind index — no hash-order
        // iteration, even in tests (determinism/hash-iter).
        fn kind_index(op: &AtomicOp) -> u8 {
            match op {
                AtomicOp::EtaDecrease { .. } => 0,
                AtomicOp::EtaIncrease { .. } => 1,
                AtomicOp::XiIncrease { .. } => 2,
                AtomicOp::XiDecrease { .. } => 3,
                AtomicOp::TimeChange { .. } => 4,
                AtomicOp::LocationChange { .. } => 5,
                AtomicOp::NewEvent { .. } => 6,
                AtomicOp::UtilityChange { .. } => 7,
                AtomicOp::BudgetChange { .. } => 8,
                AtomicOp::FeeChange { .. } => 9,
            }
        }
        let kinds: std::collections::BTreeSet<u8> = ops.iter().map(kind_index).collect();
        assert!(kinds.len() >= 9, "only {} distinct kinds", kinds.len());
    }
}
