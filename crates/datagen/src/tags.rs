//! The interest-tag utility model.
//!
//! Meetup users select interest tags at registration; events are
//! created by groups, and groups carry tag documents. The paper derives
//! `μ(u_i, e_j)` from "the tag document of users, the tag document of
//! events, and the group document of events" (\[1\], \[2\]). This module
//! reproduces that pipeline synthetically:
//!
//! * a vocabulary of `K` tags with Zipf-like popularity (a few tags are
//!   very popular — "music", "sports" — and a long tail is niche);
//! * each user samples a small popularity-weighted tag set;
//! * each *group* samples a tag set; every event belongs to one group
//!   and inherits its tags;
//! * `μ(u, e) = |T_u ∩ T_{g(e)}| / |T_u ∪ T_{g(e)}|` (Jaccard), the
//!   standard similarity used for tag documents.

use rand::prelude::*;

/// A sampled tag universe with user and group tag sets.
#[derive(Debug, Clone)]
pub struct TagModel {
    /// Tag sets per user (sorted).
    pub user_tags: Vec<Vec<u32>>,
    /// Tag sets per group (sorted).
    pub group_tags: Vec<Vec<u32>>,
    /// Group of each event.
    pub event_group: Vec<u32>,
}

impl TagModel {
    /// Samples the whole model.
    pub fn sample(
        rng: &mut impl Rng,
        n_tags: usize,
        n_users: usize,
        n_groups: usize,
        n_events: usize,
        tags_per_user: (usize, usize),
        tags_per_group: (usize, usize),
    ) -> Self {
        assert!(n_tags > 0, "empty tag vocabulary");
        assert!(n_groups > 0, "need at least one group");
        // Zipf weights: w_k = 1 / (k+1).
        let weights: Vec<f64> = (0..n_tags).map(|k| 1.0 / (k as f64 + 1.0)).collect();
        let draw_set = |rng: &mut dyn RngCore, range: (usize, usize)| -> Vec<u32> {
            let lo = range.0.max(1);
            let hi = range.1.max(lo).min(n_tags);
            let k = if lo == hi {
                lo
            } else {
                // Inclusive range sample.
                lo + (rng.next_u64() as usize) % (hi - lo + 1)
            };
            // Weighted sampling without replacement.
            let mut chosen = Vec::with_capacity(k);
            let mut avail: Vec<(u32, f64)> = weights
                .iter()
                .enumerate()
                .map(|(t, &w)| (t as u32, w))
                .collect();
            for _ in 0..k {
                let total: f64 = avail.iter().map(|&(_, w)| w).sum();
                let mut x = (rng.next_u64() as f64 / u64::MAX as f64) * total;
                let mut pick = avail.len() - 1;
                for (idx, &(_, w)) in avail.iter().enumerate() {
                    if x < w {
                        pick = idx;
                        break;
                    }
                    x -= w;
                }
                chosen.push(avail.swap_remove(pick).0);
            }
            chosen.sort_unstable();
            chosen
        };

        let user_tags: Vec<Vec<u32>> =
            (0..n_users).map(|_| draw_set(rng, tags_per_user)).collect();
        let group_tags: Vec<Vec<u32>> = (0..n_groups)
            .map(|_| draw_set(rng, tags_per_group))
            .collect();
        let event_group: Vec<u32> = (0..n_events)
            .map(|_| rng.gen_range(0..n_groups) as u32)
            .collect();
        TagModel {
            user_tags,
            group_tags,
            event_group,
        }
    }

    /// Jaccard similarity of two sorted tag sets.
    pub fn jaccard(a: &[u32], b: &[u32]) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 0.0;
        }
        let mut i = 0;
        let mut j = 0;
        let mut inter = 0usize;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = a.len() + b.len() - inter;
        inter as f64 / union as f64
    }

    /// `μ(user, event)` under the model.
    pub fn utility(&self, user: usize, event: usize) -> f64 {
        let g = self.event_group[event] as usize;
        Self::jaccard(&self.user_tags[user], &self.group_tags[g])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn jaccard_basics() {
        assert_eq!(TagModel::jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(TagModel::jaccard(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(TagModel::jaccard(&[1, 2, 3], &[2, 3, 4]), 0.5);
        assert_eq!(TagModel::jaccard(&[], &[]), 0.0);
        assert_eq!(TagModel::jaccard(&[], &[1]), 0.0);
    }

    #[test]
    fn sample_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = TagModel::sample(&mut rng, 30, 10, 4, 20, (2, 5), (2, 4));
        assert_eq!(m.user_tags.len(), 10);
        assert_eq!(m.group_tags.len(), 4);
        assert_eq!(m.event_group.len(), 20);
        for tags in m.user_tags.iter().chain(&m.group_tags) {
            assert!(!tags.is_empty() && tags.len() <= 5);
            assert!(tags.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            assert!(tags.iter().all(|&t| t < 30));
        }
        for &g in &m.event_group {
            assert!((g as usize) < 4);
        }
    }

    #[test]
    fn utilities_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = TagModel::sample(&mut rng, 20, 15, 5, 25, (1, 4), (1, 4));
        for u in 0..15 {
            for e in 0..25 {
                let mu = m.utility(u, e);
                assert!((0.0..=1.0).contains(&mu));
            }
        }
    }

    #[test]
    fn popular_tags_appear_more_often() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = TagModel::sample(&mut rng, 50, 400, 4, 4, (3, 3), (2, 2));
        let count = |t: u32| m.user_tags.iter().filter(|ts| ts.contains(&t)).count();
        // Tag 0 (weight 1) should be far more common than tag 40
        // (weight ~1/41).
        assert!(count(0) > count(40) * 2, "{} vs {}", count(0), count(40));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = TagModel::sample(&mut StdRng::seed_from_u64(9), 30, 8, 3, 12, (2, 4), (2, 4));
        let b = TagModel::sample(&mut StdRng::seed_from_u64(9), 30, 8, 3, 12, (2, 4), (2, 4));
        assert_eq!(a.user_tags, b.user_tags);
        assert_eq!(a.group_tags, b.group_tags);
        assert_eq!(a.event_group, b.event_group);
    }
}
