//! Instance persistence: JSON snapshots for reproducible benchmarks.

use epplan_core::model::Instance;
use std::io;
use std::path::Path;

/// Serializes `instance` to pretty-printed JSON at `path`.
pub fn save_instance(instance: &Instance, path: &Path) -> io::Result<()> {
    let json = serde_json::to_string_pretty(instance)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Loads an instance previously written by [`save_instance`].
pub fn load_instance(path: &Path) -> io::Result<Instance> {
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorConfig};

    #[test]
    fn roundtrip() {
        let cfg = GeneratorConfig {
            n_users: 12,
            n_events: 5,
            ..Default::default()
        };
        let inst = generate(&cfg);
        let dir = std::env::temp_dir().join("epplan-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("instance.json");
        save_instance(&inst, &path).unwrap();
        let back = load_instance(&path).unwrap();
        assert_eq!(inst, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_instance(Path::new("/nonexistent/epplan.json")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn load_garbage_errors() {
        let dir = std::env::temp_dir().join("epplan-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json at all").unwrap();
        let err = load_instance(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }
}
