//! City presets matching Table IV of the paper.

use crate::GeneratorConfig;
use epplan_core::model::Instance;

/// The four Meetup cities of the paper's evaluation (Table IV), with
/// their exact user and event counts. The remaining aggregates (mean
/// `ξ = 10`, mean `η = 50`, conflict ratio `0.25`) are the generator
/// defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum City {
    /// 113 users, 16 events.
    Beijing,
    /// 2012 users, 225 events — the paper's largest city.
    Vancouver,
    /// 569 users, 37 events.
    Auckland,
    /// 1500 users, 87 events.
    Singapore,
}

impl City {
    /// All four presets, in the paper's table order.
    pub const ALL: [City; 4] = [
        City::Beijing,
        City::Vancouver,
        City::Auckland,
        City::Singapore,
    ];

    /// `(|U|, |E|)` from Table IV.
    pub fn sizes(self) -> (usize, usize) {
        match self {
            City::Beijing => (113, 16),
            City::Vancouver => (2012, 225),
            City::Auckland => (569, 37),
            City::Singapore => (1500, 87),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            City::Beijing => "Beijing",
            City::Vancouver => "Vancouver",
            City::Auckland => "Auckland",
            City::Singapore => "Singapore",
        }
    }

    /// Generator configuration for this city (seeded deterministically
    /// per city so every run of the harness sees the same instance).
    pub fn config(self) -> GeneratorConfig {
        let (n_users, n_events) = self.sizes();
        GeneratorConfig {
            n_users,
            n_events,
            seed: 0x5EED_0000 + self as u64,
            ..Default::default()
        }
    }

    /// Generates the synthetic stand-in instance for this city.
    pub fn instance(self) -> Instance {
        crate::generate(&self.config())
    }
}

impl std::fmt::Display for City {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_table_iv() {
        assert_eq!(City::Beijing.sizes(), (113, 16));
        assert_eq!(City::Vancouver.sizes(), (2012, 225));
        assert_eq!(City::Auckland.sizes(), (569, 37));
        assert_eq!(City::Singapore.sizes(), (1500, 87));
    }

    #[test]
    fn beijing_instance_has_table_shape() {
        let inst = City::Beijing.instance();
        assert_eq!(inst.n_users(), 113);
        assert_eq!(inst.n_events(), 16);
    }

    #[test]
    fn cities_have_distinct_seeds() {
        let seeds: Vec<u64> = City::ALL.iter().map(|c| c.config().seed).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn display_names() {
        assert_eq!(City::Auckland.to_string(), "Auckland");
    }
}
