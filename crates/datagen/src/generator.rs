//! The instance generator.

use crate::{GeneratorConfig, TagModel};
use epplan_core::model::{Event, Instance, TimeInterval, User, UtilityMatrix};
use epplan_geo::Point;
use rand::prelude::*;

/// Users per parallel utility-row chunk (each row costs `m` Jaccard
/// evaluations).
const UTILITY_ROW_MIN_CHUNK: usize = 32;

/// Generates a synthetic EBSN instance from `cfg`. Deterministic for a
/// fixed seed.
///
/// Timeline construction: the configured `conflict_ratio` fraction of
/// events is grouped into overlapping clusters of 2–3 (each member
/// conflicts with its cluster-mates); all remaining events — and the
/// clusters themselves — are laid out in disjoint time slots separated
/// by at least one minute, so no *unintended* conflicts arise. The
/// horizon stretches as far as needed; the paper's `H = 1 day` is a
/// planning convention, not a generator constraint (its Meetup events
/// likewise span many days).
pub fn generate(cfg: &GeneratorConfig) -> Instance {
    assert!(cfg.n_users > 0, "need at least one user");
    assert!(cfg.extent > 0.0, "non-positive extent");
    assert!(
        (0.0..=1.0).contains(&cfg.conflict_ratio),
        "conflict ratio outside [0, 1]"
    );
    assert!(
        cfg.duration_range.0 > 0 && cfg.duration_range.0 <= cfg.duration_range.1,
        "bad duration range"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let m = cfg.n_events;
    let n = cfg.n_users;

    // --- locations -------------------------------------------------
    // Neighborhood centers for the clustered spatial model (empty for
    // the uniform model).
    let centers: Vec<Point> = match cfg.spatial {
        crate::SpatialModel::Uniform => Vec::new(),
        crate::SpatialModel::Clustered { clusters, spread } => {
            assert!(clusters >= 1, "need at least one cluster");
            assert!(spread > 0.0, "non-positive cluster spread");
            (0..clusters)
                .map(|_| {
                    Point::new(
                        rng.gen_range(0.0..cfg.extent),
                        rng.gen_range(0.0..cfg.extent),
                    )
                })
                .collect()
        }
    };
    let random_point = |rng: &mut StdRng| -> Point {
        match cfg.spatial {
            crate::SpatialModel::Uniform => Point::new(
                rng.gen_range(0.0..cfg.extent),
                rng.gen_range(0.0..cfg.extent),
            ),
            crate::SpatialModel::Clustered { spread, .. } => {
                let c = centers[rng.gen_range(0..centers.len())];
                // Box–Muller Gaussian around the center, clamped to the
                // city square.
                let sigma = spread * cfg.extent;
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                let r = (-2.0 * u1.ln()).sqrt() * sigma;
                Point::new(
                    (c.x + r * u2.cos()).clamp(0.0, cfg.extent),
                    (c.y + r * u2.sin()).clamp(0.0, cfg.extent),
                )
            }
        }
    };
    let user_locs: Vec<Point> = (0..n).map(|_| random_point(&mut rng)).collect();
    let event_locs: Vec<Point> = (0..m).map(|_| random_point(&mut rng)).collect();

    // --- budgets -----------------------------------------------------
    let users: Vec<User> = user_locs
        .into_iter()
        .map(|loc| {
            let frac = rng.gen_range(cfg.budget_frac.0..=cfg.budget_frac.1);
            User::new(loc, frac * cfg.extent)
        })
        .collect();

    // --- timeline with controlled conflict ratio --------------------
    let n_conflicting = ((cfg.conflict_ratio * m as f64).round() as usize).min(m);
    // A single "conflicting" event is impossible; round down to 0.
    let n_conflicting = if n_conflicting < 2 { 0 } else { n_conflicting };
    let mut ids: Vec<usize> = (0..m).collect();
    ids.shuffle(&mut rng);
    let (conflicting, solo) = ids.split_at(n_conflicting);

    // Build clusters of 2–3 conflicting events.
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let mut it = conflicting.iter().copied().peekable();
    while let Some(a) = it.next() {
        let mut cluster = vec![a];
        // Prefer pairs; occasionally triples. Never leave a singleton:
        // merge a trailing lone event into the previous cluster.
        if let Some(b) = it.next() {
            cluster.push(b);
            if rng.gen_bool(0.3) {
                if let Some(c) = it.next() {
                    cluster.push(c);
                }
            }
        } else if let Some(prev) = clusters.last_mut() {
            prev.push(a);
            continue;
        } else {
            // Single conflicting event with no partner: drop the
            // requirement (conflict ratio rounds to zero here).
            clusters.push(cluster);
            continue;
        }
        clusters.push(cluster);
    }
    if it.peek().is_some() {
        unreachable!("iterator fully consumed above");
    }

    let slot_width = cfg.duration_range.1 + 2;
    let mut times: Vec<Option<TimeInterval>> = vec![None; m];
    let mut slot_start: u32 = 8 * 60; // start the timeline at 08:00
    let place = |slot_start: u32, rng: &mut StdRng| -> TimeInterval {
        let dur = rng.gen_range(cfg.duration_range.0..=cfg.duration_range.1);
        let latest = slot_start + (slot_width - 2 - dur).min(20);
        let s = rng.gen_range(slot_start..=latest);
        TimeInterval::new(s, s + dur)
    };
    // Clusters: all members overlap. Anchor the first member at the
    // slot start with maximal duration; others start inside it.
    for cluster in &clusters {
        let anchor_dur = cfg.duration_range.1;
        let anchor = TimeInterval::new(slot_start, slot_start + anchor_dur);
        times[cluster[0]] = Some(anchor);
        for &e in &cluster[1..] {
            let dur = rng.gen_range(cfg.duration_range.0..=cfg.duration_range.1);
            // Start strictly inside the anchor so they always overlap.
            let s = rng.gen_range(slot_start..slot_start + anchor_dur.min(30));
            times[e] = Some(TimeInterval::new(s, s + dur));
        }
        // Clusters may outrun the anchor end by up to a duration; leave
        // a full extra slot of space.
        slot_start += 2 * slot_width;
    }
    for &e in solo {
        times[e] = Some(place(slot_start, &mut rng));
        slot_start += slot_width;
    }

    // --- participation bounds ---------------------------------------
    let events: Vec<Event> = (0..m)
        .map(|j| {
            let upper_lo = (cfg.mean_upper as f64 * 0.6).round() as u32;
            let upper_hi = (cfg.mean_upper as f64 * 1.4).round() as u32;
            let upper = rng.gen_range(upper_lo.max(1)..=upper_hi.max(1));
            let lower = rng.gen_range(0..=(2 * cfg.mean_lower)).min(upper);
            Event::new(
                event_locs[j],
                lower,
                upper,
                // Every index was placed by the cluster/solo loops
                // above; a default slot keeps the path panic-free if
                // that invariant ever breaks.
                times[j].unwrap_or_else(|| {
                    TimeInterval::new(slot_start, slot_start + cfg.duration_range.1)
                }),
            )
        })
        .collect();

    // --- utilities ---------------------------------------------------
    let tag_model = TagModel::sample(
        &mut rng,
        cfg.n_tags,
        n,
        cfg.effective_groups(),
        m,
        cfg.tags_per_user,
        cfg.tags_per_group,
    );
    // All randomness is consumed above (TagModel::sample draws from the
    // sequential RNG); the n×m utility fill is a pure function of the
    // tag model, so the rows fan out across workers. Row order — and
    // with it the generated instance — is independent of the thread
    // count.
    if epplan_obs::metrics_enabled() {
        epplan_obs::gauge_set("datagen.par.threads", epplan_par::threads() as f64);
        epplan_obs::gauge_set(
            "datagen.par.chunks",
            epplan_par::chunk_count(n, UTILITY_ROW_MIN_CHUNK) as f64,
        );
    }
    let utilities = if cfg.candidate_pruned {
        // Emit the CSR layout directly: only events inside a user's
        // `B/2` window can ever be candidates (generated events are
        // fee-free), so μ is computed for the window alone and the
        // matrix is O(candidates) in memory instead of O(n·m) — the
        // |U| ≥ 10⁵ bench grids depend on this. The probe radius and
        // the in-window μ values match the dense path exactly, so the
        // derived candidate lists — and with them every solver
        // result — are identical to the unpruned instance.
        let grid = epplan_geo::GridIndex::build(&event_locs);
        let sparse_rows: Vec<Vec<(u32, f64)>> =
            epplan_par::par_range_map(n, UTILITY_ROW_MIN_CHUNK, |range| {
                range
                    .map(|u| {
                        let radius = users[u].budget * 0.5 + 1e-9;
                        let mut window = grid.within(&users[u].location, radius);
                        window.sort_unstable();
                        window
                            .into_iter()
                            .filter_map(|e| {
                                let mu = tag_model.utility(u, e);
                                (mu > 0.0).then_some((e as u32, mu))
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        match UtilityMatrix::from_sparse_rows(m, &sparse_rows) {
            Ok(mat) => mat,
            Err(_) => unreachable!("window columns are sorted and μ ∈ [0, 1]"),
        }
    } else {
        let rows: Vec<Vec<f64>> =
            epplan_par::par_range_map(n, UTILITY_ROW_MIN_CHUNK, |users| {
                users
                    .map(|u| (0..m).map(|e| tag_model.utility(u, e)).collect::<Vec<f64>>())
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        match UtilityMatrix::from_rows(rows) {
            Ok(mat) => mat,
            Err(_) => unreachable!("generated rows are rectangular by construction"),
        }
    };

    match Instance::new(users, events, utilities) {
        Ok(inst) => inst,
        Err(_) => unreachable!("generated matrix matches the user/event counts"),
    }
}

/// Measures the realized conflict ratio of an instance: the fraction
/// of events that conflict with at least one other event.
pub fn conflict_ratio(instance: &Instance) -> f64 {
    let m = instance.n_events();
    if m == 0 {
        return 0.0;
    }
    let conflicted = instance
        .event_ids()
        .filter(|&a| {
            instance
                .event_ids()
                .any(|b| a != b && instance.conflicts(a, b))
        })
        .count();
    conflicted as f64 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = GeneratorConfig {
            n_users: 30,
            n_events: 12,
            ..Default::default()
        };
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GeneratorConfig {
            n_users: 30,
            n_events: 12,
            ..Default::default()
        };
        assert_ne!(generate(&cfg), generate(&cfg.with_seed(43)));
    }

    #[test]
    fn shapes_match_config() {
        let cfg = GeneratorConfig {
            n_users: 25,
            n_events: 8,
            ..Default::default()
        };
        let inst = generate(&cfg);
        assert_eq!(inst.n_users(), 25);
        assert_eq!(inst.n_events(), 8);
    }

    #[test]
    fn conflict_ratio_close_to_target() {
        let cfg = GeneratorConfig {
            n_users: 10,
            n_events: 100,
            conflict_ratio: 0.25,
            ..Default::default()
        };
        let inst = generate(&cfg);
        let r = conflict_ratio(&inst);
        assert!(
            (r - 0.25).abs() <= 0.05,
            "realized conflict ratio {r} far from 0.25"
        );
    }

    #[test]
    fn zero_conflict_ratio_gives_conflict_free_timeline() {
        let cfg = GeneratorConfig {
            n_users: 5,
            n_events: 40,
            conflict_ratio: 0.0,
            ..Default::default()
        };
        let inst = generate(&cfg);
        assert_eq!(conflict_ratio(&inst), 0.0);
    }

    #[test]
    fn bounds_have_requested_means() {
        let cfg = GeneratorConfig {
            n_users: 5,
            n_events: 400,
            ..Default::default()
        };
        let inst = generate(&cfg);
        let mean_lower: f64 = inst.events().iter().map(|e| e.lower as f64).sum::<f64>()
            / inst.n_events() as f64;
        let mean_upper: f64 = inst.events().iter().map(|e| e.upper as f64).sum::<f64>()
            / inst.n_events() as f64;
        assert!(
            (mean_lower - 10.0).abs() < 2.0,
            "mean ξ = {mean_lower}, want ≈ 10"
        );
        assert!(
            (mean_upper - 50.0).abs() < 4.0,
            "mean η = {mean_upper}, want ≈ 50"
        );
        for e in inst.events() {
            assert!(e.lower <= e.upper);
        }
    }

    #[test]
    fn budgets_within_configured_fractions() {
        let cfg = GeneratorConfig {
            n_users: 200,
            n_events: 10,
            ..Default::default()
        };
        let inst = generate(&cfg);
        for u in inst.users() {
            assert!(u.budget >= cfg.budget_frac.0 * cfg.extent - 1e-9);
            assert!(u.budget <= cfg.budget_frac.1 * cfg.extent + 1e-9);
        }
    }

    #[test]
    fn utilities_sparse_but_present() {
        let cfg = GeneratorConfig {
            n_users: 50,
            n_events: 20,
            ..Default::default()
        };
        let inst = generate(&cfg);
        let mut nonzero = 0usize;
        for u in inst.user_ids() {
            for e in inst.event_ids() {
                let mu = inst.utility(u, e);
                assert!((0.0..=1.0).contains(&mu));
                if mu > 0.0 {
                    nonzero += 1;
                }
            }
        }
        let density = nonzero as f64 / (50.0 * 20.0);
        assert!(density > 0.05, "utility matrix unusably sparse: {density}");
        assert!(density < 0.95, "utility matrix implausibly dense: {density}");
    }

    #[test]
    fn candidate_pruned_matches_dense_candidates() {
        let dense_cfg = GeneratorConfig {
            n_users: 120,
            n_events: 40,
            ..Default::default()
        };
        let pruned_cfg = GeneratorConfig {
            candidate_pruned: true,
            ..dense_cfg.clone()
        };
        let dense = generate(&dense_cfg);
        let pruned = generate(&pruned_cfg);
        assert!(pruned.utilities().is_sparse());
        assert!(!dense.utilities().is_sparse());
        // The derived candidate lists — everything solvers consume —
        // are identical; the pruned matrix just omits unreachable μ.
        assert_eq!(dense.candidates(), pruned.candidates());
        assert!(pruned.utilities().stored_entries() <= dense.utilities().stored_entries());
        // In-window utilities agree entry for entry.
        for u in dense.user_ids() {
            let (ids, utils) = dense.candidates().row(u);
            for (&e, &mu) in ids.iter().zip(utils) {
                assert_eq!(pruned.utility(u, epplan_core::model::EventId(e)), mu);
            }
        }
    }

    #[test]
    fn city_scale_instance_generates_quickly() {
        // Vancouver-scale sanity check (2012 users × 225 events).
        let cfg = GeneratorConfig {
            n_users: 2012,
            n_events: 225,
            ..Default::default()
        };
        let inst = generate(&cfg);
        assert_eq!(inst.n_users(), 2012);
        let r = conflict_ratio(&inst);
        assert!((r - 0.25).abs() <= 0.05, "conflict ratio {r}");
    }
}

#[cfg(test)]
mod spatial_tests {
    use super::*;
    use crate::SpatialModel;

    #[test]
    fn clustered_locations_concentrate() {
        let clustered = generate(&GeneratorConfig {
            n_users: 400,
            n_events: 10,
            spatial: SpatialModel::Clustered {
                clusters: 3,
                spread: 0.04,
            },
            ..Default::default()
        });
        let uniform = generate(&GeneratorConfig {
            n_users: 400,
            n_events: 10,
            ..Default::default()
        });
        // Mean pairwise distance among a sample of users should be
        // clearly smaller for tight clusters than for uniform placement.
        let mean_pairwise = |inst: &epplan_core::model::Instance| -> f64 {
            let pts: Vec<_> = inst.users().iter().map(|u| u.location).collect();
            let mut sum = 0.0;
            let mut k = 0usize;
            for i in (0..pts.len()).step_by(7) {
                for j in (i + 1..pts.len()).step_by(7) {
                    sum += pts[i].distance(&pts[j]);
                    k += 1;
                }
            }
            sum / k as f64
        };
        let dc = mean_pairwise(&clustered);
        let du = mean_pairwise(&uniform);
        assert!(dc < 0.8 * du, "clustered {dc} not denser than uniform {du}");
    }

    #[test]
    fn clustered_points_stay_in_city() {
        let inst = generate(&GeneratorConfig {
            n_users: 200,
            n_events: 20,
            extent: 50.0,
            spatial: SpatialModel::Clustered {
                clusters: 2,
                spread: 0.5, // wide spread exercises the clamp
            },
            ..Default::default()
        });
        for u in inst.users() {
            assert!((0.0..=50.0).contains(&u.location.x));
            assert!((0.0..=50.0).contains(&u.location.y));
        }
        for e in inst.events() {
            assert!((0.0..=50.0).contains(&e.location.x));
        }
    }

    #[test]
    fn clustered_is_deterministic() {
        let cfg = GeneratorConfig {
            n_users: 50,
            n_events: 8,
            spatial: SpatialModel::Clustered {
                clusters: 4,
                spread: 0.1,
            },
            ..Default::default()
        };
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_panics() {
        let _ = generate(&GeneratorConfig {
            n_users: 5,
            n_events: 2,
            spatial: SpatialModel::Clustered {
                clusters: 0,
                spread: 0.1,
            },
            ..Default::default()
        });
    }
}
