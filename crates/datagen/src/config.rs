use serde::{Deserialize, Serialize};

/// How users and venues are placed on the plane.
///
/// Real Meetup cities are not uniform: population and venues concentrate
/// in neighborhoods. The clustered model places locations around a few
/// Gaussian centers, which (a) makes reachability heterogeneous — users
/// in a dense neighborhood have large `Uc_i`, suburban users small —
/// and (b) stresses the budget logic much harder than the uniform model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpatialModel {
    /// Locations uniform over the city square (the default; matches
    /// what [4]-style generators use).
    Uniform,
    /// Locations drawn around `clusters` Gaussian centers with the
    /// given standard deviation (as a fraction of the extent), clamped
    /// to the city square. Centers themselves are uniform.
    Clustered {
        /// Number of neighborhood centers (≥ 1).
        clusters: usize,
        /// Standard deviation around a center, as a fraction of the
        /// extent (e.g. 0.08 = tight neighborhoods).
        spread: f64,
    },
}

/// All knobs of the synthetic EBSN generator.
///
/// Defaults reproduce the paper's aggregate statistics: mean `ξ = 10`,
/// mean `η = 50`, conflict ratio `0.25` (Table IV). Deterministic for
/// a fixed `seed`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of users `|U|`.
    pub n_users: usize,
    /// Number of events `|E|`.
    pub n_events: usize,
    /// RNG seed; equal configs generate identical instances.
    pub seed: u64,
    /// Side length of the square "city" users and venues live in.
    pub extent: f64,
    /// Interest-tag vocabulary size.
    pub n_tags: usize,
    /// Tags drawn per user, inclusive range.
    pub tags_per_user: (usize, usize),
    /// Tags drawn per event group, inclusive range.
    pub tags_per_group: (usize, usize),
    /// Number of event groups (events inherit their group's tags).
    /// `0` means `max(4, n_events / 5)`.
    pub n_groups: usize,
    /// Travel budget range as multiples of the city extent. The lower
    /// end must let a user reach *some* event round trip.
    pub budget_frac: (f64, f64),
    /// Event duration range in minutes, inclusive.
    pub duration_range: (u32, u32),
    /// Fraction of events that time-conflict with at least one other
    /// event (Table IV's "conflict ratio").
    pub conflict_ratio: f64,
    /// Participation lower bounds are drawn uniformly from
    /// `0..=2·mean_lower` (mean `ξ` = `mean_lower`), clamped to `η`.
    pub mean_lower: u32,
    /// Participation upper bounds are drawn uniformly from
    /// `mean_upper·0.6 ..= mean_upper·1.4` (mean `η` = `mean_upper`).
    pub mean_upper: u32,
    /// Placement of users and venues on the plane.
    pub spatial: SpatialModel,
    /// Emit the utility matrix in CSR form, computing μ only for
    /// events inside each user's `B/2` travel window (the paper's
    /// `Uc_i` pruning). Solver-equivalent to the dense layout — the
    /// derived candidate lists are identical — but O(candidates) in
    /// memory, which the `|U| ≥ 10⁵` bench grids require.
    #[serde(default)]
    pub candidate_pruned: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            n_users: 500,
            n_events: 50,
            seed: 42,
            extent: 100.0,
            n_tags: 60,
            tags_per_user: (2, 6),
            tags_per_group: (2, 5),
            n_groups: 0,
            budget_frac: (0.5, 2.5),
            duration_range: (60, 180),
            conflict_ratio: 0.25,
            mean_lower: 10,
            mean_upper: 50,
            spatial: SpatialModel::Uniform,
            candidate_pruned: false,
        }
    }
}

impl GeneratorConfig {
    /// Effective number of groups (resolves the `0` sentinel).
    pub fn effective_groups(&self) -> usize {
        if self.n_groups > 0 {
            self.n_groups
        } else {
            (self.n_events / 5).max(4)
        }
    }

    /// Returns a copy resized for a "cut out" scalability sweep (Table
    /// V): same distributional parameters, different `|U|`/`|E|`.
    pub fn cutout(&self, n_users: usize, n_events: usize) -> Self {
        GeneratorConfig {
            n_users,
            n_events,
            ..self.clone()
        }
    }

    /// Returns a copy with a different seed (for repetition averaging).
    pub fn with_seed(&self, seed: u64) -> Self {
        GeneratorConfig {
            seed,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_aggregates() {
        let c = GeneratorConfig::default();
        assert_eq!(c.mean_lower, 10);
        assert_eq!(c.mean_upper, 50);
        assert!((c.conflict_ratio - 0.25).abs() < 1e-12);
    }

    #[test]
    fn effective_groups_sentinel() {
        let mut c = GeneratorConfig {
            n_events: 100,
            n_groups: 0,
            ..Default::default()
        };
        assert_eq!(c.effective_groups(), 20);
        c.n_groups = 7;
        assert_eq!(c.effective_groups(), 7);
        c.n_events = 5;
        c.n_groups = 0;
        assert_eq!(c.effective_groups(), 4);
    }

    #[test]
    fn cutout_preserves_distribution_params() {
        let base = GeneratorConfig::default();
        let cut = base.cutout(1000, 20);
        assert_eq!(cut.n_users, 1000);
        assert_eq!(cut.n_events, 20);
        assert_eq!(cut.seed, base.seed);
        assert_eq!(cut.mean_upper, base.mean_upper);
    }
}
