//! The paper's running example (Example 1: Figure 1 + Table I).

use epplan_core::model::{Event, Instance, TimeInterval, User, UtilityMatrix};
use epplan_geo::Point;

/// Builds the 5-user / 4-event instance of the paper's Example 1.
///
/// Utilities, budgets, participation bounds and times are copied
/// verbatim from Table I. The 2-D coordinates are *reconstructed* from
/// every distance the text states (Figure 1 only shows a drawing):
///
/// * `d(u_1, e_1) = √17`, `d(e_1, e_2) = √41`, `d(e_2, u_1) = 6`, so
///   `D_1 = 16.53` for the plan `{e_1, e_2}` (Section II);
/// * `u_1`'s budget (18) does not cover `e_2` or `e_4` after taking
///   `e_3` (Example 5);
/// * `u_5` cannot afford `e_1` (Example 5) but reaches `e_4`;
/// * `u_4` can add `e_1` to a plan containing `e_4` (Example 4), and
///   can attend `e_2` after dropping `e_4` (Example 6).
///
/// ```
/// use epplan_datagen::paper_example;
/// let inst = paper_example();
/// assert_eq!(inst.n_users(), 5);
/// assert_eq!(inst.n_events(), 4);
/// ```
pub fn paper_example() -> Instance {
    let users = vec![
        User::new(Point::new(2.0, 3.0), 18.0),
        User::new(Point::new(9.0, 2.0), 20.0),
        User::new(Point::new(10.0, 5.0), 20.0),
        User::new(Point::new(13.0, 8.0), 30.0),
        User::new(Point::new(14.0, 6.0), 10.0),
    ];
    let pm = |h: u32, m: u32| (12 + h) * 60 + m;
    let events = vec![
        // e_1 (ξ=1, η=3), 1:00–3:00 p.m.
        Event::new(Point::new(3.0, 7.0), 1, 3, TimeInterval::new(pm(1, 0), pm(3, 0))),
        // e_2 (ξ=2, η=4), 4:00–6:00 p.m.
        Event::new(Point::new(8.0, 3.0), 2, 4, TimeInterval::new(pm(4, 0), pm(6, 0))),
        // e_3 (ξ=3, η=4), 1:30–3:00 p.m.
        Event::new(Point::new(10.0, 6.0), 3, 4, TimeInterval::new(pm(1, 30), pm(3, 0))),
        // e_4 (ξ=1, η=5), 6:00–8:00 p.m.
        Event::new(Point::new(14.0, 4.0), 1, 5, TimeInterval::new(pm(6, 0), pm(8, 0))),
    ];
    // Table I, columns 2–6 (rows are events; transpose to user rows).
    let utilities = match UtilityMatrix::from_rows(vec![
        vec![0.7, 0.6, 0.9, 0.3], // u1
        vec![0.6, 0.5, 0.8, 0.4], // u2
        vec![0.4, 0.7, 0.9, 0.5], // u3
        vec![0.2, 0.3, 0.8, 0.6], // u4
        vec![0.3, 0.1, 0.6, 0.7], // u5
    ]) {
        Ok(m) => m,
        Err(_) => unreachable!("Table I rows are rectangular"),
    };
    match Instance::new(users, events, utilities) {
        Ok(inst) => inst,
        Err(_) => unreachable!("Table I shape is 5 × 4"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epplan_core::model::{EventId, UserId};
    use epplan_core::plan::Plan;

    #[test]
    fn example_1_travel_cost() {
        // D_1 = d(u1,e1) + d(e1,e2) + d(e2,u1) = 16.53 (Section II).
        let inst = paper_example();
        let d = inst.travel_cost(UserId(0), &[EventId(0), EventId(1)]);
        assert!((d - 16.53).abs() < 0.01, "D_1 = {d}");
    }

    #[test]
    fn example_1_conflicts() {
        let inst = paper_example();
        // e1 conflicts e3 (e3 starts before e1 ends).
        assert!(inst.conflicts(EventId(0), EventId(2)));
        // e2 conflicts e4 (back-to-back).
        assert!(inst.conflicts(EventId(1), EventId(3)));
        // e1 and e2 do not conflict.
        assert!(!inst.conflicts(EventId(0), EventId(1)));
    }

    #[test]
    fn example_2_plan_is_feasible_with_utility_6_3() {
        // The colored plan of Table I: P1={e1,e2}, P2={e2,e3},
        // P3={e2,e3}, P4={e3,e4}, P5={e4}; global utility 6.3.
        let inst = paper_example();
        let mut plan = Plan::for_instance(&inst);
        plan.add(UserId(0), EventId(0));
        plan.add(UserId(0), EventId(1));
        plan.add(UserId(1), EventId(1));
        plan.add(UserId(1), EventId(2));
        plan.add(UserId(2), EventId(1));
        plan.add(UserId(2), EventId(2));
        plan.add(UserId(3), EventId(2));
        plan.add(UserId(3), EventId(3));
        plan.add(UserId(4), EventId(3));
        let v = plan.validate(&inst);
        assert!(v.is_feasible(), "violations: {:?}", v.violations);
        assert!((plan.total_utility(&inst) - 6.3).abs() < 1e-9);
    }

    #[test]
    fn example_5_budget_claims() {
        let inst = paper_example();
        // u1 takes e3 then cannot afford e2 or e4.
        assert!(inst.can_attend_with(UserId(0), &[], EventId(2)));
        assert!(!inst.can_attend_with(UserId(0), &[EventId(2)], EventId(1)));
        assert!(!inst.can_attend_with(UserId(0), &[EventId(2)], EventId(3)));
        // u5 cannot afford e1 at all.
        assert!(!inst.can_attend_with(UserId(4), &[], EventId(0)));
        // u5 can afford e4.
        assert!(inst.can_attend_with(UserId(4), &[], EventId(3)));
    }

    #[test]
    fn example_4_u4_can_take_e1_alongside_e4() {
        let inst = paper_example();
        assert!(inst.can_attend_with(UserId(3), &[EventId(3)], EventId(0)));
    }

    #[test]
    fn example_6_u4_can_swap_e4_for_e2() {
        let inst = paper_example();
        // u4's plan {e3, e4} minus e4 plus e2 must be feasible.
        assert!(inst.can_attend_with(UserId(3), &[EventId(2)], EventId(1)));
    }
}
