//! Synthetic EBSN dataset generation.
//!
//! The paper evaluates on a Meetup dump \[1\] (Table IV: Beijing,
//! Vancouver, Auckland, Singapore) plus "cut out" scalability datasets
//! (Table V). That dump is not redistributable, so this crate
//! synthesizes instances with the same *published aggregate shape*:
//!
//! * city presets with the exact `|U|`/`|E|` of Table IV, mean `ξ` of
//!   10, mean `η` of 50, and a conflict ratio of 0.25;
//! * utilities derived from a **tag model** mirroring how the paper
//!   computes them from Meetup's tag documents: users and event groups
//!   draw interest tags from a Zipf-popular vocabulary, and
//!   `μ(u, e)` is the Jaccard similarity between the user's tags and
//!   the tags of the event's group (events inherit their group's tags,
//!   exactly as in Meetup's data model);
//! * travel budgets calibrated to the city extent so a median user can
//!   afford a handful of events (the paper reuses \[4\]'s generator,
//!   which is likewise uniform within a city-scaled range).
//!
//! The solvers observe only locations, budgets, bounds, times and the
//! utility matrix, so identically-shaped synthetic inputs exercise the
//! same code paths; see DESIGN.md ("Substitutions").
//!
//! [`paper_example`] reconstructs the 5-user / 4-event instance of the
//! paper's Example 1 (Figure 1 + Table I) with coordinates
//! reverse-engineered from every distance stated in the text.

// Solver-adjacent code must not panic (uniform workspace gate; the
// epplan-lint `robustness/unwrap` rule enforces the same contract).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod city;
mod config;
mod example;
mod generator;
mod io;
mod opstream;
mod tags;

pub use city::City;
pub use config::{GeneratorConfig, SpatialModel};
pub use example::paper_example;
pub use generator::{conflict_ratio, generate};
pub use io::{load_instance, save_instance};
pub use opstream::{BurstSpec, OpStreamSampler, OpWeights};
pub use tags::TagModel;
