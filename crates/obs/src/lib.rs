//! First-party tracing and metrics for the epplan solver stack.
//!
//! The paper's experiments (Tables VI–IX) report running time and
//! memory cost per algorithm; this crate provides the plumbing to
//! reproduce that breakdown *per stage* of our pipeline. Three
//! building blocks, all dependency-free (matching the vendored
//! `compat/` policy):
//!
//! * **Spans** ([`span`]) — RAII timers with parent/child nesting,
//!   per-span iteration counts and (when the `epplan-memtrack`
//!   allocator is installed) peak-memory deltas. Completed spans feed
//!   the per-stage aggregate table and, if a sink is installed, emit a
//!   JSON-lines trace event.
//! * **Metrics** ([`counter_add`], [`gauge_set`], [`observe`]) — a
//!   global registry of counters, gauges and fixed-bucket (powers of
//!   two) histograms behind relaxed atomics.
//! * **Sinks** ([`install_sink`], [`JsonlSink`]) — pluggable consumers
//!   of trace events.
//!
//! # Overhead contract
//!
//! Everything is off by default. The *entire* cost of an instrumented
//! region when neither metrics nor a sink is enabled is **one relaxed
//! atomic load** per [`span`] call (the `STATE` check below) and one
//! per metric helper call — no clock reads, no allocation, no locks.
//! Enabling metrics ([`enable_metrics`]) adds clock reads at span
//! boundaries and one mutex acquisition per *span end* (stage
//! granularity, not per inner iteration); counters stay lock-free.
//!
//! # Stable names
//!
//! Span and metric names emitted by the workspace are a documented
//! contract — see the "Observability" section of `DESIGN.md`.

// Solver-adjacent code must not panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expo;
mod metrics;
mod report;
mod sink;
mod span;
mod stage;
mod window;

pub use expo::{prometheus_histogram, prometheus_name, prometheus_summary, validate_prometheus};
pub use metrics::{
    counter_add, counter_value, gauge_set, gauge_value, observe, pow2_bucket_le, reset_metrics,
    snapshot, HistogramSnapshot, MetricsSnapshot,
};
pub use report::{
    critical_path, perfetto_json, render_critical_path, render_self_time, self_time,
    CriticalPathRow, SelfTimeRow,
};
pub use sink::{
    install_sink, uninstall_sink, CollectingSink, JsonlSink, OwnedTraceEvent, TraceEvent,
    TraceSink,
};
pub use span::{span, Span};
pub use stage::{render_stage_table, stage_stats, StageMark, StageStats};
pub use window::{window, WindowConfig, WindowedHistogram};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard};

const METRICS_BIT: u8 = 1;
const SINK_BIT: u8 = 2;

/// Global enablement state. 0 = fully disabled: spans and metric
/// helpers return after a single relaxed load of this value.
static STATE: AtomicU8 = AtomicU8::new(0);

pub(crate) fn state() -> u8 {
    STATE.load(Ordering::Relaxed)
}

pub(crate) fn set_bit(bit: u8) {
    STATE.fetch_or(bit, Ordering::Relaxed);
}

pub(crate) fn clear_bit(bit: u8) {
    STATE.fetch_and(!bit, Ordering::Relaxed);
}

pub(crate) fn metrics_bit(state: u8) -> bool {
    state & METRICS_BIT != 0
}

pub(crate) fn sink_bit(state: u8) -> bool {
    state & SINK_BIT != 0
}

/// Turns on metric collection (counters, gauges, histograms and the
/// per-stage aggregate table). Idempotent; process-global.
pub fn enable_metrics() {
    set_bit(METRICS_BIT);
}

/// Turns metric collection back off. Already-recorded values remain
/// readable via [`snapshot`] / [`counter_value`].
pub fn disable_metrics() {
    clear_bit(METRICS_BIT);
}

/// `true` when metric collection is on. Instrumented code can use this
/// to skip *computing* an expensive metric value (the record helpers
/// already early-return on their own).
pub fn metrics_enabled() -> bool {
    metrics_bit(state())
}

/// Locks a mutex, tolerating poison: observability must never take the
/// solver down, so a panic elsewhere just hands us the inner data.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Minimal JSON string escaping for names and messages. Names are
/// static identifiers in practice, but escaping keeps the JSONL output
/// well-formed for any input.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
pub(crate) fn test_mutex() -> &'static Mutex<()> {
    static M: Mutex<()> = Mutex::new(());
    &M
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_bits_roundtrip() {
        // Serialize against other tests that flip global state.
        let _g = lock(crate::test_mutex());
        disable_metrics();
        assert!(!metrics_enabled());
        enable_metrics();
        assert!(metrics_enabled());
        disable_metrics();
        assert!(!metrics_enabled());
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain.name"), "plain.name");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
