//! Hierarchical RAII spans.
//!
//! A [`span`] names a region of solver work ("lp.phase1",
//! "gap.rounding", …). Spans nest: each thread tracks its currently
//! open span, and a new span records it as its parent, so trace
//! events reconstruct the call tree via `id`/`parent` pairs.
//!
//! When observability is fully disabled (no metrics, no sink) a span
//! is a single relaxed atomic load and carries no state at all.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use epplan_memtrack::{MemoryProbe, ScopedProbe};

use crate::sink::{emit, TraceEvent};
use crate::stage::record_stage;

/// Monotonic span-id source; 0 is reserved for "no parent".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide time origin for the `ts` field of trace events.
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Id of the innermost open span on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Opens a span named `name`. Returns a no-op handle (one atomic load
/// spent, nothing else) unless metrics or a sink are enabled.
///
/// The span ends when the handle drops; use [`Span::add_iters`] to
/// attach an iteration count (pivots, augmentations, epochs, …).
pub fn span(name: &'static str) -> Span {
    let state = crate::state();
    if state == 0 {
        return Span(None);
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT.with(|c| c.replace(id));
    Span(Some(ActiveSpan {
        name,
        id,
        parent,
        start: Instant::now(),
        start_ts_us: epoch().elapsed().as_micros() as u64,
        probe: MemoryProbe::scoped(),
        iters: 0,
    }))
}

/// An open span; see [`span`]. Ends (and reports) on drop.
#[derive(Debug)]
pub struct Span(Option<ActiveSpan>);

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    id: u64,
    parent: u64,
    start: Instant,
    start_ts_us: u64,
    probe: ScopedProbe,
    iters: u64,
}

impl Span {
    /// Adds `n` to the span's iteration count (no-op when disabled).
    pub fn add_iters(&mut self, n: u64) {
        if let Some(a) = self.0.as_mut() {
            a.iters += n;
        }
    }

    /// The span's id, if active (useful in tests).
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|a| a.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let dur = a.start.elapsed();
        // `finish` consumes the probe by value; destructure first.
        let ActiveSpan {
            name,
            id,
            parent,
            start: _,
            start_ts_us,
            probe,
            iters,
        } = a;
        let mem = probe.finish();
        CURRENT.with(|c| c.set(parent));

        let state = crate::state();
        if crate::metrics_bit(state) {
            record_stage(name, dur, iters, mem.peak_delta_bytes as u64, mem.alloc_calls as u64);
        }
        if crate::sink_bit(state) {
            emit(&TraceEvent {
                ts_us: start_ts_us,
                id,
                parent: if parent == 0 { None } else { Some(parent) },
                span: name,
                dur_us: dur.as_micros() as u64,
                iters,
                mem_peak_delta: mem.peak_delta_bytes as u64,
                alloc_calls: mem.alloc_calls as u64,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock;

    #[test]
    fn disabled_span_is_inert() {
        let _g = lock(crate::test_mutex());
        crate::disable_metrics();
        let mut s = span("test.inert");
        s.add_iters(5);
        assert!(s.id().is_none());
    }

    #[test]
    fn spans_nest_and_restore_current() {
        let _g = lock(crate::test_mutex());
        crate::enable_metrics();
        {
            let outer = span("test.outer");
            let outer_id = outer.id().unwrap();
            assert_eq!(CURRENT.with(|c| c.get()), outer_id);
            {
                let inner = span("test.inner");
                assert_eq!(CURRENT.with(|c| c.get()), inner.id().unwrap());
            }
            assert_eq!(CURRENT.with(|c| c.get()), outer_id);
        }
        assert_eq!(CURRENT.with(|c| c.get()), 0);
        crate::disable_metrics();
    }
}
