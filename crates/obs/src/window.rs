//! Sliding-window histograms: a ring of rotated power-of-two
//! histograms with a shared quantile estimator, so long-running
//! processes (the serve daemon) can report *recent* p50/p95/p99 for a
//! latency stream instead of lifetime-cumulative values.
//!
//! # Determinism
//!
//! Rotation is **observation-count driven, never time driven**: after
//! every `per_slot` observations the ring advances and the oldest slot
//! is dropped wholesale. Feeding the same value sequence therefore
//! always yields the same window contents, independent of wall clock
//! or thread count — the serve daemon's bit-identical-across-threads
//! contract extends to its windowed telemetry for a fixed input trace.
//!
//! The retained set is always a *suffix* of the observation stream:
//! between `(slots-1)*per_slot + 1` and `slots*per_slot` of the most
//! recent observations (once warm).

use crate::metrics::{bucket_index, quantile_walk, HistogramSnapshot};

const HIST_BUCKETS: usize = 32;

/// Shape of a sliding window: `slots` ring entries of `per_slot`
/// observations each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Number of ring slots (>= 2 recommended; clamped to >= 1).
    pub slots: usize,
    /// Observations per slot before the ring rotates (clamped to >= 1).
    pub per_slot: u64,
}

impl WindowConfig {
    /// Window sized to cover roughly `total_ops` recent observations,
    /// split over 8 slots.
    pub fn covering(total_ops: u64) -> Self {
        WindowConfig {
            slots: 8,
            per_slot: (total_ops / 8).max(1),
        }
    }
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig::covering(1024)
    }
}

#[derive(Debug, Clone)]
struct Slot {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Slot {
    fn empty() -> Self {
        Slot { buckets: [0; HIST_BUCKETS], count: 0, sum: 0 }
    }

    fn clear(&mut self) {
        self.buckets = [0; HIST_BUCKETS];
        self.count = 0;
        self.sum = 0;
    }
}

/// A ring of rotated pow2 histograms owned by a single (serial)
/// producer. Unlike the global registry histograms this is plain,
/// non-atomic storage: the serve daemon processes ops serially, and
/// keeping the window off the global registry means scrapes read a
/// consistent point-in-time state.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    name: &'static str,
    config: WindowConfig,
    ring: Vec<Slot>,
    /// Index of the slot currently being filled.
    cursor: usize,
    /// Total observations ever (not just retained).
    total: u64,
    /// Completed ring rotations (slots evicted).
    rotations: u64,
}

/// Creates a sliding-window histogram named `name`. The name is part
/// of the stable-name registry (see DESIGN.md) and is checked by
/// `epplan-lint` like every other metric constructor.
pub fn window(name: &'static str, config: WindowConfig) -> WindowedHistogram {
    let config = WindowConfig {
        slots: config.slots.max(1),
        per_slot: config.per_slot.max(1),
    };
    WindowedHistogram {
        name,
        config,
        ring: vec![Slot::empty(); config.slots],
        cursor: 0,
        total: 0,
        rotations: 0,
    }
}

impl WindowedHistogram {
    /// The stable metric name this window was created under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The (clamped) window shape.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// Records one observation. Rotates the ring (evicting the oldest
    /// slot) once the current slot holds `per_slot` observations.
    pub fn observe(&mut self, v: u64) {
        let slot = &mut self.ring[self.cursor];
        slot.buckets[bucket_index(v)] += 1;
        slot.count += 1;
        slot.sum = slot.sum.saturating_add(v);
        self.total += 1;
        if self.ring[self.cursor].count >= self.config.per_slot {
            self.cursor = (self.cursor + 1) % self.config.slots;
            if self.ring[self.cursor].count > 0 {
                self.rotations += 1;
            }
            self.ring[self.cursor].clear();
        }
    }

    /// Number of observations currently retained in the window. Always
    /// the most recent `len()` observations of the stream.
    pub fn len(&self) -> u64 {
        self.ring.iter().map(|s| s.count).sum()
    }

    /// `true` when no observations are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total observations ever recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of slot evictions so far (0 until the ring wraps).
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Windowed quantile via the shared estimator — identical walk to
    /// [`HistogramSnapshot::quantile`], over the merged ring. No
    /// allocation: merges into a stack array.
    pub fn quantile(&self, p: f64) -> u64 {
        let mut merged = [0u64; HIST_BUCKETS];
        let mut count = 0u64;
        for slot in &self.ring {
            count += slot.count;
            for (m, b) in merged.iter_mut().zip(slot.buckets.iter()) {
                *m += b;
            }
        }
        quantile_walk(
            count,
            merged
                .iter()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .map(|(i, n)| (1u64 << i.min(63), *n)),
            p,
        )
    }

    /// Point-in-time copy of the merged window as a standard
    /// [`HistogramSnapshot`] (sparse pow2 buckets), so scrapes and
    /// summaries reuse the exposition/quantile code paths unchanged.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = [0u64; HIST_BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        for slot in &self.ring {
            count += slot.count;
            sum = sum.saturating_add(slot.sum);
            for (m, b) in merged.iter_mut().zip(slot.buckets.iter()) {
                *m += b;
            }
        }
        HistogramSnapshot {
            count,
            sum,
            buckets: merged
                .iter()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .map(|(i, n)| (1u64 << i.min(63), *n))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_boundaries_are_count_driven() {
        // 3 slots x 4 per slot: capacity 12, retained is a suffix of
        // between 9 and 12 observations once warm.
        let mut w = window("serve.window.op_latency_us", WindowConfig { slots: 3, per_slot: 4 });
        for v in 1..=4u64 {
            w.observe(v);
        }
        // Slot 0 full -> cursor advanced, nothing evicted yet.
        assert_eq!(w.len(), 4);
        assert_eq!(w.rotations(), 0);
        for v in 5..=12u64 {
            w.observe(v);
        }
        // Ring is exactly full: 12 retained, cursor wrapped onto slot 0
        // which was cleared -> first eviction.
        assert_eq!(w.total(), 12);
        assert_eq!(w.len(), 8);
        assert_eq!(w.rotations(), 1);
        // Retained must be the suffix 5..=12.
        let snap = w.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(snap.sum, (5..=12u64).sum::<u64>());
        let expect = HistogramSnapshot::from_values_pow2(&(5..=12u64).collect::<Vec<_>>());
        assert_eq!(snap, expect);
        for p in [0.5, 0.95, 0.99] {
            assert_eq!(w.quantile(p), expect.quantile(p));
        }
    }

    #[test]
    fn window_matches_shared_estimator_on_suffix() {
        let mut w = window("serve.window.op_latency_us", WindowConfig { slots: 4, per_slot: 8 });
        let stream: Vec<u64> = (0..100u64).map(|i| (i * 37 + 11) % 997 + 1).collect();
        for &v in &stream {
            w.observe(v);
        }
        let retained = &stream[stream.len() - w.len() as usize..];
        let expect = HistogramSnapshot::from_values_pow2(retained);
        assert_eq!(w.snapshot(), expect);
        for p in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(w.quantile(p), expect.quantile(p), "p={p}");
        }
    }

    #[test]
    fn clamped_config_and_empty_window() {
        let w = window("serve.window.op_latency_us", WindowConfig { slots: 0, per_slot: 0 });
        assert_eq!(w.config(), WindowConfig { slots: 1, per_slot: 1 });
        assert!(w.is_empty());
        assert_eq!(w.quantile(0.99), 0);
        assert_eq!(w.snapshot().count, 0);
    }
}
