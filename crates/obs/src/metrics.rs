//! Global metrics registry: counters, gauges and fixed-bucket
//! histograms.
//!
//! Metric storage is registered once per name (behind a mutex) and
//! then updated lock-free through `&'static` atomics, so the hot path
//! after first touch is a registry-free `fetch_add`. All helpers
//! early-return on a single atomic load when metrics are disabled.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::stage::{stage_stats, render_stage_table, StageStats};
use crate::{json_escape, lock};

/// Histograms bucket by powers of two: bucket `i` counts values `v`
/// with `2^(i-1) < v <= 2^i` (bucket 0 counts `v <= 1`); the last
/// bucket is a catch-all.
const HIST_BUCKETS: usize = 32;

/// Bucket index for value `v` under the power-of-two scheme above.
/// Shared by the atomic histograms and the windowed ring histograms so
/// every latency number in the workspace quantizes identically.
pub(crate) fn bucket_index(v: u64) -> usize {
    (64 - u64::leading_zeros(v.max(1)) as usize - 1
        + usize::from(!v.is_power_of_two() && v > 1))
    .min(HIST_BUCKETS - 1)
}

/// Upper bound (`le`) of the bucket that `v` falls into: the smallest
/// `2^i >= v` (clamped at the catch-all bucket).
pub fn pow2_bucket_le(v: u64) -> u64 {
    1u64 << bucket_index(v).min(63)
}

/// The one audited quantile walk: given a total `count` and buckets as
/// `(upper_bound, bucket_count)` in ascending `upper_bound` order,
/// returns the upper bound of the bucket holding the observation of
/// rank `ceil(p * count)` (clamped to `[1, count]`). Integer-only and
/// deterministic; returns 0 for an empty distribution.
pub(crate) fn quantile_walk<I>(count: u64, buckets: I, p: f64) -> u64
where
    I: IntoIterator<Item = (u64, u64)>,
{
    if count == 0 {
        return 0;
    }
    let p = p.clamp(0.0, 1.0);
    let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    let mut last = 0u64;
    for (le, n) in buckets {
        cum += n;
        last = le;
        if cum >= rank {
            return le;
        }
    }
    last
}

// Variants are only ever `Box::leak`ed once per metric name, so the
// size skew from the inline histogram buckets is irrelevant.
#[allow(clippy::large_enum_variant)]
enum Metric {
    Counter(AtomicU64),
    /// f64 stored as bits.
    Gauge(AtomicU64),
    Histogram {
        buckets: [AtomicU64; HIST_BUCKETS],
        count: AtomicU64,
        sum: AtomicU64,
    },
}

static REGISTRY: Mutex<BTreeMap<&'static str, &'static Metric>> = Mutex::new(BTreeMap::new());

fn metric(name: &'static str, make: fn() -> Metric) -> &'static Metric {
    let mut reg = lock(&REGISTRY);
    reg.entry(name).or_insert_with(|| Box::leak(Box::new(make())))
}

/// Adds `n` to the counter `name`. No-op unless metrics are enabled.
pub fn counter_add(name: &'static str, n: u64) {
    if !crate::metrics_bit(crate::state()) {
        return;
    }
    if let Metric::Counter(c) = metric(name, || Metric::Counter(AtomicU64::new(0))) {
        c.fetch_add(n, Ordering::Relaxed);
    }
}

/// Sets the gauge `name` to `v`. No-op unless metrics are enabled.
pub fn gauge_set(name: &'static str, v: f64) {
    if !crate::metrics_bit(crate::state()) {
        return;
    }
    if let Metric::Gauge(g) = metric(name, || Metric::Gauge(AtomicU64::new(0))) {
        g.store(v.to_bits(), Ordering::Relaxed);
    }
}

/// Records `v` into the power-of-two histogram `name`. No-op unless
/// metrics are enabled.
pub fn observe(name: &'static str, v: u64) {
    if !crate::metrics_bit(crate::state()) {
        return;
    }
    let m = metric(name, || Metric::Histogram {
        buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
    });
    if let Metric::Histogram { buckets, count, sum } = m {
        buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        count.fetch_add(1, Ordering::Relaxed);
        sum.fetch_add(v, Ordering::Relaxed);
    }
}

/// Current value of counter `name` (0 if never touched). Readable even
/// when collection is disabled — used by tests and snapshotting.
pub fn counter_value(name: &str) -> u64 {
    let reg = lock(&REGISTRY);
    match reg.get(name) {
        Some(Metric::Counter(c)) => c.load(Ordering::Relaxed),
        _ => 0,
    }
}

/// Current value of gauge `name` (0.0 if never touched).
pub fn gauge_value(name: &str) -> f64 {
    let reg = lock(&REGISTRY);
    match reg.get(name) {
        Some(Metric::Gauge(g)) => f64::from_bits(g.load(Ordering::Relaxed)),
        _ => 0.0,
    }
}

/// Zeroes every registered metric and the stage aggregates, in place.
/// Registered storage stays registered (the `&'static` cells are
/// leaked by design), so hot paths never re-register.
pub fn reset_metrics() {
    let reg = lock(&REGISTRY);
    for m in reg.values() {
        match m {
            Metric::Counter(c) => c.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.store(0, Ordering::Relaxed),
            Metric::Histogram { buckets, count, sum } => {
                for b in buckets {
                    b.store(0, Ordering::Relaxed);
                }
                count.store(0, Ordering::Relaxed);
                sum.store(0, Ordering::Relaxed);
            }
        }
    }
    drop(reg);
    crate::stage::reset_stages();
}

/// A point-in-time copy of a histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Non-empty buckets as `(upper_bound, count)`; the upper bound of
    /// bucket `i` is `2^i`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Builds an *exact* snapshot from raw values: one bucket per
    /// distinct value, so [`quantile`](Self::quantile) returns true
    /// order statistics. Used for published summary numbers where the
    /// raw samples are still at hand (bench rows, serve summaries).
    pub fn from_values(values: &[u64]) -> Self {
        let mut by_value: BTreeMap<u64, u64> = BTreeMap::new();
        let mut sum = 0u64;
        for &v in values {
            *by_value.entry(v).or_insert(0) += 1;
            sum = sum.saturating_add(v);
        }
        HistogramSnapshot {
            count: values.len() as u64,
            sum,
            buckets: by_value.into_iter().collect(),
        }
    }

    /// Builds a snapshot from raw values quantized into the shared
    /// power-of-two buckets — the same shape `observe` and the windowed
    /// ring produce. Used by tests to pin the windowed estimator
    /// against the recorded trace.
    pub fn from_values_pow2(values: &[u64]) -> Self {
        let mut by_le: BTreeMap<u64, u64> = BTreeMap::new();
        let mut sum = 0u64;
        for &v in values {
            *by_le.entry(pow2_bucket_le(v)).or_insert(0) += 1;
            sum = sum.saturating_add(v);
        }
        HistogramSnapshot {
            count: values.len() as u64,
            sum,
            buckets: by_le.into_iter().collect(),
        }
    }

    /// Quantile estimate at `p` in `[0, 1]`: the upper bound of the
    /// bucket holding the rank-`ceil(p*count)` observation. On an
    /// exact snapshot ([`from_values`](Self::from_values)) this is the
    /// true order statistic; on pow2-bucketed data it is the bucket
    /// ceiling (at most 2x the true value). Every published p50/p95/p99
    /// in the workspace goes through this one walk.
    pub fn quantile(&self, p: f64) -> u64 {
        quantile_walk(self.count, self.buckets.iter().copied(), p)
    }

    /// Mean of the observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of every metric plus the per-stage aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Per-stage (span) aggregates, sorted by stage name.
    pub stages: Vec<StageStats>,
}

/// Takes a snapshot of the registry and stage aggregates.
pub fn snapshot() -> MetricsSnapshot {
    let reg = lock(&REGISTRY);
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (name, m) in reg.iter() {
        match m {
            Metric::Counter(c) => counters.push((name.to_string(), c.load(Ordering::Relaxed))),
            Metric::Gauge(g) => {
                gauges.push((name.to_string(), f64::from_bits(g.load(Ordering::Relaxed))))
            }
            Metric::Histogram { buckets, count, sum } => {
                let snap = HistogramSnapshot {
                    count: count.load(Ordering::Relaxed),
                    sum: sum.load(Ordering::Relaxed),
                    buckets: buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let n = b.load(Ordering::Relaxed);
                            (n > 0).then(|| (1u64 << i.min(63), n))
                        })
                        .collect(),
                };
                histograms.push((name.to_string(), snap));
            }
        }
    }
    drop(reg);
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
        stages: stage_stats(),
    }
}

impl MetricsSnapshot {
    /// Renders the human-readable report printed by `--metrics`: the
    /// per-stage cost table (the paper-style time/memory breakdown)
    /// followed by the flat counter/gauge list.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&render_stage_table(&self.stages));
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str("\ncounters/gauges:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<24} {v}\n"));
            }
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<24} {v:.4}\n"));
            }
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "  {name:<24} count={} sum={} mean={:.1}\n",
                h.count,
                h.sum,
                if h.count > 0 { h.sum as f64 / h.count as f64 } else { 0.0 }
            ));
        }
        out
    }

    /// Renders the snapshot as a single JSON object (hand-written —
    /// the crate is dependency-free).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(name), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let val = if v.is_finite() { format!("{v}") } else { "null".to_string() };
            out.push_str(&format!("\"{}\":{}", json_escape(name), val));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                json_escape(name),
                h.count,
                h.sum
            ));
            for (j, (le, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"le\":{le},\"count\":{n}}}"));
            }
            out.push_str("]}");
        }
        out.push_str("},\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"calls\":{},\"wall_us\":{},\"iters\":{},\"peak_mem_bytes\":{},\"alloc_calls\":{}}}",
                json_escape(&s.name),
                s.calls,
                s.wall.as_micros(),
                s.iters,
                s.peak_mem_bytes,
                s.alloc_calls
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let _g = lock(crate::test_mutex());
        crate::enable_metrics();
        reset_metrics();
        counter_add("test.counter", 3);
        counter_add("test.counter", 4);
        gauge_set("test.gauge", 2.5);
        assert_eq!(counter_value("test.counter"), 7);
        assert_eq!(gauge_value("test.gauge"), 2.5);
        crate::disable_metrics();
        counter_add("test.counter", 100);
        assert_eq!(counter_value("test.counter"), 7);
        reset_metrics();
        assert_eq!(counter_value("test.counter"), 0);
    }

    #[test]
    fn histogram_buckets_by_pow2() {
        let _g = lock(crate::test_mutex());
        crate::enable_metrics();
        reset_metrics();
        observe("test.hist", 1); // bucket 0 (le=1)
        observe("test.hist", 2); // bucket 1 (le=2)
        observe("test.hist", 3); // bucket 2 (le=4)
        observe("test.hist", 1024); // bucket 10
        let snap = snapshot();
        let h = &snap
            .histograms
            .iter()
            .find(|(n, _)| n == "test.hist")
            .unwrap()
            .1;
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1030);
        assert!(h.buckets.contains(&(1, 1)));
        assert!(h.buckets.contains(&(2, 1)));
        assert!(h.buckets.contains(&(4, 1)));
        assert!(h.buckets.contains(&(1024, 1)));
        crate::disable_metrics();
        reset_metrics();
    }

    #[test]
    fn quantile_on_exact_snapshot_is_order_statistic() {
        let vals = [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 10];
        let h = HistogramSnapshot::from_values(&vals);
        assert_eq!(h.count, 10);
        assert_eq!(h.sum, 55);
        assert_eq!(h.quantile(0.0), 1); // rank clamps to 1
        assert_eq!(h.quantile(0.5), 5); // ceil(0.5*10) = rank 5
        assert_eq!(h.quantile(0.95), 10); // ceil(9.5) = rank 10
        assert_eq!(h.quantile(0.99), 10);
        assert_eq!(h.quantile(1.0), 10);
        // Duplicates: the walk is over (value, multiplicity) buckets.
        let h = HistogramSnapshot::from_values(&[4, 4, 4, 4, 100]);
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(0.99), 100);
    }

    #[test]
    fn quantile_on_pow2_snapshot_returns_bucket_ceiling() {
        let vals = [3u64, 3, 3, 700];
        let h = HistogramSnapshot::from_values_pow2(&vals);
        assert_eq!(h.quantile(0.5), 4); // 3 lands in the le=4 bucket
        assert_eq!(h.quantile(1.0), 1024); // 700 lands in le=1024
        assert_eq!(HistogramSnapshot::from_values(&[]).quantile(0.5), 0);
        assert_eq!(pow2_bucket_le(1), 1);
        assert_eq!(pow2_bucket_le(2), 2);
        assert_eq!(pow2_bucket_le(3), 4);
        assert_eq!(pow2_bucket_le(1024), 1024);
        assert_eq!(pow2_bucket_le(1025), 2048);
    }

    #[test]
    fn live_histogram_and_from_values_pow2_agree() {
        let _g = lock(crate::test_mutex());
        crate::enable_metrics();
        reset_metrics();
        let vals = [1u64, 2, 3, 17, 900, 900, 4096, 5000];
        for &v in &vals {
            observe("test.hist.agree", v);
        }
        let snap = snapshot();
        let live = &snap
            .histograms
            .iter()
            .find(|(n, _)| n == "test.hist.agree")
            .unwrap()
            .1;
        let rebuilt = HistogramSnapshot::from_values_pow2(&vals);
        assert_eq!(live, &rebuilt);
        for p in [0.5, 0.95, 0.99] {
            assert_eq!(live.quantile(p), rebuilt.quantile(p));
        }
        crate::disable_metrics();
        reset_metrics();
    }

    #[test]
    fn snapshot_json_is_sane() {
        let _g = lock(crate::test_mutex());
        crate::enable_metrics();
        reset_metrics();
        counter_add("test.json", 9);
        let j = snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"test.json\":9"));
        assert!(j.contains("\"stages\":["));
        crate::disable_metrics();
        reset_metrics();
    }
}
