//! Per-stage aggregates: the data behind the paper-style cost table.
//!
//! Every completed span (when metrics are enabled) folds into one
//! [`StageStats`] row keyed by span name — call count, total wall
//! time, total iterations, max peak-memory delta and total allocation
//! calls. This is what `epplan solve --metrics` renders and what
//! `SolveReport` attaches as its per-stage summary.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::lock;

#[derive(Debug, Default, Clone, Copy)]
struct StageAgg {
    calls: u64,
    nanos: u128,
    iters: u64,
    peak_mem: u64,
    alloc_calls: u64,
}

static STAGES: Mutex<BTreeMap<&'static str, StageAgg>> = Mutex::new(BTreeMap::new());

pub(crate) fn record_stage(
    name: &'static str,
    dur: Duration,
    iters: u64,
    peak_mem: u64,
    alloc_calls: u64,
) {
    let mut stages = lock(&STAGES);
    let agg = stages.entry(name).or_default();
    agg.calls += 1;
    agg.nanos += dur.as_nanos();
    agg.iters += iters;
    agg.peak_mem = agg.peak_mem.max(peak_mem);
    agg.alloc_calls += alloc_calls;
}

pub(crate) fn reset_stages() {
    lock(&STAGES).clear();
}

/// Aggregate cost of one named stage (span) across a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Span name, e.g. `"gap.rounding"`.
    pub name: String,
    /// Number of completed spans with this name.
    pub calls: u64,
    /// Total wall time across all calls.
    pub wall: Duration,
    /// Total iteration count (pivots, augmentations, epochs, …).
    pub iters: u64,
    /// Maximum peak-memory delta over any single call, in bytes
    /// (0 unless the `epplan-memtrack` allocator is installed).
    pub peak_mem_bytes: u64,
    /// Total allocation calls across all calls (same caveat).
    pub alloc_calls: u64,
}

/// Snapshot of every stage aggregate, sorted by stage name.
pub fn stage_stats() -> Vec<StageStats> {
    let stages = lock(&STAGES);
    stages
        .iter()
        .map(|(name, a)| StageStats {
            name: name.to_string(),
            calls: a.calls,
            wall: Duration::from_nanos(a.nanos.min(u64::MAX as u128) as u64),
            iters: a.iters,
            peak_mem_bytes: a.peak_mem,
            alloc_calls: a.alloc_calls,
        })
        .collect()
}

/// Remembers the stage aggregates at a point in time so the *delta*
/// attributable to one solve can be extracted (`SolveReport.stages`).
#[derive(Debug, Clone)]
pub struct StageMark {
    base: BTreeMap<String, StageAgg>,
}

impl StageMark {
    /// Marks the current aggregate state.
    pub fn now() -> Self {
        let stages = lock(&STAGES);
        StageMark {
            base: stages.iter().map(|(n, a)| (n.to_string(), *a)).collect(),
        }
    }

    /// Stage stats accumulated since this mark (stages untouched since
    /// the mark are omitted).
    pub fn delta(&self) -> Vec<StageStats> {
        stage_stats()
            .into_iter()
            .filter_map(|s| {
                let base = self.base.get(&s.name).copied().unwrap_or_default();
                let calls = s.calls.saturating_sub(base.calls);
                if calls == 0 {
                    return None;
                }
                Some(StageStats {
                    calls,
                    wall: s
                        .wall
                        .saturating_sub(Duration::from_nanos(
                            base.nanos.min(u64::MAX as u128) as u64,
                        )),
                    iters: s.iters.saturating_sub(base.iters),
                    // Max-peak can't be differenced; keep the run max.
                    peak_mem_bytes: s.peak_mem_bytes,
                    alloc_calls: s.alloc_calls.saturating_sub(base.alloc_calls),
                    name: s.name,
                })
            })
            .collect()
    }
}

/// Renders stage rows as the human cost table (wall time, calls,
/// iterations, peak memory, allocation calls).
pub fn render_stage_table(stages: &[StageStats]) -> String {
    let mut out = String::new();
    if stages.is_empty() {
        out.push_str("(no stage data — was metrics collection enabled?)\n");
        return out;
    }
    out.push_str(&format!(
        "{:<22} {:>6} {:>12} {:>12} {:>12} {:>12}\n",
        "stage", "calls", "wall", "iters", "peak-mem", "allocs"
    ));
    for s in stages {
        out.push_str(&format!(
            "{:<22} {:>6} {:>12} {:>12} {:>12} {:>12}\n",
            s.name,
            s.calls,
            fmt_duration(s.wall),
            s.iters,
            fmt_bytes(s.peak_mem_bytes),
            s.alloc_calls
        ));
    }
    out
}

fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    }
}

fn fmt_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{:.2}MiB", b as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_aggregate_and_mark_deltas() {
        let _g = lock(crate::test_mutex());
        crate::enable_metrics();
        crate::reset_metrics();
        record_stage("test.stage", Duration::from_micros(100), 5, 2048, 3);
        record_stage("test.stage", Duration::from_micros(50), 2, 4096, 1);
        let stats = stage_stats();
        let s = stats.iter().find(|s| s.name == "test.stage").unwrap();
        assert_eq!(s.calls, 2);
        assert_eq!(s.iters, 7);
        assert_eq!(s.peak_mem_bytes, 4096);
        assert_eq!(s.alloc_calls, 4);
        assert_eq!(s.wall, Duration::from_micros(150));

        let mark = StageMark::now();
        record_stage("test.stage", Duration::from_micros(10), 1, 100, 2);
        record_stage("test.other", Duration::from_micros(20), 9, 0, 0);
        let delta = mark.delta();
        assert_eq!(delta.len(), 2);
        let d = delta.iter().find(|s| s.name == "test.stage").unwrap();
        assert_eq!(d.calls, 1);
        assert_eq!(d.iters, 1);
        let o = delta.iter().find(|s| s.name == "test.other").unwrap();
        assert_eq!(o.calls, 1);
        assert_eq!(o.iters, 9);
        crate::disable_metrics();
        crate::reset_metrics();
    }

    #[test]
    fn table_renders_rows() {
        let rows = vec![StageStats {
            name: "lp.simplex".to_string(),
            calls: 1,
            wall: Duration::from_micros(1234),
            iters: 42,
            peak_mem_bytes: 3 * 1024 * 1024,
            alloc_calls: 10,
        }];
        let t = render_stage_table(&rows);
        assert!(t.contains("lp.simplex"));
        assert!(t.contains("1.23ms"));
        assert!(t.contains("3.00MiB"));
        assert!(render_stage_table(&[]).contains("no stage data"));
    }

    #[test]
    fn duration_and_byte_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(10)), "10µs");
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1.500s");
        assert_eq!(fmt_bytes(100), "100B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
    }
}
