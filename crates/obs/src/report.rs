//! Offline trace analysis: turns a recorded JSONL span stream (the
//! PR-2 trace format) into chrome://tracing (Perfetto) JSON, a
//! per-stage self-time cost table, and critical-path attribution.
//!
//! The analyzer operates on [`OwnedTraceEvent`]s, so it serves both
//! the `epplan report` subcommand (events parsed back from a
//! `--trace` file) and in-process tests via [`CollectingSink`].
//!
//! [`CollectingSink`]: crate::CollectingSink

use std::collections::BTreeMap;

use crate::json_escape;
use crate::sink::OwnedTraceEvent;

/// Renders events as a chrome://tracing / Perfetto "complete event"
/// (`ph:"X"`) JSON document. Timestamps and durations are microseconds
/// (the native Perfetto unit); span ids and parent links ride along in
/// `args` so the original tree is recoverable in the viewer.
pub fn perfetto_json(events: &[OwnedTraceEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1,\"args\":{{\"id\":{},\"parent\":{},\"iters\":{},\"mem_peak_bytes\":{},\"alloc_calls\":{}}}}}",
            json_escape(&e.span),
            e.ts_us,
            e.dur_us,
            e.id,
            e.parent.map_or_else(|| "null".to_string(), |p| p.to_string()),
            e.iters,
            e.mem_peak_delta,
            e.alloc_calls
        ));
    }
    out.push_str("]}");
    out
}

/// One row of the per-stage self-time table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfTimeRow {
    /// Span name.
    pub name: String,
    /// Completed spans with this name.
    pub calls: u64,
    /// Total (inclusive) microseconds across all calls.
    pub total_us: u64,
    /// Self microseconds: inclusive time minus time attributed to
    /// direct children, clamped at zero per span.
    pub self_us: u64,
    /// Total iterations attached to these spans.
    pub iters: u64,
}

/// Aggregates self-time per span name. Self time of a span is its
/// duration minus the summed durations of its *direct* children (by
/// `parent` id), clamped at zero — the standard flame-graph exclusive
/// time. Rows are sorted by descending self time, then name.
pub fn self_time(events: &[OwnedTraceEvent]) -> Vec<SelfTimeRow> {
    let mut child_dur: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        if let Some(p) = e.parent {
            *child_dur.entry(p).or_insert(0) += e.dur_us;
        }
    }
    let mut rows: BTreeMap<&str, SelfTimeRow> = BTreeMap::new();
    for e in events {
        let own = e
            .dur_us
            .saturating_sub(child_dur.get(&e.id).copied().unwrap_or(0));
        let row = rows.entry(e.span.as_str()).or_insert_with(|| SelfTimeRow {
            name: e.span.clone(),
            calls: 0,
            total_us: 0,
            self_us: 0,
            iters: 0,
        });
        row.calls += 1;
        row.total_us += e.dur_us;
        row.self_us += own;
        row.iters += e.iters;
    }
    let mut rows: Vec<SelfTimeRow> = rows.into_values().collect();
    rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.name.cmp(&b.name)));
    rows
}

/// Renders the self-time table for terminal output.
pub fn render_self_time(rows: &[SelfTimeRow], top: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>7} {:>12} {:>12} {:>6} {:>12}\n",
        "stage", "calls", "self", "total", "self%", "iters"
    ));
    let grand: u64 = rows.iter().map(|r| r.self_us).sum();
    for r in rows.iter().take(top.max(1)) {
        let pct = if grand > 0 {
            100.0 * r.self_us as f64 / grand as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<26} {:>7} {:>10}µs {:>10}µs {:>5.1}% {:>12}\n",
            r.name, r.calls, r.self_us, r.total_us, pct, r.iters
        ));
    }
    if rows.len() > top {
        out.push_str(&format!("  … {} more stages\n", rows.len() - top));
    }
    out
}

/// One row of critical-path attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPathRow {
    /// Span name.
    pub name: String,
    /// Times this name appeared on a critical path.
    pub on_path: u64,
    /// Microseconds this name contributed as path *self* time (node
    /// duration minus the chosen child's duration).
    pub self_us: u64,
}

/// Critical-path attribution per operation: for every root span (no
/// parent), walks the chain of longest-duration children (ties broken
/// by lower span id, so the walk is deterministic) and charges each
/// node its path self time. Aggregated by name, sorted by descending
/// contribution — "where does the wall clock of a typical op go?".
pub fn critical_path(events: &[OwnedTraceEvent]) -> Vec<CriticalPathRow> {
    let mut children: BTreeMap<u64, Vec<&OwnedTraceEvent>> = BTreeMap::new();
    let mut roots: Vec<&OwnedTraceEvent> = Vec::new();
    for e in events {
        match e.parent {
            Some(p) => children.entry(p).or_default().push(e),
            None => roots.push(e),
        }
    }
    roots.sort_by_key(|e| e.id);
    let mut agg: BTreeMap<&str, CriticalPathRow> = BTreeMap::new();
    for root in roots {
        let mut node = root;
        loop {
            let heaviest = children.get(&node.id).and_then(|kids| {
                kids.iter()
                    .copied()
                    .max_by(|a, b| a.dur_us.cmp(&b.dur_us).then(b.id.cmp(&a.id)))
            });
            let child_dur = heaviest.map_or(0, |c| c.dur_us);
            let row = agg.entry(node.span.as_str()).or_insert_with(|| CriticalPathRow {
                name: node.span.clone(),
                on_path: 0,
                self_us: 0,
            });
            row.on_path += 1;
            row.self_us += node.dur_us.saturating_sub(child_dur);
            match heaviest {
                Some(c) => node = c,
                None => break,
            }
        }
    }
    let mut rows: Vec<CriticalPathRow> = agg.into_values().collect();
    rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.name.cmp(&b.name)));
    rows
}

/// Renders critical-path rows for terminal output.
pub fn render_critical_path(rows: &[CriticalPathRow], top: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>8} {:>12}\n",
        "critical-path stage", "on-path", "self"
    ));
    for r in rows.iter().take(top.max(1)) {
        out.push_str(&format!(
            "{:<26} {:>8} {:>10}µs\n",
            r.name, r.on_path, r.self_us
        ));
    }
    if rows.len() > top {
        out.push_str(&format!("  … {} more stages\n", rows.len() - top));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, parent: Option<u64>, span: &str, ts: u64, dur: u64) -> OwnedTraceEvent {
        OwnedTraceEvent {
            ts_us: ts,
            id,
            parent,
            span: span.to_string(),
            dur_us: dur,
            iters: 0,
            mem_peak_delta: 0,
            alloc_calls: 0,
        }
    }

    // root(100) -> a(60) -> a1(50), root -> b(30)
    fn sample() -> Vec<OwnedTraceEvent> {
        vec![
            ev(4, Some(2), "a1", 5, 50),
            ev(2, Some(1), "a", 2, 60),
            ev(3, Some(1), "b", 65, 30),
            ev(1, None, "root", 0, 100),
        ]
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let rows = self_time(&sample());
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        assert_eq!(get("root").self_us, 10); // 100 - (60 + 30)
        assert_eq!(get("a").self_us, 10); // 60 - 50
        assert_eq!(get("a1").self_us, 50);
        assert_eq!(get("b").self_us, 30);
        // Sorted by self time desc.
        assert_eq!(rows[0].name, "a1");
        let table = render_self_time(&rows, 10);
        assert!(table.contains("a1"));
        assert!(table.contains("self%"));
    }

    #[test]
    fn critical_path_follows_heaviest_child() {
        let rows = critical_path(&sample());
        // Path: root -> a -> a1; b never on path.
        assert!(rows.iter().all(|r| r.name != "b"));
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        assert_eq!(get("root").self_us, 40); // 100 - 60
        assert_eq!(get("a").self_us, 10); // 60 - 50
        assert_eq!(get("a1").self_us, 50);
        assert_eq!(get("a1").on_path, 1);
        let table = render_critical_path(&rows, 10);
        assert!(table.contains("critical-path"));
    }

    #[test]
    fn perfetto_json_shape() {
        let j = perfetto_json(&sample());
        assert!(j.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(j.ends_with("]}"));
        assert_eq!(j.matches("\"ph\":\"X\"").count(), 4);
        assert!(j.contains("\"name\":\"root\""));
        assert!(j.contains("\"parent\":null"));
        assert!(j.contains("\"parent\":2"));
        assert!(perfetto_json(&[]).contains("\"traceEvents\":[]"));
    }
}
