//! Pluggable trace sinks and the JSON-lines trace event format.
//!
//! A [`TraceSink`] receives one [`TraceEvent`] per completed span.
//! [`JsonlSink`] writes each event as one JSON object per line — the
//! format consumed by the CI trace-schema check and by any external
//! trace viewer. Required keys on every line: `ts`, `span`, `dur_us`.

use std::io::Write;
use std::sync::{Arc, Mutex, RwLock};

use crate::{json_escape, lock};

/// A completed span, handed to the installed sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent<'a> {
    /// Microseconds since the process-wide trace epoch at span start.
    pub ts_us: u64,
    /// Unique span id (> 0).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Span name (stable contract, e.g. `"lp.phase1"`).
    pub span: &'a str,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Iteration count attached via `Span::add_iters`.
    pub iters: u64,
    /// Peak additional heap bytes during the span (0 unless the
    /// `epplan-memtrack` allocator is installed in the binary).
    pub mem_peak_delta: u64,
    /// Allocation calls during the span (same caveat).
    pub alloc_calls: u64,
}

impl TraceEvent<'_> {
    /// One JSON object, no trailing newline.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"ts\":{},\"id\":{},",
            self.ts_us, self.id
        );
        if let Some(p) = self.parent {
            out.push_str(&format!("\"parent\":{p},"));
        }
        out.push_str(&format!(
            "\"span\":\"{}\",\"dur_us\":{},\"iters\":{},\"mem_peak_bytes\":{},\"alloc_calls\":{}}}",
            json_escape(self.span),
            self.dur_us,
            self.iters,
            self.mem_peak_delta,
            self.alloc_calls
        ));
        out
    }

    /// An owned copy (for collecting sinks / tests).
    pub fn to_owned_event(&self) -> OwnedTraceEvent {
        OwnedTraceEvent {
            ts_us: self.ts_us,
            id: self.id,
            parent: self.parent,
            span: self.span.to_string(),
            dur_us: self.dur_us,
            iters: self.iters,
            mem_peak_delta: self.mem_peak_delta,
            alloc_calls: self.alloc_calls,
        }
    }
}

/// Owned variant of [`TraceEvent`], produced by [`CollectingSink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedTraceEvent {
    /// Microseconds since the trace epoch at span start.
    pub ts_us: u64,
    /// Unique span id.
    pub id: u64,
    /// Enclosing span id, if any.
    pub parent: Option<u64>,
    /// Span name.
    pub span: String,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Iteration count.
    pub iters: u64,
    /// Peak additional heap bytes.
    pub mem_peak_delta: u64,
    /// Allocation calls.
    pub alloc_calls: u64,
}

/// Consumer of completed-span events. Implementations must be cheap
/// and must never panic — they run inside solver `Drop` paths.
pub trait TraceSink: Send + Sync {
    /// Called once per completed span.
    fn record(&self, event: &TraceEvent<'_>);
    /// Flushes buffered output (called by [`uninstall_sink`]).
    fn flush(&self) {}
}

static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);

/// Installs `sink` as the process-global trace sink and starts span
/// event emission. Replaces (and flushes) any previous sink.
pub fn install_sink(sink: Arc<dyn TraceSink>) {
    let prev = {
        let mut slot = SINK.write().unwrap_or_else(|p| p.into_inner());
        slot.replace(sink)
    };
    if let Some(prev) = prev {
        prev.flush();
    }
    crate::set_bit(crate::SINK_BIT);
}

/// Removes the installed sink (flushing it) and stops span event
/// emission. Returns the sink so callers can finalize it.
pub fn uninstall_sink() -> Option<Arc<dyn TraceSink>> {
    crate::clear_bit(crate::SINK_BIT);
    let prev = {
        let mut slot = SINK.write().unwrap_or_else(|p| p.into_inner());
        slot.take()
    };
    if let Some(prev) = &prev {
        prev.flush();
    }
    prev
}

/// Hands a completed span to the installed sink, if any.
pub(crate) fn emit(event: &TraceEvent<'_>) {
    let guard = SINK.read().unwrap_or_else(|p| p.into_inner());
    if let Some(sink) = guard.as_ref() {
        sink.record(event);
    }
}

/// A [`TraceSink`] writing one JSON line per span to any writer
/// (typically a `BufWriter<File>`).
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer: Mutex::new(writer) }
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, event: &TraceEvent<'_>) {
        let mut w = lock(&self.writer);
        // Tracing is best-effort: an I/O error must not kill the solve.
        let _ = writeln!(w, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = lock(&self.writer).flush();
    }
}

/// A [`TraceSink`] that buffers owned events in memory, for tests.
#[derive(Default)]
pub struct CollectingSink {
    events: Mutex<Vec<OwnedTraceEvent>>,
}

impl CollectingSink {
    /// An empty collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out everything recorded so far.
    pub fn events(&self) -> Vec<OwnedTraceEvent> {
        lock(&self.events).clone()
    }
}

impl TraceSink for CollectingSink {
    fn record(&self, event: &TraceEvent<'_>) {
        lock(&self.events).push(event.to_owned_event());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_event_json_has_required_keys() {
        let e = TraceEvent {
            ts_us: 12,
            id: 3,
            parent: Some(1),
            span: "lp.phase1",
            dur_us: 456,
            iters: 7,
            mem_peak_delta: 1024,
            alloc_calls: 2,
        };
        let j = e.to_json();
        assert!(j.contains("\"ts\":12"));
        assert!(j.contains("\"span\":\"lp.phase1\""));
        assert!(j.contains("\"dur_us\":456"));
        assert!(j.contains("\"parent\":1"));
        assert!(j.starts_with('{') && j.ends_with('}'));

        let root = TraceEvent { parent: None, ..e };
        assert!(!root.to_json().contains("parent"));
    }

    #[test]
    fn sink_receives_span_events() {
        let _g = lock(crate::test_mutex());
        let sink = Arc::new(CollectingSink::new());
        install_sink(sink.clone());
        {
            let outer = crate::span("test.sink_outer");
            let _outer_id = outer.id().unwrap();
            let _inner = crate::span("test.sink_inner");
        }
        uninstall_sink();
        let events = sink.events();
        assert_eq!(events.len(), 2);
        // Inner span ends (and is recorded) first.
        assert_eq!(events[0].span, "test.sink_inner");
        assert_eq!(events[1].span, "test.sink_outer");
        assert_eq!(events[0].parent, Some(events[1].id));
        assert_eq!(events[1].parent, None);
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let _g = lock(crate::test_mutex());
        let buf: Vec<u8> = Vec::new();
        let sink = JsonlSink::new(buf);
        sink.record(&TraceEvent {
            ts_us: 1,
            id: 2,
            parent: None,
            span: "a",
            dur_us: 3,
            iters: 0,
            mem_peak_delta: 0,
            alloc_calls: 0,
        });
        let w = lock(&sink.writer);
        let text = String::from_utf8(w.clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"span\":\"a\""));
    }
}
