//! Zero-dependency Prometheus text-format exposition.
//!
//! Renders a [`MetricsSnapshot`] (and windowed histograms) as
//! Prometheus exposition format 0.0.4 text: `# TYPE` headers, metric
//! names with dots mapped to underscores under an `epplan_` prefix,
//! cumulative `le`-labelled histogram buckets with a `+Inf` terminator,
//! and `summary`-typed quantile lines for sliding windows. The output
//! is deterministic: metrics render in sorted-name order straight from
//! the snapshot's `BTreeMap`-backed ordering.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// Maps a dotted stable name ("serve.op_latency_us") to a valid
/// Prometheus metric name ("epplan_serve_op_latency_us").
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("epplan_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats an f64 the way Prometheus expects (Go syntax for the
/// non-finite values).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders one histogram in Prometheus `histogram` type: cumulative
/// `_bucket{le="..."}` lines, a `+Inf` bucket, `_sum` and `_count`.
pub fn prometheus_histogram(name: &str, h: &HistogramSnapshot) -> String {
    let pname = prometheus_name(name);
    let mut out = format!("# TYPE {pname} histogram\n");
    let mut cum = 0u64;
    for (le, n) in &h.buckets {
        cum += n;
        out.push_str(&format!("{pname}_bucket{{le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!("{pname}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{pname}_sum {}\n", h.sum));
    out.push_str(&format!("{pname}_count {}\n", h.count));
    out
}

/// Renders a snapshot (typically of a sliding window) in Prometheus
/// `summary` type: one `{quantile="p"}` line per requested quantile via
/// the shared estimator, plus `_sum`/`_count`.
pub fn prometheus_summary(name: &str, h: &HistogramSnapshot, quantiles: &[f64]) -> String {
    let pname = prometheus_name(name);
    let mut out = format!("# TYPE {pname} summary\n");
    for &p in quantiles {
        out.push_str(&format!(
            "{pname}{{quantile=\"{}\"}} {}\n",
            prom_f64(p),
            h.quantile(p)
        ));
    }
    out.push_str(&format!("{pname}_sum {}\n", h.sum));
    out.push_str(&format!("{pname}_count {}\n", h.count));
    out
}

impl MetricsSnapshot {
    /// Renders every counter, gauge, histogram and per-stage aggregate
    /// as Prometheus text exposition format. Stage aggregates become
    /// `epplan_stage_*{stage="..."}` counters so the paper-style cost
    /// table stays scrapeable.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let pname = prometheus_name(name);
            out.push_str(&format!("# TYPE {pname} counter\n{pname} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let pname = prometheus_name(name);
            out.push_str(&format!("# TYPE {pname} gauge\n{pname} {}\n", prom_f64(*v)));
        }
        for (name, h) in &self.histograms {
            out.push_str(&prometheus_histogram(name, h));
        }
        if !self.stages.is_empty() {
            out.push_str("# TYPE epplan_stage_wall_us counter\n");
            for s in &self.stages {
                out.push_str(&format!(
                    "epplan_stage_wall_us{{stage=\"{}\"}} {}\n",
                    s.name,
                    s.wall.as_micros()
                ));
            }
            out.push_str("# TYPE epplan_stage_calls counter\n");
            for s in &self.stages {
                out.push_str(&format!(
                    "epplan_stage_calls{{stage=\"{}\"}} {}\n",
                    s.name, s.calls
                ));
            }
        }
        out
    }
}

/// Very small structural validator used by tests and the scrape chaos
/// suite: every non-comment line must be `name{labels}? value`, every
/// histogram must end with a `+Inf` bucket whose cumulative count
/// equals `_count`, and `# TYPE` lines must precede their samples.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut typed: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if name.is_empty()
                || !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped")
            {
                return Err(format!("line {lineno}: malformed TYPE line: {line}"));
            }
            typed.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => return Err(format!("line {lineno}: no value: {line}")),
        };
        let base = name_part.split('{').next().unwrap_or("");
        if base.is_empty()
            || !base
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {lineno}: bad metric name: {line}"));
        }
        if name_part.contains('{') && !name_part.ends_with('}') {
            return Err(format!("line {lineno}: unterminated labels: {line}"));
        }
        let v = value_part.trim();
        let ok_value = v.parse::<f64>().is_ok() || matches!(v, "NaN" | "+Inf" | "-Inf");
        if !ok_value {
            return Err(format!("line {lineno}: bad sample value: {line}"));
        }
        let family = base
            .strip_suffix("_bucket")
            .or_else(|| base.strip_suffix("_sum"))
            .or_else(|| base.strip_suffix("_count"))
            .unwrap_or(base);
        if !typed.iter().any(|t| t == family || t == base) {
            return Err(format!("line {lineno}: sample before TYPE: {line}"));
        }
    }
    if typed.is_empty() {
        return Err("no TYPE lines".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::StageStats;
    use std::time::Duration;

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("serve.ops".to_string(), 42),
                ("serve.resolves".to_string(), 3),
            ],
            gauges: vec![
                ("serve.drift".to_string(), 7.0),
                ("serve.utility".to_string(), 123.5),
            ],
            histograms: vec![(
                "serve.op_latency_us".to_string(),
                HistogramSnapshot {
                    count: 6,
                    sum: 1350,
                    buckets: vec![(128, 2), (256, 3), (512, 1)],
                },
            )],
            stages: vec![StageStats {
                name: "serve.daemon".to_string(),
                calls: 42,
                wall: Duration::from_micros(9000),
                iters: 0,
                peak_mem_bytes: 0,
                alloc_calls: 0,
            }],
        }
    }

    // Golden-file test for the exposition format: byte-exact output
    // for a hand-built snapshot, so any format drift is a visible diff.
    #[test]
    fn prometheus_exposition_golden() {
        let got = sample_snapshot().to_prometheus();
        let want = "\
# TYPE epplan_serve_ops counter
epplan_serve_ops 42
# TYPE epplan_serve_resolves counter
epplan_serve_resolves 3
# TYPE epplan_serve_drift gauge
epplan_serve_drift 7
# TYPE epplan_serve_utility gauge
epplan_serve_utility 123.5
# TYPE epplan_serve_op_latency_us histogram
epplan_serve_op_latency_us_bucket{le=\"128\"} 2
epplan_serve_op_latency_us_bucket{le=\"256\"} 5
epplan_serve_op_latency_us_bucket{le=\"512\"} 6
epplan_serve_op_latency_us_bucket{le=\"+Inf\"} 6
epplan_serve_op_latency_us_sum 1350
epplan_serve_op_latency_us_count 6
# TYPE epplan_stage_wall_us counter
epplan_stage_wall_us{stage=\"serve.daemon\"} 9000
# TYPE epplan_stage_calls counter
epplan_stage_calls{stage=\"serve.daemon\"} 42
";
        assert_eq!(got, want);
        validate_prometheus(&got).unwrap();
    }

    #[test]
    fn summary_lines_use_shared_estimator() {
        let h = HistogramSnapshot::from_values(&[10, 20, 30, 40, 50]);
        let text = prometheus_summary("serve.window.op_latency_us", &h, &[0.5, 0.99]);
        assert!(text.contains("# TYPE epplan_serve_window_op_latency_us summary"));
        assert!(text.contains("epplan_serve_window_op_latency_us{quantile=\"0.5\"} 30"));
        assert!(text.contains("epplan_serve_window_op_latency_us{quantile=\"0.99\"} 50"));
        assert!(text.contains("epplan_serve_window_op_latency_us_count 5"));
        validate_prometheus(&text).unwrap();
    }

    #[test]
    fn non_finite_gauges_render_go_style() {
        assert_eq!(prom_f64(f64::NAN), "NaN");
        assert_eq!(prom_f64(f64::INFINITY), "+Inf");
        assert_eq!(prom_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(prom_f64(2.5), "2.5");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("epplan_x 1\n").is_err()); // no TYPE
        assert!(validate_prometheus("# TYPE epplan_x counter\nepplan_x one\n").is_err());
        assert!(validate_prometheus("# TYPE epplan_x counter\nepplan_x 1\n").is_ok());
    }
}
