//! Criterion micro-benchmarks for the substrate crates: simplex LP,
//! min-cost matching, the GAP pipeline stages, the data generator and
//! the spatial index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epplan_gap::packing::{mw_fractional, PackingConfig};
use epplan_gap::{lp_relaxation, round_shmoys_tardos, GapInstance};
use rand::prelude::*;

fn random_gap(m: usize, n: usize, seed: u64) -> GapInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let costs: Vec<Vec<f64>> = (0..m)
        .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let times: Vec<Vec<f64>> = (0..m)
        .map(|_| (0..n).map(|_| rng.gen_range(0.5..2.0)).collect())
        .collect();
    let caps: Vec<f64> = (0..m).map(|_| rng.gen_range(2.0..6.0)).collect();
    GapInstance::from_matrices(costs, times, caps)
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/lp-relaxation");
    group.sample_size(10);
    for (m, n) in [(5, 20), (10, 40), (20, 80)] {
        let inst = random_gap(m, n, 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &inst,
            |b, inst| b.iter(|| lp_relaxation(inst)),
        );
    }
    group.finish();
}

fn bench_mw(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/mw-packing");
    for (m, n) in [(20, 80), (50, 200), (100, 400)] {
        let inst = random_gap(m, n, 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &inst,
            |b, inst| b.iter(|| mw_fractional(inst, &PackingConfig::default())),
        );
    }
    group.finish();
}

fn bench_rounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/st-rounding");
    for (m, n) in [(10, 40), (20, 80)] {
        let inst = random_gap(m, n, 3);
        let frac = lp_relaxation(&inst).expect("feasible");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &(inst, frac),
            |b, (inst, frac)| b.iter(|| round_shmoys_tardos(inst, frac)),
        );
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/min-cost-matching");
    for n in [20usize, 60, 120] {
        let mut rng = StdRng::seed_from_u64(4);
        let edges: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|l| {
                let mut rs: Vec<usize> = (0..n).collect();
                rs.shuffle(&mut rng);
                rs.truncate(6);
                rs.into_iter()
                    .map(move |r| (l, r, 0.0))
                    .collect::<Vec<_>>()
            })
            .enumerate()
            .map(|(k, (l, r, _))| (l, r, (k % 17) as f64 / 17.0))
            .collect();
        let caps = vec![2usize; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &edges, |b, edges| {
            b.iter(|| epplan_flow::min_cost_assignment(n, n, edges, &caps))
        });
    }
    group.finish();
}

fn bench_datagen(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/datagen");
    group.sample_size(10);
    for (nu, ne) in [(500, 50), (2000, 200)] {
        let cfg = epplan_datagen::GeneratorConfig {
            n_users: nu,
            n_events: ne,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nu}x{ne}")),
            &cfg,
            |b, cfg| b.iter(|| epplan_datagen::generate(cfg)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lp,
    bench_mw,
    bench_rounding,
    bench_matching,
    bench_datagen
);
criterion_main!(benches);
