//! Criterion micro-benchmarks for the two GEPC solvers (the
//! machine-readable counterpart of Table VI / Fig. 2; run
//! `cargo run -p epplan-bench --release --bin paper` for the full
//! paper-scale tables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epplan_core::solver::{GapBasedSolver, GepcSolver, GreedySolver, LnsSolver};
use epplan_datagen::{generate, GeneratorConfig};

fn cfg(n_users: usize, n_events: usize) -> GeneratorConfig {
    GeneratorConfig {
        n_users,
        n_events,
        mean_lower: 4,
        mean_upper: 16,
        ..Default::default()
    }
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("gepc/greedy");
    for (nu, ne) in [(100, 10), (300, 20), (600, 40)] {
        let inst = generate(&cfg(nu, ne));
        let solver = GreedySolver::seeded(7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nu}x{ne}")),
            &inst,
            |b, inst| b.iter(|| solver.solve(inst)),
        );
    }
    group.finish();
}

fn bench_gap(c: &mut Criterion) {
    let mut group = c.benchmark_group("gepc/gap");
    group.sample_size(10);
    for (nu, ne) in [(60, 8), (120, 12)] {
        let inst = generate(&cfg(nu, ne));
        let solver = GapBasedSolver::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nu}x{ne}")),
            &inst,
            |b, inst| b.iter(|| solver.solve(inst)),
        );
    }
    group.finish();
}

fn bench_two_step_ablation(c: &mut Criterion) {
    // How much time does step 2 (the capacity filler) add?
    let mut group = c.benchmark_group("gepc/greedy-steps");
    let inst = generate(&cfg(300, 20));
    group.bench_function("xi-only", |b| {
        let solver = GreedySolver::xi_only(7);
        b.iter(|| solver.solve(&inst))
    });
    group.bench_function("two-step", |b| {
        let solver = GreedySolver::seeded(7);
        b.iter(|| solver.solve(&inst))
    });
    group.finish();
}

fn bench_lns(c: &mut Criterion) {
    let mut group = c.benchmark_group("gepc/lns");
    group.sample_size(10);
    let inst = generate(&cfg(300, 20));
    group.bench_function("300x20", |b| {
        let solver = LnsSolver::seeded(7);
        b.iter(|| solver.solve(&inst))
    });
    group.finish();
}

criterion_group!(benches, bench_greedy, bench_gap, bench_two_step_ablation, bench_lns);
criterion_main!(benches);
