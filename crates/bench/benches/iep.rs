//! Criterion micro-benchmarks for the IEP repair algorithms against
//! re-solving from scratch (the machine-readable counterpart of
//! Tables VII–IX / Fig. 4).

use criterion::{criterion_group, criterion_main, Criterion};
use epplan_core::incremental::{AtomicOp, IncrementalPlanner};
use epplan_core::model::{EventId, TimeInterval};
use epplan_core::solver::{GepcSolver, GreedySolver};
use epplan_datagen::{generate, GeneratorConfig};

fn setup() -> (
    epplan_core::model::Instance,
    epplan_core::plan::Plan,
) {
    let inst = generate(&GeneratorConfig {
        n_users: 300,
        n_events: 20,
        mean_lower: 4,
        mean_upper: 16,
        ..Default::default()
    });
    let plan = GreedySolver::seeded(7).solve(&inst).plan;
    (inst, plan)
}

fn busiest_event(plan: &epplan_core::plan::Plan) -> EventId {
    (0..plan.n_events() as u32)
        .map(EventId)
        .max_by_key(|&e| plan.attendance(e))
        .expect("non-empty")
}

fn bench_ops(c: &mut Criterion) {
    let (inst, plan) = setup();
    let planner = IncrementalPlanner;
    let e = busiest_event(&plan);
    let n = plan.attendance(e);

    let mut group = c.benchmark_group("iep");
    group.bench_function("eta-decrease", |b| {
        let op = AtomicOp::EtaDecrease {
            event: e,
            new_upper: (n / 2).max(1),
        };
        b.iter(|| planner.apply(&inst, &plan, &op))
    });
    group.bench_function("xi-increase", |b| {
        let op = AtomicOp::XiIncrease {
            event: e,
            new_lower: (n + 2).min(inst.event(e).upper),
        };
        b.iter(|| planner.apply(&inst, &plan, &op))
    });
    group.bench_function("time-change", |b| {
        let t = inst.event(e).time;
        let op = AtomicOp::TimeChange {
            event: e,
            new_time: TimeInterval::new(t.start + 30, t.end + 30),
        };
        b.iter(|| planner.apply(&inst, &plan, &op))
    });
    group.bench_function("re-greedy-baseline", |b| {
        // The cost the incremental algorithms avoid.
        let solver = GreedySolver::seeded(7);
        b.iter(|| solver.solve(&inst))
    });
    group.finish();
}

fn bench_op_stream(c: &mut Criterion) {
    // Sustained churn: how fast can the planner absorb a whole batch?
    let (inst, plan) = setup();
    let mut sampler = epplan_datagen::OpStreamSampler::new(3);
    let ops = sampler.stream(&inst, &plan, 50);
    let planner = IncrementalPlanner;
    c.bench_function("iep/op-stream-50", |b| {
        b.iter(|| planner.apply_batch(&inst, &plan, &ops))
    });
}

fn bench_local_search(c: &mut Criterion) {
    use epplan_core::solver::LocalSearch;
    let (inst, plan) = setup();
    c.bench_function("iep/local-search-pass", |b| {
        b.iter(|| {
            let mut p = plan.clone();
            LocalSearch::default().improve(&inst, &mut p)
        })
    });
}

criterion_group!(benches, bench_ops, bench_op_stream, bench_local_search);
criterion_main!(benches);
