//! Regenerates the paper's tables and figures.
//!
//! ```text
//! paper [--quick] [--reps N] [--obs] [--threads N] [--tolerance F] [--strict] <experiment>...
//!
//! experiments:
//!   example   Paper Example 1 sanity run
//!   table6    GEPC on city datasets (GAP vs Greedy)
//!   fig2      GEPC utility/time scalability sweeps
//!   fig3      GEPC memory scalability sweeps
//!   table7    IEP eta-De on city datasets
//!   table8    IEP xi-In on city datasets
//!   table9    IEP ts-tt on city datasets
//!   fig4      IEP utility/time scalability sweeps
//!   fig5      IEP memory scalability sweeps
//!   ablations A1 (approx ratios), A2 (LP vs MW), A3 (filler)
//!   bench     serial-vs-parallel baseline, written to BENCH_gepc.json
//!   serve     serving-daemon throughput/latency, written to BENCH_serve.json
//!   gate      re-measure bench+serve, diff against the committed
//!             BENCH_*.json within --tolerance (default 0.15); exits 1
//!             on regression. Fresh rows land in BENCH_*.fresh.json.
//!   all       everything above except bench, serve and gate
//! ```
//!
//! `gate` timing checks (wall_s / ops_per_sec) are enforced only when
//! the committed baseline carries the same `machine_cores` fingerprint
//! as this machine — cross-machine numbers downgrade to warnings
//! unless `--strict`. Utility drift and lost certification always
//! fail: those are machine-independent.
//!
//! `--threads N` pins the worker count for every solver stage (same
//! knob as the `EPPLAN_THREADS` env var); the default is the machine's
//! available parallelism. `bench` compares `threads=1` against that
//! resolved count.
//!
//! Memory numbers are live because this binary installs the
//! `epplan-memtrack` counting allocator. `--obs` turns on the
//! `epplan-obs` metrics registry and prints the accumulated per-stage
//! cost table (spans, counters, gauges) to stderr after all
//! experiments finish — useful for attributing a table's wall time to
//! simplex pivots vs MW epochs vs rounding.

use epplan_bench::experiments::{self, HarnessOptions};
use epplan_bench::table::Table;
use std::path::PathBuf;

#[global_allocator]
static ALLOC: epplan_memtrack::Tracking = epplan_memtrack::Tracking;

fn usage() -> ! {
    eprintln!(
        "usage: paper [--quick] [--reps N] [--obs] [--threads N] [--tolerance F] [--strict] \
         <example|table6|fig2|fig3|table7|table8|table9|fig4|fig5|ablations|bench|serve|gate|all>..."
    );
    std::process::exit(2)
}

/// Runs one leg of the perf gate: re-measures `experiment`, diffs the
/// fresh rows against the committed `<path>`, and writes the fresh
/// document next to it as `<stem>.fresh.json` for CI artifact upload.
fn gate_leg(
    name: &str,
    committed_path: &str,
    fresh_json: &str,
    tolerance: f64,
    strict: bool,
) -> bool {
    let fresh_path = committed_path.replace(".json", ".fresh.json");
    if let Err(e) = std::fs::write(&fresh_path, fresh_json) {
        eprintln!("warning: cannot write {fresh_path}: {e}");
    }
    let committed = match std::fs::read_to_string(committed_path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("gate: cannot read committed {committed_path}: {e}");
            return false;
        }
    };
    let (base, fresh) = match (
        epplan_bench::gate::parse_bench(&committed),
        epplan_bench::gate::parse_bench(fresh_json),
    ) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) => {
            eprintln!("gate: cannot parse {committed_path}: {e}");
            return false;
        }
        (_, Err(e)) => {
            eprintln!("gate: cannot parse fresh {name} rows: {e}");
            return false;
        }
    };
    let outcome = epplan_bench::gate::compare(committed_path, &base, &fresh, tolerance, strict);
    print!("{outcome}");
    outcome.passed()
}

/// Prints a table and, when `csv_dir` is set, also writes
/// `<dir>/<slug>.csv`.
fn emit(t: &Table, csv_dir: Option<&PathBuf>) {
    t.print();
    if let Some(dir) = csv_dir {
        let path = dir.join(format!("{}.csv", t.slug()));
        if let Err(e) = std::fs::write(&path, t.to_csv()) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }
}

fn main() {
    let mut opts = HarnessOptions::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut obs = false;
    let mut tolerance = 0.15;
    let mut strict = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--strict" => strict = true,
            "--tolerance" => {
                let Some(f) = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|f| f.is_finite() && *f >= 0.0)
                else {
                    usage()
                };
                tolerance = f;
            }
            "--obs" => {
                obs = true;
                epplan_obs::enable_metrics();
            }
            "--reps" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    usage()
                };
                opts.reps = n;
            }
            "--threads" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0)
                else {
                    usage()
                };
                epplan_par::set_threads(n);
            }
            "--csv" => {
                let Some(dir) = args.next() else { usage() };
                let dir = PathBuf::from(dir);
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    eprintln!("error: cannot create {}: {e}", dir.display());
                    std::process::exit(1);
                }
                csv_dir = Some(dir);
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        usage();
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = [
            "example", "table6", "fig2", "fig3", "table7", "table8", "table9", "fig4",
            "fig5", "ablations",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    // `fig2`+`fig3` (and `fig4`+`fig5`) share their sweep runs; compute
    // lazily and cache.
    let mut gepc_scaling: Option<(Vec<epplan_bench::table::Table>, Vec<epplan_bench::table::Table>)> =
        None;
    let mut iep_scaling: Option<(Vec<epplan_bench::table::Table>, Vec<epplan_bench::table::Table>)> =
        None;

    for w in &wanted {
        match w.as_str() {
            "example" => emit(&experiments::example_table(), csv_dir.as_ref()),
            "table6" => emit(&experiments::table6(&opts), csv_dir.as_ref()),
            "fig2" => {
                let (fig2, _) = gepc_scaling
                    .get_or_insert_with(|| experiments::scaling(&opts))
                    .clone();
                fig2.iter().for_each(|t| emit(t, csv_dir.as_ref()));
            }
            "fig3" => {
                let (_, fig3) = gepc_scaling
                    .get_or_insert_with(|| experiments::scaling(&opts))
                    .clone();
                fig3.iter().for_each(|t| emit(t, csv_dir.as_ref()));
            }
            "table7" => emit(&experiments::table7(&opts), csv_dir.as_ref()),
            "table8" => emit(&experiments::table8(&opts), csv_dir.as_ref()),
            "table9" => emit(&experiments::table9(&opts), csv_dir.as_ref()),
            "fig4" => {
                let (fig4, _) = iep_scaling
                    .get_or_insert_with(|| experiments::iep_scaling(&opts))
                    .clone();
                fig4.iter().for_each(|t| emit(t, csv_dir.as_ref()));
            }
            "fig5" => {
                let (_, fig5) = iep_scaling
                    .get_or_insert_with(|| experiments::iep_scaling(&opts))
                    .clone();
                fig5.iter().for_each(|t| emit(t, csv_dir.as_ref()));
            }
            "bench" => {
                let json = experiments::bench_gepc(&opts, epplan_par::threads());
                let path = "BENCH_gepc.json";
                match std::fs::write(path, &json) {
                    Ok(()) => println!("wrote {path}"),
                    Err(e) => eprintln!("warning: cannot write {path}: {e}"),
                }
                print!("{json}");
            }
            "serve" => {
                let json = experiments::bench_serve(&opts, epplan_par::threads());
                let path = "BENCH_serve.json";
                match std::fs::write(path, &json) {
                    Ok(()) => println!("wrote {path}"),
                    Err(e) => eprintln!("warning: cannot write {path}: {e}"),
                }
                print!("{json}");
            }
            "gate" => {
                let gepc = experiments::bench_gepc(&opts, epplan_par::threads());
                let gepc_ok = gate_leg("gepc", "BENCH_gepc.json", &gepc, tolerance, strict);
                let serve = experiments::bench_serve(&opts, epplan_par::threads());
                let serve_ok = gate_leg("serve", "BENCH_serve.json", &serve, tolerance, strict);
                if !(gepc_ok && serve_ok) {
                    eprintln!("gate: perf regression against committed BENCH files");
                    std::process::exit(1);
                }
                println!("gate: ok (tolerance {tolerance})");
            }
            "ablations" => {
                emit(&experiments::ablation_approx(&opts), csv_dir.as_ref());
                emit(&experiments::ablation_lp(&opts), csv_dir.as_ref());
                emit(&experiments::ablation_filler(&opts), csv_dir.as_ref());
                emit(&experiments::ablation_local_search(&opts), csv_dir.as_ref());
                emit(&experiments::ablation_geography(&opts), csv_dir.as_ref());
            }
            _ => usage(),
        }
    }

    if obs {
        eprintln!("\n=== observability: accumulated solver-stage costs ===");
        eprintln!("{}", epplan_obs::snapshot().render_table());
    }
}
