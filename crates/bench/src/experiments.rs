//! The experiment runners, one per paper table/figure.

use crate::measure::measure;
use crate::ops;
use crate::table::{fnum, Table};
use epplan_core::analysis::InstanceAnalysis;
use epplan_core::incremental::{AtomicOp, IncrementalPlanner};
use epplan_core::model::Instance;
use epplan_core::plan::Plan;
use epplan_core::solver::{ExactSolver, GapBasedSolver, GepcSolver, GreedySolver, LnsSolver};
use epplan_datagen::{generate, paper_example, City, GeneratorConfig};
use epplan_gap::{FractionalMethod, GapConfig};
use rand::prelude::*;

/// Global harness options.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Shrinks city sets, sweeps and repetition counts so the full
    /// suite finishes in minutes instead of hours.
    pub quick: bool,
    /// IEP repetitions per (city, operation); the paper uses 50.
    pub reps: usize,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            quick: false,
            reps: 5,
        }
    }
}

impl HarnessOptions {
    fn cities(&self) -> Vec<City> {
        if self.quick {
            vec![City::Beijing, City::Auckland]
        } else {
            City::ALL.to_vec()
        }
    }

    fn user_sweep(&self) -> (usize, Vec<usize>) {
        // Fig. 2: |E| = 50 fixed, |U| swept (Table V).
        if self.quick {
            (50, vec![200, 500])
        } else {
            (50, vec![200, 500, 1000, 5000])
        }
    }

    fn event_sweep(&self) -> (usize, Vec<usize>) {
        // Fig. 2: |U| = 5000 fixed, |E| swept (Table V).
        if self.quick {
            (1000, vec![20, 50])
        } else {
            (5000, vec![20, 50, 100, 200, 500])
        }
    }
}

fn greedy() -> GreedySolver {
    GreedySolver::seeded(7)
}

fn gap_solver() -> GapBasedSolver {
    GapBasedSolver::default()
}

/// A faster GAP variant for the big scalability sweeps: multiplicative
/// weights with fewer rounds. The paper's GAP numbers are likewise its
/// slow algorithm pushed through the large datasets (12 383 s on
/// Vancouver); we keep wall-clock sane while preserving the ordering
/// (GAP ≫ greedy in time, ≥ in utility).
fn gap_solver_fast() -> GapBasedSolver {
    GapBasedSolver::with_gap_config(GapConfig {
        method: FractionalMethod::MultiplicativeWeights,
        packing: epplan_gap::packing::PackingConfig {
            iterations: 60,
            burn_in: 10,
            ..Default::default()
        },
        ..Default::default()
    })
}

struct SolverRun {
    utility: f64,
    seconds: f64,
    mem_mib: f64,
}

fn run_solver(instance: &Instance, solver: &dyn GepcSolver) -> SolverRun {
    let m = measure(|| solver.solve(instance));
    SolverRun {
        utility: m.value.utility,
        seconds: m.seconds,
        mem_mib: m.mem_mib,
    }
}

// ---------------------------------------------------------------------
// Table VI — GEPC on the city datasets.
// ---------------------------------------------------------------------

/// Runs Table VI: GAP-based vs greedy on the (synthetic stand-ins for
/// the) four city datasets; utility, time and memory per solver.
pub fn table6(opts: &HarnessOptions) -> Table {
    let mut t = Table::new(
        "Table VI: algorithms for GEPC on city datasets",
        &[
            "City", "|U|", "|E|", "Util(GAP)", "Time(GAP)s", "Mem(GAP)MB", "Util(Greedy)",
            "Time(Greedy)s", "Mem(Greedy)MB",
        ],
    );
    for city in opts.cities() {
        let inst = city.instance();
        let gap = run_solver(&inst, &gap_solver());
        let gr = run_solver(&inst, &greedy());
        t.row(vec![
            city.name().into(),
            inst.n_users().to_string(),
            inst.n_events().to_string(),
            fnum(gap.utility),
            fnum(gap.seconds),
            fnum(gap.mem_mib),
            fnum(gr.utility),
            fnum(gr.seconds),
            fnum(gr.mem_mib),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figures 2 & 3 — GEPC scalability (utility, time, memory).
// ---------------------------------------------------------------------

struct ScalingRow {
    label: String,
    gap: SolverRun,
    greedy: SolverRun,
}

fn scaling_rows(
    fixed_label: &str,
    configs: Vec<(String, GeneratorConfig)>,
    use_fast_gap: bool,
) -> (String, Vec<ScalingRow>) {
    let rows = configs
        .into_iter()
        .map(|(label, cfg)| {
            let inst = generate(&cfg);
            let gap = if use_fast_gap {
                run_solver(&inst, &gap_solver_fast())
            } else {
                run_solver(&inst, &gap_solver())
            };
            let greedy = run_solver(&inst, &greedy());
            ScalingRow { label, gap, greedy }
        })
        .collect();
    (fixed_label.to_string(), rows)
}

fn sweep_configs(us: &[usize], es: &[usize]) -> Vec<(String, GeneratorConfig)> {
    let base = GeneratorConfig::default();
    let mut out = Vec::new();
    for &u in us {
        for &e in es {
            let label = if us.len() > 1 {
                format!("|U|={u}")
            } else {
                format!("|E|={e}")
            };
            out.push((label, base.cutout(u, e)));
        }
    }
    out
}

fn render_scaling(title: &str, fixed: &str, rows: &[ScalingRow], cols: &str) -> Table {
    let headers: Vec<&str> = match cols {
        "utility" => vec!["Sweep", "Util(GAP)", "Util(Greedy)"],
        "time" => vec!["Sweep", "Time(GAP)s", "Time(Greedy)s"],
        _ => vec!["Sweep", "Mem(GAP)MB", "Mem(Greedy)MB"],
    };
    let mut t = Table::new(&format!("{title} ({fixed})"), &headers);
    for r in rows {
        let cells = match cols {
            "utility" => vec![r.label.clone(), fnum(r.gap.utility), fnum(r.greedy.utility)],
            "time" => vec![r.label.clone(), fnum(r.gap.seconds), fnum(r.greedy.seconds)],
            _ => vec![r.label.clone(), fnum(r.gap.mem_mib), fnum(r.greedy.mem_mib)],
        };
        t.row(cells);
    }
    t
}

/// Runs both Fig. 2/3 sweeps and returns (fig2 tables, fig3 tables).
pub fn scaling(opts: &HarnessOptions) -> (Vec<Table>, Vec<Table>) {
    let (fixed_e, us) = opts.user_sweep();
    let (fixed_u, es) = opts.event_sweep();
    let (label_u, rows_u) = scaling_rows(
        &format!("|E|={fixed_e}"),
        sweep_configs(&us, &[fixed_e]),
        true,
    );
    let (label_e, rows_e) = scaling_rows(
        &format!("|U|={fixed_u}"),
        sweep_configs(&[fixed_u], &es),
        true,
    );
    let fig2 = vec![
        render_scaling("Fig 2(a): total utility vs |U|", &label_u, &rows_u, "utility"),
        render_scaling("Fig 2(b): total utility vs |E|", &label_e, &rows_e, "utility"),
        render_scaling("Fig 2(c): time cost vs |U|", &label_u, &rows_u, "time"),
        render_scaling("Fig 2(d): time cost vs |E|", &label_e, &rows_e, "time"),
    ];
    let fig3 = vec![
        render_scaling("Fig 3(a): memory cost vs |U|", &label_u, &rows_u, "mem"),
        render_scaling("Fig 3(b): memory cost vs |E|", &label_e, &rows_e, "mem"),
    ];
    (fig2, fig3)
}

// ---------------------------------------------------------------------
// Tables VII–IX — IEP on the city datasets.
// ---------------------------------------------------------------------

/// Which IEP atomic operation an experiment exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IepOp {
    /// `η` decreased (Table VII, `η`-De).
    EtaDe,
    /// `ξ` increased (Table VIII, `ξ`-In).
    XiIn,
    /// `t^s`/`t^t` changed (Table IX, `t^s-t^t`).
    TsTt,
}

impl IepOp {
    fn gen_op(self, inst: &Instance, plan: &Plan, rng: &mut impl Rng) -> AtomicOp {
        match self {
            IepOp::EtaDe => ops::random_eta_decrease(inst, plan, rng),
            IepOp::XiIn => ops::random_xi_increase(inst, plan, rng),
            IepOp::TsTt => ops::random_time_change(inst, plan, rng),
        }
    }

    fn name(self) -> &'static str {
        match self {
            IepOp::EtaDe => "eta-De",
            IepOp::XiIn => "xi-In",
            IepOp::TsTt => "ts-tt",
        }
    }
}

struct IepAverages {
    utility_inc: f64,
    utility_regreedy: f64,
    utility_regap: f64,
    dif: f64,
    seconds: f64,
    mem_mib: f64,
}

/// Runs `reps` random operations of kind `op` against a base plan,
/// averaging the incremental result and the re-run baselines.
fn iep_averages(
    instance: &Instance,
    base_plan: &Plan,
    op: IepOp,
    reps: usize,
    seed: u64,
    with_regap: bool,
) -> IepAverages {
    let mut rng = StdRng::seed_from_u64(seed);
    let planner = IncrementalPlanner;
    let mut acc = IepAverages {
        utility_inc: 0.0,
        utility_regreedy: 0.0,
        utility_regap: 0.0,
        dif: 0.0,
        seconds: 0.0,
        mem_mib: 0.0,
    };
    for _ in 0..reps {
        let atomic = op.gen_op(instance, base_plan, &mut rng);
        let m = measure(|| planner.apply(instance, base_plan, &atomic));
        let outcome = m.value;
        acc.seconds += m.seconds;
        acc.mem_mib += m.mem_mib;
        acc.utility_inc += outcome.utility;
        acc.dif += outcome.dif as f64;
        // Baselines: re-solve the *updated* instance from scratch.
        acc.utility_regreedy += greedy().solve(&outcome.instance).utility;
        if with_regap {
            acc.utility_regap += gap_solver_fast().solve(&outcome.instance).utility;
        }
    }
    let k = reps as f64;
    acc.utility_inc /= k;
    acc.utility_regreedy /= k;
    acc.utility_regap /= k;
    acc.dif /= k;
    acc.seconds /= k;
    acc.mem_mib /= k;
    acc
}

fn iep_table(title: &str, op: IepOp, opts: &HarnessOptions) -> Table {
    let mut t = Table::new(
        title,
        &[
            "City",
            &format!("Util({})", op.name()),
            "Util(Re-Greedy)",
            "Util(Re-GAP)",
            "avg dif",
            "Time(s)",
            "Mem(MB)",
        ],
    );
    for city in opts.cities() {
        let inst = city.instance();
        let base = greedy().solve(&inst).plan;
        let avg = iep_averages(&inst, &base, op, opts.reps, 0xC0FFEE ^ city as u64, true);
        t.row(vec![
            city.name().into(),
            fnum(avg.utility_inc),
            fnum(avg.utility_regreedy),
            fnum(avg.utility_regap),
            fnum(avg.dif),
            fnum(avg.seconds),
            fnum(avg.mem_mib),
        ]);
    }
    t
}

/// Table VII: IEP `η`-decrease vs re-running both GEPC algorithms.
pub fn table7(opts: &HarnessOptions) -> Table {
    iep_table("Table VII: results of eta-De on city datasets", IepOp::EtaDe, opts)
}

/// Table VIII: IEP `ξ`-increase vs re-running both GEPC algorithms.
pub fn table8(opts: &HarnessOptions) -> Table {
    iep_table("Table VIII: results of xi-In on city datasets", IepOp::XiIn, opts)
}

/// Table IX: IEP time-change vs re-running both GEPC algorithms.
pub fn table9(opts: &HarnessOptions) -> Table {
    iep_table("Table IX: results of ts-tt on city datasets", IepOp::TsTt, opts)
}

// ---------------------------------------------------------------------
// Figures 4 & 5 — IEP scalability.
// ---------------------------------------------------------------------

struct IepScalingRow {
    label: String,
    per_op: Vec<(IepOp, IepAverages)>,
}

fn iep_scaling_rows(configs: Vec<(String, GeneratorConfig)>, reps: usize) -> Vec<IepScalingRow> {
    configs
        .into_iter()
        .map(|(label, cfg)| {
            let inst = generate(&cfg);
            let base = greedy().solve(&inst).plan;
            let per_op = [IepOp::EtaDe, IepOp::XiIn, IepOp::TsTt]
                .into_iter()
                .map(|op| {
                    (
                        op,
                        iep_averages(&inst, &base, op, reps, 0xBEEF ^ cfg.n_users as u64, false),
                    )
                })
                .collect();
            IepScalingRow { label, per_op }
        })
        .collect()
}

fn render_iep_scaling(title: &str, rows: &[IepScalingRow], col: &str) -> Table {
    let mut t = Table::new(
        title,
        &["Sweep", "eta-De", "xi-In", "ts-tt"],
    );
    for r in rows {
        let mut cells = vec![r.label.clone()];
        for (_, avg) in &r.per_op {
            cells.push(match col {
                "utility" => fnum(avg.utility_inc),
                "time" => fnum(avg.seconds),
                _ => fnum(avg.mem_mib),
            });
        }
        t.row(cells);
    }
    t
}

/// Runs the Fig. 4/5 sweeps and returns (fig4 tables, fig5 tables).
pub fn iep_scaling(opts: &HarnessOptions) -> (Vec<Table>, Vec<Table>) {
    let (fixed_e, us) = opts.user_sweep();
    let (fixed_u, es) = opts.event_sweep();
    let rows_u = iep_scaling_rows(sweep_configs(&us, &[fixed_e]), opts.reps);
    let rows_e = iep_scaling_rows(sweep_configs(&[fixed_u], &es), opts.reps);
    let fig4 = vec![
        render_iep_scaling("Fig 4(a-c): IEP utility vs |U|", &rows_u, "utility"),
        render_iep_scaling("Fig 4(e-g): IEP utility vs |E|", &rows_e, "utility"),
        render_iep_scaling("Fig 4(d): IEP time (s) vs |U|", &rows_u, "time"),
        render_iep_scaling("Fig 4(h): IEP time (s) vs |E|", &rows_e, "time"),
    ];
    let fig5 = vec![
        render_iep_scaling("Fig 5(a): IEP memory (MB) vs |U|", &rows_u, "mem"),
        render_iep_scaling("Fig 5(b): IEP memory (MB) vs |E|", &rows_e, "mem"),
    ];
    (fig4, fig5)
}

// ---------------------------------------------------------------------
// Ablations.
// ---------------------------------------------------------------------

/// A1: measured approximation ratios against the exact optimum on tiny
/// random instances, next to the paper's theoretical bounds.
pub fn ablation_approx(opts: &HarnessOptions) -> Table {
    let trials = if opts.quick { 10 } else { 40 };
    let mut t = Table::new(
        "Ablation A1: measured vs theoretical approximation ratios",
        &["Trial set", "ratio(GAP)", "ratio(Greedy)", "bound(GAP)", "bound(Greedy)"],
    );
    let mut sum_gap = 0.0;
    let mut sum_gr = 0.0;
    let mut n_ok = 0usize;
    let mut bound_gap: f64 = 1.0;
    let mut bound_gr: f64 = 1.0;
    for seed in 0..trials {
        let inst = generate(&GeneratorConfig {
            n_users: 6,
            n_events: 5,
            seed: 9000 + seed,
            mean_lower: 1,
            mean_upper: 4,
            n_tags: 8,
            ..Default::default()
        });
        let Some(exact) = ExactSolver {
            max_users: 8,
            max_events: 6,
        }
        .solve_optimal(&inst) else {
            continue;
        };
        if exact.utility <= 0.0 {
            continue;
        }
        let a = InstanceAnalysis::of(&inst);
        let g = gap_solver().solve(&inst);
        let gr = greedy().solve(&inst);
        sum_gap += g.utility / exact.utility;
        sum_gr += gr.utility / exact.utility;
        if let Some(b) = a.gap_bound() {
            bound_gap = bound_gap.min(b);
        }
        if let Some(b) = a.greedy_bound() {
            bound_gr = bound_gr.min(b);
        }
        n_ok += 1;
    }
    if n_ok > 0 {
        t.row(vec![
            format!("{n_ok} feasible tiny instances"),
            fnum(sum_gap / n_ok as f64),
            fnum(sum_gr / n_ok as f64),
            fnum(bound_gap),
            fnum(bound_gr),
        ]);
    }
    t
}

/// A2: exact simplex LP vs multiplicative-weights fractional solver on
/// the ξ-GEPC GAP reduction (objective gap and time).
pub fn ablation_lp(opts: &HarnessOptions) -> Table {
    let sizes: &[(usize, usize)] = if opts.quick {
        &[(30, 6), (60, 10)]
    } else {
        &[(30, 6), (60, 10), (120, 16), (200, 24)]
    };
    let mut t = Table::new(
        "Ablation A2: simplex LP vs multiplicative weights (xi-GEPC reduction)",
        &["|U|x|E|", "cost(LP)", "cost(MW)", "time(LP)s", "time(MW)s"],
    );
    for &(nu, ne) in sizes {
        let inst = generate(&GeneratorConfig {
            n_users: nu,
            n_events: ne,
            seed: 777,
            mean_lower: 2,
            mean_upper: 10,
            ..Default::default()
        });
        let solver = GapBasedSolver::default();
        let (gap_inst, _jobs) = solver.build_gap(&inst);
        let lp = measure(|| epplan_gap::lp_relaxation(&gap_inst));
        let mw = measure(|| {
            epplan_gap::packing::mw_fractional(&gap_inst, &Default::default())
        });
        let lp_cost = lp
            .value
            .as_ref()
            .map(|f| f.cost(&gap_inst))
            .unwrap_or(f64::NAN);
        t.row(vec![
            format!("{nu}x{ne}"),
            fnum(lp_cost),
            fnum(mw.value
                .as_ref()
                .map(|f| f.cost(&gap_inst))
                .unwrap_or(f64::NAN)),
            fnum(lp.seconds),
            fnum(mw.seconds),
        ]);
    }
    t
}

/// A3: contribution of step 2 (the capacity filler) to total utility.
pub fn ablation_filler(opts: &HarnessOptions) -> Table {
    let mut t = Table::new(
        "Ablation A3: step-2 capacity filler contribution (greedy solver)",
        &["City", "Util(xi only)", "Util(two-step)", "gain %"],
    );
    for city in opts.cities() {
        let inst = city.instance();
        let xi = GreedySolver::xi_only(7).solve(&inst);
        let full = greedy().solve(&inst);
        let gain = if xi.utility > 0.0 {
            100.0 * (full.utility - xi.utility) / xi.utility
        } else {
            0.0
        };
        t.row(vec![
            city.name().into(),
            fnum(xi.utility),
            fnum(full.utility),
            fnum(gain),
        ]);
    }
    t
}

/// A4: utility gained by the local-search post-optimizer on top of
/// each solver (the extension the paper leaves open).
pub fn ablation_local_search(opts: &HarnessOptions) -> Table {
    use epplan_core::solver::LocalSearch;
    let mut t = Table::new(
        "Ablation A4: local-search post-optimization gain",
        &["City", "Solver", "Util(before)", "Util(after)", "gain %", "Time(LS)s"],
    );
    for city in opts.cities() {
        let inst = city.instance();
        for (name, sol) in [
            ("greedy", greedy().solve(&inst)),
            ("gap", gap_solver_fast().solve(&inst)),
        ] {
            let mut plan = sol.plan.clone();
            let m = measure(|| LocalSearch::default().improve(&inst, &mut plan));
            let after = plan.total_utility(&inst);
            let gain = if sol.utility > 0.0 {
                100.0 * (after - sol.utility) / sol.utility
            } else {
                0.0
            };
            t.row(vec![
                city.name().into(),
                name.into(),
                fnum(sol.utility),
                fnum(after),
                fnum(gain),
                fnum(m.seconds),
            ]);
        }
    }
    t
}

/// A5: uniform vs neighborhood-clustered geography. Clustered cities
/// concentrate reachability (`Uc` spreads out); this checks how both
/// solvers' utility and the greedy/GAP gap react.
pub fn ablation_geography(opts: &HarnessOptions) -> Table {
    use epplan_datagen::SpatialModel;
    let mut t = Table::new(
        "Ablation A5: uniform vs clustered geography",
        &["Spatial", "Uc_max", "Util(GAP)", "Util(Greedy)", "shortfalls(Greedy)"],
    );
    let (n_users, n_events) = if opts.quick { (200, 20) } else { (800, 40) };
    for (label, spatial) in [
        ("uniform", SpatialModel::Uniform),
        (
            "clustered(5, 0.06)",
            SpatialModel::Clustered {
                clusters: 5,
                spread: 0.06,
            },
        ),
        (
            "clustered(2, 0.04)",
            SpatialModel::Clustered {
                clusters: 2,
                spread: 0.04,
            },
        ),
    ] {
        let inst = generate(&GeneratorConfig {
            n_users,
            n_events,
            seed: 4242,
            mean_lower: 5,
            mean_upper: 20,
            spatial,
            ..Default::default()
        });
        let analysis = InstanceAnalysis::of(&inst);
        let gap = gap_solver_fast().solve(&inst);
        let gr = greedy().solve(&inst);
        t.row(vec![
            label.into(),
            analysis.uc_max.to_string(),
            fnum(gap.utility),
            fnum(gr.utility),
            gr.shortfall.len().to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// BENCH_gepc.json — the serial-vs-parallel performance baseline.
// ---------------------------------------------------------------------

/// One measured (instance, thread-count) cell of the parallel baseline.
struct BenchCell {
    threads: usize,
    utility: f64,
    wall_s: f64,
    mem_mib: f64,
    packing_wall_s: f64,
}

fn bench_cell(inst: &Instance, threads: usize) -> BenchCell {
    epplan_par::set_threads(threads);
    let mark = epplan_obs::StageMark::now();
    let m = measure(|| gap_solver_fast().solve(inst));
    // The MW packing oracle is the headline parallel stage; pull its
    // wall time out of the per-stage aggregates for this run only.
    let packing_wall_s = mark
        .delta()
        .into_iter()
        .find(|s| s.name == "gap.packing")
        .map(|s| s.wall.as_secs_f64())
        .unwrap_or(0.0);
    BenchCell {
        threads,
        utility: m.value.utility,
        wall_s: m.seconds,
        mem_mib: m.mem_mib,
        packing_wall_s,
    }
}

/// Candidate-pruned generator configs for the `|U| ≥ 10⁵` scale rows.
/// The travel-budget window shrinks with the grid so each user sees
/// tens of events instead of all of them; the dense utility layout
/// would need `|U|·|E| ≥ 2·10¹⁰` μ-cells at the top cell, which is
/// exactly what the CSR instance layout exists to avoid.
fn scale_config(n_users: usize, n_events: usize) -> GeneratorConfig {
    GeneratorConfig {
        n_users,
        n_events,
        candidate_pruned: true,
        budget_frac: if n_events >= 500 { (0.2, 0.4) } else { (0.3, 0.5) },
        ..GeneratorConfig::default()
    }
}

/// Serial-vs-parallel GEPC baseline: the MW GAP pipeline at `threads=1`
/// and `threads=n` on the Fig-2 |U| grid at |E|=50, plus the
/// candidate-pruned 10⁵/10⁶ scale cells. Returns the JSON document
/// committed as `BENCH_gepc.json`. Parallel runs must produce the same
/// plan utility as serial ones (the `epplan-par` determinism
/// contract); each summary row records that check's outcome.
pub fn bench_gepc(opts: &HarnessOptions, threads: usize) -> String {
    // Stage aggregates only accumulate while metrics are on.
    let was_enabled = epplan_obs::metrics_enabled();
    epplan_obs::enable_metrics();
    let prior = epplan_par::threads();

    // The full grid is a superset of the quick grid so `paper gate
    // --quick` rows always have committed counterparts to diff.
    let grid: &[(usize, usize)] = if opts.quick {
        &[(500, 50), (1000, 50)]
    } else {
        &[(500, 50), (1000, 50), (5000, 50), (10000, 50)]
    };
    let mut cells: Vec<(usize, usize, GeneratorConfig)> = grid
        .iter()
        .map(|&(u, e)| (u, e, GeneratorConfig::default().cutout(u, e)))
        .collect();
    if !opts.quick {
        for (u, e) in [(100_000, 200), (1_000_000, 500)] {
            cells.push((u, e, scale_config(u, e)));
        }
    }
    let mut rows = String::new();
    let mut summary = String::new();
    for (i, (users, events, cfg)) in cells.iter().enumerate() {
        let (users, events) = (*users, *events);
        let inst = generate(cfg);
        // Mean candidate-list length: the row that explains the wall
        // clock of every sparse-path stage.
        let cand_density = inst.candidates().len() as f64 / (inst.n_users().max(1)) as f64;
        let serial = bench_cell(&inst, 1);
        let parallel = if threads > 1 {
            bench_cell(&inst, threads)
        } else {
            bench_cell(&inst, 1)
        };
        for c in [&serial, &parallel] {
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"users\": {users}, \"events\": {events}, \"threads\": {}, \
                 \"cand_density\": {cand_density:.3}, \
                 \"utility\": {:.6}, \"wall_s\": {:.6}, \"mem_mib\": {:.3}, \
                 \"packing_wall_s\": {:.6}}}",
                c.threads, c.utility, c.wall_s, c.mem_mib, c.packing_wall_s
            ));
        }
        if i > 0 {
            summary.push_str(",\n");
        }
        let wall_speedup = serial.wall_s / parallel.wall_s.max(1e-12);
        let packing_speedup = serial.packing_wall_s / parallel.packing_wall_s.max(1e-12);
        summary.push_str(&format!(
            "    {{\"users\": {users}, \"events\": {events}, \
             \"wall_speedup\": {wall_speedup:.3}, \
             \"packing_speedup\": {packing_speedup:.3}, \
             \"deterministic\": {}}}",
            (serial.utility - parallel.utility).abs() < 1e-9
        ));
    }

    epplan_par::set_threads(prior);
    if !was_enabled {
        epplan_obs::disable_metrics();
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!(
        "{{\n  \"bench\": \"gepc_serial_vs_parallel\",\n  \
         \"solver\": \"gap(multiplicative-weights)\",\n  \
         \"machine_cores\": {cores},\n  \
         \"threads_compared\": [1, {threads}],\n  \
         \"rows\": [\n{rows}\n  ],\n  \
         \"summary\": [\n{summary}\n  ]\n}}\n"
    )
}

// ---------------------------------------------------------------------
// BENCH_serve.json — daemon throughput and repair-latency baseline.
// ---------------------------------------------------------------------

/// One measured (instance, thread-count) serving cell.
struct ServeCell {
    threads: usize,
    ops: u64,
    ops_per_sec: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    applied: u64,
    resolved: u64,
    rejected: u64,
    snapshots: u64,
    shed: u64,
    brownout_steps: u64,
    utility: f64,
    certified: bool,
    /// Mid-stream certification spot-checks that failed (must be 0:
    /// the daemon's contract is "no uncertified interval").
    uncertified_intervals: u64,
    error: Option<String>,
}

impl ServeCell {
    fn failed(threads: usize, error: String) -> Self {
        ServeCell {
            threads,
            ops: 0,
            ops_per_sec: 0.0,
            p50_us: 0,
            p95_us: 0,
            p99_us: 0,
            applied: 0,
            resolved: 0,
            rejected: 0,
            snapshots: 0,
            shed: 0,
            brownout_steps: 0,
            utility: 0.0,
            certified: false,
            uncertified_intervals: 0,
            error: Some(error),
        }
    }
}

fn serve_cell(
    inst: &Instance,
    ops: &[epplan_core::incremental::SequencedOp],
    threads: usize,
    tag: &str,
    config: epplan_serve::ServeConfig,
) -> ServeCell {
    epplan_par::set_threads(threads);
    let state_dir = std::env::temp_dir().join(format!("epplan-bench-serve-{tag}-{threads}"));
    let _ = std::fs::remove_dir_all(&state_dir);
    let mut daemon =
        match epplan_serve::Daemon::start(inst.clone(), config, Some(&state_dir)) {
            Ok(d) => d,
            Err(e) => return ServeCell::failed(threads, e.to_string()),
        };
    let mut uncertified_intervals = 0u64;
    for (k, sop) in ops.iter().enumerate() {
        if let Err(e) = daemon.process(sop) {
            let _ = std::fs::remove_dir_all(&state_dir);
            return ServeCell::failed(threads, format!("op {}: {e}", sop.id));
        }
        // Spot-check the "always certified" contract mid-stream.
        if (k + 1) % 1000 == 0 && !daemon.certificate().hard_ok() {
            uncertified_intervals += 1;
        }
    }
    let s = daemon.summary();
    let _ = std::fs::remove_dir_all(&state_dir);
    ServeCell {
        threads,
        ops: s.ops,
        ops_per_sec: s.ops_per_sec,
        p50_us: s.p50_us,
        p95_us: s.p95_us,
        p99_us: s.p99_us,
        applied: s.applied,
        resolved: s.resolved,
        rejected: s.rejected,
        snapshots: s.snapshots,
        shed: s.shed,
        brownout_steps: s.brownout_steps,
        utility: s.utility,
        certified: s.certified,
        uncertified_intervals,
        error: None,
    }
}

/// The baseline serving configuration shared by every throughput cell.
fn serve_base_config() -> epplan_serve::ServeConfig {
    epplan_serve::ServeConfig {
        drift_threshold: Some(5000),
        snapshot_every: Some(2500),
        ..epplan_serve::ServeConfig::default()
    }
}

/// The overload cell's configuration: admission shedding and the
/// brownout ladder armed, with a drift threshold low enough that
/// re-solve work charges push the work clock past the dense tail of
/// each arrival burst. `slo_p99_us: 0` makes every op "burn", so the
/// ladder deterministically walks to its floor — thread-invariant by
/// construction (everything else is ops-denominated).
fn serve_overload_config() -> epplan_serve::ServeConfig {
    epplan_serve::ServeConfig {
        drift_threshold: Some(100),
        snapshot_every: Some(2500),
        slo_p99_us: Some(0),
        overload: epplan_serve::OverloadConfig {
            op_deadline_ops: Some(2),
            brownout: Some(epplan_serve::BrownoutKnobs { down_after: 8, up_after: 4 }),
            quarantine_after: Some(3),
        },
        ..epplan_serve::ServeConfig::default()
    }
}

/// Serving-daemon baseline: `epplan serve` ingesting a synthetic op
/// stream on the Fig-2 |U| grid at |E|=50, WAL and snapshots on, at
/// `threads=1` and `threads=n`. Measures sustained ops/sec and p50/p99
/// per-op repair latency; every cell re-certifies its final plan and
/// spot-checks certification mid-stream ("no uncertified interval").
/// Returns the JSON document committed as `BENCH_serve.json`.
pub fn bench_serve(opts: &HarnessOptions, threads: usize) -> String {
    let prior = epplan_par::threads();
    // Superset rule as in `bench_gepc`: the quick cells stay in the
    // full grid so gate runs can always match committed rows.
    let grid: &[(usize, usize, usize)] = if opts.quick {
        &[(500, 50, 2_000), (1000, 50, 2_000)]
    } else {
        &[
            (500, 50, 2_000),
            (1000, 50, 2_000),
            (1000, 50, 10_000),
            (5000, 50, 10_000),
            (10000, 50, 10_000),
        ]
    };
    let mut rows = String::new();
    let mut summary = String::new();
    let mut run_pair = |users: usize,
                        events: usize,
                        ops: &[epplan_core::incremental::SequencedOp],
                        tag: &str,
                        config: &epplan_serve::ServeConfig,
                        inst: &Instance|
     -> (ServeCell, ServeCell) {
        let serial = serve_cell(inst, ops, 1, tag, config.clone());
        let parallel = if threads > 1 {
            serve_cell(inst, ops, threads, tag, config.clone())
        } else {
            serve_cell(inst, ops, 1, tag, config.clone())
        };
        for c in [&serial, &parallel] {
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            let shed_rate = if c.ops > 0 {
                c.shed as f64 / c.ops as f64
            } else {
                0.0
            };
            rows.push_str(&format!(
                "    {{\"users\": {users}, \"events\": {events}, \"ops\": {}, \
                 \"threads\": {}, \"ops_per_sec\": {:.1}, \"p50_us\": {}, \
                 \"p95_us\": {}, \"p99_us\": {}, \"applied\": {}, \"resolved\": {}, \
                 \"rejected\": {}, \"snapshots\": {}, \"shed\": {}, \
                 \"shed_rate\": {:.6}, \"brownout_steps\": {}, \"utility\": {:.6}, \
                 \"certified\": {}, \"uncertified_intervals\": {}{}}}",
                c.ops,
                c.threads,
                c.ops_per_sec,
                c.p50_us,
                c.p95_us,
                c.p99_us,
                c.applied,
                c.resolved,
                c.rejected,
                c.snapshots,
                c.shed,
                shed_rate,
                c.brownout_steps,
                c.utility,
                c.certified,
                c.uncertified_intervals,
                match &c.error {
                    Some(e) => format!(", \"error\": {:?}", e),
                    None => String::new(),
                }
            ));
        }
        (serial, parallel)
    };
    for (i, &(users, events, n_ops)) in grid.iter().enumerate() {
        let inst = generate(&GeneratorConfig::default().cutout(users, events));
        // A deterministic greedy plan gives the op sampler its context;
        // ids start at 1 (0 is reserved by the protocol).
        let plan0 = GreedySolver::seeded(42).solve(&inst).plan;
        let mut sampler = epplan_datagen::OpStreamSampler::new(42);
        let ops = sampler.sequenced_stream(&inst, &plan0, n_ops, 1);
        let tag = format!("u{users}");
        let (serial, parallel) =
            run_pair(users, events, &ops, &tag, &serve_base_config(), &inst);
        if i > 0 {
            summary.push_str(",\n");
        }
        summary.push_str(&format!(
            "    {{\"users\": {users}, \"events\": {events}, \
             \"deterministic\": {}, \"always_certified\": {}}}",
            (serial.utility - parallel.utility).abs() < 1e-9,
            serial.certified
                && parallel.certified
                && serial.uncertified_intervals == 0
                && parallel.uncertified_intervals == 0
        ));
    }
    // Overload cell (both quick and full grids): a bursty stream with
    // admission shedding, the brownout ladder and quarantine armed.
    // The op count (3000) is the cell's distinguishing key field — it
    // never collides with a plain-throughput row.
    {
        let (users, events, n_ops) = (500usize, 50usize, 3_000usize);
        let inst = generate(&GeneratorConfig::default().cutout(users, events));
        let plan0 = GreedySolver::seeded(42).solve(&inst).plan;
        let mut sampler = epplan_datagen::OpStreamSampler::new(42);
        let ops = sampler.sequenced_burst_stream(
            &inst,
            &plan0,
            n_ops,
            1,
            epplan_datagen::BurstSpec { len: 64, gap: 16 },
        );
        let (serial, parallel) = run_pair(
            users,
            events,
            &ops,
            "overload",
            &serve_overload_config(),
            &inst,
        );
        summary.push_str(&format!(
            ",\n    {{\"users\": {users}, \"events\": {events}, \"overload\": true, \
             \"sheds_deterministic\": {}, \"always_certified\": {}}}",
            serial.shed > 0 && serial.shed == parallel.shed,
            serial.certified
                && parallel.certified
                && serial.uncertified_intervals == 0
                && parallel.uncertified_intervals == 0
        ));
    }
    epplan_par::set_threads(prior);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!(
        "{{\n  \"bench\": \"serve_daemon\",\n  \
         \"solver\": \"iep(repair) + gap(fallback re-solve)\",\n  \
         \"machine_cores\": {cores},\n  \
         \"threads_compared\": [1, {threads}],\n  \
         \"rows\": [\n{rows}\n  ],\n  \
         \"summary\": [\n{summary}\n  ]\n}}\n"
    )
}

/// Quickstart sanity: solves the paper's Example 1 with all three
/// solvers and prints the resulting utilities.
pub fn example_table() -> Table {
    let inst = paper_example();
    let mut t = Table::new(
        "Paper Example 1 (5 users x 4 events)",
        &["Solver", "Utility", "Feasible"],
    );
    let solvers: Vec<(&str, Box<dyn GepcSolver>)> = vec![
        ("exact", Box::new(ExactSolver::default())),
        ("gap", Box::new(gap_solver())),
        ("greedy", Box::new(greedy())),
        ("lns", Box::new(LnsSolver::seeded(7))),
    ];
    for (name, s) in solvers {
        let sol = s.solve(&inst);
        t.row(vec![
            name.into(),
            fnum(sol.utility),
            sol.fully_feasible().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> HarnessOptions {
        HarnessOptions {
            quick: true,
            reps: 1,
        }
    }

    #[test]
    fn example_table_has_three_solvers() {
        let t = example_table();
        let s = t.render();
        assert!(s.contains("exact") && s.contains("gap") && s.contains("greedy"));
    }

    #[test]
    fn ablation_filler_runs_quick() {
        let t = ablation_filler(&tiny_opts());
        assert!(t.render().contains("Beijing"));
    }

    #[test]
    fn ablation_approx_produces_ratios() {
        let t = ablation_approx(&tiny_opts());
        assert!(t.render().contains("feasible tiny instances"));
    }

    #[test]
    fn ablation_local_search_runs_quick() {
        let t = ablation_local_search(&tiny_opts());
        let rendered = t.render();
        assert!(rendered.contains("greedy") && rendered.contains("gap"));
    }

    #[test]
    fn ablation_geography_runs_quick() {
        let t = ablation_geography(&tiny_opts());
        let r = t.render();
        assert!(r.contains("uniform") && r.contains("clustered"));
    }

    #[test]
    fn iep_averages_runs_on_small_instance() {
        let inst = generate(&GeneratorConfig {
            n_users: 30,
            n_events: 8,
            mean_lower: 2,
            mean_upper: 6,
            ..Default::default()
        });
        let base = greedy().solve(&inst).plan;
        let avg = iep_averages(&inst, &base, IepOp::EtaDe, 2, 1, false);
        assert!(avg.utility_inc >= 0.0);
        assert!(avg.seconds >= 0.0);
    }
}
