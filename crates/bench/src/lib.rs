//! Experiment harness regenerating every table and figure of the
//! paper's evaluation (Section V).
//!
//! The `paper` binary drives the experiments; this library holds the
//! shared machinery (measurement, table formatting, experiment
//! runners) so the Criterion benches can reuse the same workloads.
//!
//! | Experiment | Paper | Runner |
//! |---|---|---|
//! | GEPC on real datasets | Table VI | [`experiments::table6`] |
//! | GEPC utility/time scalability | Fig. 2 | [`experiments::scaling`] |
//! | GEPC memory scalability | Fig. 3 | [`experiments::scaling`] |
//! | IEP η-De on real datasets | Table VII | [`experiments::table7`] |
//! | IEP ξ-In on real datasets | Table VIII | [`experiments::table8`] |
//! | IEP t^s-t^t on real datasets | Table IX | [`experiments::table9`] |
//! | IEP utility/time scalability | Fig. 4 | [`experiments::iep_scaling`] |
//! | IEP memory scalability | Fig. 5 | [`experiments::iep_scaling`] |
//! | Approximation-ratio ablation | §III analysis | [`experiments::ablation_approx`] |
//! | LP-vs-MW fractional ablation | §III-A | [`experiments::ablation_lp`] |
//! | Step-2 filler ablation | §III framework | [`experiments::ablation_filler`] |
//! | Local-search gain ablation | extension | [`experiments::ablation_local_search`] |
//! | Geography ablation | extension | [`experiments::ablation_geography`] |

// Solver-adjacent code must not panic (uniform workspace gate; the
// epplan-lint `robustness/unwrap` rule enforces the same contract).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod gate;
pub mod measure;
pub mod ops;
pub mod table;
