//! Wall-clock + peak-memory measurement of a closure.

use epplan_memtrack::MemoryProbe;
use std::time::Instant;

/// A measured computation result.
#[derive(Debug, Clone, Copy)]
pub struct Measured<T> {
    /// The closure's return value.
    pub value: T,
    /// Elapsed wall-clock seconds.
    pub seconds: f64,
    /// Extra peak heap during the region, in MiB. Zero unless the
    /// binary installs [`epplan_memtrack::Tracking`] as its global
    /// allocator (the `paper` binary does).
    pub mem_mib: f64,
}

/// Runs `f`, measuring wall-clock time and peak memory delta.
pub fn measure<T>(f: impl FnOnce() -> T) -> Measured<T> {
    let probe = MemoryProbe::start();
    let start = Instant::now();
    let value = f();
    let seconds = start.elapsed().as_secs_f64();
    let report = probe.finish();
    Measured {
        value,
        seconds,
        mem_mib: report.peak_delta_mib(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_time() {
        let m = measure(|| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            7
        });
        assert_eq!(m.value, 7);
        assert!(m.seconds >= 0.009);
    }

    #[test]
    fn memory_zero_without_tracker() {
        // The test binary does not install the tracking allocator.
        let m = measure(|| vec![0u8; 1 << 20]);
        assert_eq!(m.value.len(), 1 << 20);
        assert!(m.mem_mib >= 0.0);
    }
}
