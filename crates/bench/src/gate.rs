//! The perf-regression gate: compares freshly measured bench rows
//! against the committed `BENCH_gepc.json` / `BENCH_serve.json`
//! trajectory with explicit tolerances (ROADMAP Open item 1 — "speed
//! claims stay honest").
//!
//! The committed files are hand-written flat JSON (one object per
//! row), so the parser here is a deliberately tiny scanner for exactly
//! that shape — the workspace `serde_json` shim has no dynamic value
//! type. Rows are matched on their integer key fields
//! (`users`/`events`/`threads`/`ops`); three classes of checks run per
//! matched pair:
//!
//! * **determinism** — `utility` must agree to 1e-6 relative and
//!   `certified` must stay `true`. Machine-independent: always
//!   enforced.
//! * **timing** — `wall_s` must not grow, and `ops_per_sec` must not
//!   shrink, by more than the tolerance. Enforced only when the
//!   baseline was recorded on a machine with the same core count
//!   (otherwise the comparison is apples-to-oranges and the checks
//!   downgrade to warnings — pass `strict` to enforce anyway).
//! * **coverage** — a gate run that matches zero committed rows fails
//!   outright; silently diffing nothing reads as "no regression".

use std::collections::BTreeMap;
use std::fmt;

/// A scalar cell of a bench row.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// Any JSON number (integers included).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A quoted string (e.g. an `error` field).
    Str(String),
}

impl Val {
    fn as_num(&self) -> Option<f64> {
        match self {
            Val::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// One parsed bench document: the machine fingerprint plus its rows.
#[derive(Debug, Clone)]
pub struct BenchDoc {
    /// `machine_cores` from the document header, when present.
    pub machine_cores: Option<u64>,
    /// Flat key→value rows from the `"rows"` array.
    pub rows: Vec<BTreeMap<String, Val>>,
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    i
}

fn parse_string(bytes: &[u8], mut i: usize) -> Result<(String, usize), String> {
    if bytes.get(i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    i += 1;
    let mut out = String::new();
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                let esc = bytes.get(i + 1).ok_or("truncated escape")?;
                out.push(match esc {
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    other => *other as char,
                });
                i += 2;
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_scalar(bytes: &[u8], i: usize) -> Result<(Val, usize), String> {
    match bytes.get(i) {
        Some(b'"') => {
            let (s, next) = parse_string(bytes, i)?;
            Ok((Val::Str(s), next))
        }
        Some(b't') if bytes[i..].starts_with(b"true") => Ok((Val::Bool(true), i + 4)),
        Some(b'f') if bytes[i..].starts_with(b"false") => Ok((Val::Bool(false), i + 5)),
        Some(_) => {
            let start = i;
            let mut end = i;
            while end < bytes.len()
                && matches!(bytes[end], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                end += 1;
            }
            let text = std::str::from_utf8(&bytes[start..end]).map_err(|e| e.to_string())?;
            let n: f64 = text
                .parse()
                .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))?;
            Ok((Val::Num(n), end))
        }
        None => Err("unexpected end of document".to_string()),
    }
}

/// Parses one flat row object `{"k": v, ...}` starting at `{`.
fn parse_row(bytes: &[u8], mut i: usize) -> Result<(BTreeMap<String, Val>, usize), String> {
    if bytes.get(i) != Some(&b'{') {
        return Err(format!("expected '{{' at byte {i}"));
    }
    i = skip_ws(bytes, i + 1);
    let mut row = BTreeMap::new();
    if bytes.get(i) == Some(&b'}') {
        return Ok((row, i + 1));
    }
    loop {
        let (key, next) = parse_string(bytes, i)?;
        i = skip_ws(bytes, next);
        if bytes.get(i) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i = skip_ws(bytes, i + 1);
        let (val, next) = parse_scalar(bytes, i)?;
        row.insert(key, val);
        i = skip_ws(bytes, next);
        match bytes.get(i) {
            Some(b',') => i = skip_ws(bytes, i + 1),
            Some(b'}') => return Ok((row, i + 1)),
            other => return Err(format!("expected ',' or '}}' in row, got {other:?}")),
        }
    }
}

/// Parses a BENCH_*.json document: the `machine_cores` header field
/// and every flat object in the top-level `"rows"` array.
pub fn parse_bench(doc: &str) -> Result<BenchDoc, String> {
    let bytes = doc.as_bytes();
    let machine_cores = doc.find("\"machine_cores\"").and_then(|k| {
        let after = skip_ws(bytes, k + "\"machine_cores\"".len());
        if bytes.get(after) != Some(&b':') {
            return None;
        }
        let at = skip_ws(bytes, after + 1);
        match parse_scalar(bytes, at) {
            Ok((Val::Num(n), _)) if n >= 0.0 => Some(n as u64),
            _ => None,
        }
    });
    let rows_key = doc
        .find("\"rows\"")
        .ok_or_else(|| "no \"rows\" array in document".to_string())?;
    let mut i = skip_ws(bytes, rows_key + "\"rows\"".len());
    if bytes.get(i) != Some(&b':') {
        return Err("malformed \"rows\" key".to_string());
    }
    i = skip_ws(bytes, i + 1);
    if bytes.get(i) != Some(&b'[') {
        return Err("\"rows\" is not an array".to_string());
    }
    i = skip_ws(bytes, i + 1);
    let mut rows = Vec::new();
    if bytes.get(i) == Some(&b']') {
        return Ok(BenchDoc { machine_cores, rows });
    }
    loop {
        let (row, next) = parse_row(bytes, i)?;
        rows.push(row);
        i = skip_ws(bytes, next);
        match bytes.get(i) {
            Some(b',') => i = skip_ws(bytes, i + 1),
            Some(b']') => return Ok(BenchDoc { machine_cores, rows }),
            other => return Err(format!("expected ',' or ']' after row, got {other:?}")),
        }
    }
}

/// Fields that identify a row across runs.
const KEY_FIELDS: &[&str] = &["users", "events", "threads", "ops"];

fn row_key(row: &BTreeMap<String, Val>) -> String {
    KEY_FIELDS
        .iter()
        .filter_map(|k| {
            row.get(*k)
                .and_then(Val::as_num)
                .map(|v| format!("{k}={v}"))
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Severity of one gate check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStatus {
    /// Within tolerance.
    Ok,
    /// Out of tolerance, but not enforced (cross-machine timing).
    Warn,
    /// Out of tolerance and enforced — the gate fails.
    Fail,
}

/// One metric comparison between a committed and a fresh row.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// Which document the row came from (e.g. `BENCH_serve.json`).
    pub file: String,
    /// The matched row's identity (`users=… events=… threads=…`).
    pub key: String,
    /// Metric name (`wall_s`, `ops_per_sec`, `utility`, `certified`).
    pub metric: &'static str,
    /// Committed baseline value.
    pub committed: f64,
    /// Freshly measured value.
    pub fresh: f64,
    /// Relative change, signed so that positive = worse.
    pub worse_pct: f64,
    /// Outcome for this check.
    pub status: GateStatus,
}

/// Everything one `compare` call produced.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// All checks, in row order.
    pub checks: Vec<GateCheck>,
    /// Fresh rows that found a committed counterpart.
    pub matched_rows: usize,
    /// Fresh rows with no committed counterpart (new cells — fine).
    pub unmatched_rows: usize,
}

impl GateOutcome {
    /// `true` when no enforced check failed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.status != GateStatus::Fail)
    }

    /// Number of failed checks.
    pub fn failures(&self) -> usize {
        self.checks
            .iter()
            .filter(|c| c.status == GateStatus::Fail)
            .count()
    }
}

impl fmt::Display for GateOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.checks {
            let tag = match c.status {
                GateStatus::Ok => "ok  ",
                GateStatus::Warn => "warn",
                GateStatus::Fail => "FAIL",
            };
            writeln!(
                f,
                "[{tag}] {} {} {}: committed {:.4} fresh {:.4} ({:+.1}% worse)",
                c.file, c.key, c.metric, c.committed, c.fresh, c.worse_pct
            )?;
        }
        writeln!(
            f,
            "gate: {} rows matched, {} unmatched, {} failures",
            self.matched_rows,
            self.unmatched_rows,
            self.failures()
        )
    }
}

/// Compares `fresh` against `committed` rows. `tolerance` is the
/// allowed relative regression for timing metrics (0.15 = 15%).
/// Timing checks are enforced when both documents carry the same
/// `machine_cores`, or when `strict` is set; determinism checks
/// (utility drift, lost certification) are always enforced.
pub fn compare(
    file: &str,
    committed: &BenchDoc,
    fresh: &BenchDoc,
    tolerance: f64,
    strict: bool,
) -> GateOutcome {
    let same_machine = committed.machine_cores.is_some()
        && committed.machine_cores == fresh.machine_cores;
    let enforce_timing = strict || same_machine;
    let timing_status = |worse: f64| -> GateStatus {
        if worse <= tolerance {
            GateStatus::Ok
        } else if enforce_timing {
            GateStatus::Fail
        } else {
            GateStatus::Warn
        }
    };
    let by_key: BTreeMap<String, &BTreeMap<String, Val>> = committed
        .rows
        .iter()
        .map(|r| (row_key(r), r))
        .collect();
    let mut out = GateOutcome::default();
    for row in &fresh.rows {
        let key = row_key(row);
        let Some(base) = by_key.get(&key) else {
            out.unmatched_rows += 1;
            continue;
        };
        out.matched_rows += 1;
        let num = |r: &BTreeMap<String, Val>, k: &str| r.get(k).and_then(Val::as_num);
        // wall_s: lower is better.
        if let (Some(c), Some(fr)) = (num(base, "wall_s"), num(row, "wall_s")) {
            let worse = if c > 0.0 { fr / c - 1.0 } else { 0.0 };
            out.checks.push(GateCheck {
                file: file.to_string(),
                key: key.clone(),
                metric: "wall_s",
                committed: c,
                fresh: fr,
                worse_pct: worse * 100.0,
                status: timing_status(worse),
            });
        }
        // mem_mib: peak resident memory, lower is better. Timing-class:
        // allocator and machine effects make it environment-sensitive,
        // so it shares the tolerance and the same-machine downgrade.
        if let (Some(c), Some(fr)) = (num(base, "mem_mib"), num(row, "mem_mib")) {
            let worse = if c > 0.0 { fr / c - 1.0 } else { 0.0 };
            out.checks.push(GateCheck {
                file: file.to_string(),
                key: key.clone(),
                metric: "mem_mib",
                committed: c,
                fresh: fr,
                worse_pct: worse * 100.0,
                status: timing_status(worse),
            });
        }
        // ops_per_sec: higher is better.
        if let (Some(c), Some(fr)) = (num(base, "ops_per_sec"), num(row, "ops_per_sec")) {
            let worse = if c > 0.0 { 1.0 - fr / c } else { 0.0 };
            out.checks.push(GateCheck {
                file: file.to_string(),
                key: key.clone(),
                metric: "ops_per_sec",
                committed: c,
                fresh: fr,
                worse_pct: worse * 100.0,
                status: timing_status(worse),
            });
        }
        // utility: must agree — the trajectory also pins solver output.
        if let (Some(c), Some(fr)) = (num(base, "utility"), num(row, "utility")) {
            let drift = (fr - c).abs() / c.abs().max(1.0);
            out.checks.push(GateCheck {
                file: file.to_string(),
                key: key.clone(),
                metric: "utility",
                committed: c,
                fresh: fr,
                worse_pct: drift * 100.0,
                status: if drift <= 1e-6 {
                    GateStatus::Ok
                } else {
                    GateStatus::Fail
                },
            });
        }
        // certified: must never regress to false.
        if let Some(Val::Bool(fr)) = row.get("certified") {
            let c = matches!(base.get("certified"), Some(Val::Bool(true)));
            out.checks.push(GateCheck {
                file: file.to_string(),
                key: key.clone(),
                metric: "certified",
                committed: f64::from(u8::from(c)),
                fresh: f64::from(u8::from(*fr)),
                worse_pct: 0.0,
                status: if *fr || !c { GateStatus::Ok } else { GateStatus::Fail },
            });
        }
    }
    if out.matched_rows == 0 {
        // Coverage failure: a gate that compared nothing must not pass.
        out.checks.push(GateCheck {
            file: file.to_string(),
            key: "(no matching rows)".to_string(),
            metric: "coverage",
            committed: committed.rows.len() as f64,
            fresh: fresh.rows.len() as f64,
            worse_pct: 100.0,
            status: GateStatus::Fail,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
  "bench": "x", "machine_cores": 4,
  "rows": [
    {"users": 500, "events": 50, "threads": 1, "ops_per_sec": 100.0, "utility": 10.5, "certified": true},
    {"users": 500, "events": 50, "threads": 4, "ops_per_sec": 120.0, "utility": 10.5, "certified": true}
  ]
}"#;

    fn fresh_doc(ops_per_sec: f64, utility: f64, cores: u64) -> BenchDoc {
        parse_bench(&format!(
            "{{\"machine_cores\": {cores}, \"rows\": [{{\"users\": 500, \"events\": 50, \
             \"threads\": 1, \"ops_per_sec\": {ops_per_sec}, \"utility\": {utility}, \
             \"certified\": true}}]}}"
        ))
        .unwrap()
    }

    #[test]
    fn parser_reads_flat_rows_and_header() {
        let doc = parse_bench(BASE).unwrap();
        assert_eq!(doc.machine_cores, Some(4));
        assert_eq!(doc.rows.len(), 2);
        assert_eq!(doc.rows[0].get("users"), Some(&Val::Num(500.0)));
        assert_eq!(doc.rows[0].get("certified"), Some(&Val::Bool(true)));
        assert!(parse_bench("{}").is_err());
        assert!(parse_bench("{\"rows\": []}").unwrap().rows.is_empty());
        // String values (error fields) parse too.
        let d = parse_bench("{\"rows\": [{\"error\": \"boom \\\"x\\\"\", \"ops\": 3}]}").unwrap();
        assert_eq!(d.rows[0].get("error"), Some(&Val::Str("boom \"x\"".into())));
    }

    #[test]
    fn within_tolerance_passes_and_regression_fails() {
        let base = parse_bench(BASE).unwrap();
        // 10% slower than committed 100 ops/s: inside a 15% tolerance.
        let ok = compare("B", &base, &fresh_doc(90.0, 10.5, 4), 0.15, false);
        assert!(ok.passed(), "{ok}");
        assert_eq!(ok.matched_rows, 1);
        // 30% slower: out of tolerance on the same machine → fail.
        let bad = compare("B", &base, &fresh_doc(70.0, 10.5, 4), 0.15, false);
        assert!(!bad.passed());
        assert_eq!(bad.failures(), 1);
        assert!(bad.to_string().contains("ops_per_sec"));
    }

    #[test]
    fn cross_machine_timing_downgrades_to_warning() {
        let base = parse_bench(BASE).unwrap();
        let cross = compare("B", &base, &fresh_doc(50.0, 10.5, 16), 0.15, false);
        assert!(cross.passed(), "{cross}");
        assert!(cross
            .checks
            .iter()
            .any(|c| c.metric == "ops_per_sec" && c.status == GateStatus::Warn));
        // strict mode enforces regardless of the fingerprint.
        let strict = compare("B", &base, &fresh_doc(50.0, 10.5, 16), 0.15, true);
        assert!(!strict.passed());
    }

    #[test]
    fn utility_drift_fails_even_cross_machine() {
        let base = parse_bench(BASE).unwrap();
        let drifted = compare("B", &base, &fresh_doc(100.0, 11.0, 16), 0.15, false);
        assert!(!drifted.passed());
        assert!(drifted
            .checks
            .iter()
            .any(|c| c.metric == "utility" && c.status == GateStatus::Fail));
    }

    #[test]
    fn mem_regression_fails_within_machine_only() {
        let base = parse_bench(
            "{\"machine_cores\": 4, \"rows\": [{\"users\": 500, \"events\": 50, \
             \"threads\": 1, \"mem_mib\": 100.0}]}",
        )
        .unwrap();
        let fresh = |mem: f64, cores: u64| {
            parse_bench(&format!(
                "{{\"machine_cores\": {cores}, \"rows\": [{{\"users\": 500, \
                 \"events\": 50, \"threads\": 1, \"mem_mib\": {mem}}}]}}"
            ))
            .unwrap()
        };
        // 10% growth inside a 15% tolerance: fine.
        assert!(compare("B", &base, &fresh(110.0, 4), 0.15, false).passed());
        // 30% growth on the same machine: fail.
        let bad = compare("B", &base, &fresh(130.0, 4), 0.15, false);
        assert!(!bad.passed());
        assert!(bad
            .checks
            .iter()
            .any(|c| c.metric == "mem_mib" && c.status == GateStatus::Fail));
        // Cross-machine: warning only.
        let cross = compare("B", &base, &fresh(130.0, 16), 0.15, false);
        assert!(cross.passed(), "{cross}");
        assert!(cross
            .checks
            .iter()
            .any(|c| c.metric == "mem_mib" && c.status == GateStatus::Warn));
    }

    #[test]
    fn brand_new_grid_rows_are_additive_not_a_coverage_failure() {
        // A fresh run that extends the grid (e.g. first-ever 10^5/10^6
        // scale rows) must pass as long as at least one committed row
        // is still covered — new cells are additions, not regressions.
        let base = parse_bench(BASE).unwrap();
        let extended = parse_bench(
            "{\"machine_cores\": 4, \"rows\": [\
             {\"users\": 500, \"events\": 50, \"threads\": 1, \"ops_per_sec\": 100.0, \
              \"utility\": 10.5, \"certified\": true},\
             {\"users\": 100000, \"events\": 200, \"threads\": 1, \"ops_per_sec\": 5.0, \
              \"utility\": 999.0, \"certified\": true},\
             {\"users\": 1000000, \"events\": 500, \"threads\": 1, \"ops_per_sec\": 0.5, \
              \"utility\": 9999.0, \"certified\": true}]}",
        )
        .unwrap();
        let out = compare("B", &base, &extended, 0.15, false);
        assert!(out.passed(), "{out}");
        assert_eq!(out.matched_rows, 1);
        assert_eq!(out.unmatched_rows, 2);
    }

    #[test]
    fn zero_matched_rows_is_a_failure() {
        let base = parse_bench(BASE).unwrap();
        let alien = parse_bench(
            "{\"machine_cores\": 4, \"rows\": [{\"users\": 9999, \"events\": 1, \
             \"threads\": 1, \"ops_per_sec\": 1.0}]}",
        )
        .unwrap();
        let out = compare("B", &base, &alien, 0.15, false);
        assert!(!out.passed());
        assert_eq!(out.matched_rows, 0);
        assert_eq!(out.unmatched_rows, 1);
        assert!(out.to_string().contains("coverage"));
    }
}
