//! Random atomic-operation generators for the IEP experiments.
//!
//! Section V-C: "For each algorithm, we randomly select 1 event, and
//! decrease its `η`, increase its `ξ`, and change its `t^s` and `t^t`,
//! respectively. We conduct the experiment 50 times and calculate the
//! average."

use epplan_core::incremental::AtomicOp;
use epplan_core::model::{EventId, Instance, TimeInterval};
use epplan_core::plan::Plan;
use rand::prelude::*;

fn random_event(instance: &Instance, rng: &mut impl Rng) -> EventId {
    EventId(rng.gen_range(0..instance.n_events()) as u32)
}

/// Picks a random event and decreases its `η` below the current
/// attendance (so the repair actually has work to do when possible).
pub fn random_eta_decrease(instance: &Instance, plan: &Plan, rng: &mut impl Rng) -> AtomicOp {
    let event = random_event(instance, rng);
    let n = plan.attendance(event);
    let new_upper = if n > 1 { rng.gen_range(1..n) } else { n.max(1) };
    AtomicOp::EtaDecrease { event, new_upper }
}

/// Picks a random event and raises its `ξ` above the current
/// attendance (clamped to `η`).
pub fn random_xi_increase(instance: &Instance, plan: &Plan, rng: &mut impl Rng) -> AtomicOp {
    let event = random_event(instance, rng);
    let n = plan.attendance(event);
    let upper = instance.event(event).upper;
    let new_lower = (n + rng.gen_range(1..=3)).min(upper);
    AtomicOp::XiIncrease { event, new_lower }
}

/// Picks a random event and moves it onto another random event's time
/// slot (jittered), which is how time changes create conflicts.
pub fn random_time_change(instance: &Instance, _plan: &Plan, rng: &mut impl Rng) -> AtomicOp {
    let event = random_event(instance, rng);
    let other = random_event(instance, rng);
    let base = instance.event(other).time;
    let dur = instance.event(event).time.duration();
    let jitter = rng.gen_range(0..30u32);
    let start = base.start.saturating_add(jitter);
    AtomicOp::TimeChange {
        event,
        new_time: TimeInterval::new(start, start + dur),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epplan_core::solver::{GepcSolver, GreedySolver};
    use epplan_datagen::{generate, GeneratorConfig};
    use rand::rngs::StdRng;

    fn setup() -> (Instance, Plan) {
        let inst = generate(&GeneratorConfig {
            n_users: 40,
            n_events: 10,
            mean_lower: 2,
            mean_upper: 8,
            ..Default::default()
        });
        let plan = GreedySolver::seeded(5).solve(&inst).plan;
        (inst, plan)
    }

    #[test]
    fn eta_decrease_targets_below_attendance() {
        let (inst, plan) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let AtomicOp::EtaDecrease { event, new_upper } =
                random_eta_decrease(&inst, &plan, &mut rng)
            else {
                panic!("wrong op kind")
            };
            let n = plan.attendance(event);
            if n > 1 {
                assert!(new_upper < n);
            }
            assert!(new_upper >= 1);
        }
    }

    #[test]
    fn xi_increase_stays_within_eta() {
        let (inst, plan) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let AtomicOp::XiIncrease { event, new_lower } =
                random_xi_increase(&inst, &plan, &mut rng)
            else {
                panic!("wrong op kind")
            };
            assert!(new_lower <= inst.event(event).upper);
        }
    }

    #[test]
    fn time_change_produces_valid_interval() {
        let (inst, plan) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let AtomicOp::TimeChange { new_time, .. } =
                random_time_change(&inst, &plan, &mut rng)
            else {
                panic!("wrong op kind")
            };
            assert!(new_time.start < new_time.end);
        }
    }
}
