//! Minimal fixed-width table printer for the harness output.

/// A printable results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders the table as CSV (header row + data rows). Cells
    /// containing commas or quotes are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// A filesystem-friendly slug of the title (`Table VI: foo` →
    /// `table-vi-foo`).
    pub fn slug(&self) -> String {
        let mut s: String = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '-' })
            .collect();
        while s.contains("--") {
            s = s.replace("--", "-");
        }
        s.trim_matches('-').to_string()
    }
}

/// Formats a float compactly (scientific above 10⁵ like the paper's
/// tables, and below 10⁻³ so sub-millisecond timings stay readable).
pub fn fnum(x: f64) -> String {
    // epplan-lint: allow(float/exact-eq) — display special-case for an exactly-zero cell; no numeric decision rides on it
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e5 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "20000".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("  1      2"));
        assert!(s.contains("100  20000"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_rendering_and_quoting() {
        let mut t = Table::new("Table X: demo, test", &["a", "b,c"]);
        t.row(vec!["1".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,\"b,c\"\n"));
        assert!(csv.contains("1,\"say \"\"hi\"\"\""));
        assert_eq!(t.slug(), "table-x-demo-test");
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1.23456), "1.235");
        assert_eq!(fnum(123.456), "123.5");
        assert_eq!(fnum(5.903e7), "5.903e7");
        assert_eq!(fnum(0.000_45), "4.500e-4");
    }
}
