use std::time::Instant;

fn read_clock() -> u64 {
    let started = Instant::now();
    let _ = std::time::SystemTime::now();
    started.elapsed().as_secs()
}

#[cfg(test)]
mod tests {
    #[test]
    fn clocks_in_tests_are_fine() {
        let _t = std::time::Instant::now();
    }
}
