//! Fixture: symbol-resolved obs/stable-names + fault/unregistered-site.
const GOOD_SPAN: &str = "gap.packing";
const BAD_SPAN: &str = "gap.scratch.unregistered";
static BAD_SITE: &str = "gap.scratch.site";

fn obs_paths() {
    epplan_obs::span(GOOD_SPAN);
    epplan_obs::span(BAD_SPAN);
    let local = "solve.simplex.unregistered";
    epplan_obs::span(local);
}

fn fault_paths() {
    epplan_fault::point("solve.budget.tick");
    epplan_fault::point(BAD_SITE);
}

fn vetted_obs() {
    // epplan-lint: allow(obs/stable-names) — fixture: scratch probe name
    epplan_obs::span(BAD_SPAN);
}
