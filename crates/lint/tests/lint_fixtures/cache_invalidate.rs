//! Fixture: sparse/cache-invalidate.
pub struct Instance {
    users: Vec<f64>,
    events: Vec<f64>,
    utilities: Vec<f64>,
    candidates: Option<u32>,
}

impl Instance {
    pub fn invalidate_candidates(&mut self) {
        self.candidates = None;
    }
    pub fn set_bad(&mut self, i: usize, v: f64) {
        self.utilities[i] = v;
    }
    pub fn set_direct(&mut self, i: usize, v: f64) {
        self.events[i] = v;
        self.invalidate_candidates();
    }
    pub fn set_transitive(&mut self, i: usize, v: f64) {
        self.users[i] = v;
        self.touch();
    }
    fn touch(&mut self) {
        self.invalidate_candidates();
    }
    pub fn read_only(&mut self) -> usize {
        self.users.len()
    }
    pub fn set_vetted(&mut self, i: usize, v: f64) {
        // epplan-lint: allow(sparse/cache-invalidate) — fixture: vetted stale window
        self.users[i] = v;
    }
    pub fn set_unvetted(&mut self, i: usize, v: f64) {
        // epplan-lint: allow(sparse/cache-invalidate)
        self.users[i] = v;
    }
}
