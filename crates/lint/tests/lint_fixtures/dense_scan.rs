//! Fixture: sparse/dense-scan — dense event loops reachable from a
//! batch entry point.
pub struct GapBasedSolver;

impl GapBasedSolver {
    pub fn solve(&self, inst: &Instance) {
        helper(inst);
        vetted(inst);
        unvetted(inst);
    }
}

fn helper(inst: &Instance) {
    for e in inst.event_ids() {
        drop(e);
    }
    let m = inst.n_events();
    for k in 0..m {
        drop(k);
    }
}

fn vetted(inst: &Instance) {
    // epplan-lint: allow(sparse/dense-scan) — fixture: vetted O(|E|) pass
    for e in inst.event_ids() {
        drop(e);
    }
}

fn unvetted(inst: &Instance) {
    // epplan-lint: allow(sparse/dense-scan)
    for e in inst.event_ids() {
        drop(e);
    }
}

fn cold(inst: &Instance) {
    for e in inst.event_ids() {
        drop(e);
    }
}
