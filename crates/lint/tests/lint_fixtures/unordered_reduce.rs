//! Fixture: det/unordered-reduce.
fn bad(data: &mut [f64]) {
    let mut total = 0.0;
    epplan_par::par_chunks_for_each_mut(data, 16, |_, chunk| {
        for v in chunk.iter_mut() {
            total += *v;
            *v += 1.0;
        }
    });
    drop(total);
}

fn good(data: &[f64]) -> f64 {
    let parts = epplan_par::par_chunks_map(data, 16, |_, chunk| {
        let mut sub = 0.0;
        for v in chunk {
            sub += *v;
        }
        sub
    });
    parts.into_iter().sum()
}

fn vetted(data: &mut [f64]) {
    let mut total = 0.0;
    epplan_par::par_chunks_for_each_mut(data, 16, |_, chunk| {
        for v in chunk.iter_mut() {
            // epplan-lint: allow(det/unordered-reduce) — fixture: vetted serial fallback
            total += *v;
        }
    });
    drop(total);
}

fn unvetted(data: &mut [f64]) {
    let mut total = 0.0;
    epplan_par::par_chunks_for_each_mut(data, 16, |_, chunk| {
        for v in chunk.iter_mut() {
            // epplan-lint: allow(det/unordered-reduce)
            total += *v;
        }
    });
    drop(total);
}
