fn compare(a: f64, n: usize) -> bool {
    let x = a == 0.0;
    let y = 1e-9 != a;
    let ints_are_fine = n == 0;
    let ordering_is_fine = a <= 0.5;
    x && y && ints_are_fine && ordering_is_fine
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_expectations_in_tests_are_fine() {
        assert!(super::compare(0.0, 0) == false || 1.0 == 1.0);
    }
}
