//! Fixture: budget/poll-coverage.
pub struct DeadlineFlag;

impl DeadlineFlag {
    pub fn poll(&self) {}
}

fn bad(inst: &Instance, deadline: &DeadlineFlag) {
    for u in inst.user_ids() {
        drop(u);
    }
    drop(deadline);
}

fn good_direct(inst: &Instance, deadline: &DeadlineFlag) {
    for u in inst.user_ids() {
        deadline.poll();
        drop(u);
    }
}

fn good_via_helper(inst: &Instance, deadline: &DeadlineFlag) {
    for u in inst.user_ids() {
        reach(deadline);
        drop(u);
    }
}

fn reach(deadline: &DeadlineFlag) {
    deadline.poll();
}

fn ungoverned(inst: &Instance) {
    for u in inst.user_ids() {
        drop(u);
    }
}

fn vetted(inst: &Instance, budget: SolveBudget) {
    // epplan-lint: allow(budget/poll-coverage) — fixture: loop bounded elsewhere
    for u in inst.user_ids() {
        drop(u);
    }
    drop(budget);
}

fn unvetted(inst: &Instance, budget: SolveBudget) {
    // epplan-lint: allow(budget/poll-coverage)
    for u in inst.user_ids() {
        drop(u);
    }
    drop(budget);
}
