use std::collections::HashMap; // epplan-lint: allow(determinism/hash-iter) — fixture: keyed lookups only, never iterated

// epplan-lint: allow(determinism/hash-iter) — fixture: standalone allow applies to the next code line
use std::collections::HashSet;

// epplan-lint: allow(determinism/hash-iter) — fixture: membership tests on caller-owned sets, no iteration
fn keyed(m: &HashMap<u32, u32>, s: &HashSet<u32>) -> bool {
    m.contains_key(&1) && s.contains(&2)
}
