use std::collections::HashMap;

fn build() -> HashMap<usize, usize> {
    let m = HashMap::new();
    m
}

#[cfg(test)]
mod tests {
    #[test]
    fn hash_order_in_tests_is_flagged_too() {
        let _s = std::collections::HashSet::<u32>::new();
    }
}
