fn arm_faults() {
    let _ = epplan_fault::point("lp.simplex.pivot"); // registered: silent
    let _ = epplan_fault::point("lp.simplex.pviot"); // typo: fires
    let _ = FaultPlan::single("no.such.site", FaultAction::TypedError); // fires
    let _ = epplan_fault::single_at("flow.mcmf.augment", 2, FaultAction::DeadlineTrip);
    let _ = SolveReport::single("greedy", SolveStatus::Optimal); // not the fault layer: silent
    let _ = fault::single_at("gap.rounding.matched", 1, FaultAction::PoisonValue); // fires
    let _ = epplan_fault::point("serve.admission.decide"); // registered: silent
    let _ = FaultPlan::single("serve.deadletter.append", FaultAction::TypedError); // registered: silent
    let _ = epplan_fault::single_at("serve.brownout.step", 1, FaultAction::TypedError); // registered: silent
}
