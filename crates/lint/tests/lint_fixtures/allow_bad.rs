use std::collections::HashMap; // epplan-lint: allow(determinism/hash-iter)

fn f() {} // epplan-lint: allow(not/a-rule) — the rule name is wrong so this must not parse
