fn instrumented() {
    let _sp = epplan_obs::span("lp.simplex");
    epplan_obs::counter_add("lp.iterations", 1);
    epplan_obs::gauge_set("packing.width", 2.0);
    epplan_obs::observe("serve.op_latency_us", 42);
    let _w = epplan_obs::window("serve.window.op_latency_us", epplan_obs::WindowConfig::default());
    let _bad = epplan_obs::span("lp.typo");
    epplan_obs::counter_add("made.up.counter", 1);
    epplan_obs::gauge_set("nope.gauge", 1.0);
    epplan_obs::observe("rogue.histogram", 7);
    let _bw = epplan_obs::window("rogue.window", epplan_obs::WindowConfig::default());
    let _sc = epplan_obs::span("core.candidates.build");
    epplan_obs::gauge_set("gap.candidates.per_user", 12.5);
    epplan_obs::gauge_set("packing.arena.candidates", 4096.0);
}
