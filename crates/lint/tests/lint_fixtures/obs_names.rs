fn instrumented() {
    let _sp = epplan_obs::span("lp.simplex");
    epplan_obs::counter_add("lp.iterations", 1);
    epplan_obs::gauge_set("packing.width", 2.0);
    let _bad = epplan_obs::span("lp.typo");
    epplan_obs::counter_add("made.up.counter", 1);
    epplan_obs::gauge_set("nope.gauge", 1.0);
}
