fn live(x: Option<u32>) -> u32 {
    let _s = "calling .unwrap() inside a string is fine";
    // and .unwrap() inside a comment is fine too
    x.unwrap()
}

fn live2(x: Option<u32>) -> u32 {
    x.expect("boom")
}

fn fallbacks_are_fine(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let _ = Some(1).unwrap();
    }
}
