fn fan_out() {
    std::thread::spawn(|| {});
    std::thread::scope(|s| {
        let _ = s;
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_in_tests_are_flagged_too() {
        std::thread::spawn(|| {});
    }
}
