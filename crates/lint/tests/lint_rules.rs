//! Fixture-based tests for `epplan-lint`: each rule must fire at the
//! right `file:line` on a deliberately-violating snippet, suppressions
//! must work only with a reason, the `--json` output must round-trip,
//! and — the acceptance bar — the real workspace tree must lint clean.

use epplan_lint::{lint_source, run_workspace, LintReport};
use serde::Deserialize;
use std::path::Path;
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `(line, rule)` pairs of the diagnostics for `src` linted under
/// `pseudo_path`.
fn fire_lines(pseudo_path: &str, src: &str) -> Vec<(u32, String)> {
    let (diags, _) = lint_source(pseudo_path, src);
    diags.into_iter().map(|d| (d.line, d.rule)).collect()
}

#[test]
fn hash_iter_fires_in_deterministic_crates_tests_included() {
    let src = fixture("hash_iter.rs");
    let got = fire_lines("crates/gap/src/fixture.rs", &src);
    let expected: Vec<(u32, String)> = [1, 3, 4, 12]
        .iter()
        .map(|&l| (l, "determinism/hash-iter".to_string()))
        .collect();
    assert_eq!(got, expected);
    // Outside the deterministic crates the rule is silent.
    assert!(fire_lines("crates/obs/src/fixture.rs", &src).is_empty());
}

#[test]
fn wall_clock_fires_outside_timing_owners_non_test_only() {
    let src = fixture("wall_clock.rs");
    let got = fire_lines("crates/core/src/fixture.rs", &src);
    let expected: Vec<(u32, String)> = [4, 5]
        .iter()
        .map(|&l| (l, "determinism/wall-clock".to_string()))
        .collect();
    assert_eq!(got, expected);
    // The timing owners may read the clock.
    assert!(fire_lines("crates/solve/src/budget.rs", &src).is_empty());
    assert!(fire_lines("crates/bench/src/fixture.rs", &src).is_empty());
    assert!(fire_lines("crates/obs/src/fixture.rs", &src).is_empty());
}

#[test]
fn raw_threads_fire_everywhere_but_par() {
    let src = fixture("raw_threads.rs");
    let got = fire_lines("crates/solve/src/fixture.rs", &src);
    let expected: Vec<(u32, String)> = [2, 3, 12]
        .iter()
        .map(|&l| (l, "par/raw-threads".to_string()))
        .collect();
    assert_eq!(got, expected);
    assert!(fire_lines("crates/par/src/fixture.rs", &src).is_empty());
}

#[test]
fn unwrap_fires_in_non_test_library_code_only() {
    let src = fixture("unwrap.rs");
    let got = fire_lines("crates/flow/src/fixture.rs", &src);
    let expected: Vec<(u32, String)> = [4, 8]
        .iter()
        .map(|&l| (l, "robustness/unwrap".to_string()))
        .collect();
    assert_eq!(got, expected);
    // Integration tests, examples and CLI binaries are exempt.
    assert!(fire_lines("tests/fixture.rs", &src).is_empty());
    assert!(fire_lines("examples/fixture.rs", &src).is_empty());
    assert!(fire_lines("src/bin/fixture.rs", &src).is_empty());
}

#[test]
fn float_exact_eq_fires_on_literal_comparisons() {
    let src = fixture("float_eq.rs");
    let got = fire_lines("crates/lp/src/fixture.rs", &src);
    let expected: Vec<(u32, String)> = [2, 3]
        .iter()
        .map(|&l| (l, "float/exact-eq".to_string()))
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn obs_names_must_match_registry() {
    let src = fixture("obs_names.rs");
    let got = fire_lines("crates/gap/src/fixture.rs", &src);
    let expected: Vec<(u32, String)> = [7, 8, 9, 10, 11]
        .iter()
        .map(|&l| (l, "obs/stable-names".to_string()))
        .collect();
    assert_eq!(got, expected);
    // The obs crate itself defines names freely (its own tests use
    // scratch names).
    assert!(fire_lines("crates/obs/src/fixture.rs", &src).is_empty());
}

#[test]
fn fault_sites_must_match_registry() {
    let src = fixture("fault_sites.rs");
    let got = fire_lines("crates/core/src/fixture.rs", &src);
    let expected: Vec<(u32, String)> = [3, 4, 7]
        .iter()
        .map(|&l| (l, "fault/unregistered-site".to_string()))
        .collect();
    assert_eq!(got, expected);
    // Integration tests arm plans by site name → the rule covers them.
    assert_eq!(fire_lines("tests/fixture.rs", &src).len(), 3);
    // The fault crate itself defines the registry and may use scratch
    // names in its own tests.
    assert!(fire_lines("crates/fault/src/fixture.rs", &src).is_empty());
}

#[test]
fn cache_invalidate_requires_reaching_the_invalidator() {
    let src = fixture("cache_invalidate.rs");
    let got = fire_lines("crates/core/src/fixture.rs", &src);
    assert_eq!(
        got,
        vec![
            // `set_bad` writes `self.utilities` and never invalidates.
            (14, "sparse/cache-invalidate".to_string()),
            // `set_vetted` (line 32) is suppressed with a reason;
            // `set_unvetted`'s reason-less allow rejects AND fails to
            // suppress.
            (35, "lint/allow-needs-reason".to_string()),
            (36, "sparse/cache-invalidate".to_string()),
        ]
    );
    // Direct and transitive routes to `invalidate_candidates()` and
    // read-only methods stay silent (lines 17, 21, 28 absent above).
    // Examples are out of semantic scope entirely (only the scope-free
    // meta rule still rejects the fixture's reason-less allow).
    assert!(fire_lines("examples/fixture.rs", &src)
        .iter()
        .all(|(_, r)| r == "lint/allow-needs-reason"));
}

#[test]
fn dense_scan_fires_only_on_batch_reachable_hot_code() {
    let src = fixture("dense_scan.rs");
    let got = fire_lines("crates/core/src/fixture.rs", &src);
    assert_eq!(
        got,
        vec![
            // Direct `event_ids()` loop in a helper `solve` calls.
            (14, "sparse/dense-scan".to_string()),
            // Aliased bound: `let m = inst.n_events()` then `0..m`.
            (18, "sparse/dense-scan".to_string()),
            // Reason-less allow rejects and fails to suppress; `cold`
            // (line 38) is unreachable from the entry point → silent.
            (31, "lint/allow-needs-reason".to_string()),
            (32, "sparse/dense-scan".to_string()),
        ]
    );
    // Outside the hot crates the same shapes are fine (only the
    // scope-free meta rule still rejects the reason-less allow).
    assert!(fire_lines("crates/obs/src/fixture.rs", &src)
        .iter()
        .all(|(_, r)| r == "lint/allow-needs-reason"));
}

#[test]
fn unordered_reduce_flags_captured_writes_in_par_closures() {
    let src = fixture("unordered_reduce.rs");
    let got = fire_lines("crates/core/src/fixture.rs", &src);
    assert_eq!(
        got,
        vec![
            // `total += *v` writes captured state; `*v += 1.0` through
            // the chunk-local loop binding is fine, as is the per-chunk
            // `sub` accumulator in `good`.
            (6, "det/unordered-reduce".to_string()),
            (39, "lint/allow-needs-reason".to_string()),
            (40, "det/unordered-reduce".to_string()),
        ]
    );
    // The par runtime itself builds these primitives (only the
    // scope-free meta rule still rejects the reason-less allow).
    assert!(fire_lines("crates/par/src/fixture.rs", &src)
        .iter()
        .all(|(_, r)| r == "lint/allow-needs-reason"));
}

#[test]
fn poll_coverage_demands_deadline_polls_in_governed_loops() {
    let src = fixture("poll_coverage.rs");
    let got = fire_lines("crates/core/src/fixture.rs", &src);
    assert_eq!(
        got,
        vec![
            // `bad` never polls; direct polls, polls through a helper
            // reaching `poll`, and ungoverned functions are silent.
            (9, "budget/poll-coverage".to_string()),
            (48, "lint/allow-needs-reason".to_string()),
            (49, "budget/poll-coverage".to_string()),
        ]
    );
}

#[test]
fn name_rules_resolve_consts_statics_and_lets() {
    let src = fixture("resolved_names.rs");
    let got = fire_lines("crates/gap/src/fixture.rs", &src);
    assert_eq!(
        got,
        vec![
            // A const and a `let` resolving to off-registry names fire;
            // `GOOD_SPAN` and the registered literal stay silent, and
            // the allow with a reason suppresses the last `BAD_SPAN`
            // use (line 20).
            (8, "obs/stable-names".to_string()),
            (10, "obs/stable-names".to_string()),
            (15, "fault/unregistered-site".to_string()),
        ]
    );
}

#[test]
fn lint_fault_registry_mirrors_the_real_one() {
    // The linter is zero-dep, so its copy of the site registry must be
    // asserted against the authoritative one here.
    let mut ours: Vec<&str> = epplan_lint::rules::FAULT_SITES.to_vec();
    let mut real: Vec<&str> = epplan_fault::SITES.to_vec();
    ours.sort_unstable();
    real.sort_unstable();
    assert_eq!(ours, real, "crates/lint/src/rules.rs FAULT_SITES drifted from epplan_fault::SITES");
}

#[test]
fn allows_with_reasons_suppress() {
    let src = fixture("allow_ok.rs");
    let (diags, allows) = lint_source("crates/gap/src/fixture.rs", &src);
    assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
    assert_eq!(allows.len(), 3);
    assert_eq!(allows[0].target_line, 1); // trailing: same line
    assert_eq!(allows[1].target_line, 4); // standalone: next code line
    assert_eq!(allows[2].target_line, 7);
    assert!(allows.iter().all(|a| !a.reason.is_empty()));
}

#[test]
fn allows_without_reason_or_with_unknown_rule_are_rejected() {
    let src = fixture("allow_bad.rs");
    let (diags, allows) = lint_source("crates/gap/src/fixture.rs", &src);
    assert!(allows.is_empty(), "malformed allows must not register: {allows:?}");
    let got: Vec<(u32, &str)> = diags.iter().map(|d| (d.line, d.rule.as_str())).collect();
    assert_eq!(
        got,
        vec![
            (1, "lint/allow-needs-reason"),
            (1, "determinism/hash-iter"), // the allow without a reason does NOT suppress
            (3, "lint/unknown-rule"),
        ]
    );
}

// Mirrors of the `--json` schema, deserialized through the workspace
// serde shim to prove the output round-trips.
#[derive(Debug, Deserialize)]
struct JsonReport {
    version: u32,
    files_scanned: usize,
    clean: bool,
    diagnostics: Vec<JsonDiag>,
    allows: Vec<JsonAllow>,
}

#[derive(Debug, Deserialize)]
struct JsonDiag {
    path: String,
    line: u32,
    col: u32,
    end_line: u32,
    end_col: u32,
    rule: String,
    message: String,
}

#[derive(Debug, Deserialize)]
struct JsonAllow {
    path: String,
    line: u32,
    target_line: u32,
    rule: String,
    reason: String,
}

#[test]
fn json_output_round_trips() {
    let (diags, allows) = lint_source("crates/gap/src/fixture.rs", &fixture("hash_iter.rs"));
    let report = LintReport {
        diagnostics: diags,
        allows,
        files_scanned: 1,
    };
    let parsed: JsonReport =
        serde_json::from_str(&report.to_json()).unwrap_or_else(|e| panic!("bad JSON: {e:?}"));
    assert_eq!(parsed.version, 1);
    assert_eq!(parsed.files_scanned, 1);
    assert!(!parsed.clean);
    assert_eq!(parsed.diagnostics.len(), report.diagnostics.len());
    for (j, d) in parsed.diagnostics.iter().zip(&report.diagnostics) {
        assert_eq!(j.path, d.path);
        assert_eq!(j.line, d.line);
        assert_eq!(j.col, d.col);
        assert_eq!(j.end_line, d.end_line);
        assert_eq!(j.end_col, d.end_col);
        // The span is non-degenerate and ordered.
        assert!((j.end_line, j.end_col) >= (j.line, j.col));
        assert_eq!(j.rule, d.rule);
        assert_eq!(j.message, d.message);
    }
    assert_eq!(parsed.allows.len(), report.allows.len());
    for (j, a) in parsed.allows.iter().zip(&report.allows) {
        assert_eq!(j.path, a.path);
        assert_eq!(j.line, a.line);
        assert_eq!(j.target_line, a.target_line);
        assert_eq!(j.rule, a.rule);
        assert_eq!(j.reason, a.reason);
    }
}

fn workspace_root() -> &'static Path {
    // crates/lint → workspace root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .unwrap_or_else(|| panic!("workspace root above {}", env!("CARGO_MANIFEST_DIR")))
}

#[test]
fn the_real_workspace_lints_clean() {
    let report = run_workspace(workspace_root()).unwrap_or_else(|e| panic!("lint failed: {e}"));
    assert!(report.files_scanned > 50, "walk too small: {}", report.files_scanned);
    assert!(
        report.is_clean(),
        "contract violations in the tree:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Every suppression in the tree carries a reason (the parser
    // rejects reason-less allows, so this documents the invariant).
    assert!(report.allows.iter().all(|a| !a.reason.trim().is_empty()));
}

#[test]
fn cli_explains_every_listed_rule() {
    let bin = env!("CARGO_BIN_EXE_epplan-lint");
    let out = Command::new(bin)
        .arg("--list-rules")
        .output()
        .unwrap_or_else(|e| panic!("spawn: {e}"));
    assert_eq!(out.status.code(), Some(0));
    let listing = String::from_utf8_lossy(&out.stdout).to_string();
    let rules: Vec<&str> = listing.lines().map(str::trim).filter(|l| !l.is_empty()).collect();
    assert!(rules.len() >= 13, "rule listing too short: {rules:?}");
    for rule in &rules {
        let out = Command::new(bin)
            .args(["--explain", rule])
            .output()
            .unwrap_or_else(|e| panic!("spawn: {e}"));
        assert_eq!(out.status.code(), Some(0), "--explain {rule} failed");
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(text.contains(rule), "--explain {rule} does not mention the rule");
        // Suppressible rules print the allow hint; the meta rules
        // (which cannot be suppressed) must not.
        let suppressible = !rule.starts_with("lint/");
        assert_eq!(
            text.contains("Suppress a vetted site with"),
            suppressible,
            "--explain {rule} suppression hint mismatch"
        );
    }
    // Unknown rules are a usage error.
    let out = Command::new(bin)
        .args(["--explain", "no/such-rule"])
        .output()
        .unwrap_or_else(|e| panic!("spawn: {e}"));
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn cli_exit_code_contract() {
    let bin = env!("CARGO_BIN_EXE_epplan-lint");
    let root = workspace_root();

    // 0 — clean tree.
    let out = Command::new(bin)
        .args(["--workspace", "--json"])
        .current_dir(root)
        .output()
        .unwrap_or_else(|e| panic!("spawn: {e}"));
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let parsed: JsonReport = serde_json::from_str(
        String::from_utf8_lossy(&out.stdout).trim(),
    )
    .unwrap_or_else(|e| panic!("bad CLI JSON: {e:?}"));
    assert!(parsed.clean);

    // 5 — violations found. par/raw-threads fires regardless of crate
    // scope (only crates/par/ is exempt), so the fixture is dirty even
    // under its real path.
    let fixture_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_fixtures/raw_threads.rs");
    let out = Command::new(bin)
        .arg(fixture_path.display().to_string())
        .output()
        .unwrap_or_else(|e| panic!("spawn: {e}"));
    assert_eq!(
        out.status.code(),
        Some(5),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // 2 — usage error.
    let out = Command::new(bin)
        .arg("--no-such-flag")
        .output()
        .unwrap_or_else(|e| panic!("spawn: {e}"));
    assert_eq!(out.status.code(), Some(2));

    // 3 — io error.
    let out = Command::new(bin)
        .arg("does/not/exist.rs")
        .output()
        .unwrap_or_else(|e| panic!("spawn: {e}"));
    assert_eq!(out.status.code(), Some(3));
}
