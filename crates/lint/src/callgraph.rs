//! A conservative call graph over the workspace symbol table.
//!
//! Resolution is name-based, not type-inferred: `self.foo(…)` binds to
//! the enclosing impl type's `foo` when one exists, `Type::foo(…)`
//! binds through the `(type, method)` index, and everything else —
//! bare calls and method calls on arbitrary receivers — binds to
//! *every* workspace function of that name. That over-approximation is
//! the right bias for the rules built on top: reachability-style rules
//! (dense scans on hot paths) prefer extra edges over missed ones, and
//! obligation-style rules (must reach `invalidate_candidates`) anchor
//! on names unique enough that spurious edges cannot satisfy them.

use crate::symbols::Workspace;
use crate::tokens::TokKind;
use std::collections::BTreeSet;

/// Keywords that look like calls when followed by `(`.
const NON_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "move", "in", "as", "let", "else",
];

/// Forward and reverse adjacency over function gids.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `callees[gid]` — functions `gid` may call.
    pub callees: Vec<Vec<usize>>,
    /// `callers[gid]` — functions that may call `gid`.
    pub callers: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph by scanning every function body for
    /// `ident (…)` call sites and resolving them through the symbol
    /// table.
    pub fn build(ws: &Workspace) -> CallGraph {
        let n = ws.fns.len();
        let mut callees: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for (gid, callee_set) in callees.iter_mut().enumerate() {
            let (file, item) = ws.fn_item(gid);
            let Some((bs, be)) = item.body else { continue };
            let toks = &file.ts.toks;
            for k in bs..=be.min(toks.len().saturating_sub(1)) {
                let t = &toks[k];
                if t.kind != TokKind::Ident
                    || toks.get(k + 1).is_none_or(|nx| nx.text != "(")
                    || NON_CALLS.contains(&t.text.as_str())
                {
                    continue;
                }
                let name = t.text.as_str();
                let mut resolved: Option<&Vec<usize>> = None;
                if k >= 1 && toks[k - 1].text == "." {
                    // Method call. `self.name(…)` resolves on the
                    // enclosing impl type when that method exists.
                    if k >= 2 && toks[k - 2].text == "self" {
                        if let Some(ty) = &item.self_ty {
                            resolved = ws.by_ty_method.get(&(ty.clone(), name.to_string()));
                        }
                    }
                    if resolved.is_none() {
                        resolved = ws.by_name.get(name);
                    }
                } else if k >= 2
                    && toks[k - 1].text == "::"
                    && toks[k - 2].kind == TokKind::Ident
                {
                    // `Qualifier::name(…)` — a type method when the
                    // qualifier names a known impl type, otherwise a
                    // module path resolved by bare name.
                    let qual = toks[k - 2].text.clone();
                    resolved = ws.by_ty_method.get(&(qual, name.to_string()));
                    if resolved.is_none() {
                        resolved = ws.by_name.get(name);
                    }
                } else {
                    resolved = ws.by_name.get(name);
                }
                if let Some(targets) = resolved {
                    for &tgt in targets {
                        if tgt != gid {
                            callee_set.insert(tgt);
                        }
                    }
                }
            }
        }

        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (gid, cs) in callees.iter().enumerate() {
            for &tgt in cs {
                callers[tgt].push(gid);
            }
        }
        CallGraph {
            callees: callees.into_iter().map(|s| s.into_iter().collect()).collect(),
            callers,
        }
    }

    /// Functions reachable *from* any seed (seeds included), via
    /// forward BFS.
    pub fn reachable_from<I: IntoIterator<Item = usize>>(&self, seeds: I) -> Vec<bool> {
        self.bfs(seeds, &self.callees)
    }

    /// Functions that can *reach* any target (targets included), via
    /// reverse BFS.
    pub fn reaches<I: IntoIterator<Item = usize>>(&self, targets: I) -> Vec<bool> {
        self.bfs(targets, &self.callers)
    }

    fn bfs<I: IntoIterator<Item = usize>>(&self, seeds: I, adj: &[Vec<usize>]) -> Vec<bool> {
        let mut seen = vec![false; adj.len()];
        let mut queue: Vec<usize> = Vec::new();
        for s in seeds {
            if s < seen.len() && !seen[s] {
                seen[s] = true;
                queue.push(s);
            }
        }
        while let Some(g) = queue.pop() {
            for &nx in &adj[g] {
                if !seen[nx] {
                    seen[nx] = true;
                    queue.push(nx);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(src: &str) -> (Workspace, CallGraph) {
        let ws = Workspace::build(&[("crates/core/src/x.rs".to_string(), src.to_string())]);
        let cg = CallGraph::build(&ws);
        (ws, cg)
    }

    fn gid(ws: &Workspace, name: &str) -> usize {
        ws.by_name.get(name).map(|v| v[0]).unwrap_or(usize::MAX)
    }

    #[test]
    fn transitive_reachability() {
        let (ws, cg) = graph(
            "fn a() { b(); }\n\
             fn b() { c(3); }\n\
             fn c(x: u32) {}\n\
             fn island() {}\n",
        );
        let reach = cg.reachable_from([gid(&ws, "a")]);
        assert!(reach[gid(&ws, "a")]);
        assert!(reach[gid(&ws, "b")]);
        assert!(reach[gid(&ws, "c")]);
        assert!(!reach[gid(&ws, "island")]);

        let back = cg.reaches([gid(&ws, "c")]);
        assert!(back[gid(&ws, "a")]);
        assert!(back[gid(&ws, "b")]);
        assert!(!back[gid(&ws, "island")]);
    }

    #[test]
    fn self_methods_resolve_on_the_impl_type() {
        let (ws, cg) = graph(
            "impl Instance {\n\
               fn set_budget(&mut self) { self.invalidate_candidates(); }\n\
               fn invalidate_candidates(&mut self) {}\n\
             }\n",
        );
        let reach = cg.reaches([gid(&ws, "invalidate_candidates")]);
        assert!(reach[gid(&ws, "set_budget")]);
    }

    #[test]
    fn qualified_type_methods_resolve() {
        let (ws, cg) = graph(
            "impl Flag { fn poll(&self) {} }\n\
             fn scan() { Flag::poll(&f); }\n",
        );
        let reach = cg.reaches([gid(&ws, "poll")]);
        assert!(reach[gid(&ws, "scan")]);
    }

    #[test]
    fn keywords_are_not_calls() {
        let (ws, cg) = graph("fn a() { if (x) { } while (y) { } }\nfn b() {}\n");
        assert!(cg.callees[gid(&ws, "a")].is_empty());
        let _ = gid(&ws, "b");
    }
}
