//! A lightweight item parser layered on [`crate::tokens`] — just
//! enough structure for the semantic rules: `fn` items with their
//! receiver, enclosing `impl` type and body token range, plus
//! `const`/`static`/`let` bindings whose initializer is a single
//! string literal (the units the symbol-resolved name rules chase).
//!
//! Like the tokenizer, parsing is total: constructs the parser does
//! not model (macros, trait objects, const generics in odd positions)
//! are skipped, never an error. The trade is deliberate — a linter
//! must keep working on any source rustc itself would accept, and the
//! rules built on top are written to fail open (no symbol → no
//! diagnostic) rather than fail noisy.

use crate::tokens::{Tok, TokKind};

/// How a function takes `self`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receiver {
    /// Free function — no `self` parameter.
    None,
    /// `&self`.
    Shared,
    /// `&mut self`.
    Mut,
    /// `self` / `mut self` by value.
    Owned,
}

/// One `fn` item: a free function, an inherent or trait-impl method,
/// or a nested fn discovered inside another body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name (raw-identifier prefix stripped).
    pub name: String,
    /// Enclosing `impl` type — `impl Instance` and
    /// `impl Trait for Instance` both yield `Instance`; `None` for
    /// free functions.
    pub self_ty: Option<String>,
    /// Trait being implemented, for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// How the function takes `self`.
    pub receiver: Receiver,
    /// Non-`self` parameters, each rendered as flat token text
    /// (`"plan : & mut Plan"`).
    pub params: Vec<String>,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Inclusive token range of the body braces; `None` for bodiless
    /// declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the fn sits inside a `#[test]` / `#[cfg(test)]` region.
    pub is_test: bool,
}

/// Which binding form introduced a string constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindKind {
    /// `const NAME: … = "…";`
    Const,
    /// `static NAME: … = "…";`
    Static,
    /// `let NAME = "…";` (function-local).
    Let,
}

/// A binding whose initializer is exactly one string literal.
#[derive(Debug, Clone)]
pub struct StrBinding {
    /// The bound name.
    pub name: String,
    /// The literal's content (without quotes).
    pub value: String,
    /// 1-based line of the binding keyword.
    pub line: u32,
    /// Binding form.
    pub kind: BindKind,
}

/// Everything the parser extracts from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All `fn` items, in source order (nested fns included).
    pub fns: Vec<FnItem>,
    /// All string-literal bindings, in source order.
    pub strs: Vec<StrBinding>,
}

/// Index of the token closing the delimiter opened at `open` (one of
/// `(`, `[`, `{`). Unbalanced input answers with the last token —
/// total, like everything else here.
pub fn match_delim(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => ("{", "}"),
    };
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind != TokKind::Punct {
            continue;
        }
        if t.text == o {
            depth += 1;
        } else if t.text == c {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Index of the token opening the delimiter closed at `close` (one of
/// `)`, `]`, `}`), scanning backwards; `lo` bounds the search.
pub fn match_delim_back(toks: &[Tok], close: usize, lo: usize) -> usize {
    let (o, c) = match toks[close].text.as_str() {
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        _ => ("{", "}"),
    };
    let mut depth = 0usize;
    let mut k = close;
    loop {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            if t.text == c {
                depth += 1;
            } else if t.text == o {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return k;
                }
            }
        }
        if k == lo {
            return lo;
        }
        k -= 1;
    }
}

/// Skips a generic-argument list starting at `open` (a `<`), returning
/// the index just past the matching `>`. Understands the merged `>>`
/// closer; bails at `;`/`{` at depth ≥ 1 so a stray comparison cannot
/// swallow the rest of the file.
pub fn skip_angles(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < toks.len() {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                ";" | "{" => return k,
                _ => {}
            }
        }
        k += 1;
        if depth <= 0 {
            return k;
        }
    }
    k
}

/// Parses the token stream of one file. `test_mask` is the
/// [`crate::tokens::test_region_mask`] of the same tokens.
pub fn parse(toks: &[Tok], test_mask: &[bool]) -> ParsedFile {
    let mut out = ParsedFile::default();
    // Innermost-last stack of enclosing impl blocks:
    // (type, trait, closing-brace token index).
    let mut scopes: Vec<(String, Option<String>, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        while scopes.last().is_some_and(|s| s.2 < i) {
            scopes.pop();
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" if item_position(toks, i) => {
                if let Some((ty, tr, open)) = parse_impl_header(toks, i) {
                    let close = match_delim(toks, open);
                    scopes.push((ty, tr, close));
                    i = open + 1;
                    continue;
                }
            }
            "fn" => {
                let scope = scopes.last();
                if let Some((item, next)) = parse_fn(toks, i, scope, test_mask) {
                    out.fns.push(item);
                    i = next;
                    continue;
                }
            }
            "const" | "static" | "let" => {
                if let Some(b) = parse_binding(toks, i) {
                    out.strs.push(b);
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Whether the token at `at` can start an item — filters out `impl` in
/// type position (`-> impl Iterator`, `x: impl Fn()`).
fn item_position(toks: &[Tok], at: usize) -> bool {
    match at.checked_sub(1) {
        None => true,
        Some(p) => {
            let t = &toks[p];
            matches!(t.text.as_str(), ";" | "}" | "{" | "]" | "unsafe" | "pub")
        }
    }
}

/// Parses `impl [<…>] [Trait for] Type [where …] {`, returning
/// (type name, trait name, index of the opening brace).
fn parse_impl_header(toks: &[Tok], at: usize) -> Option<(String, Option<String>, usize)> {
    let mut j = at + 1;
    if toks.get(j).is_some_and(|t| t.text == "<") {
        j = skip_angles(toks, j);
    }
    let mut segs: Vec<String> = Vec::new();
    let mut trait_name: Option<String> = None;
    // The type as of the `where` keyword, if one appears.
    let mut frozen: Option<String> = None;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "{" if t.kind == TokKind::Punct => {
                let ty = frozen.or_else(|| segs.last().cloned())?;
                return Some((ty, trait_name, j));
            }
            ";" | ")" | "=" | "," | "|" => return None, // type position after all
            "for" if t.kind == TokKind::Ident => {
                trait_name = segs.last().cloned();
                segs.clear();
            }
            "where" if t.kind == TokKind::Ident => {
                frozen = segs.last().cloned();
            }
            "<" if t.kind == TokKind::Punct => {
                j = skip_angles(toks, j);
                continue;
            }
            _ => {
                if t.kind == TokKind::Ident && frozen.is_none() && t.text != "dyn" && t.text != "mut"
                {
                    segs.push(t.text.clone());
                }
            }
        }
        j += 1;
    }
    None
}

/// Parses a `fn` item starting at the `fn` keyword. Returns the item
/// plus the index parsing should resume from (just inside the body, so
/// nested items are discovered too).
fn parse_fn(
    toks: &[Tok],
    at: usize,
    scope: Option<&(String, Option<String>, usize)>,
    test_mask: &[bool],
) -> Option<(FnItem, usize)> {
    let name_tok = toks.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None; // `fn(…)` pointer type
    }
    let name = name_tok.text.trim_start_matches("r#").to_string();
    let mut j = at + 2;
    if toks.get(j).is_some_and(|t| t.text == "<") {
        j = skip_angles(toks, j);
    }
    if toks.get(j).is_none_or(|t| t.text != "(") {
        return None;
    }
    let close = match_delim(toks, j);
    let (receiver, params) = parse_params(toks, j + 1, close);

    // Body `{` (or `;` for a declaration), past return type and any
    // `where` clause; `<` runs are skipped so const-generic braces in
    // a return type cannot masquerade as the body.
    let mut k = close + 1;
    let mut body = None;
    while k < toks.len() {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => {
                    body = Some((k, match_delim(toks, k)));
                    break;
                }
                ";" => break,
                "<" => {
                    k = skip_angles(toks, k);
                    continue;
                }
                _ => {}
            }
        }
        k += 1;
    }

    let next = match body {
        Some((open, _)) => open + 1,
        None => k + 1,
    };
    let item = FnItem {
        name,
        self_ty: scope.map(|s| s.0.clone()),
        trait_name: scope.and_then(|s| s.1.clone()),
        receiver,
        params,
        fn_tok: at,
        body,
        line: toks[at].line,
        is_test: test_mask.get(at).copied().unwrap_or(false),
    };
    Some((item, next))
}

/// Splits a parameter list (token range between the signature parens)
/// into the receiver and the rendered remaining parameters.
fn parse_params(toks: &[Tok], start: usize, close: usize) -> (Receiver, Vec<String>) {
    let mut chunks: Vec<(usize, usize)> = Vec::new();
    let mut depth = 0i32;
    let mut s = start;
    let mut k = start;
    while k < close {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" => {
                    k = skip_angles(toks, k);
                    continue;
                }
                "," if depth == 0 => {
                    chunks.push((s, k));
                    s = k + 1;
                }
                _ => {}
            }
        }
        k += 1;
    }
    if s < close {
        chunks.push((s, close));
    }

    let mut receiver = Receiver::None;
    let mut params = Vec::new();
    for (ci, &(a, b)) in chunks.iter().enumerate() {
        let slice = &toks[a..b.min(toks.len())];
        if ci == 0 {
            if let Some(r) = receiver_of(slice) {
                receiver = r;
                continue;
            }
        }
        params.push(
            slice
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" "),
        );
    }
    (receiver, params)
}

/// Recognizes `[&] [lifetime] [mut] self [: Type]` as a receiver.
fn receiver_of(slice: &[Tok]) -> Option<Receiver> {
    let mut k = 0usize;
    let mut by_ref = false;
    let mut is_mut = false;
    if slice.get(k).is_some_and(|t| t.text == "&") {
        by_ref = true;
        k += 1;
    }
    if slice.get(k).is_some_and(|t| t.kind == TokKind::Lifetime) {
        k += 1;
    }
    if slice.get(k).is_some_and(|t| t.text == "mut") {
        is_mut = true;
        k += 1;
    }
    if slice.get(k).is_none_or(|t| t.text != "self") {
        return None;
    }
    // `self::Foo` in a type is a path, not a receiver.
    if slice.get(k + 1).is_some_and(|t| t.text == "::") {
        return None;
    }
    Some(if by_ref {
        if is_mut {
            Receiver::Mut
        } else {
            Receiver::Shared
        }
    } else {
        Receiver::Owned
    })
}

/// Parses `const|static|let [mut] NAME [: Type] = "literal";`.
fn parse_binding(toks: &[Tok], at: usize) -> Option<StrBinding> {
    let kind = match toks[at].text.as_str() {
        "const" => BindKind::Const,
        "static" => BindKind::Static,
        _ => BindKind::Let,
    };
    let mut j = at + 1;
    if toks.get(j).is_some_and(|t| t.text == "mut") {
        j += 1;
    }
    let name_tok = toks.get(j)?;
    if name_tok.kind != TokKind::Ident {
        return None; // destructuring pattern, `const fn`'s paren, …
    }
    let name = name_tok.text.clone();
    j += 1;
    if toks.get(j).is_some_and(|t| t.text == ":") {
        // Skip the type annotation up to the `=`.
        let mut depth = 0i32;
        j += 1;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "<" => {
                        j = skip_angles(toks, j);
                        continue;
                    }
                    "=" if depth == 0 => break,
                    ";" | "{" if depth == 0 => return None,
                    _ => {}
                }
            }
            j += 1;
        }
    }
    if toks.get(j).is_none_or(|t| t.text != "=") {
        return None;
    }
    let val = toks.get(j + 1)?;
    if val.kind != TokKind::Str {
        return None;
    }
    if toks.get(j + 2).is_none_or(|t| t.text != ";") {
        return None;
    }
    Some(StrBinding {
        name,
        value: val.text.clone(),
        line: toks[at].line,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::{test_region_mask, tokenize};

    fn parsed(src: &str) -> ParsedFile {
        let ts = tokenize(src);
        let mask = test_region_mask(&ts.toks);
        parse(&ts.toks, &mask)
    }

    #[test]
    fn free_fn_and_method_receivers() {
        let p = parsed(
            "fn free(x: u32) {}\n\
             impl Instance {\n\
               fn shared(&self) {}\n\
               fn excl(&mut self, v: f64) {}\n\
               fn owned(mut self) {}\n\
             }\n\
             fn after() {}\n",
        );
        let names: Vec<(&str, Option<&str>, Receiver)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_ty.as_deref(), f.receiver))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, Receiver::None),
                ("shared", Some("Instance"), Receiver::Shared),
                ("excl", Some("Instance"), Receiver::Mut),
                ("owned", Some("Instance"), Receiver::Owned),
                ("after", None, Receiver::None),
            ]
        );
        assert_eq!(p.fns[3].params, Vec::<String>::new());
        assert_eq!(p.fns[2].params, vec!["v : f64"]);
    }

    #[test]
    fn trait_impls_and_generics() {
        let p = parsed(
            "impl<T: Clone> GepcSolver for GreedySolver<T> where T: Send {\n\
               fn solve(&self, instance: &Instance) -> Solution { body() }\n\
             }\n",
        );
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "solve");
        assert_eq!(f.self_ty.as_deref(), Some("GreedySolver"));
        assert_eq!(f.trait_name.as_deref(), Some("GepcSolver"));
        assert!(f.body.is_some());
    }

    #[test]
    fn impl_in_type_position_is_not_a_scope() {
        let p = parsed(
            "fn make() -> impl Iterator<Item = u32> { (0..3).into_iter() }\n\
             fn take(x: impl Fn() -> u32) {}\n",
        );
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns.iter().all(|f| f.self_ty.is_none()));
    }

    #[test]
    fn nested_fns_are_discovered() {
        let p = parsed("fn outer() { fn inner() {} inner(); }\n");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn string_bindings() {
        let p = parsed(
            "const SITE: &str = \"gap.packing.oracle\";\n\
             static LABEL: &'static str = \"serve.op\";\n\
             fn f() { let name = \"lp.simplex\"; let n = 3; }\n",
        );
        let got: Vec<(&str, &str, BindKind)> = p
            .strs
            .iter()
            .map(|s| (s.name.as_str(), s.value.as_str(), s.kind))
            .collect();
        assert_eq!(
            got,
            vec![
                ("SITE", "gap.packing.oracle", BindKind::Const),
                ("LABEL", "serve.op", BindKind::Static),
                ("name", "lp.simplex", BindKind::Let),
            ]
        );
    }

    #[test]
    fn test_mask_propagates() {
        let p = parsed("#[test]\nfn t() {}\nfn live() {}\n");
        assert!(p.fns[0].is_test);
        assert!(!p.fns[1].is_test);
    }

    #[test]
    fn bodiless_declarations() {
        let p = parsed("trait T { fn must(&self) -> u32; }\n");
        assert_eq!(p.fns[0].name, "must");
        assert!(p.fns[0].body.is_none());
    }
}
