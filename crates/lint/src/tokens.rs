//! A lightweight Rust tokenizer — just enough structure for the lint
//! rules: it separates code from strings and comments, tags float
//! literals, merges the multi-char operators the rules match on
//! (`::`, `==`, `!=`, …), and records line comments verbatim so the
//! suppression parser can find `epplan-lint:` markers. It is *not* a
//! full lexer (no keyword table, no numeric-suffix validation); every
//! input tokenizes — malformed source simply yields odd tokens rather
//! than an error, which is the right trade for a linter that must
//! never block on code rustc itself will reject.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `r#async`).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000`).
    Int,
    /// Float literal (`0.0`, `1e-9`, `2f64`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation / operator, multi-char operators pre-merged.
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Verbatim text (string literals: the content, without quotes).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl Tok {
    /// End of this token's source span, exclusive: `(line, col)` one
    /// past the last character. String and char literals account for
    /// their two delimiter quotes (raw-string guards are approximated
    /// by the same two — close enough for editor ranges).
    pub fn span_end(&self) -> (u32, u32) {
        let extra = match self.kind {
            TokKind::Str | TokKind::Char => 2,
            _ => 0,
        };
        let mut line = self.line;
        let mut col = self.col;
        for ch in self.text.chars() {
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col + extra)
    }
}

/// One `//` comment, verbatim (without the leading slashes), with the
/// line it sits on and whether code precedes it on that line — the
/// suppression parser uses that to decide which line an
/// `epplan-lint: allow(...)` applies to.
#[derive(Debug, Clone)]
pub struct LineComment {
    /// Comment body, without the leading `//`.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// `true` when a code token precedes the comment on its line
    /// (trailing comment), `false` for a comment alone on its line.
    pub trailing: bool,
}

/// Tokenizer output: the code tokens plus the captured line comments.
#[derive(Debug, Default)]
pub struct TokenStream {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Captured `//` comments in source order.
    pub comments: Vec<LineComment>,
}

/// Multi-char operators merged into single `Punct` tokens, longest
/// first so e.g. `..=` wins over `..`.
const OPERATORS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "==", "!=", "<=", ">=", "->", "=>", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Tokenizes `src`. Total: never fails.
pub fn tokenize(src: &str) -> TokenStream {
    let b: Vec<char> = src.chars().collect();
    let mut out = TokenStream::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    // Line of the most recently emitted token, to classify trailing
    // comments.
    let mut last_tok_line: u32 = 0;

    macro_rules! advance {
        ($c:expr) => {{
            if $c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }};
    }

    while i < b.len() {
        let c = b[i];
        let (tline, tcol) = (line, col);

        // Whitespace.
        if c.is_whitespace() {
            advance!(c);
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < b.len() {
            if b[i + 1] == '/' {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                out.comments.push(LineComment {
                    text: b[start..j].iter().collect(),
                    line: tline,
                    trailing: last_tok_line == tline,
                });
                col += (j - i) as u32;
                i = j;
                continue;
            }
            if b[i + 1] == '*' {
                // Nested block comment.
                let mut depth = 1usize;
                advance!(b[i]);
                advance!(b[i + 1]);
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == '/' && j + 1 < b.len() && b[j + 1] == '*' {
                        depth += 1;
                        advance!(b[j]);
                        advance!(b[j + 1]);
                        j += 2;
                    } else if b[j] == '*' && j + 1 < b.len() && b[j + 1] == '/' {
                        depth -= 1;
                        advance!(b[j]);
                        advance!(b[j + 1]);
                        j += 2;
                    } else {
                        advance!(b[j]);
                        j += 1;
                    }
                }
                i = j;
                continue;
            }
        }

        // Raw strings: r"…", r#"…"#, and byte variants br#"…"#.
        if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
            let mut j = i;
            if b[j] == 'b' {
                j += 1;
            }
            j += 1; // past 'r'
            let mut hashes = 0usize;
            while j < b.len() && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            j += 1; // past opening quote
            let text_start = j;
            let mut text_end = b.len();
            while j < b.len() {
                if b[j] == '"' {
                    let mut k = 0usize;
                    while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        text_end = j;
                        j += 1 + hashes;
                        break;
                    }
                }
                j += 1;
            }
            for &ch in &b[i..j.min(b.len())] {
                advance!(ch);
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: b[text_start..text_end].iter().collect(),
                line: tline,
                col: tcol,
            });
            last_tok_line = tline;
            i = j;
            continue;
        }

        // Plain (and byte) strings.
        if c == '"' || (c == 'b' && i + 1 < b.len() && b[i + 1] == '"') {
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            let text_start = j;
            while j < b.len() {
                if b[j] == '\\' {
                    j += 2;
                    continue;
                }
                if b[j] == '"' {
                    break;
                }
                j += 1;
            }
            let text_end = j.min(b.len());
            let j = (j + 1).min(b.len());
            for &ch in &b[i..j] {
                advance!(ch);
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: b[text_start..text_end].iter().collect(),
                line: tline,
                col: tcol,
            });
            last_tok_line = tline;
            i = j;
            continue;
        }

        // Lifetimes vs char literals.
        if c == '\'' {
            let is_lifetime = i + 1 < b.len()
                && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                && !(i + 2 < b.len() && b[i + 2] == '\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                for &ch in &b[i..j] {
                    advance!(ch);
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[i..j].iter().collect(),
                    line: tline,
                    col: tcol,
                });
                last_tok_line = tline;
                i = j;
                continue;
            }
            // Char literal: 'x', '\n', '\x41', '\u{1F600}'. Multi-char
            // escapes must be consumed fully — stopping after `\x`
            // would leave `41'` behind and desync every token after
            // it, silently blinding the rules downstream.
            let mut j = i + 1;
            if j < b.len() && b[j] == '\\' {
                j += 1;
                if j < b.len() {
                    match b[j] {
                        'x' => j += 3, // \xNN
                        'u' => {
                            // \u{…}
                            j += 1;
                            if j < b.len() && b[j] == '{' {
                                while j < b.len() && b[j] != '}' {
                                    j += 1;
                                }
                                j += 1; // past '}'
                            }
                        }
                        _ => j += 1, // single-char escape: \n, \', \\, …
                    }
                }
            } else if j < b.len() {
                j += 1;
            }
            let j = if j < b.len() && b[j] == '\'' { j + 1 } else { j };
            for &ch in &b[i..j.min(b.len())] {
                advance!(ch);
            }
            out.toks.push(Tok {
                kind: TokKind::Char,
                text: b[i..j.min(b.len())].iter().collect(),
                line: tline,
                col: tcol,
            });
            last_tok_line = tline;
            i = j;
            continue;
        }

        // Identifiers (including raw identifiers r#foo — the raw-string
        // branch above already claimed r" / r#").
        if c.is_alphabetic() || c == '_' {
            let mut j = i;
            if c == 'r' && i + 1 < b.len() && b[i + 1] == '#' {
                j += 2;
            }
            while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            for &ch in &b[i..j] {
                advance!(ch);
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[i..j].iter().collect(),
                line: tline,
                col: tcol,
            });
            last_tok_line = tline;
            i = j;
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let mut j = i;
            let mut is_float = false;
            let hex = c == '0' && i + 1 < b.len() && (b[i + 1] == 'x' || b[i + 1] == 'b' || b[i + 1] == 'o');
            if hex {
                j += 2;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
            } else {
                while j < b.len() && (b[j].is_ascii_digit() || b[j] == '_') {
                    j += 1;
                }
                // Fractional part: a dot followed by a digit (so `1..n`
                // ranges and `1.max(2)` method calls stay separate).
                if j + 1 < b.len() && b[j] == '.' && b[j + 1].is_ascii_digit() {
                    is_float = true;
                    j += 1;
                    while j < b.len() && (b[j].is_ascii_digit() || b[j] == '_') {
                        j += 1;
                    }
                } else if j < b.len() && b[j] == '.' && !(j + 1 < b.len() && (b[j + 1] == '.' || b[j + 1].is_alphabetic() || b[j + 1] == '_')) {
                    // Trailing-dot float `1.`.
                    is_float = true;
                    j += 1;
                }
                // Exponent.
                if j < b.len() && (b[j] == 'e' || b[j] == 'E') {
                    let mut k = j + 1;
                    if k < b.len() && (b[k] == '+' || b[k] == '-') {
                        k += 1;
                    }
                    if k < b.len() && b[k].is_ascii_digit() {
                        is_float = true;
                        j = k;
                        while j < b.len() && (b[j].is_ascii_digit() || b[j] == '_') {
                            j += 1;
                        }
                    }
                }
                // Type suffix.
                if src_slice_starts(&b, j, "f32") || src_slice_starts(&b, j, "f64") {
                    is_float = true;
                    j += 3;
                } else {
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                }
            }
            for &ch in &b[i..j] {
                advance!(ch);
            }
            out.toks.push(Tok {
                kind: if is_float { TokKind::Float } else { TokKind::Int },
                text: b[i..j].iter().collect(),
                line: tline,
                col: tcol,
            });
            last_tok_line = tline;
            i = j;
            continue;
        }

        // Punctuation, merging known multi-char operators.
        let mut matched = 1usize;
        for op in OPERATORS {
            let oc: Vec<char> = op.chars().collect();
            if i + oc.len() <= b.len() && b[i..i + oc.len()] == oc[..] {
                matched = oc.len();
                break;
            }
        }
        for &ch in &b[i..i + matched] {
            advance!(ch);
        }
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: b[i..i + matched].iter().collect(),
            line: tline,
            col: tcol,
        });
        last_tok_line = tline;
        i += matched;
    }

    out
}

fn is_raw_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j >= b.len() || b[j] != 'r' {
            return false;
        }
    }
    j += 1; // past 'r'
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    // `r#ident` is a raw identifier, not a raw string: after the hash
    // run the very next char must be the opening quote.
    j < b.len() && b[j] == '"'
}

fn src_slice_starts(b: &[char], at: usize, pat: &str) -> bool {
    let pc: Vec<char> = pat.chars().collect();
    at + pc.len() <= b.len() && b[at..at + pc.len()] == pc[..]
}

/// Marks which tokens sit inside test-only code: an item annotated
/// `#[test]` / `#[cfg(test)]` (including `cfg(all(test, …))`), up to
/// the end of that item (matching closing brace, or `;` for brace-less
/// items). `#[cfg(not(test))]` and `#[cfg_attr(…)]` do **not** count.
/// Returns one flag per token.
pub fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct && toks[i].text == "#" {
            // Parse the attribute bracket [ … ].
            let mut j = i + 1;
            if j < toks.len() && toks[j].kind == TokKind::Punct && toks[j].text == "!" {
                // Inner attribute `#![…]` — applies to the whole file;
                // the per-file context already handles that, skip.
                i += 1;
                continue;
            }
            if j >= toks.len() || toks[j].text != "[" {
                i += 1;
                continue;
            }
            let attr_start = i;
            let mut depth = 0usize;
            let mut attr_text = String::new();
            while j < toks.len() {
                let t = &toks[j];
                if t.kind == TokKind::Punct && t.text == "[" {
                    depth += 1;
                } else if t.kind == TokKind::Punct && t.text == "]" {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if depth >= 1 && !(t.text == "[" && depth == 1) {
                    attr_text.push_str(&t.text);
                }
                j += 1;
            }
            let attr_end = j; // index of the closing ']'
            if attr_end >= toks.len() {
                break;
            }
            if is_test_attr(&attr_text) {
                // Mark everything from the attribute through the end of
                // the annotated item.
                let mut k = attr_end + 1;
                let mut brace_depth = 0usize;
                let mut entered = false;
                while k < toks.len() {
                    let t = &toks[k];
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "{" => {
                                brace_depth += 1;
                                entered = true;
                            }
                            "}" => {
                                brace_depth = brace_depth.saturating_sub(1);
                                if entered && brace_depth == 0 {
                                    break;
                                }
                            }
                            ";" if !entered => break,
                            _ => {}
                        }
                    }
                    k += 1;
                }
                let item_end = k.min(toks.len() - 1);
                for flag in &mut mask[attr_start..=item_end] {
                    *flag = true;
                }
                i = item_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Whether a (whitespace-free) attribute body marks test-only code:
/// `test` itself, or a `cfg(…)` whose predicate mentions `test` as a
/// standalone term outside `not(…)` — so `cfg(test)` and
/// `cfg(all(test, unix))` qualify, while `cfg(not(test))`,
/// `cfg_attr(not(test), …)` and `cfg(feature = "testdata")` do not.
fn is_test_attr(attr: &str) -> bool {
    if attr == "test" {
        return true;
    }
    if !attr.starts_with("cfg(") {
        return false;
    }
    let mut from = 0usize;
    while let Some(p) = attr[from..].find("test") {
        let s = from + p;
        let e = s + "test".len();
        let pre = attr[..s].chars().next_back().unwrap_or(' ');
        let post = attr[e..].chars().next().unwrap_or(' ');
        if (pre == '(' || pre == ',') && (post == ')' || post == ',') && !attr[..s].ends_with("not(")
        {
            return true;
        }
        from = e;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let ts = tokenize("let a = \"HashMap // not a comment\"; // trailing HashMap\n/* block\nHashMap */ b");
        let idents: Vec<&str> = ts
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "a", "b"]);
        assert_eq!(ts.comments.len(), 1);
        assert!(ts.comments[0].trailing);
        assert!(ts.comments[0].text.contains("trailing HashMap"));
    }

    #[test]
    fn operators_merge() {
        assert!(texts("a == b != c :: d").contains(&"==".to_string()));
        assert!(texts("a::b").contains(&"::".to_string()));
        let ts = texts("a <= 0.5");
        assert!(ts.contains(&"<=".to_string()));
        assert!(!ts.contains(&"==".to_string()));
    }

    #[test]
    fn float_vs_int_vs_range() {
        let ts = tokenize("0.5 1e-9 2f64 42 0..n 1.max(2)");
        let kinds: Vec<(TokKind, &str)> =
            ts.toks.iter().map(|t| (t.kind, t.text.as_str())).collect();
        assert_eq!(kinds[0], (TokKind::Float, "0.5"));
        assert_eq!(kinds[1], (TokKind::Float, "1e-9"));
        assert_eq!(kinds[2], (TokKind::Float, "2f64"));
        assert_eq!(kinds[3], (TokKind::Int, "42"));
        assert_eq!(kinds[4], (TokKind::Int, "0"));
        assert_eq!(kinds[5].1, "..");
        assert!(kinds.iter().any(|&(k, t)| k == TokKind::Int && t == "1"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ts = tokenize("<'a> 'x' '\\n' &'static str");
        let kinds: Vec<(TokKind, &str)> = ts
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Lifetime | TokKind::Char))
            .map(|t| (t.kind, t.text.as_str()))
            .collect();
        assert_eq!(kinds[0], (TokKind::Lifetime, "'a"));
        assert_eq!(kinds[1].0, TokKind::Char);
        assert_eq!(kinds[2].0, TokKind::Char);
        assert_eq!(kinds[3], (TokKind::Lifetime, "'static"));
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let ts = tokenize("r#\"a \"quoted\" HashMap\"# x");
        assert_eq!(ts.toks[0].kind, TokKind::Str);
        assert_eq!(ts.toks[1].text, "x");
    }

    #[test]
    fn char_escapes_do_not_desync_the_stream() {
        // `'\x41'` and `'\u{1F600}'` must each be one Char token; the
        // regression mode was `41'` surviving as code and the dangling
        // quote swallowing the next real token.
        let ts = tokenize("let a = '\\x41'; let b = '\\u{1F600}'; HashMap");
        let chars = ts.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 2, "{:?}", ts.toks);
        assert!(ts.toks.iter().all(|t| t.kind != TokKind::Int), "{:?}", ts.toks);
        assert_eq!(ts.toks.last().map(|t| t.text.as_str()), Some("HashMap"));
        assert_eq!(ts.toks.last().map(|t| t.kind), Some(TokKind::Ident));
    }

    #[test]
    fn raw_strings_multi_hash_and_multiline() {
        // A `r##"…"##` literal containing a `"#` must not close early,
        // and its newlines must advance the line counter.
        let ts = tokenize("r##\"has \"# inside\nand newline\"## after");
        assert_eq!(ts.toks[0].kind, TokKind::Str);
        assert!(ts.toks[0].text.contains("\"#"));
        assert_eq!(ts.toks[1].text, "after");
        assert_eq!(ts.toks[1].line, 2);
        // Byte-raw and empty raw strings.
        let ts = tokenize("br#\"bytes\"# r#\"\"# x");
        assert_eq!(ts.toks[0].kind, TokKind::Str);
        assert_eq!(ts.toks[1].kind, TokKind::Str);
        assert_eq!(ts.toks[1].text, "");
        assert_eq!(ts.toks[2].text, "x");
    }

    #[test]
    fn nested_block_comments_track_depth() {
        let ts = tokenize("a /* one /* two /* three */ */ still comment */ b");
        let idents: Vec<&str> = ts.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, vec!["a", "b"]);
        // Unterminated nesting swallows to EOF, like rustc would
        // reject it — nothing after leaks back in as code.
        let ts = tokenize("a /* open /* deeper */ never closed");
        let idents: Vec<&str> = ts.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, vec!["a"]);
    }

    #[test]
    fn labels_and_anonymous_lifetimes_are_not_chars() {
        let ts = tokenize("'outer: loop { break 'outer; } &'_ str '_'");
        let lifetimes: Vec<&str> = ts
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'outer", "'outer", "'_"]);
        // The trailing `'_'` is a char literal, not a lifetime.
        assert_eq!(ts.toks.last().map(|t| t.kind), Some(TokKind::Char));
    }

    #[test]
    fn line_numbers_are_one_based() {
        let ts = tokenize("a\nb\n  c");
        assert_eq!(ts.toks[0].line, 1);
        assert_eq!(ts.toks[1].line, 2);
        assert_eq!(ts.toks[2].line, 3);
        assert_eq!(ts.toks[2].col, 3);
    }

    #[test]
    fn test_regions_cover_annotated_items() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let ts = tokenize(src);
        let mask = test_region_mask(&ts.toks);
        let live_unwraps: Vec<u32> = ts
            .toks
            .iter()
            .zip(&mask)
            .filter(|(t, &m)| t.text == "unwrap" && !m)
            .map(|(t, _)| t.line)
            .collect();
        assert_eq!(live_unwraps, vec![1]);
        // live2 after the test module is live again.
        let live2 = ts.toks.iter().zip(&mask).find(|(t, _)| t.text == "live2");
        assert!(!*live2.expect("token").1);
    }

    #[test]
    fn cfg_not_test_and_cfg_attr_are_live() {
        let src = "#[cfg(not(test))]\nfn a() { x.unwrap(); }\n#[cfg_attr(not(test), deny(bad))]\nfn b() { y.unwrap(); }\n#[test]\nfn c() { z.unwrap(); }\n";
        let ts = tokenize(src);
        let mask = test_region_mask(&ts.toks);
        let live: Vec<u32> = ts
            .toks
            .iter()
            .zip(&mask)
            .filter(|(t, &m)| t.text == "unwrap" && !m)
            .map(|(t, _)| t.line)
            .collect();
        assert_eq!(live, vec![2, 4]);
    }
}
