//! The workspace symbol table: every file tokenized and parsed once,
//! plus cross-file indices over functions and string constants. This
//! is the substrate the semantic rules and the call graph share.

use crate::parse::{self, BindKind, FnItem, ParsedFile};
use crate::rules::FileContext;
use crate::tokens::{self, TokenStream};
use std::collections::BTreeMap;

/// One file of the workspace, fully analyzed.
#[derive(Debug)]
pub struct WsFile {
    /// Path-derived rule context.
    pub ctx: FileContext,
    /// The token stream.
    pub ts: TokenStream,
    /// Per-token test-region flags.
    pub test_mask: Vec<bool>,
    /// Parsed items.
    pub parsed: ParsedFile,
}

/// The whole workspace: files plus symbol indices. All maps are
/// `BTreeMap`s so iteration — and with it every diagnostic order — is
/// deterministic.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Analyzed files, in input order.
    pub files: Vec<WsFile>,
    /// Global function ids: `fns[gid] = (file index, fn index)`.
    pub fns: Vec<(usize, usize)>,
    /// Function gids by bare name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Function gids by `(impl type, name)`.
    pub by_ty_method: BTreeMap<(String, String), Vec<usize>>,
    /// Workspace-global `const`/`static` string values by name. A name
    /// can map to several values when files shadow each other — the
    /// rules check every candidate.
    pub consts: BTreeMap<String, Vec<String>>,
}

impl Workspace {
    /// Tokenizes, parses and indexes `(workspace-relative path, source)`
    /// pairs.
    pub fn build(sources: &[(String, String)]) -> Workspace {
        let mut ws = Workspace::default();
        for (path, src) in sources {
            let ts = tokens::tokenize(src);
            let test_mask = tokens::test_region_mask(&ts.toks);
            let parsed = parse::parse(&ts.toks, &test_mask);
            ws.files.push(WsFile {
                ctx: FileContext::from_path(path),
                ts,
                test_mask,
                parsed,
            });
        }
        for (fi, file) in ws.files.iter().enumerate() {
            for (ii, f) in file.parsed.fns.iter().enumerate() {
                let gid = ws.fns.len();
                ws.fns.push((fi, ii));
                ws.by_name.entry(f.name.clone()).or_default().push(gid);
                if let Some(ty) = &f.self_ty {
                    ws.by_ty_method
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(gid);
                }
            }
            for s in &file.parsed.strs {
                if s.kind != BindKind::Let {
                    let vals = ws.consts.entry(s.name.clone()).or_default();
                    if !vals.contains(&s.value) {
                        vals.push(s.value.clone());
                    }
                }
            }
        }
        ws
    }

    /// The file and item behind a function gid.
    pub fn fn_item(&self, gid: usize) -> (&WsFile, &FnItem) {
        let (fi, ii) = self.fns[gid];
        (&self.files[fi], &self.files[fi].parsed.fns[ii])
    }

    /// File index of a function gid.
    pub fn fn_file(&self, gid: usize) -> usize {
        self.fns[gid].0
    }

    /// Resolves a string-valued identifier as seen from `file_idx`:
    /// bindings in the same file first (all kinds, `let` included),
    /// then workspace-global consts/statics. Empty when nothing is
    /// known — the caller treats that as "unresolvable, stay silent".
    pub fn resolve_str(&self, file_idx: usize, name: &str) -> Vec<&str> {
        let local: Vec<&str> = self.files[file_idx]
            .parsed
            .strs
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value.as_str())
            .collect();
        if !local.is_empty() {
            return local;
        }
        self.consts
            .get(name)
            .map(|vs| vs.iter().map(|v| v.as_str()).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::build(&sources)
    }

    #[test]
    fn indices_cover_methods_and_free_fns() {
        let w = ws(&[
            (
                "crates/core/src/a.rs",
                "impl Instance { fn set_budget(&mut self) {} }\nfn helper() {}",
            ),
            ("crates/core/src/b.rs", "fn helper() {}"),
        ]);
        assert_eq!(w.fns.len(), 3);
        assert_eq!(w.by_name.get("helper").map(Vec::len), Some(2));
        assert_eq!(
            w.by_ty_method
                .get(&("Instance".into(), "set_budget".into()))
                .map(Vec::len),
            Some(1)
        );
    }

    #[test]
    fn str_resolution_prefers_local_bindings() {
        let w = ws(&[
            (
                "crates/gap/src/a.rs",
                "const NAME: &str = \"gap.packing\";\nfn f() { let NAME = \"local.shadow\"; }",
            ),
            ("crates/gap/src/b.rs", "fn g() {}"),
        ]);
        // File 0 sees both its bindings (const + let).
        let vals = w.resolve_str(0, "NAME");
        assert_eq!(vals, vec!["gap.packing", "local.shadow"]);
        // File 1 falls back to the global const.
        assert_eq!(w.resolve_str(1, "NAME"), vec!["gap.packing"]);
        assert!(w.resolve_str(1, "MISSING").is_empty());
    }
}
