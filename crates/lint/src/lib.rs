//! `epplan-lint` — a first-party, zero-dependency static-analysis
//! pass enforcing the repo-wide contracts that `cargo test` can only
//! spot-check:
//!
//! * **typed fallibility** — no panicking solver paths
//!   (`robustness/unwrap`),
//! * **stable observability names** — span/metric literals match the
//!   documented registry (`obs/stable-names`),
//! * **bit-identical determinism** — no hash-order iteration, wall
//!   clocks or raw threads outside their single owners
//!   (`determinism/hash-iter`, `determinism/wall-clock`,
//!   `par/raw-threads`), and no exact float equality
//!   (`float/exact-eq`).
//!
//! The pass is a lightweight tokenizer (see [`tokens`]) — enough to
//! tell code from strings/comments and to skip `#[cfg(test)]` /
//! `#[test]` regions where a rule's scope says so — plus a rule
//! catalogue ([`rules`]) keyed off workspace-relative paths. On top of
//! the token layer sits a semantic layer: an item parser ([`parse`]),
//! a workspace symbol table ([`symbols`]) and a call graph
//! ([`callgraph`]) powering the dataflow-lite rules in [`semantic`] —
//! candidate-cache invalidation, dense-scan and deadline-poll
//! coverage, unordered parallel reductions, and symbol-resolved
//! observability/fault name checks. No `syn`, no rustc internals: the
//! linter builds and runs in the same fully offline environment as the
//! rest of the workspace.
//!
//! **Suppressions are explicit and auditable.** A violation is
//! silenced only by a same-line or preceding-line comment
//!
//! ```text
//! // epplan-lint: allow(determinism/wall-clock) — report-only timing, never steers the solver
//! ```
//!
//! and the reason after the dash is *required*: an allow without one
//! is itself a diagnostic (`lint/allow-needs-reason`), as is an allow
//! naming an unknown rule (`lint/unknown-rule`). `--list-allows`
//! prints every suppression in the tree for review.

// Solver-adjacent code must not panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod parse;
pub mod rules;
pub mod semantic;
pub mod symbols;
pub mod tokens;

use std::fmt;
use std::path::{Path, PathBuf};

/// One finding: `path:line:col rule message`, with the end of the
/// offending token's span for editor integrations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// 1-based line the span ends on (inclusive of the last char's line).
    pub end_line: u32,
    /// 1-based column one past the span's last character.
    pub end_col: u32,
    /// Rule machine name, e.g. `determinism/hash-iter`.
    pub rule: String,
    /// Human explanation.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic anchored on one token, spanning exactly it.
    pub fn at_tok(path: &str, t: &tokens::Tok, rule: &str, message: String) -> Diagnostic {
        let (end_line, end_col) = t.span_end();
        Diagnostic {
            path: path.to_string(),
            line: t.line,
            col: t.col,
            end_line,
            end_col,
            rule: rule.to_string(),
            message,
        }
    }

    /// A zero-width diagnostic at a point (used by the suppression
    /// meta-rules, which anchor on comments rather than tokens).
    pub fn at_point(path: &str, line: u32, col: u32, rule: &str, message: String) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line,
            col,
            end_line: line,
            end_col: col,
            rule: rule.to_string(),
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// One parsed `epplan-lint: allow(rule) — reason` suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Workspace-relative path of the file carrying the comment.
    pub path: String,
    /// Line of the comment itself.
    pub line: u32,
    /// The code line the suppression applies to.
    pub target_line: u32,
    /// Suppressed rule.
    pub rule: String,
    /// Mandatory justification.
    pub reason: String,
}

/// Result of linting a tree: surviving diagnostics plus the audit
/// trail of every suppression that matched the grammar.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Diagnostics that survived suppression filtering, in path/line
    /// order.
    pub diagnostics: Vec<Diagnostic>,
    /// Every well-formed suppression in the tree (valid rule + reason).
    pub allows: Vec<Allow>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// `true` when the tree is contract-clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the machine-readable JSON object (`--json`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"version\":1,\"files_scanned\":");
        s.push_str(&self.files_scanned.to_string());
        s.push_str(",\"clean\":");
        s.push_str(if self.is_clean() { "true" } else { "false" });
        s.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"path\":\"{}\",\"line\":{},\"col\":{},\"end_line\":{},\"end_col\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&d.path),
                d.line,
                d.col,
                d.end_line,
                d.end_col,
                json_escape(&d.rule),
                json_escape(&d.message)
            ));
        }
        s.push_str("],\"allows\":[");
        for (i, a) in self.allows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"path\":\"{}\",\"line\":{},\"target_line\":{},\"rule\":\"{}\",\"reason\":\"{}\"}}",
                json_escape(&a.path),
                a.line,
                a.target_line,
                json_escape(&a.rule),
                json_escape(&a.reason)
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lints a set of in-memory sources as one workspace: per-file token
/// rules, then the symbol-table / call-graph rules in [`semantic`]
/// (which see every file at once), then suppression filtering. This is
/// the core entry point everything else funnels into — keeping the
/// whole set together is what lets `sparse/cache-invalidate` follow a
/// call chain across files.
pub fn lint_sources(sources: &[(String, String)]) -> LintReport {
    let ws = symbols::Workspace::build(sources);
    let cg = callgraph::CallGraph::build(&ws);
    let mut per_file: Vec<Vec<Diagnostic>> = ws
        .files
        .iter()
        .map(|f| rules::run_rules(&f.ctx, &f.ts))
        .collect();
    semantic::run(&ws, &cg, &mut per_file);

    let mut report = LintReport {
        files_scanned: ws.files.len(),
        ..LintReport::default()
    };
    for (fi, file) in ws.files.iter().enumerate() {
        let (allows, mut meta) = parse_allows(&file.ctx.path, &file.ts);
        let mut diags = std::mem::take(&mut per_file[fi]);
        // A diagnostic is suppressed by a matching-rule allow
        // targeting its line.
        diags.retain(|d| {
            !allows
                .iter()
                .any(|a| a.rule == d.rule && a.target_line == d.line)
        });
        diags.append(&mut meta);
        diags.sort_by(|a, b| {
            (a.line, a.col, a.rule.as_str()).cmp(&(b.line, b.col, b.rule.as_str()))
        });
        report.diagnostics.extend(diags);
        report.allows.extend(allows);
    }
    report
}

/// Lints one file's source text under the rule scopes derived from
/// `rel_path` (workspace-relative, `/`-separated). Returns surviving
/// diagnostics and the parsed suppressions. A one-file workspace: the
/// semantic rules run too, over just this file's symbols.
pub fn lint_source(rel_path: &str, src: &str) -> (Vec<Diagnostic>, Vec<Allow>) {
    let report = lint_sources(&[(rel_path.to_string(), src.to_string())]);
    (report.diagnostics, report.allows)
}

/// Parses every `epplan-lint:` marker in the comment stream. Returns
/// the well-formed allows plus the meta-diagnostics for malformed ones
/// (missing reason, unknown rule) — which are deliberately not
/// suppressible.
fn parse_allows(rel_path: &str, ts: &tokens::TokenStream) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut meta = Vec::new();
    // Sorted token lines, to resolve "next code line" targets.
    let tok_lines: Vec<u32> = ts.toks.iter().map(|t| t.line).collect();
    for c in &ts.comments {
        // The marker must open the comment (modulo whitespace):
        // prose *mentioning* `epplan-lint:` — docs, this very file —
        // is not a suppression.
        let Some(rest) = c.text.trim_start().strip_prefix("epplan-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            meta.push(Diagnostic::at_point(
                rel_path,
                c.line,
                1,
                "lint/unknown-rule",
                "malformed epplan-lint marker: expected `allow(<rule>)`".to_string(),
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            meta.push(Diagnostic::at_point(
                rel_path,
                c.line,
                1,
                "lint/unknown-rule",
                "malformed epplan-lint marker: unclosed `allow(`".to_string(),
            ));
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !rules::RULES.contains(&rule.as_str()) {
            meta.push(Diagnostic::at_point(
                rel_path,
                c.line,
                1,
                "lint/unknown-rule",
                format!("allow names unknown rule `{rule}`"),
            ));
            continue;
        }
        // Reason: everything after the closing paren, stripped of
        // separator punctuation. Required.
        let reason = rest[close + 1..]
            .trim_start_matches(|ch: char| {
                ch.is_whitespace() || ch == '—' || ch == '–' || ch == '-' || ch == ':'
            })
            .trim()
            .to_string();
        if reason.is_empty() {
            meta.push(Diagnostic::at_point(
                rel_path,
                c.line,
                1,
                "lint/allow-needs-reason",
                format!(
                    "allow({rule}) without a reason: write \
                     `// epplan-lint: allow({rule}) — <why this site is exempt>`"
                ),
            ));
            continue;
        }
        // A trailing comment suppresses its own line; a standalone
        // comment suppresses the next line carrying code.
        let target_line = if c.trailing {
            c.line
        } else {
            tok_lines
                .iter()
                .copied()
                .filter(|&l| l > c.line)
                .min()
                .unwrap_or(c.line)
        };
        allows.push(Allow {
            path: rel_path.to_string(),
            line: c.line,
            target_line,
            rule,
            reason,
        });
    }
    (allows, meta)
}

/// Errors from the filesystem-facing entry points.
#[derive(Debug)]
pub enum LintError {
    /// A path could not be read.
    Io(PathBuf, std::io::Error),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(p, e) => write!(f, "cannot read {}: {e}", p.display()),
        }
    }
}

impl std::error::Error for LintError {}

/// Directories scanned by `--workspace`, relative to the root.
const WORKSPACE_DIRS: &[&str] = &["src", "crates", "tests", "examples"];

/// Directory names never descended into: build output, the
/// deliberately-violating lint fixtures, and the offline dependency
/// shims (third-party API surface, not governed by our contracts).
const SKIP_DIRS: &[&str] = &["target", "lint_fixtures", "compat"];

/// Collects every `.rs` file under the workspace roots, sorted by
/// path so runs are deterministic.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut files = Vec::new();
    for dir in WORKSPACE_DIRS {
        let p = root.join(dir);
        if p.is_dir() {
            collect_rs(&p, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut entries: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints a set of files as one workspace (cross-file call graph
/// included), reporting paths relative to `root`.
pub fn lint_files(root: &Path, files: &[PathBuf]) -> Result<LintReport, LintError> {
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let src =
            std::fs::read_to_string(path).map_err(|e| LintError::Io(path.clone(), e))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, src));
    }
    Ok(lint_sources(&sources))
}

/// Lints the whole workspace rooted at `root` (the `--workspace`
/// entry point).
pub fn run_workspace(root: &Path) -> Result<LintReport, LintError> {
    let files = workspace_files(root)?;
    lint_files(root, &files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "use std::collections::HashMap; // epplan-lint: allow(determinism/hash-iter) — keyed lookup only, never iterated\n";
        let (diags, allows) = lint_source("crates/gap/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "determinism/hash-iter");
        assert!(allows[0].reason.contains("keyed lookup"));
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let src = "// epplan-lint: allow(determinism/hash-iter) — fixture\nuse std::collections::HashMap;\n";
        let (diags, allows) = lint_source("crates/gap/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(allows[0].target_line, 2);
    }

    #[test]
    fn allow_without_reason_rejected() {
        let src = "use std::collections::HashMap; // epplan-lint: allow(determinism/hash-iter)\n";
        let (diags, _) = lint_source("crates/gap/src/x.rs", src);
        let rules: Vec<&str> = diags.iter().map(|d| d.rule.as_str()).collect();
        assert!(rules.contains(&"determinism/hash-iter"), "{diags:?}");
        assert!(rules.contains(&"lint/allow-needs-reason"), "{diags:?}");
    }

    #[test]
    fn unknown_rule_rejected() {
        let src = "fn main() {} // epplan-lint: allow(no/such-rule) — whatever\n";
        let (diags, allows) = lint_source("crates/gap/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "lint/unknown-rule");
        assert!(allows.is_empty());
    }

    #[test]
    fn json_escapes_quotes() {
        let report = LintReport {
            diagnostics: vec![Diagnostic {
                path: "a.rs".into(),
                line: 1,
                col: 2,
                end_line: 1,
                end_col: 4,
                rule: "float/exact-eq".into(),
                message: "a \"quoted\" msg".into(),
            }],
            allows: vec![],
            files_scanned: 1,
        };
        let j = report.to_json();
        assert!(j.contains("\\\"quoted\\\""), "{j}");
        assert!(j.contains("\"clean\":false"));
    }
}
