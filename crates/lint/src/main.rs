//! `epplan-lint` CLI.
//!
//! ```text
//! cargo run -p epplan-lint -- --workspace            # lint the whole tree
//! cargo run -p epplan-lint -- crates/gap/src/x.rs    # lint specific files
//! cargo run -p epplan-lint -- --workspace --json     # machine-readable output
//! cargo run -p epplan-lint -- --workspace --list-allows
//! cargo run -p epplan-lint -- --explain sparse/dense-scan
//! cargo run -p epplan-lint -- --list-rules
//! ```
//!
//! Exit codes follow the workspace CLI contract (see DESIGN.md):
//! 0 clean · 2 usage error · 3 io error · 5 contract violations found.

use epplan_lint::rules::{rule_doc, META_RULES, RULES};
use epplan_lint::{lint_files, run_workspace, LintError, LintReport};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const EXIT_USAGE: u8 = 2;
const EXIT_IO: u8 = 3;
const EXIT_VIOLATIONS: u8 = 5;

const USAGE: &str = "\
epplan-lint — first-party invariant linter for the epplan workspace

USAGE:
    epplan-lint [--root DIR] (--workspace | PATH...) [--json] [--list-allows]

OPTIONS:
    --workspace     lint src/, crates/, tests/ and examples/ under the root
    --root DIR      workspace root (default: current directory)
    --json          emit one machine-readable JSON object on stdout
    --list-allows   print every `epplan-lint: allow` suppression and exit
    --list-rules    print every registered rule name and exit
    --explain RULE  print a rule's documentation and exit
    --help          this text

EXIT CODES:
    0  clean    2  usage error    3  io error    5  violations found";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut json = false;
    let mut list_allows = false;
    let mut root = PathBuf::from(".");
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--list-allows" => list_allows = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--root" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    return usage_error("--root requires a directory argument");
                };
                root = PathBuf::from(dir);
            }
            "--list-rules" => {
                for r in RULES.iter().chain(META_RULES) {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                i += 1;
                let Some(rule) = args.get(i) else {
                    return usage_error("--explain requires a rule name argument");
                };
                return explain(rule);
            }
            flag if flag.starts_with('-') => {
                return usage_error(&format!("unknown flag {flag}"));
            }
            path => paths.push(PathBuf::from(path)),
        }
        i += 1;
    }

    if !workspace && paths.is_empty() {
        return usage_error("nothing to lint: pass --workspace or explicit paths");
    }
    if workspace && !paths.is_empty() {
        return usage_error("--workspace and explicit paths are mutually exclusive");
    }

    let result = if workspace {
        run_workspace(&root)
    } else {
        let files: Vec<PathBuf> = paths.iter().map(|p| root.join(p)).collect();
        lint_files(&root, &files)
    };

    let report = match result {
        Ok(r) => r,
        Err(e @ LintError::Io(..)) => {
            eprintln!("epplan-lint: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };

    if list_allows {
        print_allows(&report, &root);
        return ExitCode::SUCCESS;
    }

    if json {
        println!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        eprintln!(
            "epplan-lint: {} file(s) scanned, {} violation(s), {} suppression(s)",
            report.files_scanned,
            report.diagnostics.len(),
            report.allows.len()
        );
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_VIOLATIONS)
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("epplan-lint: {msg}\n\n{USAGE}");
    ExitCode::from(EXIT_USAGE)
}

fn explain(rule: &str) -> ExitCode {
    let Some(doc) = rule_doc(rule) else {
        eprintln!("epplan-lint: unknown rule `{rule}`; --list-rules prints the registry");
        return ExitCode::from(EXIT_USAGE);
    };
    println!("{} — {}\n", doc.name, doc.summary);
    println!("{}", doc.details);
    if !META_RULES.contains(&rule) {
        println!(
            "\nSuppress a vetted site with:\n    // epplan-lint: allow({rule}) — <reason>"
        );
    }
    ExitCode::SUCCESS
}

fn print_allows(report: &LintReport, root: &Path) {
    if report.allows.is_empty() {
        println!("no epplan-lint suppressions under {}", root.display());
        return;
    }
    for a in &report.allows {
        println!("{}:{} allow({}) — {}", a.path, a.target_line, a.rule, a.reason);
    }
    eprintln!("epplan-lint: {} suppression(s)", report.allows.len());
}
