//! Workspace-level semantic rules: the dataflow-lite checks that need
//! the symbol table ([`crate::symbols`]) and call graph
//! ([`crate::callgraph`]) rather than one file's token stream.
//!
//! Four contracts live here, plus the symbol-resolved upgrade of the
//! two name-registry rules:
//!
//! * `sparse/cache-invalidate` — every `&mut self` method on
//!   `Instance` that writes utility/budget/event state must reach
//!   `invalidate_candidates()` through the call graph, or the CSR
//!   candidate lists silently go stale.
//! * `sparse/dense-scan` — no event-dimension dense loops in solver
//!   hot code reachable from the batch entry points; hot paths iterate
//!   the candidate lists.
//! * `det/unordered-reduce` — closures handed to the `par_*` runtime
//!   must not assign into captured state; accumulation flows through
//!   per-chunk values the runtime merges in index order.
//! * `budget/poll-coverage` — size-bounded loops inside
//!   budget-governed functions must poll the deadline (directly or via
//!   a callee that does).
//! * `obs/stable-names` / `fault/unregistered-site` (upgraded) —
//!   name literals reaching `observe`/`fault::point` through consts,
//!   statics and `let` bindings are resolved and checked against the
//!   registries, not just direct string arguments.
//!
//! Every check fails open: an unresolvable symbol or a construct the
//! parser does not model produces silence, never a false diagnostic.
//! The fixtures in `tests/lint_rules.rs` prove each rule still fires
//! on the shapes it exists for.

use crate::callgraph::CallGraph;
use crate::parse::{match_delim, match_delim_back, Receiver};
use crate::rules::{
    COUNTER_NAMES, FAULT_SITES, FileContext, GAUGE_NAMES, HISTOGRAM_NAMES, SPAN_NAMES,
    WINDOW_NAMES,
};
use crate::symbols::Workspace;
use crate::tokens::{Tok, TokKind};
use crate::Diagnostic;
use std::collections::BTreeSet;

/// `Instance` fields whose mutation can change candidate membership.
const INSTANCE_STATE_FIELDS: &[&str] = &["users", "events", "utilities"];

/// Method names that mutate their receiver — the write half of the
/// place-expression scan in `sparse/cache-invalidate`.
const MUTATING_METHODS: &[&str] = &[
    "set",
    "push",
    "insert",
    "remove",
    "clear",
    "truncate",
    "extend",
    "resize",
    "swap",
    "sort",
    "sort_by",
    "sort_unstable",
    "retain",
    "drain",
    "fill",
    "take",
    "push_event_column",
];

/// Assignment operators (each a single merged token).
const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

/// Crates whose reachable-from-batch functions are "hot" for
/// `sparse/dense-scan`.
const HOT_CRATES: &[&str] = &["core", "gap", "solve", "lp", "flow"];

/// `(impl type, method)` pairs seeding batch reachability: the public
/// solve/apply surface of the solver stack.
const BATCH_ENTRY_POINTS: &[(&str, &str)] = &[
    ("GapBasedSolver", "solve"),
    ("GapBasedSolver", "try_solve"),
    ("GapBasedSolver", "solve_robust"),
    ("GreedySolver", "solve"),
    ("GreedySolver", "try_solve"),
    ("LnsSolver", "solve"),
    ("LnsSolver", "try_solve"),
    ("ExactSolver", "solve"),
    ("ExactSolver", "try_solve"),
    ("LocalSearch", "improve"),
    ("GapSolver", "solve"),
    ("IncrementalPlanner", "apply"),
    ("IncrementalPlanner", "try_apply"),
    ("IncrementalPlanner", "try_apply_budgeted"),
    ("IncrementalPlanner", "apply_batch"),
    ("IncrementalPlanner", "try_apply_batch"),
];

/// Identifiers that mark an event-dimension dense loop when they
/// appear in a `for` header (plus `events` followed by `(`).
const DENSE_MARKERS: &[&str] = &["event_ids", "n_events"];

/// Identifiers that mark a users/events/candidates-sized loop for
/// `budget/poll-coverage`.
const SIZE_MARKERS: &[&str] = &["n_users", "n_events", "n_jobs", "user_ids", "event_ids"];

/// Function names whose reach satisfies a deadline-poll obligation.
const POLL_NAMES: &[&str] = &["poll", "tick", "check_deadline"];

/// Parameter-type substrings marking a function as budget-governed.
const BUDGET_TYPES: &[&str] = &["SolveBudget", "BudgetGuard", "DeadlineFlag"];

/// Runs every workspace rule, pushing diagnostics into `out[file_idx]`.
pub fn run(ws: &Workspace, cg: &CallGraph, out: &mut [Vec<Diagnostic>]) {
    cache_invalidate(ws, cg, out);
    dense_scan(ws, cg, out);
    unordered_reduce(ws, out);
    poll_coverage(ws, cg, out);
    resolved_names(ws, out);
}

/// Shared scope gate: examples and the linter itself are exempt from
/// the semantic rules (the linter's rule tables are full of marker
/// identifiers).
fn semantic_scope(ctx: &FileContext) -> bool {
    !ctx.is_example && ctx.crate_name.as_deref() != Some("lint")
}

fn push(out: &mut [Vec<Diagnostic>], fi: usize, path: &str, t: &Tok, rule: &str, msg: String) {
    out[fi].push(Diagnostic::at_tok(path, t, rule, msg));
}

// ---------------------------------------------------------------------------
// sparse/cache-invalidate
// ---------------------------------------------------------------------------

fn cache_invalidate(ws: &Workspace, cg: &CallGraph, out: &mut [Vec<Diagnostic>]) {
    let targets = ws
        .by_name
        .get("invalidate_candidates")
        .cloned()
        .unwrap_or_default();
    let reaches = cg.reaches(targets);
    for gid in 0..ws.fns.len() {
        let (file, item) = ws.fn_item(gid);
        let ctx = &file.ctx;
        if !semantic_scope(ctx) || ctx.is_test_file || item.is_test {
            continue;
        }
        if item.self_ty.as_deref() != Some("Instance")
            || item.receiver != Receiver::Mut
            || item.name == "invalidate_candidates"
        {
            continue;
        }
        let Some((bs, be)) = item.body else { continue };
        let toks = &file.ts.toks;
        for k in bs..be.min(toks.len()) {
            if toks[k].text != "self"
                || toks.get(k + 1).is_none_or(|t| t.text != ".")
                || !toks.get(k + 2).is_some_and(|t| {
                    t.kind == TokKind::Ident && INSTANCE_STATE_FIELDS.contains(&t.text.as_str())
                })
            {
                continue;
            }
            let field = k + 2;
            if !is_state_write(toks, k, field) {
                continue;
            }
            if !reaches.get(gid).copied().unwrap_or(false) {
                let t = &toks[field];
                push(
                    out,
                    ws.fn_file(gid),
                    &ctx.path,
                    t,
                    "sparse/cache-invalidate",
                    format!(
                        "`{}` writes `self.{}` but never reaches `invalidate_candidates()`: \
                         the cached CSR candidate lists go stale after this mutation",
                        item.name, t.text
                    ),
                );
            }
            break; // one diagnostic per method is enough
        }
    }
}

/// Whether `self.<field>` at (`self_at`, `field_at`) is a write: an
/// assignment through the place expression, a mutating method call on
/// it, or a `&mut` borrow of it.
fn is_state_write(toks: &[Tok], self_at: usize, field_at: usize) -> bool {
    if self_at >= 2 && toks[self_at - 1].text == "mut" && toks[self_at - 2].text == "&" {
        return true;
    }
    let mut j = field_at + 1;
    loop {
        let Some(t) = toks.get(j) else { return false };
        if t.kind != TokKind::Punct {
            return false;
        }
        match t.text.as_str() {
            "[" => j = match_delim(toks, j) + 1,
            "." => {
                let Some(n) = toks.get(j + 1) else { return false };
                if n.kind != TokKind::Ident {
                    return false;
                }
                if toks.get(j + 2).is_some_and(|t| t.text == "(") {
                    return MUTATING_METHODS.contains(&n.text.as_str());
                }
                j += 2; // plain field projection, keep walking
            }
            op if ASSIGN_OPS.contains(&op) => return true,
            _ => return false,
        }
    }
}

// ---------------------------------------------------------------------------
// sparse/dense-scan
// ---------------------------------------------------------------------------

fn dense_scan(ws: &Workspace, cg: &CallGraph, out: &mut [Vec<Diagnostic>]) {
    let seeds: Vec<usize> = BATCH_ENTRY_POINTS
        .iter()
        .filter_map(|(ty, m)| ws.by_ty_method.get(&(ty.to_string(), m.to_string())))
        .flatten()
        .copied()
        .collect();
    let reach = cg.reachable_from(seeds);
    for gid in 0..ws.fns.len() {
        let (file, item) = ws.fn_item(gid);
        let ctx = &file.ctx;
        if !semantic_scope(ctx) || ctx.is_test_file || item.is_test {
            continue;
        }
        if !ctx
            .crate_name
            .as_deref()
            .is_some_and(|c| HOT_CRATES.contains(&c))
            || !reach.get(gid).copied().unwrap_or(false)
        {
            continue;
        }
        let Some((bs, be)) = item.body else { continue };
        let toks = &file.ts.toks;

        // Alias pass: `let n = …n_events()…;` makes `n` a dense marker
        // for the rest of this body.
        let mut markers: BTreeSet<&str> = DENSE_MARKERS.iter().copied().collect();
        let mut aliases: Vec<String> = Vec::new();
        let mut k = bs;
        while k < be.min(toks.len()) {
            if toks[k].kind == TokKind::Ident && toks[k].text == "let" {
                let mut j = k + 1;
                if toks.get(j).is_some_and(|t| t.text == "mut") {
                    j += 1;
                }
                if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                    let mut m = j + 1;
                    let mut found = false;
                    while m < be.min(toks.len()) && toks[m].text != ";" {
                        if is_dense_marker(toks, m, &markers) {
                            found = true;
                        }
                        m += 1;
                    }
                    if found {
                        aliases.push(name.text.clone());
                    }
                    k = m;
                    continue;
                }
            }
            k += 1;
        }
        for a in &aliases {
            markers.insert(a.as_str());
        }

        for (for_at, open, _close) in for_loops(toks, bs, be) {
            for h in for_at + 1..open {
                if is_dense_marker(toks, h, &markers) {
                    push(
                        out,
                        ws.fn_file(gid),
                        &ctx.path,
                        &toks[for_at],
                        "sparse/dense-scan",
                        format!(
                            "dense event-dimension loop (`{}` in the header) in `{}`, \
                             reachable from a batch entry point: iterate the CSR candidate \
                             lists, or allow with a reason if O(|E|) work is required here",
                            toks[h].text, item.name
                        ),
                    );
                    break;
                }
            }
        }
    }
}

/// A dense marker at token `k`: one of the marker identifiers, or the
/// identifier `events` used as a call.
fn is_dense_marker(toks: &[Tok], k: usize, markers: &BTreeSet<&str>) -> bool {
    let t = &toks[k];
    if t.kind != TokKind::Ident {
        return false;
    }
    if markers.contains(t.text.as_str()) {
        return true;
    }
    t.text == "events" && toks.get(k + 1).is_some_and(|n| n.text == "(")
}

/// `for` loops in `toks[lo..=hi]`: `(for-token, body-open, body-close)`
/// triples, nested loops included. Skips HRTB `for<…>`.
fn for_loops(toks: &[Tok], lo: usize, hi: usize) -> Vec<(usize, usize, usize)> {
    let mut outv = Vec::new();
    let mut k = lo;
    let hi = hi.min(toks.len().saturating_sub(1));
    while k <= hi {
        let t = &toks[k];
        if t.kind == TokKind::Ident
            && t.text == "for"
            && toks.get(k + 1).is_none_or(|n| n.text != "<")
        {
            let mut j = k + 1;
            let mut open = None;
            while j <= hi {
                let tj = &toks[j];
                if tj.kind == TokKind::Punct {
                    match tj.text.as_str() {
                        "(" | "[" => {
                            j = match_delim(toks, j);
                        }
                        "{" => {
                            open = Some(j);
                            break;
                        }
                        ";" => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            if let Some(o) = open {
                outv.push((k, o, match_delim(toks, o)));
            }
        }
        k += 1;
    }
    outv
}

// ---------------------------------------------------------------------------
// det/unordered-reduce
// ---------------------------------------------------------------------------

fn unordered_reduce(ws: &Workspace, out: &mut [Vec<Diagnostic>]) {
    for gid in 0..ws.fns.len() {
        let (file, item) = ws.fn_item(gid);
        let ctx = &file.ctx;
        if !semantic_scope(ctx)
            || ctx.is_test_file
            || item.is_test
            || ctx.crate_name.is_none()
            || ctx.crate_name.as_deref() == Some("par")
        {
            continue;
        }
        let Some((bs, be)) = item.body else { continue };
        let toks = &file.ts.toks;
        for k in bs..be.min(toks.len()) {
            let t = &toks[k];
            if t.kind != TokKind::Ident
                || !t.text.starts_with("par_")
                || toks.get(k + 1).is_none_or(|n| n.text != "(")
            {
                continue;
            }
            let lo = k + 2;
            let hi = match_delim(toks, k + 1);
            let locals = closure_locals(toks, lo, hi);
            for op in lo..hi {
                let ot = &toks[op];
                if ot.kind != TokKind::Punct || !ASSIGN_OPS.contains(&ot.text.as_str()) {
                    continue;
                }
                let Some(root) = lhs_root(toks, op, lo) else { continue };
                let name = toks[root].text.as_str();
                if locals.contains(name) {
                    continue;
                }
                push(
                    out,
                    ws.fn_file(gid),
                    &ctx.path,
                    ot,
                    "det/unordered-reduce",
                    format!(
                        "assignment to captured `{name}` inside a `{}` closure: return \
                         per-chunk values and let the runtime merge them in index order \
                         (completion order is nondeterministic)",
                        t.text
                    ),
                );
            }
        }
    }
}

/// Names bound inside a `par_*` call's argument range: closure
/// parameters and `let` bindings. Over-collection is deliberate —
/// extra names only make the rule quieter, never wrong.
fn closure_locals(toks: &[Tok], lo: usize, hi: usize) -> BTreeSet<String> {
    let mut locals = BTreeSet::new();
    let mut k = lo;
    while k < hi {
        let t = &toks[k];
        if t.kind == TokKind::Punct && t.text == "|" {
            let opens_closure = k == lo
                || matches!(toks[k - 1].text.as_str(), "(" | "," | "move" | "{" | ";");
            if opens_closure {
                let mut j = k + 1;
                while j < hi && toks[j].text != "|" {
                    if toks[j].kind == TokKind::Ident {
                        locals.insert(toks[j].text.clone());
                    }
                    j += 1;
                }
                k = j + 1;
                continue;
            }
        }
        // `let` bindings: collect every identifier up to the `=` —
        // plain names, tuple/struct destructurings, `if let Some(v)`.
        // Type-annotation idents come along too; over-collection only
        // quiets the rule, never mis-fires it.
        if t.kind == TokKind::Ident && t.text == "let" {
            let mut j = k + 1;
            while j < hi {
                let tj = &toks[j];
                if tj.kind == TokKind::Punct && matches!(tj.text.as_str(), "=" | ";") {
                    break;
                }
                if tj.kind == TokKind::Ident {
                    locals.insert(tj.text.clone());
                }
                j += 1;
            }
            k = j + 1;
            continue;
        }
        // `for` bindings: everything between `for` and `in` is a
        // loop-local pattern (`for (k, row) in chunk.iter_mut()` binds
        // k and row), so writes through it stay chunk-local.
        if t.kind == TokKind::Ident && t.text == "for" {
            let mut j = k + 1;
            while j < hi && !(toks[j].kind == TokKind::Ident && toks[j].text == "in") {
                if toks[j].kind == TokKind::Ident {
                    locals.insert(toks[j].text.clone());
                }
                j += 1;
            }
            k = j + 1;
            continue;
        }
        k += 1;
    }
    locals
}

/// Root identifier of the place expression left of an assignment
/// operator: walks back through `[…]` indexing, `.field` chains and
/// `*` derefs. `None` for shapes the walk does not model (those are
/// skipped, fail-open).
fn lhs_root(toks: &[Tok], op: usize, lo: usize) -> Option<usize> {
    let mut j = op.checked_sub(1)?;
    loop {
        if j < lo {
            return None;
        }
        let t = &toks[j];
        if t.kind == TokKind::Punct && t.text == "]" {
            j = match_delim_back(toks, j, lo).checked_sub(1)?;
            continue;
        }
        if t.kind == TokKind::Ident {
            if j > lo && toks[j - 1].text == "." {
                j = j.checked_sub(2)?;
                continue;
            }
            return Some(j);
        }
        if t.kind == TokKind::Punct && t.text == "*" {
            j = j.checked_sub(1)?;
            continue;
        }
        return None;
    }
}

// ---------------------------------------------------------------------------
// budget/poll-coverage
// ---------------------------------------------------------------------------

fn poll_coverage(ws: &Workspace, cg: &CallGraph, out: &mut [Vec<Diagnostic>]) {
    let poll_gids: Vec<usize> = POLL_NAMES
        .iter()
        .filter_map(|n| ws.by_name.get(*n))
        .flatten()
        .copied()
        .collect();
    let reach_poll = cg.reaches(poll_gids);
    for gid in 0..ws.fns.len() {
        let (file, item) = ws.fn_item(gid);
        let ctx = &file.ctx;
        if !semantic_scope(ctx) || ctx.is_test_file || item.is_test || ctx.crate_name.is_none() {
            continue;
        }
        let governed = item
            .params
            .iter()
            .any(|p| BUDGET_TYPES.iter().any(|t| p.contains(t)));
        if !governed {
            continue;
        }
        let Some((bs, be)) = item.body else { continue };
        let toks = &file.ts.toks;
        for (for_at, open, close) in for_loops(toks, bs, be) {
            let marker = (for_at + 1..open).find(|&h| {
                let t = &toks[h];
                t.kind == TokKind::Ident
                    && (SIZE_MARKERS.contains(&t.text.as_str())
                        || (t.text == "events" && toks.get(h + 1).is_some_and(|n| n.text == "(")))
            });
            let Some(m) = marker else { continue };
            if loop_polls(ws, toks, open, close, &reach_poll) {
                continue;
            }
            push(
                out,
                ws.fn_file(gid),
                &ctx.path,
                &toks[for_at],
                "budget/poll-coverage",
                format!(
                    "`{}`-bounded loop in budget-governed `{}` never polls the deadline: \
                     call `DeadlineFlag::poll` / `guard.tick()` in the body, or route \
                     through a helper that does",
                    toks[m].text, item.name
                ),
            );
        }
    }
}

/// Whether a loop body polls the deadline: a poll-family token
/// directly, or a call resolving to a function that reaches one.
fn loop_polls(ws: &Workspace, toks: &[Tok], open: usize, close: usize, reach_poll: &[bool]) -> bool {
    for k in open + 1..close.min(toks.len()) {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        if POLL_NAMES.contains(&t.text.as_str()) {
            return true;
        }
        if toks.get(k + 1).is_some_and(|n| n.text == "(") {
            if let Some(gids) = ws.by_name.get(t.text.as_str()) {
                if gids.iter().any(|&g| reach_poll.get(g).copied().unwrap_or(false)) {
                    return true;
                }
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// obs/stable-names + fault/unregistered-site, symbol-resolved
// ---------------------------------------------------------------------------

fn resolved_names(ws: &Workspace, out: &mut [Vec<Diagnostic>]) {
    for fi in 0..ws.files.len() {
        let file = &ws.files[fi];
        let ctx = &file.ctx;
        if ctx.is_example {
            continue;
        }
        let toks = &file.ts.toks;
        let obs_on = !matches!(ctx.crate_name.as_deref(), Some("obs") | Some("lint"))
            && !ctx.is_test_file;
        let fault_on = !matches!(ctx.crate_name.as_deref(), Some("fault") | Some("lint"));
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let in_test = ctx.is_test_file || file.test_mask.get(i).copied().unwrap_or(false);
            // Obs calls: `span(NAME)` etc. with a plain identifier
            // argument, resolved through consts/statics/lets.
            let registry: Option<&[&str]> = match t.text.as_str() {
                "span" => Some(SPAN_NAMES),
                "counter_add" => Some(COUNTER_NAMES),
                "gauge_set" => Some(GAUGE_NAMES),
                "observe" => Some(HISTOGRAM_NAMES),
                "window" => Some(WINDOW_NAMES),
                _ => None,
            };
            if let Some(reg) = registry {
                if obs_on && !in_test {
                    check_resolved_arg(ws, fi, toks, i, reg, "obs/stable-names", out, |call, name, val| {
                        format!(
                            "`{call}({name})` resolves to \"{val}\", which is not in the \
                             stable name registry; register it in DESIGN.md § Observability \
                             and crates/lint/src/rules.rs"
                        )
                    });
                }
                continue;
            }
            // Fault calls: qualified `fault::point(SITE)` family.
            if fault_on && matches!(t.text.as_str(), "point" | "single" | "single_at") {
                let qualified = i >= 2
                    && toks[i - 1].text == "::"
                    && matches!(
                        toks[i - 2].text.as_str(),
                        "epplan_fault" | "FaultPlan" | "fault"
                    );
                if qualified {
                    check_resolved_arg(
                        ws,
                        fi,
                        toks,
                        i,
                        FAULT_SITES,
                        "fault/unregistered-site",
                        out,
                        |call, name, val| {
                            format!(
                                "`{call}({name})` resolves to \"{val}\", a fault site missing \
                                 from the registry; register it in epplan_fault::SITES, \
                                 DESIGN.md § Fault model and crates/lint/src/rules.rs"
                            )
                        },
                    );
                }
            }
        }
    }
}

/// If the first argument of the call at `call_idx` is a bare
/// identifier resolving to string bindings, checks each resolved value
/// against `registry` and reports the off-registry ones.
#[allow(clippy::too_many_arguments)]
fn check_resolved_arg(
    ws: &Workspace,
    fi: usize,
    toks: &[Tok],
    call_idx: usize,
    registry: &[&str],
    rule: &str,
    out: &mut [Vec<Diagnostic>],
    msg: impl Fn(&str, &str, &str) -> String,
) {
    if toks.get(call_idx + 1).is_none_or(|t| t.text != "(") {
        return;
    }
    let Some(arg) = toks.get(call_idx + 2) else { return };
    if arg.kind != TokKind::Ident {
        return; // literals are the token rule's job; expressions fail open
    }
    // Only a *bare* name: `f(NAME)` / `f(NAME,…)`. A path or method
    // receiver is out of scope.
    if !toks
        .get(call_idx + 3)
        .is_some_and(|t| t.text == ")" || t.text == ",")
    {
        return;
    }
    let path = ws.files[fi].ctx.path.clone();
    for val in ws.resolve_str(fi, &arg.text) {
        if !registry.contains(&val) {
            let m = msg(&toks[call_idx].text, &arg.text, val);
            out[fi].push(Diagnostic::at_tok(&path, arg, rule, m));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::tokenize;

    #[test]
    fn state_write_shapes() {
        let cases = [
            ("self . utilities . set ( u , e , v ) ;", true),
            ("self . users [ u ] . budget = b ;", true),
            ("self . events . push ( ev ) ;", true),
            ("self . users . len ( ) ;", false),
            ("self . users [ u ] . budget ;", false),
        ];
        for (src, want) in cases {
            let ts = tokenize(src);
            assert!(
                is_state_write(&ts.toks, 0, 2) == want,
                "{src} expected write={want}"
            );
        }
        // `&mut self.events[e]` — borrow counts as a write.
        let ts = tokenize("& mut self . events [ e ]");
        assert!(is_state_write(&ts.toks, 2, 4));
    }

    #[test]
    fn lhs_root_walks_chains() {
        let ts = tokenize("acc . total [ i ] += v ;");
        let op = ts.toks.iter().position(|t| t.text == "+=").unwrap_or(0);
        let root = lhs_root(&ts.toks, op, 0);
        assert_eq!(root.map(|r| ts.toks[r].text.as_str()), Some("acc"));
    }

    #[test]
    fn for_loops_skip_hrtb_and_find_nested() {
        let ts = tokenize("for u in users { for e in evs { x(); } } let f: for<'a> fn(&'a u32) = g;");
        let loops = for_loops(&ts.toks, 0, ts.toks.len() - 1);
        assert_eq!(loops.len(), 2);
    }
}
