//! The rule catalogue: each rule is a pure function over the token
//! stream of one file plus that file's path-derived context. Rules
//! emit [`Diagnostic`]s; suppression filtering happens in `lib.rs`.
//!
//! The catalogue mirrors the repo's three cross-crate contracts
//! (typed fallibility, stable observability names, bit-identical
//! parallel determinism) — see DESIGN.md § Static analysis &
//! invariants for the prose version of every rule.

use crate::tokens::{test_region_mask, Tok, TokKind, TokenStream};
use crate::Diagnostic;

/// Machine names of every rule, the strings accepted by
/// `epplan-lint: allow(<rule>)`.
pub const RULES: &[&str] = &[
    "determinism/hash-iter",
    "determinism/wall-clock",
    "par/raw-threads",
    "robustness/unwrap",
    "float/exact-eq",
    "obs/stable-names",
    "fault/unregistered-site",
    "sparse/cache-invalidate",
    "sparse/dense-scan",
    "det/unordered-reduce",
    "budget/poll-coverage",
];

/// The meta-rules emitted by the suppression parser itself. They are
/// deliberately not in [`RULES`]: an allow cannot silence them.
pub const META_RULES: &[&str] = &["lint/allow-needs-reason", "lint/unknown-rule"];

/// One rule's documentation, rendered by `--explain <rule>`.
#[derive(Debug, Clone, Copy)]
pub struct RuleDoc {
    /// Machine name (`sparse/dense-scan`).
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Longer prose: what fires, why it matters, how to fix or allow.
    pub details: &'static str,
}

/// Documentation for every rule, the meta-rules included. A unit test
/// keeps this table aligned with [`RULES`] + [`META_RULES`].
pub const RULE_DOCS: &[RuleDoc] = &[
    RuleDoc {
        name: "determinism/hash-iter",
        summary: "no HashMap/HashSet in deterministic crates",
        details: "HashMap/HashSet iteration order varies per process (SipHash keys are \
                  randomized), so any output derived from it breaks the bit-identical \
                  determinism contract. Use BTreeMap/BTreeSet or an index-keyed Vec. \
                  Keyed lookup that is never iterated can be allowed with a reason.",
    },
    RuleDoc {
        name: "determinism/wall-clock",
        summary: "clock reads only in budget/bench/obs/daemon",
        details: "Instant::now / SystemTime outside the approved owners lets wall-clock \
                  values steer solver behaviour, which destroys replayability. Budget \
                  enforcement, benchmarks, the obs layer and the serve daemon's latency \
                  instrumentation are the only sanctioned readers.",
    },
    RuleDoc {
        name: "par/raw-threads",
        summary: "thread creation owned by epplan-par",
        details: "thread::spawn/scope/Builder outside crates/par bypasses the deterministic \
                  runtime (fixed worker count, index-ordered merges). Route parallel work \
                  through par_range_map and friends so results are bit-identical for any \
                  EPPLAN_THREADS.",
    },
    RuleDoc {
        name: "robustness/unwrap",
        summary: "no .unwrap()/.expect() in library code",
        details: ".unwrap()/.expect() in non-test library code turns recoverable conditions \
                  into panics. Return a typed error (SolveError / InstanceError) or use a \
                  documented fallback; tests and examples are exempt.",
    },
    RuleDoc {
        name: "float/exact-eq",
        summary: "no == / != against float literals",
        details: "Exact float comparison against a literal compares bit patterns and hides \
                  tolerance bugs. Use a tolerance helper; when exactness is the point \
                  (sentinel values, certified zero), allow with a reason saying so.",
    },
    RuleDoc {
        name: "obs/stable-names",
        summary: "span/metric names must be in the registry",
        details: "Dashboards and the trace analyzer key on span/counter/gauge/histogram/\
                  window names, so an unregistered name silently drops telemetry. The rule \
                  checks string literals at obs call sites and, through the symbol table, \
                  identifiers that resolve to const/static/let string bindings. Register \
                  new names in DESIGN.md § Observability and crates/lint/src/rules.rs.",
    },
    RuleDoc {
        name: "fault/unregistered-site",
        summary: "fault site names must be in the registry",
        details: "A fault::point / FaultPlan::single site name missing from \
                  epplan_fault::SITES never fires, so the chaos coverage it was meant to \
                  buy silently evaporates — in tests too, which is why test code is not \
                  exempt. Literals and symbol-resolved const/static/let names are both \
                  checked. Register new sites in epplan_fault::SITES, DESIGN.md § Fault \
                  model and crates/lint/src/rules.rs.",
    },
    RuleDoc {
        name: "sparse/cache-invalidate",
        summary: "Instance mutators must invalidate the candidate cache",
        details: "Instance caches CSR candidate lists keyed on utilities, budgets and \
                  event state. Any &mut self method writing those fields must reach \
                  invalidate_candidates() through the call graph, or solvers keep planning \
                  against stale candidates. Mutations that provably cannot change candidate \
                  membership (time windows, participation bounds) carry an audited allow \
                  explaining why.",
    },
    RuleDoc {
        name: "sparse/dense-scan",
        summary: "no dense event loops on batch hot paths",
        details: "The CSR refactor made solver hot paths O(candidates), not O(|U|x|E|). A \
                  for-loop whose header mentions event_ids/n_events (or an alias bound from \
                  them) inside a function reachable from the batch entry points reintroduces \
                  the dense scan. Iterate CandidateSet rows instead; genuine O(|E|) passes \
                  (arena builds, validation) carry an audited allow.",
    },
    RuleDoc {
        name: "det/unordered-reduce",
        summary: "par_* closures must not assign into captured state",
        details: "Chunk completion order under the par_* runtime is nondeterministic; an \
                  assignment (=, +=, ...) whose left-hand root is captured from outside the \
                  closure makes float accumulation order-dependent, breaking bit-identical \
                  results. Return per-chunk values and let the runtime merge them in index \
                  order (par_range_map), or use the &mut-chunk APIs whose targets are \
                  disjoint slices.",
    },
    RuleDoc {
        name: "budget/poll-coverage",
        summary: "budget-governed loops must poll the deadline",
        details: "A function that takes a SolveBudget/BudgetGuard/DeadlineFlag is on a \
                  budgeted path; a for-loop in it bounded by users/events/jobs that never \
                  polls (DeadlineFlag::poll, guard.tick, check_deadline — directly or via a \
                  callee) can overrun the deadline by a whole pass. Poll inside the loop; \
                  provably tiny or cleanup-only loops carry an audited allow.",
    },
    RuleDoc {
        name: "lint/allow-needs-reason",
        summary: "every allow carries a justification",
        details: "An epplan-lint: allow(rule) without a reason after the closing paren is \
                  itself a violation — suppressions are part of the audit trail, and a \
                  reasonless one is indistinguishable from a silenced bug. This meta-rule \
                  cannot be allowed away.",
    },
    RuleDoc {
        name: "lint/unknown-rule",
        summary: "allows must name a real rule",
        details: "An allow naming a rule that does not exist (typo, renamed rule) silences \
                  nothing while looking like it does. This meta-rule cannot be allowed \
                  away.",
    },
];

/// Looks up the documentation for a rule by machine name.
pub fn rule_doc(name: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.name == name)
}

/// Crates whose output must be bit-reproducible: the solver stack and
/// the instance generator. `HashMap`/`HashSet` iteration order is
/// nondeterministic across processes, so these crates use `BTreeMap`/
/// `BTreeSet` or index-keyed `Vec`s instead.
const DETERMINISTIC_CRATES: &[&str] =
    &["core", "solve", "lp", "flow", "gap", "geo", "datagen", "serve"];

/// The only places allowed to read the wall clock: budget enforcement,
/// benchmarking, the observability layer itself, and the serving
/// daemon's latency instrumentation (`crates/serve/src/daemon.rs`
/// measures per-op repair latency; clock values feed histograms only,
/// never solver decisions — see DESIGN.md § Serving).
const WALL_CLOCK_ALLOWED: &[&str] = &[
    "crates/solve/src/budget.rs",
    "crates/bench/",
    "crates/obs/",
    "crates/serve/src/daemon.rs",
];

/// The single owner of thread creation.
const THREADS_ALLOWED: &[&str] = &["crates/par/"];

/// The stable observability name registry (DESIGN.md § Observability).
/// Renaming or adding a name is a breaking change that must update the
/// DESIGN.md table *and* this list, in the same commit.
pub const SPAN_NAMES: &[&str] = &[
    "lp.simplex",
    "lp.phase1",
    "lp.phase2",
    "flow.mcmf",
    "flow.potentials",
    "gap.pipeline",
    "gap.lp_relax",
    "gap.packing",
    "gap.rounding",
    "solve.reduction",
    "solve.conflict_adjust",
    "solve.fill",
    "solve.gap_based",
    "solve.greedy_fallback",
    "solve.certify",
    "core.candidates.build",
    "iep.apply",
    "serve.op",
    "serve.resolve",
    "serve.snapshot",
    "serve.restore",
];

/// Registered counter names.
pub const COUNTER_NAMES: &[&str] = &[
    "lp.iterations",
    "flow.augmentations",
    "packing.epochs",
    "packing.oracle_calls",
    "rounding.slots",
    "rounding.edges",
    "budget.exhausted",
    "iep.ops",
    "serve.ops",
    "serve.ops_applied",
    "serve.ops_resolved",
    "serve.ops_rejected",
    "serve.ops_skipped",
    "serve.retries",
    "serve.resolves",
    "serve.snapshots",
    "serve.slo.burning_ops",
    "serve.ops_shed",
    "serve.ops_quarantined",
    "serve.brownout.steps",
    "obs.scrape.requests",
    "obs.scrape.errors",
];

/// Registered gauge names.
pub const GAUGE_NAMES: &[&str] = &[
    "packing.width",
    "budget.spent_iters",
    "budget.spent_ms",
    "packing.par.threads",
    "packing.par.chunks",
    "packing.arena.candidates",
    "gap.candidates.per_user",
    "lp.par.threads",
    "lp.par.chunks",
    "greedy.par.threads",
    "greedy.par.chunks",
    "filler.par.threads",
    "filler.par.chunks",
    "local_search.par.threads",
    "local_search.par.chunks",
    "datagen.par.threads",
    "datagen.par.chunks",
    "serve.drift",
    "serve.utility",
    "serve.slo.burning",
    "serve.slo.target_us",
    "serve.window.p50_us",
    "serve.window.p95_us",
    "serve.window.p99_us",
    "serve.brownout.level",
];

/// Registered histogram names (`epplan_obs::observe`).
pub const HISTOGRAM_NAMES: &[&str] = &["serve.op_latency_us"];

/// Registered sliding-window names (`epplan_obs::window`).
pub const WINDOW_NAMES: &[&str] = &["serve.window.op_latency_us"];

/// The fault-injection site registry (DESIGN.md § Fault model &
/// certification). Must mirror `epplan_fault::SITES` exactly — a site
/// name referenced anywhere else (an injection point or a test arming
/// a plan) that is missing here silently never fires, which is exactly
/// the bug class `fault/unregistered-site` exists to catch.
pub const FAULT_SITES: &[&str] = &[
    "core.conflict_adjust.apply",
    "core.greedy.fallback",
    "core.iep.apply",
    "core.reduction.build",
    "flow.mcmf.augment",
    "gap.lp_relax.solve",
    "gap.packing.oracle",
    "gap.rounding.match",
    "lp.simplex.pivot",
    "serve.admission.decide",
    "serve.brownout.step",
    "serve.deadletter.append",
    "serve.metrics.scrape",
    "serve.op.ingest",
    "serve.snapshot.write",
    "serve.wal.append",
    "solve.budget.tick",
];

/// Path-derived context for one file, controlling which rules apply.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Crate name for `crates/<name>/…` paths, `None` for the root
    /// package, integration tests and examples.
    pub crate_name: Option<String>,
    /// Whole file is test code (under a `tests/` or `benches/` dir).
    pub is_test_file: bool,
    /// Example programs: demos, exempt from library-code rules.
    pub is_example: bool,
    /// Binary targets (`src/bin/…`): CLI front-ends, exempt from the
    /// library-only rules but still subject to determinism rules.
    pub is_bin: bool,
}

impl FileContext {
    /// Builds the context from a workspace-relative path.
    pub fn from_path(path: &str) -> Self {
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(str::to_string);
        let is_test_file = path.starts_with("tests/")
            || path.contains("/tests/")
            || path.contains("/benches/");
        FileContext {
            path: path.to_string(),
            crate_name,
            is_test_file,
            is_example: path.starts_with("examples/") || path.contains("/examples/"),
            is_bin: path.contains("src/bin/"),
        }
    }

    fn in_any(&self, prefixes: &[&str]) -> bool {
        prefixes
            .iter()
            .any(|p| self.path == *p || self.path.starts_with(p))
    }
}

/// Runs every applicable rule over one tokenized file.
pub fn run_rules(ctx: &FileContext, ts: &TokenStream) -> Vec<Diagnostic> {
    let toks = &ts.toks;
    let test_mask = test_region_mask(toks);
    let in_test = |idx: usize| ctx.is_test_file || test_mask[idx];
    let mut out = Vec::new();

    let diag = |out: &mut Vec<Diagnostic>, t: &Tok, rule: &str, message: String| {
        out.push(Diagnostic::at_tok(&ctx.path, t, rule, message));
    };

    // determinism/hash-iter — applies to every region (tests
    // included: hash-order iteration in a test makes its assertions
    // flaky) of the deterministic crates.
    let hash_iter_applies = ctx
        .crate_name
        .as_deref()
        .is_some_and(|c| DETERMINISTIC_CRATES.contains(&c));
    if hash_iter_applies && !ctx.is_example {
        for t in toks.iter() {
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "HashMap" | "HashSet" | "hash_map" | "hash_set")
            {
                diag(
                    &mut out,
                    t,
                    "determinism/hash-iter",
                    format!(
                        "`{}` in a deterministic crate: iteration order varies per process; \
                         use `BTreeMap`/`BTreeSet` or an index-keyed `Vec`",
                        t.text
                    ),
                );
            }
        }
    }

    // determinism/wall-clock — non-test code outside the approved
    // timing owners must not read the clock.
    if !ctx.in_any(WALL_CLOCK_ALLOWED) && !ctx.is_example && !ctx.is_test_file {
        for (i, t) in toks.iter().enumerate() {
            if in_test(i) || t.kind != TokKind::Ident {
                continue;
            }
            let flagged = match t.text.as_str() {
                // `Instant` alone is fine (type positions, re-exports);
                // the violation is *reading* the clock.
                "Instant" => {
                    toks.get(i + 1).is_some_and(|n| n.text == "::")
                        && toks.get(i + 2).is_some_and(|n| n.text == "now")
                }
                "SystemTime" | "UNIX_EPOCH" => true,
                _ => false,
            };
            if flagged {
                diag(
                    &mut out,
                    t,
                    "determinism/wall-clock",
                    format!(
                        "wall-clock read (`{}`) outside solve::budget / bench / obs: \
                         clock values must never steer solver behaviour",
                        t.text
                    ),
                );
            }
        }
    }

    // par/raw-threads — thread creation has a single owner
    // (`epplan-par`); applies everywhere, tests included, so TSan and
    // the determinism contract see one spawn site.
    if !ctx.in_any(THREADS_ALLOWED) && !ctx.is_example {
        for (i, t) in toks.iter().enumerate() {
            if t.kind == TokKind::Ident
                && t.text == "thread"
                && toks.get(i + 1).is_some_and(|n| n.text == "::")
                && toks
                    .get(i + 2)
                    .is_some_and(|n| matches!(n.text.as_str(), "spawn" | "scope" | "Builder"))
            {
                diag(
                    &mut out,
                    t,
                    "par/raw-threads",
                    format!(
                        "raw `thread::{}` outside epplan-par: route parallel work through \
                         the deterministic runtime (par_range_map & friends)",
                        toks[i + 2].text
                    ),
                );
            }
        }
    }

    // robustness/unwrap — non-test library code must degrade through
    // typed `SolveError`/`InstanceError` paths, never panic.
    if ctx.crate_name.is_some() && !ctx.is_test_file && !ctx.is_example && !ctx.is_bin {
        for (i, t) in toks.iter().enumerate() {
            if in_test(i) || t.kind != TokKind::Ident {
                continue;
            }
            if matches!(t.text.as_str(), "unwrap" | "expect")
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
            {
                diag(
                    &mut out,
                    t,
                    "robustness/unwrap",
                    format!(
                        "`.{}(…)` in non-test library code: return a typed error \
                         (SolveError / InstanceError) or use a documented fallback",
                        t.text
                    ),
                );
            }
        }
    }

    // float/exact-eq — `==` / `!=` against a float literal compares
    // bit patterns; outside deliberate exact checks this hides
    // tolerance bugs. Applies to non-test code everywhere.
    if !ctx.is_test_file && !ctx.is_example {
        for (i, t) in toks.iter().enumerate() {
            if in_test(i) || t.kind != TokKind::Punct {
                continue;
            }
            if (t.text == "==" || t.text == "!=")
                && (i > 0 && toks[i - 1].kind == TokKind::Float
                    || toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Float))
            {
                diag(
                    &mut out,
                    t,
                    "float/exact-eq",
                    format!(
                        "exact float comparison (`{}` with a float literal): use a \
                         tolerance helper, or allow with a reason if exactness is the point",
                        t.text
                    ),
                );
            }
        }
    }

    // obs/stable-names — span/metric names in non-test code must match
    // the documented registry. The obs crate itself (definition site +
    // its own test fixtures) and this linter are exempt.
    let obs_exempt = matches!(ctx.crate_name.as_deref(), Some("obs") | Some("lint"));
    if !obs_exempt && !ctx.is_test_file && !ctx.is_example {
        for (i, t) in toks.iter().enumerate() {
            if in_test(i) || t.kind != TokKind::Ident {
                continue;
            }
            let registry: &[&str] = match t.text.as_str() {
                "span" => SPAN_NAMES,
                "counter_add" => COUNTER_NAMES,
                "gauge_set" => GAUGE_NAMES,
                "observe" => HISTOGRAM_NAMES,
                "window" => WINDOW_NAMES,
                _ => continue,
            };
            // Match `name("literal"` — a direct call with a literal
            // first argument. Calls through variables are rare enough
            // here that the registry check simply skips them.
            let Some(open) = toks.get(i + 1) else { continue };
            if open.text != "(" {
                continue;
            }
            let Some(arg) = toks.get(i + 2) else { continue };
            if arg.kind != TokKind::Str {
                continue;
            }
            if !registry.contains(&arg.text.as_str()) {
                diag(
                    &mut out,
                    arg,
                    "obs/stable-names",
                    format!(
                        "`{}(\"{}\")` is not in the stable name registry; register the \
                         name in DESIGN.md § Observability and crates/lint/src/rules.rs",
                        t.text, arg.text
                    ),
                );
            }
        }
    }

    // fault/unregistered-site — site names handed to the fault layer
    // must match the registry; an unregistered name never fires, so a
    // typo silently disables the chaos coverage it was meant to buy.
    // Applies to tests too (they arm plans by site name); the fault
    // crate itself (definition site) and this linter are exempt.
    let fault_exempt = matches!(ctx.crate_name.as_deref(), Some("fault") | Some("lint"));
    if !fault_exempt && !ctx.is_example {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident
                || !matches!(t.text.as_str(), "point" | "single" | "single_at")
            {
                continue;
            }
            // Only qualified calls into the fault layer: a bare
            // `single("…")` is `SolveReport::single` and friends.
            let qualified = i >= 2
                && toks[i - 1].text == "::"
                && matches!(toks[i - 2].text.as_str(), "epplan_fault" | "FaultPlan" | "fault");
            if !qualified {
                continue;
            }
            let Some(open) = toks.get(i + 1) else { continue };
            if open.text != "(" {
                continue;
            }
            let Some(arg) = toks.get(i + 2) else { continue };
            if arg.kind != TokKind::Str {
                continue;
            }
            if !FAULT_SITES.contains(&arg.text.as_str()) {
                diag(
                    &mut out,
                    arg,
                    "fault/unregistered-site",
                    format!(
                        "`{}(\"{}\")` names a fault site missing from the registry; \
                         register it in epplan_fault::SITES, DESIGN.md § Fault model \
                         and crates/lint/src/rules.rs",
                        t.text, arg.text
                    ),
                );
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_is_documented_and_vice_versa() {
        for r in RULES.iter().chain(META_RULES) {
            assert!(rule_doc(r).is_some(), "rule `{r}` has no --explain doc");
        }
        for d in RULE_DOCS {
            assert!(
                RULES.contains(&d.name) || META_RULES.contains(&d.name),
                "doc for unregistered rule `{}`",
                d.name
            );
            assert!(!d.summary.is_empty() && !d.details.is_empty());
        }
        assert_eq!(RULE_DOCS.len(), RULES.len() + META_RULES.len());
    }
}
