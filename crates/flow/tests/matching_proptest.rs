//! Property tests: min-cost assignment must match a brute-force search
//! on small instances and always respect capacities.

use epplan_flow::min_cost_assignment;
use proptest::prelude::*;

/// Brute force: try every assignment of lefts to adjacent rights.
fn brute_force(
    n_left: usize,
    n_right: usize,
    edges: &[(usize, usize, f64)],
    caps: &[usize],
) -> Option<f64> {
    // adjacency with min edge cost per (l, r)
    let mut cost = vec![vec![f64::INFINITY; n_right]; n_left];
    for &(l, r, c) in edges {
        if c < cost[l][r] {
            cost[l][r] = c;
        }
    }
    #[allow(clippy::too_many_arguments)]
    fn rec(
        l: usize,
        n_left: usize,
        n_right: usize,
        cost: &[Vec<f64>],
        used: &mut [usize],
        caps: &[usize],
        acc: f64,
        best: &mut Option<f64>,
    ) {
        if l == n_left {
            if best.is_none() || acc < best.unwrap() {
                *best = Some(acc);
            }
            return;
        }
        for r in 0..n_right {
            if used[r] < caps[r] && cost[l][r].is_finite() {
                used[r] += 1;
                rec(l + 1, n_left, n_right, cost, used, caps, acc + cost[l][r], best);
                used[r] -= 1;
            }
        }
    }
    let mut best = None;
    let mut used = vec![0; n_right];
    rec(0, n_left, n_right, &cost, &mut used, caps, 0.0, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn matches_brute_force(
        n_left in 1usize..5,
        n_right in 1usize..5,
        density in 0.3..1.0f64,
        seed in 0u64..10_000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for l in 0..n_left {
            for r in 0..n_right {
                if rng.gen_bool(density) {
                    edges.push((l, r, (rng.gen_range(-50..50) as f64) / 4.0));
                }
            }
        }
        let caps: Vec<usize> = (0..n_right).map(|_| rng.gen_range(0..3)).collect();

        let got = min_cost_assignment(n_left, n_right, &edges, &caps);
        let want = brute_force(n_left, n_right, &edges, &caps);
        match (got, want) {
            (Err(e), None) => {
                prop_assert_eq!(e.kind, epplan_solve::FailureKind::Infeasible);
            }
            (Ok(a), Some(w)) => {
                prop_assert!((a.cost - w).abs() < 1e-6,
                    "flow cost {} vs brute force {}", a.cost, w);
                // capacities respected
                let mut used = vec![0usize; n_right];
                for &r in &a.left_to_right { used[r] += 1; }
                for r in 0..n_right {
                    prop_assert!(used[r] <= caps[r]);
                }
                // every chosen edge exists
                for (l, &r) in a.left_to_right.iter().enumerate() {
                    prop_assert!(edges.iter().any(|&(el, er, _)| el == l && er == r));
                }
            }
            (g, w) => prop_assert!(false, "feasibility disagrees: flow={:?} bf={:?}",
                g.map(|a| a.cost).ok(), w),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// The potential-based Dijkstra solver and the SPFA solver must
    /// agree on max flow and min cost for arbitrary layered networks.
    #[test]
    fn fast_and_slow_mcmf_agree(
        n_mid in 1usize..6,
        seed in 0u64..20_000,
    ) {
        use epplan_flow::MinCostFlow;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Layered s → mid → t network (no negative cycles by shape),
        // with some negative mid-layer costs.
        let n = n_mid + 2;
        let s = 0;
        let t = n - 1;
        let build = |rng: &mut rand::rngs::StdRng| {
            let mut g = MinCostFlow::new(n);
            let mut edges = Vec::new();
            for v in 1..=n_mid {
                if rng.gen_bool(0.8) {
                    edges.push((s, v, rng.gen_range(1..4) as f64,
                                rng.gen_range(0.0..3.0)));
                }
                if rng.gen_bool(0.8) {
                    edges.push((v, t, rng.gen_range(1..4) as f64,
                                rng.gen_range(-2.0..3.0)));
                }
            }
            for a in 1..=n_mid {
                for b in (a + 1)..=n_mid {
                    if rng.gen_bool(0.3) {
                        edges.push((a, b, rng.gen_range(1..3) as f64,
                                    rng.gen_range(-1.0..2.0)));
                    }
                }
            }
            for &(u, v, c, w) in &edges {
                g.add_edge(u, v, c, w);
            }
            g
        };
        let mut rng2 = rng.clone();
        let slow = build(&mut rng).max_flow_min_cost(s, t).unwrap();
        let fast = build(&mut rng2).max_flow_min_cost_fast(s, t).unwrap();
        prop_assert!((slow.flow - fast.flow).abs() < 1e-9,
            "flow {} vs {}", slow.flow, fast.flow);
        prop_assert!((slow.cost - fast.cost).abs() < 1e-6,
            "cost {} vs {}", slow.cost, fast.cost);
    }
}
