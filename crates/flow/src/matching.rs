use epplan_solve::{SolveBudget, SolveError};

use crate::{EdgeId, MinCostFlow};

/// An assignment of every left vertex to one right vertex.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// `left_to_right[l]` is the right vertex chosen for left vertex `l`.
    /// In the *partial* assignment attached to an `Infeasible` error,
    /// unplaceable left vertices hold `usize::MAX`.
    pub left_to_right: Vec<usize>,
    /// Total cost of the chosen edges.
    pub cost: f64,
}

/// Pipeline-stage label used in this solver's errors.
const STAGE: &str = "flow.matching";

/// Minimum-cost assignment saturating all left vertices.
///
/// Given a bipartite graph described by `edges = (left, right, cost)`
/// and a per-right-vertex capacity, finds an assignment of **every**
/// left vertex to an adjacent right vertex such that no right vertex
/// exceeds its capacity and total cost is minimum.
///
/// When no complete assignment exists the call fails with an
/// [`epplan_solve::FailureKind::Infeasible`] error whose partial
/// artifact is the best *incomplete* assignment found (unmatched left
/// vertices hold `usize::MAX`), so callers can degrade instead of
/// aborting.
///
/// This is exactly the integral matching step of the Shmoys–Tardos GAP
/// rounding: left vertices are jobs, right vertices are machine slots.
///
/// # Example
/// ```
/// use epplan_flow::min_cost_assignment;
/// // 2 jobs, 2 slots with capacity 1 each.
/// let edges = [(0, 0, 1.0), (0, 1, 2.0), (1, 0, 4.0), (1, 1, 8.0)];
/// let a = min_cost_assignment(2, 2, &edges, &[1, 1]).unwrap();
/// // job 1 must not steal slot 0 from job 0: 2 + 4 < 1 + 8.
/// assert_eq!(a.left_to_right, vec![1, 0]);
/// assert_eq!(a.cost, 6.0);
/// ```
pub fn min_cost_assignment(
    n_left: usize,
    n_right: usize,
    edges: &[(usize, usize, f64)],
    right_capacity: &[usize],
) -> Result<Assignment, SolveError<Assignment>> {
    min_cost_assignment_with_budget(n_left, n_right, edges, right_capacity, SolveBudget::UNLIMITED)
}

/// [`min_cost_assignment`] under `budget`; the underlying flow spends
/// one budget iteration per augmentation. A `BudgetExhausted` error
/// carries the (incomplete) assignment routed so far as its partial
/// artifact.
pub fn min_cost_assignment_with_budget(
    n_left: usize,
    n_right: usize,
    edges: &[(usize, usize, f64)],
    right_capacity: &[usize],
    budget: SolveBudget,
) -> Result<Assignment, SolveError<Assignment>> {
    if right_capacity.len() != n_right {
        return Err(SolveError::bad_input(
            STAGE,
            format!(
                "capacity vector has {} entries for {n_right} right vertices",
                right_capacity.len()
            ),
        ));
    }
    if let Some(&(l, r, _)) = edges.iter().find(|&&(l, r, _)| l >= n_left || r >= n_right) {
        return Err(SolveError::bad_input(
            STAGE,
            format!("edge ({l}, {r}) endpoint out of range ({n_left} × {n_right})"),
        ));
    }
    if let Some(&(l, r, c)) = edges.iter().find(|&&(_, _, c)| !c.is_finite()) {
        return Err(SolveError::bad_input(
            STAGE,
            format!("edge ({l}, {r}) has non-finite cost {c}"),
        ));
    }
    if n_left == 0 {
        return Ok(Assignment {
            left_to_right: Vec::new(),
            cost: 0.0,
        });
    }
    // Node layout: 0 = source, 1..=n_left = lefts,
    // n_left+1..=n_left+n_right = rights, last = sink.
    let s = 0;
    let left = |l: usize| 1 + l;
    let right = |r: usize| 1 + n_left + r;
    let t = 1 + n_left + n_right;
    let mut g = MinCostFlow::new(t + 1);
    for l in 0..n_left {
        g.add_edge(s, left(l), 1.0, 0.0);
    }
    for (r, &cap) in right_capacity.iter().enumerate() {
        g.add_edge(right(r), t, cap as f64, 0.0);
    }
    let mut ids: Vec<(EdgeId, usize, usize)> = Vec::with_capacity(edges.len());
    for &(l, r, c) in edges {
        ids.push((g.add_edge(left(l), right(r), 1.0, c), l, r));
    }
    let extract = |g: &MinCostFlow, ids: &[(EdgeId, usize, usize)], cost: f64| {
        let mut left_to_right = vec![usize::MAX; n_left];
        for &(id, l, r) in ids {
            if g.flow_on(id) > 0.5 {
                left_to_right[l] = r;
            }
        }
        Assignment { left_to_right, cost }
    };
    let res = match g.max_flow_min_cost_fast_with_budget(s, t, budget) {
        Ok(res) => res,
        Err(e) => {
            let partial_cost = e.partial.map_or(0.0, |f| f.cost);
            let partial = extract(&g, &ids, partial_cost);
            return Err(e.discard_partial().with_partial(partial));
        }
    };
    if (res.flow - n_left as f64).abs() > 1e-6 {
        let unplaced = n_left - res.flow.round() as usize;
        let partial = extract(&g, &ids, res.cost);
        return Err(SolveError::infeasible(
            STAGE,
            format!("{unplaced} of {n_left} left vertices cannot be matched"),
        )
        .with_partial(partial));
    }
    let assignment = extract(&g, &ids, res.cost);
    debug_assert!(assignment.left_to_right.iter().all(|&r| r != usize::MAX));
    Ok(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epplan_solve::FailureKind;

    #[test]
    fn perfect_matching_unit_capacities() {
        // 3 jobs, 3 slots, cost matrix with known optimum 1+2+3.
        let edges = [
            (0, 0, 1.0),
            (0, 1, 9.0),
            (0, 2, 9.0),
            (1, 0, 9.0),
            (1, 1, 2.0),
            (1, 2, 9.0),
            (2, 0, 9.0),
            (2, 1, 9.0),
            (2, 2, 3.0),
        ];
        let a = min_cost_assignment(3, 3, &edges, &[1, 1, 1]).unwrap();
        assert_eq!(a.left_to_right, vec![0, 1, 2]);
        assert_eq!(a.cost, 6.0);
    }

    #[test]
    fn capacity_two_slot_takes_both() {
        let edges = [(0, 0, 1.0), (1, 0, 1.0), (1, 1, 0.5)];
        let a = min_cost_assignment(2, 2, &edges, &[2, 1]).unwrap();
        assert_eq!(a.left_to_right[0], 0);
        assert_eq!(a.left_to_right[1], 1);
        assert_eq!(a.cost, 1.5);
    }

    #[test]
    fn infeasible_when_capacity_insufficient() {
        let edges = [(0, 0, 1.0), (1, 0, 1.0)];
        let e = min_cost_assignment(2, 1, &edges, &[1]).unwrap_err();
        assert_eq!(e.kind, FailureKind::Infeasible);
        // The partial assignment places exactly one of the two jobs.
        let partial = e.partial.expect("partial assignment");
        let placed = partial.left_to_right.iter().filter(|&&r| r != usize::MAX).count();
        assert_eq!(placed, 1);
    }

    #[test]
    fn infeasible_when_left_vertex_isolated() {
        let edges = [(0, 0, 1.0)];
        let e = min_cost_assignment(2, 1, &edges, &[2]).unwrap_err();
        assert_eq!(e.kind, FailureKind::Infeasible);
        let partial = e.partial.expect("partial assignment");
        assert_eq!(partial.left_to_right[0], 0);
        assert_eq!(partial.left_to_right[1], usize::MAX);
    }

    #[test]
    fn empty_left_is_trivially_assigned() {
        let a = min_cost_assignment(0, 3, &[], &[1, 1, 1]).unwrap();
        assert!(a.left_to_right.is_empty());
        assert_eq!(a.cost, 0.0);
    }

    #[test]
    fn bad_inputs_are_typed_errors() {
        // Capacity vector of the wrong length.
        let e = min_cost_assignment(1, 2, &[(0, 0, 1.0)], &[1]).unwrap_err();
        assert_eq!(e.kind, FailureKind::BadInput);
        // Edge endpoint out of range.
        let e = min_cost_assignment(1, 1, &[(0, 7, 1.0)], &[1]).unwrap_err();
        assert_eq!(e.kind, FailureKind::BadInput);
        // Non-finite cost.
        let e = min_cost_assignment(1, 1, &[(0, 0, f64::NAN)], &[1]).unwrap_err();
        assert_eq!(e.kind, FailureKind::BadInput);
    }

    #[test]
    fn negative_costs_allowed() {
        let edges = [(0, 0, -2.0), (0, 1, 1.0), (1, 0, -3.0), (1, 1, -1.0)];
        let a = min_cost_assignment(2, 2, &edges, &[1, 1]).unwrap();
        // Optimal: 0→0 (-2) + 1→1 (-1) = -3 vs 0→1 (1) + 1→0 (-3) = -2.
        assert_eq!(a.cost, -3.0);
        assert_eq!(a.left_to_right, vec![0, 1]);
    }

    #[test]
    fn parallel_edges_pick_cheapest() {
        let edges = [(0, 0, 5.0), (0, 0, 2.0)];
        let a = min_cost_assignment(1, 1, &edges, &[1]).unwrap();
        assert_eq!(a.cost, 2.0);
    }

    #[test]
    fn greedy_would_be_suboptimal() {
        // Greedy gives 0→A (cost 0) forcing 1→B (cost 10) = 10;
        // optimum is 0→B (1) + 1→A (2) = 3.
        let edges = [(0, 0, 0.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, 10.0)];
        let a = min_cost_assignment(2, 2, &edges, &[1, 1]).unwrap();
        assert_eq!(a.cost, 3.0);
    }

    #[test]
    fn budget_exhaustion_carries_partial_assignment() {
        // Two jobs, two slots; one augmentation allowed.
        let edges = [(0, 0, 1.0), (1, 1, 2.0)];
        let e = min_cost_assignment_with_budget(
            2,
            2,
            &edges,
            &[1, 1],
            SolveBudget::from_iteration_cap(1),
        )
        .unwrap_err();
        assert_eq!(e.kind, FailureKind::BudgetExhausted);
        let partial = e.partial.expect("partial assignment");
        let placed = partial.left_to_right.iter().filter(|&&r| r != usize::MAX).count();
        assert_eq!(placed, 1);
    }
}
