use std::collections::VecDeque;

use epplan_solve::{BudgetGuard, SolveBudget, SolveError};

/// Identifier of an edge added to a [`MinCostFlow`] graph; use it to
/// query the final flow with [`MinCostFlow::flow_on`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: f64,
    cost: f64,
}

/// Result of a min-cost max-flow computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowResult {
    /// Total flow pushed from source to sink.
    pub flow: f64,
    /// Total cost `Σ flow(e) · cost(e)` over forward edges.
    pub cost: f64,
}

/// Pipeline-stage label used in this solver's errors.
const STAGE: &str = "flow.mcmf";

/// A directed flow network solved with successive shortest paths.
///
/// Shortest paths are found with SPFA (queue-based Bellman–Ford), which
/// tolerates negative edge costs as long as the network has no
/// negative-cost *cycle* — true for every graph built in this workspace
/// (bipartite source→left→right→sink layerings).
///
/// Malformed edges (out-of-range endpoints, negative or non-finite
/// capacities, non-finite costs) do not panic at build time; they mark
/// the graph defective and every subsequent solve returns a
/// [`epplan_solve::FailureKind::BadInput`] error.
///
/// # Example
/// ```
/// use epplan_flow::MinCostFlow;
/// let mut g = MinCostFlow::new(4);
/// let s = 0; let t = 3;
/// g.add_edge(s, 1, 2.0, 1.0);
/// g.add_edge(s, 2, 1.0, 2.0);
/// g.add_edge(1, t, 1.0, 1.0);
/// g.add_edge(1, 2, 1.0, 0.0);
/// g.add_edge(2, t, 2.0, 1.0);
/// let r = g.max_flow_min_cost(s, t).expect("well-formed graph");
/// assert_eq!(r.flow, 3.0);
/// assert_eq!(r.cost, 7.0);
/// ```
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    n: usize,
    /// Edges stored in pairs: forward at even index, residual at odd.
    edges: Vec<Edge>,
    adj: Vec<Vec<u32>>,
    /// First build-time defect, reported by the solve entry points.
    defect: Option<String>,
}

const EPS: f64 = 1e-9;

impl MinCostFlow {
    /// Creates a network with `n` nodes (numbered `0..n`) and no edges.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            defect: None,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Adds a directed edge `from → to` with capacity `cap ≥ 0` and
    /// per-unit cost `cost`. Returns an id for flow inspection.
    ///
    /// A malformed edge is recorded as inert (it carries no flow) and
    /// poisons the graph: the next solve call reports `BadInput`.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: f64, cost: f64) -> EdgeId {
        let id = self.edges.len();
        let mut flaw = None;
        if from >= self.n || to >= self.n {
            flaw = Some(format!("edge {from}->{to} endpoint out of range (n = {})", self.n));
        } else if cap < 0.0 || !cap.is_finite() {
            flaw = Some(format!("edge {from}->{to} has invalid capacity {cap}"));
        } else if !cost.is_finite() {
            flaw = Some(format!("edge {from}->{to} has non-finite cost {cost}"));
        }
        if let Some(flaw) = flaw {
            if self.defect.is_none() {
                self.defect = Some(flaw);
            }
            // Keep edge ids stable but leave the pair unreachable.
            self.edges.push(Edge { to: 0, cap: 0.0, cost: 0.0 });
            self.edges.push(Edge { to: 0, cap: 0.0, cost: 0.0 });
            return EdgeId(id);
        }
        self.edges.push(Edge { to, cap, cost });
        self.edges.push(Edge {
            to: from,
            cap: 0.0,
            cost: -cost,
        });
        self.adj[from].push(id as u32);
        self.adj[to].push(id as u32 + 1);
        EdgeId(id)
    }

    /// Flow currently routed through the forward edge `id`.
    pub fn flow_on(&self, id: EdgeId) -> f64 {
        // Residual capacity of the reverse edge equals the flow pushed.
        self.edges[id.0 + 1].cap
    }

    /// Rejects defective graphs and out-of-range terminals.
    fn check_inputs(&self, s: usize, t: usize) -> Result<(), SolveError<FlowResult>> {
        if let Some(defect) = &self.defect {
            return Err(SolveError::bad_input(STAGE, defect.clone()));
        }
        if s >= self.n || t >= self.n {
            return Err(SolveError::bad_input(
                STAGE,
                format!("terminal out of range: s = {s}, t = {t}, n = {}", self.n),
            ));
        }
        Ok(())
    }

    /// Sends as much flow as possible from `s` to `t`, minimizing cost
    /// among all maximum flows. Can be called once per graph.
    pub fn max_flow_min_cost(&mut self, s: usize, t: usize) -> Result<FlowResult, SolveError<FlowResult>> {
        self.run(s, t, f64::INFINITY, SolveBudget::UNLIMITED)
    }

    /// Sends up to `limit` units of flow from `s` to `t` at minimum cost.
    pub fn flow_with_limit(
        &mut self,
        s: usize,
        t: usize,
        limit: f64,
    ) -> Result<FlowResult, SolveError<FlowResult>> {
        self.run(s, t, limit, SolveBudget::UNLIMITED)
    }

    /// Like [`flow_with_limit`](Self::flow_with_limit) under `budget`:
    /// the guard ticks once per augmentation, and exhaustion returns a
    /// `BudgetExhausted` error carrying the flow routed so far as its
    /// partial artifact (a valid, possibly non-maximum flow).
    pub fn flow_with_limit_and_budget(
        &mut self,
        s: usize,
        t: usize,
        limit: f64,
        budget: SolveBudget,
    ) -> Result<FlowResult, SolveError<FlowResult>> {
        self.run(s, t, limit, budget)
    }

    /// Like [`max_flow_min_cost`](Self::max_flow_min_cost) but with
    /// Johnson potentials: one Bellman–Ford pass absorbs the negative
    /// arc costs, after which every augmentation runs Dijkstra on
    /// non-negative reduced costs. Asymptotically much faster on the
    /// large slot graphs of the Shmoys–Tardos rounding (thousands of
    /// unit augmentations), and exactly equivalent in its result.
    pub fn max_flow_min_cost_fast(
        &mut self,
        s: usize,
        t: usize,
    ) -> Result<FlowResult, SolveError<FlowResult>> {
        self.max_flow_min_cost_fast_with_budget(s, t, SolveBudget::UNLIMITED)
    }

    /// [`max_flow_min_cost_fast`](Self::max_flow_min_cost_fast) under
    /// `budget`; the guard ticks once per augmentation, and exhaustion
    /// returns the flow routed so far as the error's partial artifact.
    pub fn max_flow_min_cost_fast_with_budget(
        &mut self,
        s: usize,
        t: usize,
        budget: SolveBudget,
    ) -> Result<FlowResult, SolveError<FlowResult>> {
        self.check_inputs(s, t)?;
        let mut sp = epplan_obs::span("flow.mcmf");
        let mut guard = BudgetGuard::new(budget);
        let mut total = FlowResult { flow: 0.0, cost: 0.0 };
        if s == t {
            return Ok(total);
        }
        // Initial potentials via Bellman–Ford (queue-based) over
        // residual arcs with capacity.
        let mut pot = vec![f64::INFINITY; self.n];
        pot[s] = 0.0;
        {
            let _sp = epplan_obs::span("flow.potentials");
            let mut in_queue = vec![false; self.n];
            let mut queue = VecDeque::new();
            queue.push_back(s);
            in_queue[s] = true;
            while let Some(u) = queue.pop_front() {
                in_queue[u] = false;
                let du = pot[u];
                for &eid in &self.adj[u] {
                    let e = &self.edges[eid as usize];
                    if e.cap > EPS && du + e.cost < pot[e.to] - EPS {
                        pot[e.to] = du + e.cost;
                        if !in_queue[e.to] {
                            in_queue[e.to] = true;
                            queue.push_back(e.to);
                        }
                    }
                }
            }
        }
        // Unreachable nodes keep ∞ potential; clamp so reduced costs
        // stay finite for arcs we may later traverse (they become
        // reachable only through augmentation, which cannot happen from
        // an unreachable component).
        for p in pot.iter_mut() {
            if !p.is_finite() {
                *p = 0.0;
            }
        }

        let mut dist = vec![f64::INFINITY; self.n];
        let mut pre_edge = vec![u32::MAX; self.n];
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(ordered::F64, usize)>> =
            std::collections::BinaryHeap::new();
        loop {
            dist.iter_mut().for_each(|d| *d = f64::INFINITY);
            pre_edge.iter_mut().for_each(|p| *p = u32::MAX);
            dist[s] = 0.0;
            heap.clear();
            heap.push(std::cmp::Reverse((ordered::F64(0.0), s)));
            while let Some(std::cmp::Reverse((ordered::F64(d), u))) = heap.pop() {
                if d > dist[u] + EPS {
                    continue;
                }
                for &eid in &self.adj[u] {
                    let e = &self.edges[eid as usize];
                    if e.cap <= EPS {
                        continue;
                    }
                    let rc = e.cost + pot[u] - pot[e.to];
                    debug_assert!(rc >= -1e-6, "negative reduced cost {rc}");
                    let nd = d + rc.max(0.0);
                    if nd < dist[e.to] - EPS {
                        dist[e.to] = nd;
                        pre_edge[e.to] = eid;
                        heap.push(std::cmp::Reverse((ordered::F64(nd), e.to)));
                    }
                }
            }
            if pre_edge[t] == u32::MAX {
                break;
            }
            // Deterministic fault injection, then the real budget: both
            // exits carry the flow routed so far, which successive
            // shortest paths keeps cost-optimal for its value.
            if let Some(action) = epplan_fault::point("flow.mcmf.augment") {
                sp.add_iters(guard.iterations());
                epplan_obs::counter_add("flow.augmentations", guard.iterations());
                return Err(SolveError::from_fault(STAGE, "flow.mcmf.augment", action)
                    .with_partial(total));
            }
            // Budget is spent per augmentation; ticking only once a
            // path exists avoids a false exhaustion on the final
            // (empty) search of an exactly-budgeted run.
            if let Err(e) = guard.tick(STAGE) {
                sp.add_iters(guard.iterations());
                epplan_obs::counter_add("flow.augmentations", guard.iterations());
                return Err(e.discard_partial().with_partial(total));
            }
            // Update potentials with the new distances.
            for v in 0..self.n {
                if dist[v].is_finite() {
                    pot[v] += dist[v];
                }
            }
            // Bottleneck and augment.
            let mut push = f64::INFINITY;
            let mut v = t;
            while v != s {
                let eid = pre_edge[v] as usize;
                push = push.min(self.edges[eid].cap);
                v = self.edges[eid ^ 1].to;
            }
            let mut v = t;
            let mut path_cost = 0.0;
            while v != s {
                let eid = pre_edge[v] as usize;
                self.edges[eid].cap -= push;
                self.edges[eid ^ 1].cap += push;
                path_cost += self.edges[eid].cost;
                v = self.edges[eid ^ 1].to;
            }
            total.flow += push;
            total.cost += push * path_cost;
        }
        sp.add_iters(guard.iterations());
        epplan_obs::counter_add("flow.augmentations", guard.iterations());
        Ok(total)
    }

    fn run(
        &mut self,
        s: usize,
        t: usize,
        limit: f64,
        budget: SolveBudget,
    ) -> Result<FlowResult, SolveError<FlowResult>> {
        self.check_inputs(s, t)?;
        if limit.is_nan() || limit < 0.0 {
            return Err(SolveError::bad_input(STAGE, format!("invalid flow limit {limit}")));
        }
        let mut sp = epplan_obs::span("flow.mcmf");
        let mut guard = BudgetGuard::new(budget);
        let mut total = FlowResult { flow: 0.0, cost: 0.0 };
        if s == t {
            return Ok(total);
        }
        let mut dist = vec![0.0f64; self.n];
        let mut in_queue = vec![false; self.n];
        let mut pre_edge = vec![u32::MAX; self.n];
        while total.flow < limit - EPS {
            // SPFA from s.
            dist.iter_mut().for_each(|d| *d = f64::INFINITY);
            pre_edge.iter_mut().for_each(|p| *p = u32::MAX);
            dist[s] = 0.0;
            let mut queue = VecDeque::new();
            queue.push_back(s);
            in_queue[s] = true;
            while let Some(u) = queue.pop_front() {
                in_queue[u] = false;
                let du = dist[u];
                for &eid in &self.adj[u] {
                    let e = &self.edges[eid as usize];
                    if e.cap > EPS && du + e.cost < dist[e.to] - EPS {
                        dist[e.to] = du + e.cost;
                        pre_edge[e.to] = eid;
                        if !in_queue[e.to] {
                            in_queue[e.to] = true;
                            queue.push_back(e.to);
                        }
                    }
                }
            }
            if pre_edge[t] == u32::MAX {
                break; // no augmenting path
            }
            // Deterministic fault injection mirrors the fast variant.
            if let Some(action) = epplan_fault::point("flow.mcmf.augment") {
                sp.add_iters(guard.iterations());
                epplan_obs::counter_add("flow.augmentations", guard.iterations());
                return Err(SolveError::from_fault(STAGE, "flow.mcmf.augment", action)
                    .with_partial(total));
            }
            // Budget is spent per augmentation (see the fast variant).
            if let Err(e) = guard.tick(STAGE) {
                sp.add_iters(guard.iterations());
                epplan_obs::counter_add("flow.augmentations", guard.iterations());
                return Err(e.discard_partial().with_partial(total));
            }
            // Bottleneck along the path.
            let mut push = limit - total.flow;
            let mut v = t;
            while v != s {
                let eid = pre_edge[v] as usize;
                push = push.min(self.edges[eid].cap);
                v = self.edges[eid ^ 1].to;
            }
            // Apply.
            let mut v = t;
            while v != s {
                let eid = pre_edge[v] as usize;
                self.edges[eid].cap -= push;
                self.edges[eid ^ 1].cap += push;
                v = self.edges[eid ^ 1].to;
            }
            total.flow += push;
            total.cost += push * dist[t];
        }
        sp.add_iters(guard.iterations());
        epplan_obs::counter_add("flow.augmentations", guard.iterations());
        Ok(total)
    }

    /// Reduced-cost optimality certificate: `true` when the residual
    /// graph (arcs with remaining capacity) contains no negative-cost
    /// cycle, which proves the current flow is cost-minimal among all
    /// flows of its value. Successive shortest paths maintains this
    /// invariant after every augmentation, so both complete runs and
    /// budget-exhausted partials should certify; call this after a
    /// solve for `--certify` runs and chaos tests. `O(V·E)`
    /// Bellman–Ford — cheap next to the solve, not free.
    ///
    /// Defective (poisoned) graphs never certify.
    pub fn verify_reduced_cost_optimality(&self) -> bool {
        if self.defect.is_some() {
            return false;
        }
        // Bellman–Ford from a virtual super-source (all distances 0):
        // if a full extra pass still relaxes after `n` rounds, a
        // negative-cost residual cycle exists.
        let mut dist = vec![0.0f64; self.n];
        let relax_all = |dist: &mut [f64]| {
            let mut relaxed = false;
            for u in 0..self.n {
                let du = dist[u];
                for &eid in &self.adj[u] {
                    let e = &self.edges[eid as usize];
                    if e.cap > EPS && du + e.cost < dist[e.to] - EPS {
                        dist[e.to] = du + e.cost;
                        relaxed = true;
                    }
                }
            }
            relaxed
        };
        for _ in 0..self.n {
            if !relax_all(&mut dist) {
                return true;
            }
        }
        !relax_all(&mut dist)
    }
}

/// Total-ordered `f64` wrapper for the Dijkstra heap (all values are
/// finite, non-NaN path costs).
mod ordered {
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub(super) struct F64(pub f64);
    impl Eq for F64 {}
    impl PartialOrd for F64 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for F64 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epplan_solve::FailureKind;

    #[test]
    fn fast_path_matches_spfa_on_examples() {
        let build = || {
            let mut g = MinCostFlow::new(4);
            g.add_edge(0, 1, 1.0, 2.0);
            g.add_edge(1, 2, 1.0, -1.5);
            g.add_edge(2, 3, 1.0, 0.5);
            g.add_edge(0, 3, 1.0, 3.0);
            g.add_edge(0, 2, 1.0, 4.0);
            g.add_edge(1, 3, 1.0, 6.0);
            g
        };
        let slow = build().max_flow_min_cost(0, 3).unwrap();
        let fast = build().max_flow_min_cost_fast(0, 3).unwrap();
        assert_eq!(slow.flow, fast.flow);
        assert!((slow.cost - fast.cost).abs() < 1e-9, "{slow:?} vs {fast:?}");
    }

    #[test]
    fn fast_path_source_equals_sink() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 1.0, 1.0);
        let r = g.max_flow_min_cost_fast(0, 0).unwrap();
        assert_eq!(r.flow, 0.0);
    }

    #[test]
    fn fast_path_disconnected() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 1.0, 1.0);
        let r = g.max_flow_min_cost_fast(0, 2).unwrap();
        assert_eq!(r.flow, 0.0);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn simple_two_path_network() {
        let mut g = MinCostFlow::new(4);
        let e_cheap = g.add_edge(0, 1, 1.0, 1.0);
        g.add_edge(1, 3, 1.0, 1.0);
        let e_dear = g.add_edge(0, 2, 1.0, 5.0);
        g.add_edge(2, 3, 1.0, 5.0);
        let r = g.max_flow_min_cost(0, 3).unwrap();
        assert_eq!(r.flow, 2.0);
        assert_eq!(r.cost, 1.0 + 1.0 + 5.0 + 5.0);
        assert_eq!(g.flow_on(e_cheap), 1.0);
        assert_eq!(g.flow_on(e_dear), 1.0);
    }

    #[test]
    fn prefers_cheap_path_when_capacity_suffices() {
        let mut g = MinCostFlow::new(3);
        let cheap = g.add_edge(0, 1, 5.0, 1.0);
        g.add_edge(1, 2, 5.0, 0.0);
        let dear = g.add_edge(0, 2, 5.0, 10.0);
        let r = g.flow_with_limit(0, 2, 3.0).unwrap();
        assert_eq!(r.flow, 3.0);
        assert_eq!(r.cost, 3.0);
        assert_eq!(g.flow_on(cheap), 3.0);
        assert_eq!(g.flow_on(dear), 0.0);
    }

    #[test]
    fn respects_limit() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 10.0, 2.0);
        let r = g.flow_with_limit(0, 1, 4.0).unwrap();
        assert_eq!(r.flow, 4.0);
        assert_eq!(r.cost, 8.0);
    }

    #[test]
    fn disconnected_yields_zero() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 1.0, 1.0);
        let r = g.max_flow_min_cost(0, 2).unwrap();
        assert_eq!(r.flow, 0.0);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn source_equals_sink() {
        let mut g = MinCostFlow::new(1);
        let r = g.max_flow_min_cost(0, 0).unwrap();
        assert_eq!(r.flow, 0.0);
    }

    #[test]
    fn negative_cost_edges() {
        // Taking the negative edge reduces total cost; no negative cycle.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1.0, 2.0);
        let neg = g.add_edge(1, 2, 1.0, -1.5);
        g.add_edge(2, 3, 1.0, 0.5);
        g.add_edge(0, 3, 1.0, 3.0);
        let r = g.flow_with_limit(0, 3, 1.0).unwrap();
        assert_eq!(r.flow, 1.0);
        assert!((r.cost - 1.0).abs() < 1e-9);
        assert_eq!(g.flow_on(neg), 1.0);
    }

    #[test]
    fn cost_reroutes_via_residual() {
        // Classic example where a later augmentation must undo part of
        // an earlier one through the residual edge.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1.0, 1.0);
        g.add_edge(0, 2, 1.0, 4.0);
        g.add_edge(1, 2, 1.0, 1.0);
        g.add_edge(1, 3, 1.0, 6.0);
        g.add_edge(2, 3, 2.0, 1.0);
        let r = g.max_flow_min_cost(0, 3).unwrap();
        assert_eq!(r.flow, 2.0);
        // Best: 0→1→2→3 (3) and 0→2→3 (5) = 8.
        assert!((r.cost - 8.0).abs() < 1e-9);
    }

    #[test]
    fn integral_capacities_give_integral_flow() {
        let mut g = MinCostFlow::new(6);
        let mut ids = Vec::new();
        for l in 1..=2 {
            g.add_edge(0, l, 1.0, 0.0);
        }
        for r in 3..=4 {
            g.add_edge(r, 5, 1.0, 0.0);
        }
        for l in 1..=2 {
            for r in 3..=4 {
                ids.push(g.add_edge(l, r, 1.0, (l * r) as f64));
            }
        }
        let res = g.max_flow_min_cost(0, 5).unwrap();
        assert_eq!(res.flow, 2.0);
        for id in ids {
            let f = g.flow_on(id);
            assert!(f == 0.0 || f == 1.0, "non-integral flow {f}");
        }
    }

    #[test]
    fn bad_edge_poisons_graph_instead_of_panicking() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 5, 1.0, 0.0);
        let e = g.max_flow_min_cost(0, 1).unwrap_err();
        assert_eq!(e.kind, FailureKind::BadInput);
    }

    #[test]
    fn nan_capacity_and_negative_capacity_rejected() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, f64::NAN, 0.0);
        assert_eq!(g.max_flow_min_cost(0, 1).unwrap_err().kind, FailureKind::BadInput);

        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, -1.0, 0.0);
        assert_eq!(g.max_flow_min_cost(0, 1).unwrap_err().kind, FailureKind::BadInput);
    }

    #[test]
    fn terminal_out_of_range_rejected() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 1.0, 0.0);
        let e = g.max_flow_min_cost(0, 9).unwrap_err();
        assert_eq!(e.kind, FailureKind::BadInput);
    }

    #[test]
    fn augmentation_budget_returns_partial_flow() {
        // Two disjoint unit paths; a 1-augmentation budget routes only
        // the cheaper one and reports exhaustion with that partial.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1.0, 1.0);
        g.add_edge(1, 3, 1.0, 0.0);
        g.add_edge(0, 2, 1.0, 5.0);
        g.add_edge(2, 3, 1.0, 0.0);
        let e = g
            .flow_with_limit_and_budget(0, 3, f64::INFINITY, SolveBudget::from_iteration_cap(1))
            .unwrap_err();
        assert_eq!(e.kind, FailureKind::BudgetExhausted);
        let partial = e.partial.expect("augmentation budget keeps partial flow");
        assert_eq!(partial.flow, 1.0);
        assert_eq!(partial.cost, 1.0);
    }

    #[test]
    fn completed_and_partial_flows_certify_reduced_cost_optimality() {
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1.0, 1.0);
        g.add_edge(1, 3, 1.0, 0.0);
        g.add_edge(0, 2, 1.0, 5.0);
        g.add_edge(2, 3, 1.0, 0.0);
        g.max_flow_min_cost_fast(0, 3).unwrap();
        assert!(g.verify_reduced_cost_optimality(), "complete flow certifies");

        // Successive shortest paths keeps even a truncated flow
        // cost-optimal for its value, so the partial certifies too.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1.0, 1.0);
        g.add_edge(1, 3, 1.0, 0.0);
        g.add_edge(0, 2, 1.0, 5.0);
        g.add_edge(2, 3, 1.0, 0.0);
        let e = g
            .flow_with_limit_and_budget(0, 3, f64::INFINITY, SolveBudget::from_iteration_cap(1))
            .unwrap_err();
        assert_eq!(e.kind, FailureKind::BudgetExhausted);
        assert!(g.verify_reduced_cost_optimality(), "SSP partial certifies");
    }

    #[test]
    fn negative_cycle_fails_the_optimality_certificate() {
        // A capacitated negative-cost cycle means cost could still be
        // reduced without changing the flow value: not optimal.
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 1.0, 1.0);
        g.add_edge(1, 0, 1.0, -2.0);
        assert!(!g.verify_reduced_cost_optimality());

        // Poisoned graphs never certify.
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 5, 1.0, 0.0);
        assert!(!g.verify_reduced_cost_optimality());
    }

    #[test]
    fn fast_augmentation_budget_returns_partial_flow() {
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1.0, 1.0);
        g.add_edge(1, 3, 1.0, 0.0);
        g.add_edge(0, 2, 1.0, 5.0);
        g.add_edge(2, 3, 1.0, 0.0);
        let e = g
            .max_flow_min_cost_fast_with_budget(0, 3, SolveBudget::from_iteration_cap(1))
            .unwrap_err();
        assert_eq!(e.kind, FailureKind::BudgetExhausted);
        let partial = e.partial.expect("partial flow");
        assert_eq!(partial.flow, 1.0);
    }
}
