//! Minimum-cost flow and bipartite assignment.
//!
//! The Shmoys–Tardos rounding step of the paper's GAP-based algorithm
//! (Section III-A, \[6\]) converts a fractional GAP solution into an
//! integral assignment by computing a **minimum-cost matching that
//! saturates every job** in a bipartite "slot graph". This crate
//! provides the two pieces needed for that:
//!
//! * [`MinCostFlow`] — successive-shortest-path min-cost max-flow with
//!   SPFA path search (handles the negative-cost arcs that appear when
//!   utilities are converted to costs `1 − μ`);
//! * [`min_cost_assignment`] — a job→slot assignment layer on top,
//!   with per-slot capacities, requiring every left vertex be matched.
//!
//! Both follow the fallible contract of `epplan-solve`: malformed
//! graphs are `BadInput` errors rather than panics, an incomplete
//! matching is an `Infeasible` error carrying the partial assignment,
//! and the augmentation loops spend an [`epplan_solve::SolveBudget`]
//! (one iteration per augmentation) when one is supplied.
//!
//! Capacities are `f64` but all callers use integral capacities, for
//! which successive shortest paths provably returns integral flows.


// Solver code must degrade with typed errors, never panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matching;
mod mcmf;

pub use matching::{min_cost_assignment, min_cost_assignment_with_budget, Assignment};
pub use mcmf::{EdgeId, FlowResult, MinCostFlow};
