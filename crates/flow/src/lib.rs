//! Minimum-cost flow and bipartite assignment.
//!
//! The Shmoys–Tardos rounding step of the paper's GAP-based algorithm
//! (Section III-A, \[6\]) converts a fractional GAP solution into an
//! integral assignment by computing a **minimum-cost matching that
//! saturates every job** in a bipartite "slot graph". This crate
//! provides the two pieces needed for that:
//!
//! * [`MinCostFlow`] — successive-shortest-path min-cost max-flow with
//!   SPFA path search (handles the negative-cost arcs that appear when
//!   utilities are converted to costs `1 − μ`);
//! * [`min_cost_assignment`] — a job→slot assignment layer on top,
//!   with per-slot capacities, requiring every left vertex be matched.
//!
//! Capacities are `f64` but all callers use integral capacities, for
//! which successive shortest paths provably returns integral flows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matching;
mod mcmf;

pub use matching::{min_cost_assignment, Assignment};
pub use mcmf::{EdgeId, FlowResult, MinCostFlow};
