//! Workspace-wide solver vocabulary: statuses, structured errors,
//! solve budgets and degradation reports.
//!
//! Every public solver entry point in the workspace — the simplex LP
//! (`epplan-lp`), the GAP pipeline (`epplan-gap`), min-cost flow and
//! matching (`epplan-flow`), and the GEPC/IEP solvers in `epplan-core`
//! — speaks this vocabulary: it returns `Result<_, SolveError<_>>`,
//! spends work against a [`SolveBudget`], and (at the facade level)
//! records what it tried in a [`SolveReport`]. A solver may *degrade*
//! (hand back a [`SolveStatus::BestEffort`] artifact, or attach a
//! partial result to its error) but it may not panic and it may not
//! spin forever on a pathological instance.
//!
//! The crate is dependency-free on purpose: `epplan-lp`, `epplan-flow`
//! and `epplan-gap` sit below `epplan-core` in the crate graph, so the
//! shared vocabulary has to live below all of them.


// Solver code must degrade with typed errors, never panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
mod budget;
pub mod certify;
mod error;
mod report;

pub use budget::{BudgetGuard, DeadlineExceeded, DeadlineFlag, SolveBudget};
pub use certify::{certify_plan, recompute_dif, CertViolation, Certificate, OptimalityCert, PlanView};
pub use error::{FailureKind, SolveError};
pub use report::{AttemptOutcome, SolveAttempt, SolveReport};

/// How good a *successful* solve is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// The solver ran to completion and its optimality/approximation
    /// guarantee holds for the returned artifact.
    Optimal,
    /// The solver degraded — it hit a budget, a numerical guard or a
    /// fallback path — but the returned artifact was validated and is
    /// the best one available.
    BestEffort,
}

impl SolveStatus {
    /// `true` when the solver's full guarantee applies.
    pub fn is_optimal(self) -> bool {
        matches!(self, SolveStatus::Optimal)
    }
}

impl std::fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveStatus::Optimal => f.write_str("optimal"),
            SolveStatus::BestEffort => f.write_str("best-effort"),
        }
    }
}
