//! Bounded work per solve call: wall-clock deadlines and iteration
//! caps, plus the in-loop guard that enforces them cheaply.

use std::time::{Duration, Instant};

use crate::{FailureKind, SolveError};

/// How much work one solve call may spend. The default is unlimited;
/// serving layers tighten it per request.
///
/// A budget combines an optional wall-clock allowance with an optional
/// iteration cap; whichever trips first stops the solver. "Iteration"
/// is the solver's natural unit — a simplex pivot, a
/// multiplicative-weights round, a flow augmentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveBudget {
    /// Wall-clock allowance, measured from [`BudgetGuard::new`].
    pub time_limit: Option<Duration>,
    /// Iteration cap across the guarded loop.
    pub max_iterations: Option<u64>,
}

impl SolveBudget {
    /// No limits (the default).
    pub const UNLIMITED: SolveBudget = SolveBudget {
        time_limit: None,
        max_iterations: None,
    };

    /// Budget with only a wall-clock allowance.
    pub fn from_time_limit(limit: Duration) -> Self {
        SolveBudget {
            time_limit: Some(limit),
            max_iterations: None,
        }
    }

    /// Budget with only an iteration cap.
    pub fn from_iteration_cap(cap: u64) -> Self {
        SolveBudget {
            time_limit: None,
            max_iterations: Some(cap),
        }
    }

    /// Returns this budget with the wall-clock allowance set.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Returns this budget with the iteration cap set.
    pub fn with_iteration_cap(mut self, cap: u64) -> Self {
        self.max_iterations = Some(cap);
        self
    }

    /// `true` when neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.time_limit.is_none() && self.max_iterations.is_none()
    }

    /// The tighter of two budgets, limit by limit.
    pub fn min(self, other: SolveBudget) -> SolveBudget {
        fn tighter<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        }
        SolveBudget {
            time_limit: tighter(self.time_limit, other.time_limit),
            max_iterations: tighter(self.max_iterations, other.max_iterations),
        }
    }
}

/// How often the guard consults the wall clock; iteration caps are
/// checked on every tick. Power of two so the modulo folds to a mask.
const CLOCK_CHECK_PERIOD: u64 = 64;

/// In-loop enforcement of a [`SolveBudget`]. Create one per guarded
/// loop (or per pipeline) and call [`BudgetGuard::tick`] once per
/// iteration; the first tick past a limit returns an error carrying
/// the iteration count and elapsed time.
#[derive(Debug, Clone)]
pub struct BudgetGuard {
    budget: SolveBudget,
    started: Instant,
    iterations: u64,
}

impl BudgetGuard {
    pub fn new(budget: SolveBudget) -> Self {
        BudgetGuard {
            budget,
            started: Instant::now(),
            iterations: 0,
        }
    }

    /// Counts one iteration of `stage` and checks the limits. The
    /// wall clock is consulted every [`CLOCK_CHECK_PERIOD`] ticks (and
    /// on the first), so the guard adds no measurable per-iteration
    /// cost to hot loops.
    #[inline]
    pub fn tick(&mut self, stage: &'static str) -> Result<(), SolveError<()>> {
        self.iterations += 1;
        if let Some(cap) = self.budget.max_iterations {
            if self.iterations > cap {
                return Err(self.exhausted(stage, format!("iteration cap {cap} reached")));
            }
        }
        if let Some(limit) = self.budget.time_limit {
            if self.iterations % CLOCK_CHECK_PERIOD == 1 || CLOCK_CHECK_PERIOD == 1 {
                let elapsed = self.started.elapsed();
                if elapsed > limit {
                    return Err(self.exhausted(
                        stage,
                        format!("deadline {limit:?} exceeded after {elapsed:?}"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Point check against the wall-clock limit only, for use between
    /// pipeline stages (always consults the clock).
    pub fn check_deadline(&self, stage: &'static str) -> Result<(), SolveError<()>> {
        if let Some(limit) = self.budget.time_limit {
            let elapsed = self.started.elapsed();
            if elapsed > limit {
                return Err(self.exhausted(
                    stage,
                    format!("deadline {limit:?} exceeded after {elapsed:?}"),
                ));
            }
        }
        Ok(())
    }

    fn exhausted(&self, stage: &'static str, message: String) -> SolveError<()> {
        // Budget-consumption metrics: how often budgets trip and how
        // much work was spent when they did (no-ops unless enabled).
        epplan_obs::counter_add("budget.exhausted", 1);
        epplan_obs::gauge_set("budget.spent_iters", self.iterations as f64);
        epplan_obs::gauge_set(
            "budget.spent_ms",
            self.started.elapsed().as_secs_f64() * 1e3,
        );
        SolveError::new(FailureKind::BudgetExhausted, stage, message)
    }

    /// The portion of the budget still unspent: the wall-clock
    /// allowance minus elapsed time and the iteration cap minus the
    /// ticks so far, both saturating at zero. Hand this to a downstream
    /// pipeline stage so a whole chain shares one allowance.
    pub fn remaining_budget(&self) -> SolveBudget {
        SolveBudget {
            time_limit: self
                .budget
                .time_limit
                .map(|l| l.saturating_sub(self.started.elapsed())),
            max_iterations: self
                .budget
                .max_iterations
                .map(|c| c.saturating_sub(self.iterations)),
        }
    }

    /// Iterations ticked so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Wall-clock time since the guard was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The budget being enforced.
    pub fn budget(&self) -> &SolveBudget {
        &self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let mut g = BudgetGuard::new(SolveBudget::UNLIMITED);
        for _ in 0..100_000 {
            assert!(g.tick("test").is_ok());
        }
        assert_eq!(g.iterations(), 100_000);
    }

    #[test]
    fn iteration_cap_trips_exactly() {
        let mut g = BudgetGuard::new(SolveBudget::from_iteration_cap(10));
        for _ in 0..10 {
            assert!(g.tick("test").is_ok());
        }
        let err = g.tick("test").unwrap_err();
        assert_eq!(err.kind, FailureKind::BudgetExhausted);
        assert_eq!(err.stage, "test");
    }

    #[test]
    fn zero_time_budget_trips_on_first_tick() {
        let mut g = BudgetGuard::new(SolveBudget::from_time_limit(Duration::ZERO));
        // The first tick consults the clock; any positive elapsed time
        // exceeds a zero allowance.
        std::thread::sleep(Duration::from_millis(1));
        let err = g.tick("test").unwrap_err();
        assert_eq!(err.kind, FailureKind::BudgetExhausted);
    }

    #[test]
    fn deadline_check_between_stages() {
        let g = BudgetGuard::new(SolveBudget::from_time_limit(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(1));
        assert!(g.check_deadline("stage").is_err());
        let g = BudgetGuard::new(SolveBudget::UNLIMITED);
        assert!(g.check_deadline("stage").is_ok());
    }

    #[test]
    fn remaining_budget_subtracts_spent_work() {
        let mut g = BudgetGuard::new(
            SolveBudget::from_iteration_cap(10).with_time_limit(Duration::from_secs(60)),
        );
        for _ in 0..4 {
            g.tick("test").unwrap();
        }
        let rem = g.remaining_budget();
        assert_eq!(rem.max_iterations, Some(6));
        assert!(rem.time_limit.unwrap() <= Duration::from_secs(60));
        // Saturation: an over-spent guard leaves a zero budget, not a
        // panic or a wrap-around.
        let mut g = BudgetGuard::new(SolveBudget::from_iteration_cap(1));
        g.tick("test").unwrap();
        let _ = g.tick("test");
        assert_eq!(g.remaining_budget().max_iterations, Some(0));
        assert!(BudgetGuard::new(SolveBudget::UNLIMITED)
            .remaining_budget()
            .is_unlimited());
    }

    #[test]
    fn min_takes_the_tighter_limits() {
        let a = SolveBudget::from_iteration_cap(100)
            .with_time_limit(Duration::from_secs(5));
        let b = SolveBudget::from_iteration_cap(50);
        let m = a.min(b);
        assert_eq!(m.max_iterations, Some(50));
        assert_eq!(m.time_limit, Some(Duration::from_secs(5)));
        assert!(SolveBudget::UNLIMITED.min(SolveBudget::UNLIMITED).is_unlimited());
    }
}
