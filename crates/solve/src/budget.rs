//! Bounded work per solve call: wall-clock deadlines and iteration
//! caps, plus the in-loop guard that enforces them cheaply.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::{FailureKind, SolveError};

/// How much work one solve call may spend. The default is unlimited;
/// serving layers tighten it per request.
///
/// A budget combines an optional wall-clock allowance with an optional
/// iteration cap; whichever trips first stops the solver. "Iteration"
/// is the solver's natural unit — a simplex pivot, a
/// multiplicative-weights round, a flow augmentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveBudget {
    /// Wall-clock allowance, measured from [`BudgetGuard::new`].
    pub time_limit: Option<Duration>,
    /// Iteration cap across the guarded loop.
    pub max_iterations: Option<u64>,
}

impl SolveBudget {
    /// No limits (the default).
    pub const UNLIMITED: SolveBudget = SolveBudget {
        time_limit: None,
        max_iterations: None,
    };

    /// Budget with only a wall-clock allowance.
    pub fn from_time_limit(limit: Duration) -> Self {
        SolveBudget {
            time_limit: Some(limit),
            max_iterations: None,
        }
    }

    /// Budget with only an iteration cap.
    pub fn from_iteration_cap(cap: u64) -> Self {
        SolveBudget {
            time_limit: None,
            max_iterations: Some(cap),
        }
    }

    /// Returns this budget with the wall-clock allowance set.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Returns this budget with the iteration cap set.
    pub fn with_iteration_cap(mut self, cap: u64) -> Self {
        self.max_iterations = Some(cap);
        self
    }

    /// `true` when neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.time_limit.is_none() && self.max_iterations.is_none()
    }

    /// The tighter of two budgets, limit by limit.
    pub fn min(self, other: SolveBudget) -> SolveBudget {
        fn tighter<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        }
        SolveBudget {
            time_limit: tighter(self.time_limit, other.time_limit),
            max_iterations: tighter(self.max_iterations, other.max_iterations),
        }
    }
}

/// How often the guard consults the wall clock; iteration caps are
/// checked on every tick. Power of two so the modulo folds to a mask.
const CLOCK_CHECK_PERIOD: u64 = 64;

/// In-loop enforcement of a [`SolveBudget`]. Create one per guarded
/// loop (or per pipeline) and call [`BudgetGuard::tick`] once per
/// iteration; the first tick past a limit returns an error carrying
/// the iteration count and elapsed time.
#[derive(Debug, Clone)]
pub struct BudgetGuard {
    budget: SolveBudget,
    started: Instant,
    iterations: u64,
}

impl BudgetGuard {
    pub fn new(budget: SolveBudget) -> Self {
        BudgetGuard {
            budget,
            started: Instant::now(),
            iterations: 0,
        }
    }

    /// Counts one iteration of `stage` and checks the limits. The
    /// wall clock is consulted every [`CLOCK_CHECK_PERIOD`] ticks (and
    /// on the first), so the guard adds no measurable per-iteration
    /// cost to hot loops.
    #[inline]
    pub fn tick(&mut self, stage: &'static str) -> Result<(), SolveError<()>> {
        // Deterministic fault injection: one relaxed atomic load when
        // no fault plan is armed (DESIGN.md § Fault model).
        if let Some(action) = epplan_fault::point("solve.budget.tick") {
            return Err(SolveError::from_fault(stage, "solve.budget.tick", action));
        }
        self.iterations += 1;
        if let Some(cap) = self.budget.max_iterations {
            if self.iterations > cap {
                return Err(self.exhausted(stage, format!("iteration cap {cap} reached")));
            }
        }
        if let Some(limit) = self.budget.time_limit {
            if self.iterations % CLOCK_CHECK_PERIOD == 1 || CLOCK_CHECK_PERIOD == 1 {
                // A zero allowance is pre-expired by definition — no
                // clock reading needed. This keeps zero-budget tests
                // deterministic on coarse monotonic clocks.
                let elapsed = self.started.elapsed();
                if elapsed > limit || limit.is_zero() {
                    return Err(self.exhausted(
                        stage,
                        format!("deadline {limit:?} exceeded after {elapsed:?}"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Point check against the wall-clock limit only, for use between
    /// pipeline stages (always consults the clock).
    pub fn check_deadline(&self, stage: &'static str) -> Result<(), SolveError<()>> {
        if let Some(limit) = self.budget.time_limit {
            let elapsed = self.started.elapsed();
            if elapsed > limit || limit.is_zero() {
                return Err(self.exhausted(
                    stage,
                    format!("deadline {limit:?} exceeded after {elapsed:?}"),
                ));
            }
        }
        Ok(())
    }

    /// A shareable snapshot of this guard's wall-clock deadline for
    /// use *inside* parallel regions: workers [`DeadlineFlag::poll`]
    /// it between chunks, and the owning stage turns a tripped flag
    /// into the usual `BudgetExhausted` error via
    /// [`BudgetGuard::check_deadline`] after the join. Iteration caps
    /// stay with the (single-threaded) guard; only the deadline is
    /// shared.
    pub fn deadline_flag(&self) -> DeadlineFlag {
        let deadline = match self.budget.time_limit {
            // A zero allowance is pre-expired; `checked_add` also
            // treats absurdly-far deadlines as unlimited rather than
            // panicking.
            Some(limit) if limit.is_zero() => DeadlineDeadline::Expired,
            Some(limit) => self
                .started
                .checked_add(limit)
                .map_or(DeadlineDeadline::None, DeadlineDeadline::At),
            None => DeadlineDeadline::None,
        };
        DeadlineFlag {
            deadline,
            tripped: AtomicBool::new(false),
        }
    }

    fn exhausted(&self, stage: &'static str, message: String) -> SolveError<()> {
        // Budget-consumption metrics: how often budgets trip and how
        // much work was spent when they did (no-ops unless enabled).
        epplan_obs::counter_add("budget.exhausted", 1);
        epplan_obs::gauge_set("budget.spent_iters", self.iterations as f64);
        epplan_obs::gauge_set(
            "budget.spent_ms",
            self.started.elapsed().as_secs_f64() * 1e3,
        );
        SolveError::new(FailureKind::BudgetExhausted, stage, message)
    }

    /// The portion of the budget still unspent: the wall-clock
    /// allowance minus elapsed time and the iteration cap minus the
    /// ticks so far, both saturating at zero. Hand this to a downstream
    /// pipeline stage so a whole chain shares one allowance.
    pub fn remaining_budget(&self) -> SolveBudget {
        SolveBudget {
            time_limit: self
                .budget
                .time_limit
                .map(|l| l.saturating_sub(self.started.elapsed())),
            max_iterations: self
                .budget
                .max_iterations
                .map(|c| c.saturating_sub(self.iterations)),
        }
    }

    /// Iterations ticked so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Wall-clock time since the guard was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The budget being enforced.
    pub fn budget(&self) -> &SolveBudget {
        &self.budget
    }
}

#[derive(Debug)]
enum DeadlineDeadline {
    /// No wall-clock limit: polls never trip.
    None,
    /// Trip once the monotonic clock passes this instant.
    At(Instant),
    /// Pre-expired (zero allowance): every poll trips.
    Expired,
}

/// The error a tripped [`DeadlineFlag`] poll returns: the deadline
/// passed and the parallel region should drain. Deliberately carries
/// no payload — the owning stage already knows which budget it was
/// enforcing and converts the trip into a typed `BudgetExhausted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceeded;

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("solve deadline exceeded")
    }
}

impl std::error::Error for DeadlineExceeded {}

/// A wall-clock deadline shareable across worker threads (`Sync`, no
/// locks). Workers call [`DeadlineFlag::poll`] between work chunks;
/// once any worker observes the deadline passed, the flag latches and
/// every subsequent poll on every thread fails fast without touching
/// the clock, so a whole parallel region drains promptly.
///
/// The flag itself carries no error machinery — a tripped flag means
/// "stop producing work"; the owning stage converts that into a typed
/// `BudgetExhausted` via [`BudgetGuard::check_deadline`].
#[derive(Debug)]
pub struct DeadlineFlag {
    deadline: DeadlineDeadline,
    tripped: AtomicBool,
}

impl DeadlineFlag {
    /// A flag that never trips, for unlimited budgets.
    pub fn unlimited() -> Self {
        DeadlineFlag {
            deadline: DeadlineDeadline::None,
            tripped: AtomicBool::new(false),
        }
    }

    /// Checks the deadline (reading the clock only while untripped):
    /// `Ok(())` while inside the allowance, `Err(DeadlineExceeded)`
    /// once expired.
    #[inline]
    pub fn poll(&self) -> Result<(), DeadlineExceeded> {
        if self.tripped.load(Ordering::Relaxed) {
            return Err(DeadlineExceeded);
        }
        let expired = match self.deadline {
            DeadlineDeadline::None => false,
            DeadlineDeadline::At(t) => Instant::now() > t,
            DeadlineDeadline::Expired => true,
        };
        if expired {
            self.tripped.store(true, Ordering::Relaxed);
            return Err(DeadlineExceeded);
        }
        Ok(())
    }

    /// `true` once any poll (on any thread) observed expiry.
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let mut g = BudgetGuard::new(SolveBudget::UNLIMITED);
        for _ in 0..100_000 {
            assert!(g.tick("test").is_ok());
        }
        assert_eq!(g.iterations(), 100_000);
    }

    #[test]
    fn iteration_cap_trips_exactly() {
        let mut g = BudgetGuard::new(SolveBudget::from_iteration_cap(10));
        for _ in 0..10 {
            assert!(g.tick("test").is_ok());
        }
        let err = g.tick("test").unwrap_err();
        assert_eq!(err.kind, FailureKind::BudgetExhausted);
        assert_eq!(err.stage, "test");
    }

    #[test]
    fn zero_time_budget_trips_on_first_tick() {
        // A zero allowance is pre-expired by definition: the very
        // first tick must trip without any sleeping, regardless of
        // clock granularity.
        let mut g = BudgetGuard::new(SolveBudget::from_time_limit(Duration::ZERO));
        let err = g.tick("test").unwrap_err();
        assert_eq!(err.kind, FailureKind::BudgetExhausted);
    }

    #[test]
    fn deadline_check_between_stages() {
        let g = BudgetGuard::new(SolveBudget::from_time_limit(Duration::ZERO));
        assert!(g.check_deadline("stage").is_err());
        let g = BudgetGuard::new(SolveBudget::UNLIMITED);
        assert!(g.check_deadline("stage").is_ok());
    }

    #[test]
    fn deadline_flag_latches_and_shares() {
        // Zero allowance: pre-expired, first poll trips.
        let g = BudgetGuard::new(SolveBudget::from_time_limit(Duration::ZERO));
        let flag = g.deadline_flag();
        assert!(!flag.is_tripped());
        assert!(flag.poll().is_err());
        assert!(flag.is_tripped());
        // Once tripped, it stays tripped (latching), including when
        // observed from other threads. Cross-thread observation goes
        // through epplan-par — the single owner of thread creation —
        // exactly as production parallel regions poll the flag.
        let polls = epplan_par::par_range_map(4, 1, |_chunk| {
            let tripped_here = flag.poll().is_err();
            tripped_here && flag.is_tripped()
        });
        assert_eq!(polls.len(), 4);
        assert!(polls.iter().all(|&tripped| tripped));

        // Unlimited: never trips.
        let g = BudgetGuard::new(SolveBudget::UNLIMITED);
        let flag = g.deadline_flag();
        for _ in 0..1_000 {
            assert!(flag.poll().is_ok());
        }
        assert!(!flag.is_tripped());
        assert!(DeadlineFlag::unlimited().poll().is_ok());

        // Generous allowance: polls pass while well inside it.
        let g = BudgetGuard::new(SolveBudget::from_time_limit(Duration::from_secs(3600)));
        assert!(g.deadline_flag().poll().is_ok());
    }

    #[test]
    fn remaining_budget_subtracts_spent_work() {
        let mut g = BudgetGuard::new(
            SolveBudget::from_iteration_cap(10).with_time_limit(Duration::from_secs(60)),
        );
        for _ in 0..4 {
            g.tick("test").unwrap();
        }
        let rem = g.remaining_budget();
        assert_eq!(rem.max_iterations, Some(6));
        assert!(rem.time_limit.unwrap() <= Duration::from_secs(60));
        // Saturation: an over-spent guard leaves a zero budget, not a
        // panic or a wrap-around.
        let mut g = BudgetGuard::new(SolveBudget::from_iteration_cap(1));
        g.tick("test").unwrap();
        let _ = g.tick("test");
        assert_eq!(g.remaining_budget().max_iterations, Some(0));
        assert!(BudgetGuard::new(SolveBudget::UNLIMITED)
            .remaining_budget()
            .is_unlimited());
    }

    #[test]
    fn min_takes_the_tighter_limits() {
        let a = SolveBudget::from_iteration_cap(100)
            .with_time_limit(Duration::from_secs(5));
        let b = SolveBudget::from_iteration_cap(50);
        let m = a.min(b);
        assert_eq!(m.max_iterations, Some(50));
        assert_eq!(m.time_limit, Some(Duration::from_secs(5)));
        assert!(SolveBudget::UNLIMITED.min(SolveBudget::UNLIMITED).is_unlimited());
    }
}
