//! The structured error half of the solver vocabulary.

/// Why a solve failed (the failure half of the status hierarchy;
/// successes are [`crate::SolveStatus`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The input violates the solver's contract (NaN weights, shape
    /// mismatches, out-of-range ids). Retrying cannot help.
    BadInput,
    /// The constraints admit no solution (or none for a specific
    /// item). Retrying cannot help.
    Infeasible,
    /// The [`crate::SolveBudget`] ran out before completion. Retrying
    /// with a larger budget may help; the error usually carries the
    /// best partial artifact.
    BudgetExhausted,
    /// A numerical guard tripped (cycling, unbounded objective, NaN in
    /// the tableau). The instance is probably degenerate; a fallback
    /// solver is the right response.
    NumericalInstability,
}

impl FailureKind {
    /// Terse single-word code, used by the one-line degradation-chain
    /// summary (`gap_based ✗ budget → greedy ✓`).
    pub fn short_code(self) -> &'static str {
        match self {
            FailureKind::BadInput => "input",
            FailureKind::Infeasible => "infeasible",
            FailureKind::BudgetExhausted => "budget",
            FailureKind::NumericalInstability => "numerical",
        }
    }

    /// The documented CLI exit code for this failure class — the
    /// single source of truth for the README/DESIGN exit-code contract
    /// (1–7). The `epplan` binary's `FailClass` mapping is tested
    /// exhaustively against this function.
    ///
    /// `NumericalInstability` maps to 1 (internal error): by the time
    /// a numerical failure escapes the CLI every fallback tier has
    /// been exhausted, which is an internal defect, not a property of
    /// the input.
    pub fn exit_code(self) -> i32 {
        match self {
            FailureKind::NumericalInstability => 1,
            FailureKind::BadInput => 5,
            FailureKind::Infeasible => 6,
            FailureKind::BudgetExhausted => 7,
        }
    }

    /// Every variant, for exhaustive contract tests.
    pub const ALL: [FailureKind; 4] = [
        FailureKind::BadInput,
        FailureKind::Infeasible,
        FailureKind::BudgetExhausted,
        FailureKind::NumericalInstability,
    ];
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::BadInput => f.write_str("bad input"),
            FailureKind::Infeasible => f.write_str("infeasible"),
            FailureKind::BudgetExhausted => f.write_str("budget exhausted"),
            FailureKind::NumericalInstability => f.write_str("numerical instability"),
        }
    }
}

/// A structured solver failure: what went wrong, where, and — when one
/// exists — the best partial artifact produced before the failure.
///
/// `P` is the solver's artifact type (an LP solution, a `GapSolution`,
/// a GEPC `Solution`, …). Solvers without a meaningful partial use the
/// default `P = ()`.
#[derive(Debug, Clone)]
pub struct SolveError<P = ()> {
    /// Failure class.
    pub kind: FailureKind,
    /// Which pipeline stage failed, e.g. `"lp.simplex"`,
    /// `"gap.rounding"`, `"core.gap_based"`.
    pub stage: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Best artifact available when the failure occurred, if any.
    pub partial: Option<P>,
}

impl<P> SolveError<P> {
    pub fn new(kind: FailureKind, stage: &'static str, message: impl Into<String>) -> Self {
        SolveError {
            kind,
            stage,
            message: message.into(),
            partial: None,
        }
    }

    pub fn bad_input(stage: &'static str, message: impl Into<String>) -> Self {
        Self::new(FailureKind::BadInput, stage, message)
    }

    pub fn infeasible(stage: &'static str, message: impl Into<String>) -> Self {
        Self::new(FailureKind::Infeasible, stage, message)
    }

    pub fn budget_exhausted(stage: &'static str, message: impl Into<String>) -> Self {
        Self::new(FailureKind::BudgetExhausted, stage, message)
    }

    pub fn numerical(stage: &'static str, message: impl Into<String>) -> Self {
        Self::new(FailureKind::NumericalInstability, stage, message)
    }

    /// The conventional realisation of a fired injection fault as a
    /// typed error (DESIGN.md § Fault model): `error`/`nan` → numerical
    /// instability, `deadline`/`alloc` → budget exhaustion. Sites that
    /// can propagate a genuine poisoned value handle
    /// [`epplan_fault::FaultAction::PoisonValue`] themselves *before*
    /// falling back to this mapping.
    pub fn from_fault(
        stage: &'static str,
        site: &str,
        action: epplan_fault::FaultAction,
    ) -> Self {
        use epplan_fault::FaultAction;
        match action {
            FaultAction::TypedError => {
                Self::numerical(stage, format!("injected fault at {site}"))
            }
            FaultAction::PoisonValue => {
                Self::numerical(stage, format!("injected poisoned value at {site}"))
            }
            FaultAction::DeadlineTrip => {
                Self::budget_exhausted(stage, format!("injected deadline trip at {site}"))
            }
            FaultAction::AllocPressure => Self::budget_exhausted(
                stage,
                format!("injected allocation pressure at {site}"),
            ),
        }
    }

    /// Attaches the best partial artifact.
    pub fn with_partial(mut self, partial: P) -> Self {
        self.partial = Some(partial);
        self
    }

    /// Converts the partial artifact, preserving everything else.
    /// Lets an outer pipeline stage re-wrap an inner stage's error
    /// into its own artifact type.
    pub fn map_partial<Q>(self, f: impl FnOnce(P) -> Q) -> SolveError<Q> {
        SolveError {
            kind: self.kind,
            stage: self.stage,
            message: self.message,
            partial: self.partial.map(f),
        }
    }

    /// Drops the partial artifact (for crossing artifact-type
    /// boundaries where it is not convertible).
    pub fn discard_partial<Q>(self) -> SolveError<Q> {
        SolveError {
            kind: self.kind,
            stage: self.stage,
            message: self.message,
            partial: None,
        }
    }

    /// `true` when a retry with a bigger budget could succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self.kind, FailureKind::BudgetExhausted)
    }
}

impl<P> std::fmt::Display for SolveError<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {}: {}", self.kind, self.stage, self.message)?;
        if self.partial.is_some() {
            f.write_str(" (partial result available)")?;
        }
        Ok(())
    }
}

impl<P: std::fmt::Debug> std::error::Error for SolveError<P> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_kind_stage_and_partial() {
        let e: SolveError<u32> = SolveError::budget_exhausted("lp.simplex", "2000 pivots");
        let s = e.to_string();
        assert!(s.contains("budget exhausted"), "{s}");
        assert!(s.contains("lp.simplex"), "{s}");
        assert!(!s.contains("partial"), "{s}");
        let s = e.with_partial(7).to_string();
        assert!(s.contains("partial result available"), "{s}");
    }

    #[test]
    fn map_and_discard_partial() {
        let e: SolveError<u32> = SolveError::infeasible("flow.matching", "job 3").with_partial(6);
        let mapped = e.clone().map_partial(|v| v * 2);
        assert_eq!(mapped.partial, Some(12));
        assert_eq!(mapped.kind, FailureKind::Infeasible);
        let dropped: SolveError<String> = e.discard_partial();
        assert!(dropped.partial.is_none());
    }

    #[test]
    fn exit_codes_are_documented_and_distinct() {
        // The contract table in README.md § Exit codes / DESIGN.md
        // § Error handling. Changing a code here requires a doc change.
        assert_eq!(FailureKind::NumericalInstability.exit_code(), 1);
        assert_eq!(FailureKind::BadInput.exit_code(), 5);
        assert_eq!(FailureKind::Infeasible.exit_code(), 6);
        assert_eq!(FailureKind::BudgetExhausted.exit_code(), 7);
        let mut codes: Vec<i32> = FailureKind::ALL.iter().map(|k| k.exit_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), FailureKind::ALL.len(), "exit codes collide");
    }

    #[test]
    fn fault_actions_map_to_typed_errors() {
        use epplan_fault::FaultAction;
        let cases = [
            (FaultAction::TypedError, FailureKind::NumericalInstability),
            (FaultAction::PoisonValue, FailureKind::NumericalInstability),
            (FaultAction::DeadlineTrip, FailureKind::BudgetExhausted),
            (FaultAction::AllocPressure, FailureKind::BudgetExhausted),
        ];
        for (action, kind) in cases {
            let e: SolveError = SolveError::from_fault("lp.simplex", "lp.simplex.pivot", action);
            assert_eq!(e.kind, kind, "{action:?}");
            assert!(e.message.contains("injected"), "{}", e.message);
            assert!(e.message.contains("lp.simplex.pivot"), "{}", e.message);
        }
    }

    #[test]
    fn retryability() {
        assert!(SolveError::<()>::budget_exhausted("s", "m").is_retryable());
        assert!(!SolveError::<()>::bad_input("s", "m").is_retryable());
        assert!(!SolveError::<()>::infeasible("s", "m").is_retryable());
        assert!(!SolveError::<()>::numerical("s", "m").is_retryable());
    }
}
