//! Independent plan certification.
//!
//! A degraded solve (fallback tier, budget-exhausted partial, repaired
//! incremental plan) is exactly the artifact most likely to silently
//! violate the paper's feasibility constraints (§II): the code paths
//! that produced it are the least-travelled ones. This module is the
//! "verify-then-trust" half of the robustness story — a checker that
//! shares **no code** with the solvers or with `Plan::validate`, and
//! recomputes everything (attendance, travel costs, the global utility
//! `U_P`, the IEP `dif(P, P′)`) from the raw assignment lists.
//!
//! `epplan-solve` sits below `epplan-core` in the crate graph, so the
//! checker cannot see `Instance`/`Plan` directly. Instead it consumes
//! the primitive [`PlanView`] trait; `epplan-core` implements it for
//! `(&Instance, &Plan)` (see `epplan_core::certify`). That split is
//! deliberate: the checker's logic depends only on numbers the trait
//! hands it, never on model-layer invariants that a corrupt plan may
//! have already broken.
//!
//! The checker validates all four GEPC constraints plus two structural
//! ones a deserialized plan can violate:
//!
//! | constraint name        | GEPC rule                                   |
//! |------------------------|---------------------------------------------|
//! | `time-conflict`        | no user attends two overlapping events      |
//! | `travel-budget`        | `D_i ≤ B_i` (+1e-9 tolerance)               |
//! | `eta-upper-bound`      | attendance ≤ η_j                            |
//! | `xi-lower-bound`       | attendance ≥ ξ_j (soft — reported, not hard)|
//! | `zero-utility`         | no assignment with `μ(u, e) ≤ 0`            |
//! | `duplicate-assignment` | a user is assigned to an event once at most |
//! | `invalid-assignment`   | assigned event/user ids are in range        |
//!
//! Optimality is certified separately where the math gives a cheap
//! certificate ([`OptimalityCert`]): dual feasibility at simplex exit,
//! reduced-cost optimality for min-cost flow, and the LP-relaxation
//! lower bound for the GAP rounding pipeline.

use std::fmt;

/// Stable constraint names the checker reports. Tests assert on these
/// exact strings; treat them like the span-name registry.
pub mod constraint {
    /// A user attends two events with overlapping holding windows.
    pub const TIME_CONFLICT: &str = "time-conflict";
    /// A user's recomputed travel cost exceeds their budget `B_i`.
    pub const TRAVEL_BUDGET: &str = "travel-budget";
    /// An event's recomputed attendance exceeds its upper bound `η`.
    pub const ETA_UPPER_BOUND: &str = "eta-upper-bound";
    /// An event's recomputed attendance falls short of its lower bound
    /// `ξ` (soft: the paper permits under-filled events at a utility
    /// penalty, so this never fails hard certification).
    pub const XI_LOWER_BOUND: &str = "xi-lower-bound";
    /// An assignment with non-positive utility `μ(u, e) ≤ 0`.
    pub const ZERO_UTILITY: &str = "zero-utility";
    /// The same `(user, event)` pair appears more than once.
    pub const DUPLICATE_ASSIGNMENT: &str = "duplicate-assignment";
    /// An assignment references an out-of-range event id.
    pub const INVALID_ASSIGNMENT: &str = "invalid-assignment";
}

/// Read-only, primitive view of a plan against its instance — the
/// minimal surface the independent checker needs. Implementations must
/// not pre-validate: a corrupt plan (duplicate assignments,
/// out-of-range ids) must round-trip through [`PlanView::assignments`]
/// untouched so the checker can see the corruption.
pub trait PlanView {
    /// Number of users in the instance.
    fn n_users(&self) -> usize;
    /// Number of events in the instance.
    fn n_events(&self) -> usize;
    /// The raw assignment list of `user`: event indices, in plan
    /// order, including any duplicates or out-of-range ids present.
    fn assignments(&self, user: usize) -> Vec<usize>;
    /// `true` when events `a` and `b` have overlapping holding
    /// windows (both in range).
    fn conflicts(&self, a: usize, b: usize) -> bool;
    /// Total travel cost `D_i` of `user` attending exactly `events`
    /// (admission fees + optimal route distance).
    fn travel_cost(&self, user: usize, events: &[usize]) -> f64;
    /// Travel budget `B_i` of `user`.
    fn budget(&self, user: usize) -> f64;
    /// `(ξ, η)` participation bounds of `event`.
    fn bounds(&self, event: usize) -> (u32, u32);
    /// Utility `μ(user, event)` (both in range).
    fn utility(&self, user: usize, event: usize) -> f64;
}

/// One constraint violation found by the checker.
#[derive(Debug, Clone, PartialEq)]
pub struct CertViolation {
    /// Which constraint (a [`constraint`] name).
    pub constraint: &'static str,
    /// Human-readable specifics (which user/event, by how much).
    pub detail: String,
}

impl fmt::Display for CertViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.constraint, self.detail)
    }
}

/// A cheap optimality certificate attached when the math provides one.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimalityCert {
    /// Simplex exited with every reduced cost non-negative (re-scanned
    /// after the fact): the primal solution is provably optimal for
    /// the LP.
    LpDualFeasible {
        /// The certified objective value.
        objective: f64,
    },
    /// The min-cost-flow residual graph contains no negative-cost
    /// cycle: the flow is provably cost-optimal for its value.
    FlowReducedCostOptimal {
        /// The certified total cost.
        cost: f64,
    },
    /// The GAP rounding achieved `achieved` against the LP-relaxation
    /// lower bound `bound` — certifies the approximation gap, not
    /// optimality.
    LpLowerBound {
        /// Fractional (LP) optimum: a lower bound on any integral
        /// assignment cost.
        bound: f64,
        /// Cost of the rounded integral assignment.
        achieved: f64,
    },
}

impl fmt::Display for OptimalityCert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimalityCert::LpDualFeasible { objective } => {
                write!(f, "lp dual-feasible (objective {objective:.6})")
            }
            OptimalityCert::FlowReducedCostOptimal { cost } => {
                write!(f, "flow reduced-cost optimal (cost {cost:.6})")
            }
            OptimalityCert::LpLowerBound { bound, achieved } => {
                write!(f, "lp lower bound {bound:.6} ≤ achieved {achieved:.6}")
            }
        }
    }
}

/// The checker's verdict on one plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Certificate {
    /// `true` once the checker actually ran (a default report carries
    /// an unchecked certificate).
    pub checked: bool,
    /// Hard-constraint violations; any entry means the plan must not
    /// be returned as-is.
    pub hard_violations: Vec<CertViolation>,
    /// Soft-constraint findings (`xi-lower-bound` shortfalls).
    pub soft_violations: Vec<CertViolation>,
    /// Global utility `U_P`, recomputed from scratch (0 for invalid
    /// assignments, which are reported separately).
    pub utility: f64,
    /// `dif(P, P′)` against a baseline plan, when one was supplied.
    pub dif: Option<usize>,
    /// Accumulated `dif` since the last **full** solve, for long-lived
    /// incremental state (the `epplan serve` daemon sums each repair's
    /// `dif` here and resets it on every certified re-solve). `None`
    /// outside incremental serving contexts.
    pub drift: Option<u64>,
    /// Optimality certificates gathered along the pipeline.
    pub optimality: Vec<OptimalityCert>,
}

impl Certificate {
    /// Returns this certificate with the accumulated-drift line set
    /// (see [`Certificate::drift`]).
    pub fn with_drift(mut self, drift: u64) -> Self {
        self.drift = Some(drift);
        self
    }
}

impl Certificate {
    /// `true` when every hard constraint holds.
    pub fn hard_ok(&self) -> bool {
        self.checked && self.hard_violations.is_empty()
    }

    /// The distinct hard-constraint names violated, in report order.
    pub fn violated_constraints(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        for v in &self.hard_violations {
            if !names.contains(&v.constraint) {
                names.push(v.constraint);
            }
        }
        names
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.checked {
            return f.write_str("unchecked");
        }
        if self.hard_violations.is_empty() {
            write!(f, "certified (U_P = {:.6}", self.utility)?;
        } else {
            write!(
                f,
                "REJECTED [{}] (U_P = {:.6}",
                self.violated_constraints().join(", "),
                self.utility
            )?;
        }
        if let Some(d) = self.dif {
            write!(f, ", dif = {d}")?;
        }
        if let Some(d) = self.drift {
            write!(f, ", drift = {d} since full solve")?;
        }
        if !self.soft_violations.is_empty() {
            write!(f, ", {} soft shortfall(s)", self.soft_violations.len())?;
        }
        f.write_str(")")
    }
}

/// Runs the independent checker over `view`, recomputing attendance,
/// travel costs and `U_P` from the raw assignment lists. Pass the
/// previous plan's assignment lists as `baseline` to also recompute
/// the IEP `dif(P, P′)`.
pub fn certify_plan(view: &dyn PlanView, baseline: Option<&[Vec<usize>]>) -> Certificate {
    let n_users = view.n_users();
    let n_events = view.n_events();
    let mut cert = Certificate {
        checked: true,
        ..Certificate::default()
    };
    // Recomputed from the assignment lists, never read from the plan.
    let mut attendance = vec![0usize; n_events];
    let mut new_assignments: Vec<Vec<usize>> = Vec::with_capacity(n_users);

    for u in 0..n_users {
        let events = view.assignments(u);
        // Structural checks first: everything downstream assumes
        // in-range, duplicate-free lists.
        let mut valid: Vec<usize> = Vec::with_capacity(events.len());
        for &e in &events {
            if e >= n_events {
                cert.hard_violations.push(CertViolation {
                    constraint: constraint::INVALID_ASSIGNMENT,
                    detail: format!("user {u} assigned to event {e} of {n_events}"),
                });
                continue;
            }
            if valid.contains(&e) {
                cert.hard_violations.push(CertViolation {
                    constraint: constraint::DUPLICATE_ASSIGNMENT,
                    detail: format!("user {u} assigned to event {e} more than once"),
                });
                continue;
            }
            valid.push(e);
        }

        // GEPC (1): pairwise time conflicts.
        for i in 0..valid.len() {
            for j in (i + 1)..valid.len() {
                if view.conflicts(valid[i], valid[j]) {
                    cert.hard_violations.push(CertViolation {
                        constraint: constraint::TIME_CONFLICT,
                        detail: format!(
                            "user {u} attends overlapping events {} and {}",
                            valid[i], valid[j]
                        ),
                    });
                }
            }
        }

        // GEPC (2): travel budget D_i ≤ B_i (same 1e-9 tolerance as
        // the model layer).
        if !valid.is_empty() {
            let cost = view.travel_cost(u, &valid);
            let budget = view.budget(u);
            if !cost.is_finite() || cost > budget + 1e-9 {
                cert.hard_violations.push(CertViolation {
                    constraint: constraint::TRAVEL_BUDGET,
                    detail: format!("user {u} travel cost {cost} exceeds budget {budget}"),
                });
            }
        }

        // Zero-utility assignments are forbidden; positive ones sum
        // into the recomputed U_P.
        for &e in &valid {
            let mu = view.utility(u, e);
            // NaN utilities are as forbidden as zero ones.
            if mu <= 0.0 || mu.is_nan() {
                cert.hard_violations.push(CertViolation {
                    constraint: constraint::ZERO_UTILITY,
                    detail: format!("user {u} assigned to event {e} with utility {mu}"),
                });
            } else {
                cert.utility += mu;
            }
            attendance[e] += 1;
        }
        new_assignments.push(valid);
    }

    // GEPC (3)/(4): per-event participation bounds.
    for (e, &att) in attendance.iter().enumerate() {
        let (lower, upper) = view.bounds(e);
        if att > upper as usize {
            cert.hard_violations.push(CertViolation {
                constraint: constraint::ETA_UPPER_BOUND,
                detail: format!("event {e} has {att} attendees over upper bound {upper}"),
            });
        }
        if att < lower as usize {
            cert.soft_violations.push(CertViolation {
                constraint: constraint::XI_LOWER_BOUND,
                detail: format!("event {e} has {att} attendees under lower bound {lower}"),
            });
        }
    }

    if let Some(old) = baseline {
        cert.dif = Some(recompute_dif(old, &new_assignments));
    }
    cert
}

/// Recomputes the IEP negative impact `dif(P, P′)` from raw assignment
/// lists: the number of `(user, event)` pairs present in `old` but
/// missing from `new` (§IV). Users beyond `new`'s length count every
/// old assignment as lost.
pub fn recompute_dif(old: &[Vec<usize>], new: &[Vec<usize>]) -> usize {
    let mut lost = 0;
    for (u, events) in old.iter().enumerate() {
        for &e in events {
            let kept = new.get(u).is_some_and(|n| n.contains(&e));
            if !kept {
                lost += 1;
            }
        }
    }
    lost
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny synthetic view: 3 users, 3 events; event 0 and 1
    /// conflict; every utility is `0.1 + 0.1 * (u + e)` except where
    /// zeroed; bounds and budgets as configured.
    struct TestView {
        assignments: Vec<Vec<usize>>,
        budgets: Vec<f64>,
        bounds: Vec<(u32, u32)>,
        zero_utility: Vec<(usize, usize)>,
        cost_per_event: f64,
    }

    impl TestView {
        fn feasible() -> Self {
            TestView {
                assignments: vec![vec![0, 2], vec![1], vec![2]],
                budgets: vec![10.0, 10.0, 10.0],
                bounds: vec![(0, 2), (0, 2), (0, 2)],
                zero_utility: vec![],
                cost_per_event: 1.0,
            }
        }
    }

    impl PlanView for TestView {
        fn n_users(&self) -> usize {
            self.assignments.len()
        }
        fn n_events(&self) -> usize {
            self.bounds.len()
        }
        fn assignments(&self, user: usize) -> Vec<usize> {
            self.assignments[user].clone()
        }
        fn conflicts(&self, a: usize, b: usize) -> bool {
            (a == 0 && b == 1) || (a == 1 && b == 0)
        }
        fn travel_cost(&self, _user: usize, events: &[usize]) -> f64 {
            self.cost_per_event * events.len() as f64
        }
        fn budget(&self, user: usize) -> f64 {
            self.budgets[user]
        }
        fn bounds(&self, event: usize) -> (u32, u32) {
            self.bounds[event]
        }
        fn utility(&self, user: usize, event: usize) -> f64 {
            if self.zero_utility.contains(&(user, event)) {
                0.0
            } else {
                0.1 + 0.1 * (user + event) as f64
            }
        }
    }

    #[test]
    fn feasible_plan_certifies_with_recomputed_utility() {
        let v = TestView::feasible();
        let cert = certify_plan(&v, None);
        assert!(cert.hard_ok(), "{cert}");
        assert!(cert.soft_violations.is_empty());
        // u0@e0 (0.1) + u0@e2 (0.3) + u1@e1 (0.3) + u2@e2 (0.5)
        assert!((cert.utility - 1.2).abs() < 1e-12, "{}", cert.utility);
        assert_eq!(cert.dif, None);
    }

    #[test]
    fn default_certificate_is_unchecked() {
        let cert = Certificate::default();
        assert!(!cert.hard_ok(), "unchecked must not count as certified");
        assert_eq!(cert.to_string(), "unchecked");
    }

    #[test]
    fn each_corruption_is_named_precisely() {
        // (mutator, expected constraint name)
        type Corruption = (Box<dyn Fn(&mut TestView)>, &'static str);
        let cases: Vec<Corruption> = vec![
            (
                Box::new(|v: &mut TestView| v.assignments[1] = vec![1, 1]),
                constraint::DUPLICATE_ASSIGNMENT,
            ),
            (
                Box::new(|v: &mut TestView| v.assignments[1] = vec![7]),
                constraint::INVALID_ASSIGNMENT,
            ),
            (
                Box::new(|v: &mut TestView| v.assignments[1] = vec![0, 1]),
                constraint::TIME_CONFLICT,
            ),
            (
                Box::new(|v: &mut TestView| v.budgets[0] = 1.5),
                constraint::TRAVEL_BUDGET,
            ),
            (
                Box::new(|v: &mut TestView| v.bounds[2] = (0, 1)),
                constraint::ETA_UPPER_BOUND,
            ),
            (
                Box::new(|v: &mut TestView| v.zero_utility.push((2, 2))),
                constraint::ZERO_UTILITY,
            ),
        ];
        for (mutate, expected) in cases {
            let mut v = TestView::feasible();
            mutate(&mut v);
            let cert = certify_plan(&v, None);
            assert!(!cert.hard_ok(), "expected {expected}");
            assert!(
                cert.violated_constraints().contains(&expected),
                "expected {expected}, got {:?}",
                cert.violated_constraints()
            );
            assert!(cert.to_string().contains(expected), "{cert}");
        }
    }

    #[test]
    fn xi_shortfall_is_soft() {
        let mut v = TestView::feasible();
        v.bounds[1] = (2, 2); // e1 has 1 attendee < ξ = 2
        let cert = certify_plan(&v, None);
        assert!(cert.hard_ok(), "ξ shortfalls must not fail hard: {cert}");
        assert_eq!(cert.soft_violations.len(), 1);
        assert_eq!(
            cert.soft_violations[0].constraint,
            constraint::XI_LOWER_BOUND
        );
    }

    #[test]
    fn nan_travel_cost_is_a_budget_violation() {
        let mut v = TestView::feasible();
        v.cost_per_event = f64::NAN;
        let cert = certify_plan(&v, None);
        assert!(cert
            .violated_constraints()
            .contains(&constraint::TRAVEL_BUDGET));
    }

    #[test]
    fn dif_counts_lost_assignments_only() {
        let old = vec![vec![0, 2], vec![1], vec![2]];
        let new = vec![vec![0], vec![1, 0], vec![]];
        // Lost: (0,2) and (2,2). Gained (1,0) does not count.
        assert_eq!(recompute_dif(&old, &new), 2);
        // A shrunken user list loses everything.
        assert_eq!(recompute_dif(&old, &new[..1]), 3);
        assert_eq!(recompute_dif(&old, &old), 0);
        let v = TestView::feasible();
        let cert = certify_plan(&v, Some(&old));
        assert_eq!(cert.dif, Some(0));
    }

    #[test]
    fn drift_renders_without_json_parsing() {
        // The daemon-facing drift line (ISSUE 6 satellite): visible in
        // `Display`, absent unless set.
        let cert = certify_plan(&TestView::feasible(), None);
        assert!(!cert.to_string().contains("drift"), "{cert}");
        let cert = cert.with_drift(42);
        assert_eq!(cert.drift, Some(42));
        assert!(
            cert.to_string().contains("drift = 42 since full solve"),
            "{cert}"
        );
        // Also present on rejected certificates — degraded serving
        // state must still report how far it has drifted.
        let mut bad = TestView::feasible();
        bad.assignments[1] = vec![1, 1];
        let cert = certify_plan(&bad, None).with_drift(7);
        assert!(cert.to_string().contains("REJECTED"), "{cert}");
        assert!(cert.to_string().contains("drift = 7"), "{cert}");
    }

    #[test]
    fn optimality_certs_render() {
        let mut cert = certify_plan(&TestView::feasible(), None);
        cert.optimality.push(OptimalityCert::LpDualFeasible { objective: 1.0 });
        cert.optimality
            .push(OptimalityCert::FlowReducedCostOptimal { cost: 2.0 });
        cert.optimality.push(OptimalityCert::LpLowerBound {
            bound: 1.0,
            achieved: 1.5,
        });
        for c in &cert.optimality {
            assert!(!c.to_string().is_empty());
        }
    }
}
