//! Degradation-chain reporting: what a facade tried, in order, and
//! how each attempt ended.

use std::time::Duration;

use epplan_obs::StageStats;

use crate::{Certificate, FailureKind, SolveStatus};

/// How one solver attempt in a degradation chain ended.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptOutcome {
    /// The attempt produced the artifact the caller received.
    Succeeded(SolveStatus),
    /// The attempt failed and the chain moved on to a fallback.
    Failed {
        kind: FailureKind,
        message: String,
    },
}

/// One entry of a [`SolveReport`] chain.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveAttempt {
    /// Solver identifier, e.g. `"gap_based"`, `"greedy"`,
    /// `"best_effort"`.
    pub solver: &'static str,
    /// How it ended.
    pub outcome: AttemptOutcome,
    /// Wall-clock time the attempt took.
    pub elapsed: Duration,
}

/// Record of a facade's degradation chain: every solver attempted, in
/// order, ending with the one whose artifact was returned. Travels
/// alongside the solution so callers can tell an optimal answer from
/// a validated best-effort fallback without re-deriving why.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveReport {
    /// Attempts in execution order; the last one succeeded (when the
    /// overall solve succeeded).
    pub attempts: Vec<SolveAttempt>,
    /// Per-stage cost breakdown (wall time, iterations, peak memory)
    /// accumulated during this solve. Populated by facades when
    /// `epplan_obs::metrics_enabled()`; empty otherwise.
    pub stages: Vec<StageStats>,
    /// Independent certification of the returned artifact (see
    /// [`crate::certify`]). `None` when certification was not
    /// requested.
    pub certificate: Option<Certificate>,
}

impl SolveReport {
    pub fn new() -> Self {
        SolveReport::default()
    }

    /// A single-attempt report for solvers that never degrade.
    pub fn single(solver: &'static str, status: SolveStatus) -> Self {
        let mut r = SolveReport::new();
        r.record_success(solver, status, Duration::ZERO);
        r
    }

    /// Appends a failed attempt.
    pub fn record_failure(
        &mut self,
        solver: &'static str,
        kind: FailureKind,
        message: impl Into<String>,
        elapsed: Duration,
    ) {
        self.attempts.push(SolveAttempt {
            solver,
            outcome: AttemptOutcome::Failed {
                kind,
                message: message.into(),
            },
            elapsed,
        });
    }

    /// Appends the successful attempt (normally the last call made).
    pub fn record_success(
        &mut self,
        solver: &'static str,
        status: SolveStatus,
        elapsed: Duration,
    ) {
        self.attempts.push(SolveAttempt {
            solver,
            outcome: AttemptOutcome::Succeeded(status),
            elapsed,
        });
    }

    /// Status of the final (successful) attempt, if any.
    pub fn final_status(&self) -> Option<SolveStatus> {
        self.attempts.iter().rev().find_map(|a| match a.outcome {
            AttemptOutcome::Succeeded(s) => Some(s),
            AttemptOutcome::Failed { .. } => None,
        })
    }

    /// `true` when a fallback (anything beyond the first attempt) ran.
    pub fn degraded(&self) -> bool {
        self.attempts.len() > 1
    }

    /// Name of the solver whose artifact was returned, if any
    /// succeeded.
    pub fn winner(&self) -> Option<&'static str> {
        self.attempts.iter().rev().find_map(|a| match a.outcome {
            AttemptOutcome::Succeeded(_) => Some(a.solver),
            AttemptOutcome::Failed { .. } => None,
        })
    }

    /// The per-stage cost table for this solve, rendered for humans
    /// (wall time, iteration counts, peak-memory deltas per stage).
    /// Says so explicitly when no stage data was collected.
    pub fn cost_table(&self) -> String {
        epplan_obs::render_stage_table(&self.stages)
    }
}

/// One-line degradation-chain summary: each attempt as
/// `solver ✗ reason` (failed) or `solver ✓` (succeeded), joined by
/// ` → `, e.g. `gap_based ✗ budget → greedy ✓`.
impl std::fmt::Display for SolveReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.attempts.is_empty() {
            return f.write_str("(no attempts)");
        }
        for (i, a) in self.attempts.iter().enumerate() {
            if i > 0 {
                f.write_str(" → ")?;
            }
            match &a.outcome {
                AttemptOutcome::Succeeded(SolveStatus::Optimal) => {
                    write!(f, "{} ✓", a.solver)?
                }
                AttemptOutcome::Succeeded(SolveStatus::BestEffort) => {
                    write!(f, "{} ✓ best-effort", a.solver)?
                }
                AttemptOutcome::Failed { kind, .. } => {
                    write!(f, "{} ✗ {}", a.solver, kind.short_code())?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_accumulates_and_reports_winner() {
        let mut r = SolveReport::new();
        r.record_failure(
            "gap_based",
            FailureKind::BudgetExhausted,
            "deadline",
            Duration::from_millis(1),
        );
        r.record_success("greedy", SolveStatus::BestEffort, Duration::from_millis(2));
        assert!(r.degraded());
        assert_eq!(r.winner(), Some("greedy"));
        assert_eq!(r.final_status(), Some(SolveStatus::BestEffort));
        let s = r.to_string();
        assert_eq!(s, "gap_based ✗ budget → greedy ✓ best-effort", "{s}");
    }

    #[test]
    fn display_covers_every_outcome_shape() {
        let mut r = SolveReport::new();
        r.record_failure("exact", FailureKind::BadInput, "nan", Duration::ZERO);
        r.record_failure(
            "gap_based",
            FailureKind::NumericalInstability,
            "cycling",
            Duration::ZERO,
        );
        r.record_failure("flow", FailureKind::Infeasible, "cut", Duration::ZERO);
        r.record_success("greedy", SolveStatus::Optimal, Duration::ZERO);
        assert_eq!(
            r.to_string(),
            "exact ✗ input → gap_based ✗ numerical → flow ✗ infeasible → greedy ✓"
        );
    }

    #[test]
    fn cost_table_reports_missing_stage_data() {
        let r = SolveReport::new();
        assert!(r.cost_table().contains("no stage data"));
    }

    #[test]
    fn cost_table_renders_attached_stages() {
        let mut r = SolveReport::new();
        r.record_success("gap_based", SolveStatus::Optimal, Duration::ZERO);
        r.stages = vec![epplan_obs::StageStats {
            name: "lp.simplex".to_string(),
            calls: 1,
            wall: Duration::from_micros(500),
            iters: 17,
            peak_mem_bytes: 0,
            alloc_calls: 0,
        }];
        let t = r.cost_table();
        assert!(t.contains("lp.simplex"));
        assert!(t.contains("17"));
    }

    #[test]
    fn single_attempt_is_not_degraded() {
        let r = SolveReport::single("greedy", SolveStatus::Optimal);
        assert!(!r.degraded());
        assert_eq!(r.winner(), Some("greedy"));
        assert_eq!(r.final_status(), Some(SolveStatus::Optimal));
    }

    #[test]
    fn empty_report_displays_gracefully() {
        let r = SolveReport::new();
        assert_eq!(r.to_string(), "(no attempts)");
        assert_eq!(r.final_status(), None);
        assert_eq!(r.winner(), None);
    }
}
