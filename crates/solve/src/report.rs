//! Degradation-chain reporting: what a facade tried, in order, and
//! how each attempt ended.

use std::time::Duration;

use crate::{FailureKind, SolveStatus};

/// How one solver attempt in a degradation chain ended.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptOutcome {
    /// The attempt produced the artifact the caller received.
    Succeeded(SolveStatus),
    /// The attempt failed and the chain moved on to a fallback.
    Failed {
        kind: FailureKind,
        message: String,
    },
}

/// One entry of a [`SolveReport`] chain.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveAttempt {
    /// Solver identifier, e.g. `"gap_based"`, `"greedy"`,
    /// `"best_effort"`.
    pub solver: &'static str,
    /// How it ended.
    pub outcome: AttemptOutcome,
    /// Wall-clock time the attempt took.
    pub elapsed: Duration,
}

/// Record of a facade's degradation chain: every solver attempted, in
/// order, ending with the one whose artifact was returned. Travels
/// alongside the solution so callers can tell an optimal answer from
/// a validated best-effort fallback without re-deriving why.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveReport {
    /// Attempts in execution order; the last one succeeded (when the
    /// overall solve succeeded).
    pub attempts: Vec<SolveAttempt>,
}

impl SolveReport {
    pub fn new() -> Self {
        SolveReport::default()
    }

    /// A single-attempt report for solvers that never degrade.
    pub fn single(solver: &'static str, status: SolveStatus) -> Self {
        let mut r = SolveReport::new();
        r.record_success(solver, status, Duration::ZERO);
        r
    }

    /// Appends a failed attempt.
    pub fn record_failure(
        &mut self,
        solver: &'static str,
        kind: FailureKind,
        message: impl Into<String>,
        elapsed: Duration,
    ) {
        self.attempts.push(SolveAttempt {
            solver,
            outcome: AttemptOutcome::Failed {
                kind,
                message: message.into(),
            },
            elapsed,
        });
    }

    /// Appends the successful attempt (normally the last call made).
    pub fn record_success(
        &mut self,
        solver: &'static str,
        status: SolveStatus,
        elapsed: Duration,
    ) {
        self.attempts.push(SolveAttempt {
            solver,
            outcome: AttemptOutcome::Succeeded(status),
            elapsed,
        });
    }

    /// Status of the final (successful) attempt, if any.
    pub fn final_status(&self) -> Option<SolveStatus> {
        self.attempts.iter().rev().find_map(|a| match a.outcome {
            AttemptOutcome::Succeeded(s) => Some(s),
            AttemptOutcome::Failed { .. } => None,
        })
    }

    /// `true` when a fallback (anything beyond the first attempt) ran.
    pub fn degraded(&self) -> bool {
        self.attempts.len() > 1
    }

    /// Name of the solver whose artifact was returned, if any
    /// succeeded.
    pub fn winner(&self) -> Option<&'static str> {
        self.attempts.iter().rev().find_map(|a| match a.outcome {
            AttemptOutcome::Succeeded(_) => Some(a.solver),
            AttemptOutcome::Failed { .. } => None,
        })
    }
}

impl std::fmt::Display for SolveReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.attempts.is_empty() {
            return f.write_str("(no attempts)");
        }
        for (i, a) in self.attempts.iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            match &a.outcome {
                AttemptOutcome::Succeeded(s) => write!(f, "{} ({s})", a.solver)?,
                AttemptOutcome::Failed { kind, .. } => write!(f, "{} ({kind})", a.solver)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_accumulates_and_reports_winner() {
        let mut r = SolveReport::new();
        r.record_failure(
            "gap_based",
            FailureKind::BudgetExhausted,
            "deadline",
            Duration::from_millis(1),
        );
        r.record_success("greedy", SolveStatus::BestEffort, Duration::from_millis(2));
        assert!(r.degraded());
        assert_eq!(r.winner(), Some("greedy"));
        assert_eq!(r.final_status(), Some(SolveStatus::BestEffort));
        let s = r.to_string();
        assert!(s.contains("gap_based (budget exhausted) -> greedy (best-effort)"), "{s}");
    }

    #[test]
    fn single_attempt_is_not_degraded() {
        let r = SolveReport::single("greedy", SolveStatus::Optimal);
        assert!(!r.degraded());
        assert_eq!(r.winner(), Some("greedy"));
        assert_eq!(r.final_status(), Some(SolveStatus::Optimal));
    }

    #[test]
    fn empty_report_displays_gracefully() {
        let r = SolveReport::new();
        assert_eq!(r.to_string(), "(no attempts)");
        assert_eq!(r.final_status(), None);
        assert_eq!(r.winner(), None);
    }
}
