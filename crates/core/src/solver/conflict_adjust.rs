//! The Conflict Adjusting algorithm (Section III-A, Algorithm 1) and
//! the budget-repair pass the Shmoys–Tardos load slack requires.
//!
//! The GAP reduction ignores time conflicts, so its raw output may put
//! conflicting events — including several *copies of the same event* —
//! into one user's plan. Algorithm 1 repairs this: for each user, while
//! the plan contains conflicting events, the conflicting event with the
//! **smallest** utility is removed and offered to the remaining users
//! in **descending** utility order; the first user who can take it
//! without conflicts and within budget receives it, otherwise the copy
//! is dropped (a potential lower-bound shortfall).
//!
//! The ST rounding also only guarantees per-user load ≤ `T_i + max p`,
//! i.e. travel cost up to about `2·(2+ε)·B_i`, so a further
//! [`budget_repair`] pass removes (and tries to rehome) the
//! lowest-utility events of over-budget users. The paper folds this
//! into its `(2+ε)` budget scaling argument; an executable system must
//! enforce the real budgets explicitly.

use crate::model::{EventId, Instance, UserId};
use crate::plan::Plan;

/// Events per parallel receiver-ranking chunk (each costs an
/// `O(n log n)` sort over the users).
const ORDER_MIN_CHUNK: usize = 8;

/// Precomputes the receiver preference order — users with positive
/// utility, descending utility then ascending id — for every event
/// marked in `needed`, fanned out across event chunks. Reassignment
/// then consumes a fixed order instead of re-sorting per offer; the
/// offering user is skipped at iteration time, which yields exactly
/// the per-offer order the sequential sort produced.
fn receiver_orders(instance: &Instance, needed: &[bool]) -> Vec<Option<Vec<UserId>>> {
    // Transpose the user-major candidate lists into per-event receiver
    // lists (users ascending), touching only needed events, then sort
    // each list in parallel — O(candidates) total instead of a full
    // users × events sweep. Restricting receivers to candidates is
    // lossless: a non-candidate either has μ = 0 (never in the old
    // order) or cannot afford the event on its own, which
    // `can_attend_with` rejects in every plan state.
    let cands = instance.candidates();
    let mut lists: Vec<Option<Vec<(u32, f64)>>> =
        needed.iter().map(|&nd| nd.then(Vec::new)).collect();
    for u in instance.user_ids() {
        let (events, utils) = cands.row(u);
        for (&e, &mu) in events.iter().zip(utils) {
            if let Some(list) = lists.get_mut(e as usize).and_then(|o| o.as_mut()) {
                list.push((u.0, mu));
            }
        }
    }
    let sorted: Result<(), std::convert::Infallible> =
        epplan_par::try_par_chunks_for_each_mut(&mut lists, ORDER_MIN_CHUNK, |_, chunk| {
            for slot in chunk.iter_mut() {
                if let Some(list) = slot.as_mut() {
                    list.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                }
            }
            Ok(())
        });
    if let Err(never) = sorted {
        match never {}
    }
    lists
        .into_iter()
        .map(|slot| slot.map(|list| list.into_iter().map(|(u, _)| UserId(u)).collect()))
        .collect()
}

/// A raw (pre-repair) assignment: per-user event multiset, possibly
/// containing duplicates and time conflicts. This is what the GAP
/// rounding hands back, with one entry per assigned event copy.
pub type RawAssignment = Vec<Vec<EventId>>;

/// Indices of entries in `events` that conflict with at least one
/// other entry (duplicates always conflict — copies of an event share
/// its time window).
fn conflicting_entries(instance: &Instance, events: &[EventId]) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, &a) in events.iter().enumerate() {
        let hit = events
            .iter()
            .enumerate()
            .any(|(j, &b)| i != j && (a == b || instance.conflicts(a, b)));
        if hit {
            out.push(i);
        }
    }
    out
}

/// Tries to reassign event `e` to the best other user (descending
/// utility), skipping `exclude`. (Algorithm 1, lines 7–13.)
///
/// Until a user has been processed their events live in the `working`
/// multiset; afterwards they live in `plan`. A candidate receiver is
/// therefore checked against whichever structure currently holds their
/// events: no duplicate copy of `e`, no time conflict, and within
/// budget after adding `e`. On success the event is placed into the
/// receiver's current structure and `Some(receiver)` is returned.
fn try_reassign(
    instance: &Instance,
    plan: &mut Plan,
    working: &mut [Vec<EventId>],
    processed: usize,
    e: EventId,
    exclude: UserId,
    order: &[UserId],
) -> Option<UserId> {
    for &u in order {
        if u == exclude {
            continue;
        }
        let current: &[EventId] = if u.index() < processed {
            plan.user_plan(u)
        } else {
            &working[u.index()]
        };
        if current.contains(&e) {
            continue;
        }
        if instance.can_attend_with(u, current, e) {
            if u.index() < processed {
                plan.add(u, e);
            } else {
                working[u.index()].push(e);
            }
            return Some(u);
        }
    }
    None
}

/// Algorithm 1: turns a raw conflicted multiset assignment into a
/// conflict-free [`Plan`]. Event copies that no user can absorb are
/// dropped. The returned plan can still carry budget overruns
/// inherited from the ST load slack — run [`budget_repair`] next.
pub fn conflict_adjust(instance: &Instance, raw: RawAssignment) -> Plan {
    let mut working = raw;
    // Defensive normalization instead of a panic: a well-formed raw
    // assignment has exactly one multiset per user. Extra multisets are
    // dropped, missing ones treated as empty, and out-of-range event
    // ids discarded.
    working.resize(instance.n_users(), Vec::new());
    for multiset in &mut working {
        multiset.retain(|e| e.index() < instance.n_events());
    }
    let mut plan = Plan::for_instance(instance);

    // Only events present in the raw assignment can ever be offered
    // around (reassignment moves existing copies; it never conjures new
    // events), so their receiver orders cover every offer below.
    let mut needed = vec![false; instance.n_events()];
    for multiset in &working {
        for e in multiset {
            needed[e.index()] = true;
        }
    }
    let orders = receiver_orders(instance, &needed);
    const NO_ORDER: &[UserId] = &[];

    for u in 0..working.len() {
        let user = UserId(u as u32);
        // Resolve this user's conflicts on the multiset.
        loop {
            let conflicted = conflicting_entries(instance, &working[u]);
            let Some(&victim_idx) = conflicted.iter().min_by(|&&i, &&j| {
                instance
                    .utility(user, working[u][i])
                    .total_cmp(&instance.utility(user, working[u][j]))
                    .then(working[u][i].cmp(&working[u][j]))
            }) else {
                break;
            };
            let e = working[u].remove(victim_idx);
            // Offer the removed copy to the other users; if no one can
            // absorb it, the copy is dropped (the shortfall surfaces in
            // validation).
            let order = orders[e.index()].as_deref().unwrap_or(NO_ORDER);
            let _ = try_reassign(instance, &mut plan, &mut working, u, e, user, order);
        }
        // Commit the now conflict-free multiset (`Plan::add` ignores
        // any residual duplicate defensively).
        let events = std::mem::take(&mut working[u]);
        for e in events {
            plan.add(user, e);
        }
    }
    plan
}

/// Removes the lowest-utility events from over-budget users until all
/// budgets hold, offering each removed event to other users first
/// (same policy as Algorithm 1's reassignment step). Returns the
/// number of assignments that had to be dropped entirely.
pub fn budget_repair(instance: &Instance, plan: &mut Plan) -> usize {
    let mut dropped = 0;
    // Victims only ever come out of the incoming plan, so the events
    // currently planned bound the receiver orders needed.
    let mut needed = vec![false; instance.n_events()];
    for u in instance.user_ids() {
        for e in plan.user_plan(u) {
            needed[e.index()] = true;
        }
    }
    let orders = receiver_orders(instance, &needed);
    for u in instance.user_ids() {
        while plan.travel_cost(instance, u) > instance.user(u).budget + 1e-9 {
            // Remove the event contributing the least utility.
            let Some(&victim) = plan.user_plan(u).iter().min_by(|&&a, &&b| {
                instance
                    .utility(u, a)
                    .total_cmp(&instance.utility(u, b))
                    .then(a.cmp(&b))
            }) else {
                break; // empty plan cannot exceed a non-negative budget
            };
            plan.remove(u, victim);
            // All users are "processed" here: reassignment checks go
            // against the committed plan only.
            let n = instance.n_users();
            let order = orders[victim.index()].as_deref().unwrap_or(&[]);
            if try_reassign(instance, plan, &mut [], n, victim, u, order).is_none() {
                dropped += 1;
            }
        }
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Event, TimeInterval, User, UtilityMatrix};
    use epplan_geo::Point;

    /// 3 users, 3 events; e0 and e1 conflict.
    fn inst() -> Instance {
        let users = vec![
            User::new(Point::new(0.0, 0.0), 100.0),
            User::new(Point::new(1.0, 0.0), 100.0),
            User::new(Point::new(2.0, 0.0), 100.0),
        ];
        let events = vec![
            Event::new(Point::new(0.0, 1.0), 1, 3, TimeInterval::new(0, 60)),
            Event::new(Point::new(0.0, 2.0), 1, 3, TimeInterval::new(30, 90)),
            Event::new(Point::new(0.0, 3.0), 1, 3, TimeInterval::new(120, 180)),
        ];
        let utilities = UtilityMatrix::from_rows(vec![
            vec![0.5, 0.9, 0.3],
            vec![0.8, 0.2, 0.4],
            vec![0.6, 0.7, 0.5],
        ]).unwrap();
        Instance::new(users, events, utilities).unwrap()
    }

    #[test]
    fn resolves_conflict_by_moving_smallest_utility() {
        let inst = inst();
        // u0 got both e0 (0.5) and e1 (0.9): conflict. e0 is smaller →
        // removed and offered to u1 (0.8, highest among others).
        let raw = vec![vec![EventId(0), EventId(1)], vec![], vec![]];
        let plan = conflict_adjust(&inst, raw);
        assert!(plan.validate(&inst).hard_ok());
        assert!(plan.contains(UserId(0), EventId(1)));
        assert!(plan.contains(UserId(1), EventId(0)));
    }

    #[test]
    fn duplicate_copies_are_spread() {
        let inst = inst();
        // GAP assigned two copies of e2 to u0.
        let raw = vec![vec![EventId(2), EventId(2)], vec![], vec![]];
        let plan = conflict_adjust(&inst, raw);
        assert!(plan.validate(&inst).hard_ok());
        assert_eq!(plan.attendance(EventId(2)), 2);
        assert!(plan.contains(UserId(0), EventId(2)));
        // The spare copy goes to u2 (0.5 > 0.4 of u1).
        assert!(plan.contains(UserId(2), EventId(2)));
    }

    #[test]
    fn drops_copy_when_nobody_can_take_it() {
        let mut inst = inst();
        // Nobody else finds e0 interesting.
        inst.set_utility(UserId(1), EventId(0), 0.0);
        inst.set_utility(UserId(2), EventId(0), 0.0);
        let raw = vec![vec![EventId(0), EventId(1)], vec![], vec![]];
        let plan = conflict_adjust(&inst, raw);
        assert!(plan.validate(&inst).hard_ok());
        assert_eq!(plan.attendance(EventId(0)), 0);
        assert!(plan.contains(UserId(0), EventId(1)));
    }

    #[test]
    fn receiver_must_not_have_conflicts() {
        let inst = inst();
        // u1 already holds e1, which conflicts with e0; u2 is free.
        let raw = vec![
            vec![EventId(0), EventId(1)],
            vec![EventId(1)],
            vec![],
        ];
        let plan = conflict_adjust(&inst, raw);
        assert!(plan.validate(&inst).hard_ok());
        // e0 (utility 0.5 < 0.9) leaves u0; u1 blocked (has e1);
        // u2 takes it.
        assert!(plan.contains(UserId(2), EventId(0)));
    }

    #[test]
    fn malformed_raw_assignment_is_normalized() {
        let inst = inst();
        // Too few multisets, one out-of-range event id, and one extra
        // multiset beyond the user count: all tolerated.
        let raw = vec![vec![EventId(0), EventId(99)]];
        let plan = conflict_adjust(&inst, raw);
        assert!(plan.validate(&inst).hard_ok());
        assert!(plan.contains(UserId(0), EventId(0)));
        assert_eq!(plan.attendance(EventId(0)), 1);

        let raw = vec![vec![], vec![], vec![], vec![EventId(1)]];
        let plan = conflict_adjust(&inst, raw);
        assert_eq!(plan.total_assignments(), 0);
    }

    #[test]
    fn clean_input_passes_through() {
        let inst = inst();
        let raw = vec![vec![EventId(0)], vec![EventId(2)], vec![EventId(1)]];
        let plan = conflict_adjust(&inst, raw.clone());
        for (u, evs) in raw.iter().enumerate() {
            for e in evs {
                assert!(plan.contains(UserId(u as u32), *e));
            }
        }
    }

    #[test]
    fn budget_repair_drops_cheapest_utility_first() {
        let mut instance = inst();
        instance.set_budget(UserId(0), 5.0);
        let mut plan = Plan::for_instance(&instance);
        // Route 0→e0? No — use non-conflicting e0 (0–60) + e2 (120–180):
        // cost d(u0,e0)+d(e0,e2)+d(e2,u0) = 1 + 2 + 3 = 6 > 5.
        plan.add(UserId(0), EventId(0));
        plan.add(UserId(0), EventId(2));
        // Block every other user from taking the dropped event.
        instance.set_utility(UserId(1), EventId(2), 0.0);
        instance.set_utility(UserId(2), EventId(2), 0.0);
        let dropped = budget_repair(&instance, &mut plan);
        assert!(plan.validate(&instance).hard_ok());
        // e2 has utility 0.3 < 0.5 → removed first; nobody takes it.
        assert_eq!(dropped, 1);
        assert!(plan.contains(UserId(0), EventId(0)));
        assert!(!plan.contains(UserId(0), EventId(2)));
    }

    #[test]
    fn budget_repair_rehomes_when_possible() {
        let mut instance = inst();
        instance.set_budget(UserId(0), 5.0);
        let mut plan = Plan::for_instance(&instance);
        plan.add(UserId(0), EventId(0));
        plan.add(UserId(0), EventId(2));
        let dropped = budget_repair(&instance, &mut plan);
        assert_eq!(dropped, 0);
        // e2 moved to another user (u2 has 0.5 ≥ u1's 0.4).
        assert!(plan.contains(UserId(2), EventId(2)));
        assert!(plan.validate(&instance).hard_ok());
    }

    #[test]
    fn noop_on_within_budget_plans() {
        let instance = inst();
        let mut plan = Plan::for_instance(&instance);
        plan.add(UserId(0), EventId(1));
        let before = plan.clone();
        assert_eq!(budget_repair(&instance, &mut plan), 0);
        assert_eq!(plan, before);
    }
}
