//! Step 2 of the two-step framework: the utility-aware capacity filler.
//!
//! After ξ-GEPC assigns exactly `ξ_j` users to each event, "we then
//! check whether users can possibly participate in more events than
//! those assigned … solving for event participation upper bounds set to
//! `η_j − ξ_j`", which "can be solved using existing methods with
//! provable approximation ratio (e.g., see \[4\])" (Section III). The
//! method of \[4\] (She, Tong, Chen — SIGMOD 2015, *Utility-aware social
//! event-participant planning*) is a utility-descending greedy over
//! user–event pairs; this module implements it.
//!
//! The same routine backs the IEP algorithms' final step ("use methods
//! in \[4\] to check if the … users can attend other events", Algorithms
//! 3–5), via the `users` restriction parameter.

use crate::model::{EventId, Instance, UserId};
use crate::plan::Plan;
use epplan_solve::{DeadlineExceeded, DeadlineFlag};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Users per parallel candidate-scan chunk (each user costs an `O(m)`
/// pass over the events).
const SCAN_MIN_CHUNK: usize = 16;

/// Heap pops between deadline polls in the drain loop. Pops are cheap
/// (a heap sift plus a few constraint checks), so a modest stride keeps
/// the poll cost invisible while still bounding overshoot.
const POLL_STRIDE: usize = 64;

/// A max-heap key ordering candidate assignments by utility.
#[derive(PartialEq)]
struct Candidate {
    utility: f64,
    user: UserId,
    event: EventId,
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Primary: utility; ties broken on (user, event) for
        // deterministic output.
        self.utility
            .total_cmp(&other.utility)
            .then_with(|| Reverse(self.user).cmp(&Reverse(other.user)))
            .then_with(|| Reverse(self.event).cmp(&Reverse(other.event)))
    }
}

/// Greedily adds assignments in descending-utility order while all
/// hard constraints and the upper bounds `η` hold. Restricted to
/// `users` when given (IEP repair mode); considers every user
/// otherwise. Returns the number of assignments added.
///
/// Candidates are validated lazily at pop time: adding assignments
/// only ever tightens the constraints (more conflicts, less residual
/// budget, less capacity), so a candidate that fails once can be
/// discarded permanently.
pub fn fill_to_upper(instance: &Instance, plan: &mut Plan, users: Option<&[UserId]>) -> usize {
    match fill_impl(instance, plan, users, None) {
        Ok(added) => added,
        // No deadline was supplied, so no poll can ever trip.
        Err(DeadlineExceeded) => unreachable!("fill without a deadline cannot trip"),
    }
}

/// [`fill_to_upper`] under a wall-clock deadline: the budget-governed
/// entry point for anytime solvers and per-op serving budgets. The flag
/// is polled between per-user candidate scans and every
/// [`POLL_STRIDE`] heap pops.
///
/// On `Err` the plan holds a *valid partial fill* — a prefix of the
/// same deterministic descending-utility pop order the unbudgeted fill
/// follows — and every hard constraint still holds. Callers that need
/// all-or-nothing semantics should clone the plan first.
pub fn try_fill_to_upper(
    instance: &Instance,
    plan: &mut Plan,
    users: Option<&[UserId]>,
    deadline: &DeadlineFlag,
) -> Result<usize, DeadlineExceeded> {
    fill_impl(instance, plan, users, Some(deadline))
}

fn fill_impl(
    instance: &Instance,
    plan: &mut Plan,
    users: Option<&[UserId]>,
    deadline: Option<&DeadlineFlag>,
) -> Result<usize, DeadlineExceeded> {
    let user_iter: Vec<UserId> = match users {
        Some(us) => us.to_vec(),
        None => instance.user_ids().collect(),
    };
    // Candidate generation is a pure scan of the (frozen) plan, so it
    // fans out across user chunks. Candidates are pairwise distinct
    // under `Candidate`'s total order, so the heap's pop sequence — and
    // with it the fill — is independent of push order entirely.
    let snapshot: &Plan = plan;
    if epplan_obs::metrics_enabled() {
        epplan_obs::gauge_set("filler.par.threads", epplan_par::threads() as f64);
        epplan_obs::gauge_set(
            "filler.par.chunks",
            epplan_par::chunk_count(user_iter.len(), SCAN_MIN_CHUNK) as f64,
        );
    }
    // Full fills iterate the cached candidate arena — each user costs
    // O(candidates), not O(events), and the μ > 0 / single-event
    // affordability prefilters are already encoded in the rows.
    // Restricted (repair-mode) fills instead scan the few listed users'
    // dense rows with the same predicate applied inline: incremental
    // ops mutate the instance, which invalidates the candidate cache,
    // and rebuilding the whole arena to repair a handful of users would
    // put an O(|U|·|E|) step on the serving hot path. The two paths
    // admit identical candidate pairs, and heap pop order is a total
    // order, so the fill itself is byte-for-byte the same either way.
    let mut heap: BinaryHeap<Candidate> = if users.is_some() {
        let mut out: Vec<Candidate> = Vec::new();
        for &u in &user_iter {
            if let Some(d) = deadline {
                d.poll()?;
            }
            instance.utilities().for_each_positive_in_row(u, |e, mu| {
                if !crate::model::candidates::is_candidate(instance, u, e, mu) {
                    return;
                }
                if snapshot.contains(u, e) {
                    return;
                }
                if snapshot.attendance(e) >= instance.event(e).upper {
                    return;
                }
                out.push(Candidate {
                    utility: mu,
                    user: u,
                    event: e,
                });
            });
        }
        BinaryHeap::from(out)
    } else {
        let cands = instance.candidates();
        // One poll per chunk: the flag latches on first expiry, so the
        // whole parallel scan drains promptly (see `gap.packing`).
        let parts: Vec<Result<Vec<Candidate>, DeadlineExceeded>> =
            epplan_par::par_chunks_map(&user_iter, SCAN_MIN_CHUNK, |_, chunk| {
                if let Some(d) = deadline {
                    d.poll()?;
                }
                let mut out: Vec<Candidate> = Vec::new();
                for &u in chunk {
                    let (events, utils) = cands.row(u);
                    for (&ei, &mu) in events.iter().zip(utils) {
                        let e = EventId(ei);
                        if snapshot.contains(u, e) {
                            continue;
                        }
                        if snapshot.attendance(e) >= instance.event(e).upper {
                            continue;
                        }
                        out.push(Candidate {
                            utility: mu,
                            user: u,
                            event: e,
                        });
                    }
                }
                Ok(out)
            });
        let mut all: Vec<Candidate> = Vec::new();
        for part in parts {
            all.extend(part?);
        }
        BinaryHeap::from(all)
    };

    let mut added = 0;
    let mut pops = 0usize;
    while let Some(c) = heap.pop() {
        pops += 1;
        if pops.is_multiple_of(POLL_STRIDE) {
            if let Some(d) = deadline {
                d.poll()?;
            }
        }
        if plan.attendance(c.event) >= instance.event(c.event).upper {
            continue;
        }
        if plan.contains(c.user, c.event) {
            continue;
        }
        if !instance.can_attend_with(c.user, plan.user_plan(c.user), c.event) {
            continue;
        }
        plan.add(c.user, c.event);
        added += 1;
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Event, TimeInterval, User, UtilityMatrix};
    use epplan_geo::Point;

    /// 2 users at the origin with generous budgets; 3 non-conflicting
    /// nearby events with spare capacity.
    fn open_instance() -> Instance {
        let users = vec![
            User::new(Point::new(0.0, 0.0), 100.0),
            User::new(Point::new(0.0, 1.0), 100.0),
        ];
        let events = vec![
            Event::new(Point::new(1.0, 0.0), 0, 2, TimeInterval::new(0, 59)),
            Event::new(Point::new(2.0, 0.0), 0, 2, TimeInterval::new(60, 119)),
            Event::new(Point::new(3.0, 0.0), 0, 1, TimeInterval::new(120, 179)),
        ];
        let utilities = UtilityMatrix::from_rows(vec![
            vec![0.9, 0.8, 0.7],
            vec![0.6, 0.5, 0.95],
        ]).unwrap();
        Instance::new(users, events, utilities).unwrap()
    }

    #[test]
    fn fills_everything_when_unconstrained() {
        let inst = open_instance();
        let mut plan = Plan::for_instance(&inst);
        let added = fill_to_upper(&inst, &mut plan, None);
        // e2 has capacity 1 and u1 wants it more (0.95 > 0.7);
        // everything else fits everyone.
        assert_eq!(added, 5);
        assert!(plan.contains(UserId(1), EventId(2)));
        assert!(!plan.contains(UserId(0), EventId(2)));
        assert!(plan.validate(&inst).hard_ok());
    }

    #[test]
    fn respects_upper_bounds() {
        let inst = open_instance();
        let mut plan = Plan::for_instance(&inst);
        fill_to_upper(&inst, &mut plan, None);
        for e in inst.event_ids() {
            assert!(plan.attendance(e) <= inst.event(e).upper);
        }
    }

    #[test]
    fn respects_existing_assignments() {
        let inst = open_instance();
        let mut plan = Plan::for_instance(&inst);
        plan.add(UserId(0), EventId(2)); // capacity 1 now full
        let added = fill_to_upper(&inst, &mut plan, None);
        assert_eq!(added, 4);
        assert!(!plan.contains(UserId(1), EventId(2)));
    }

    #[test]
    fn user_restriction() {
        let inst = open_instance();
        let mut plan = Plan::for_instance(&inst);
        let added = fill_to_upper(&inst, &mut plan, Some(&[UserId(1)]));
        assert_eq!(added, 3);
        assert!(plan.user_plan(UserId(0)).is_empty());
    }

    #[test]
    fn budget_limits_fill() {
        let mut inst = open_instance();
        inst.set_budget(UserId(0), 4.0); // only e1 round trip (4) fits… and e0 (2)
        let mut plan = Plan::for_instance(&inst);
        fill_to_upper(&inst, &mut plan, Some(&[UserId(0)]));
        // Greedy adds e0 (μ=.9, cost 2 ≤ 4); then e1 alone would cost 4
        // but combined route 1+1+2 = 4 ≤ 4 → allowed; e2 pushes beyond.
        let v = plan.validate(&inst);
        assert!(v.hard_ok());
        assert!(plan.travel_cost(&inst, UserId(0)) <= 4.0 + 1e-9);
    }

    #[test]
    fn zero_utility_pairs_never_added() {
        let mut inst = open_instance();
        inst.set_utility(UserId(0), EventId(0), 0.0);
        let mut plan = Plan::for_instance(&inst);
        fill_to_upper(&inst, &mut plan, None);
        assert!(!plan.contains(UserId(0), EventId(0)));
    }

    #[test]
    fn conflicting_events_not_combined() {
        let mut inst = open_instance();
        inst.set_event_time(EventId(1), TimeInterval::new(0, 59)); // now conflicts e0
        let mut plan = Plan::for_instance(&inst);
        fill_to_upper(&inst, &mut plan, Some(&[UserId(0)]));
        let p = plan.user_plan(UserId(0));
        assert!(
            !(p.contains(&EventId(0)) && p.contains(&EventId(1))),
            "conflicting pair assigned together"
        );
        // Higher-utility e0 wins.
        assert!(p.contains(&EventId(0)));
    }

    #[test]
    fn generous_deadline_matches_unbudgeted_fill() {
        let inst = open_instance();
        let mut p1 = Plan::for_instance(&inst);
        let mut p2 = Plan::for_instance(&inst);
        let n1 = fill_to_upper(&inst, &mut p1, None);
        let flag = DeadlineFlag::unlimited();
        let n2 = try_fill_to_upper(&inst, &mut p2, None, &flag).unwrap();
        assert_eq!(n1, n2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn expired_deadline_trips_and_leaves_a_feasible_plan() {
        use epplan_solve::{BudgetGuard, SolveBudget};
        let inst = open_instance();
        let mut plan = Plan::for_instance(&inst);
        // A zero allowance is pre-expired: every poll trips.
        let guard =
            BudgetGuard::new(SolveBudget::from_time_limit(std::time::Duration::ZERO));
        let flag = guard.deadline_flag();
        let err = try_fill_to_upper(&inst, &mut plan, None, &flag);
        assert_eq!(err, Err(DeadlineExceeded));
        // Whatever prefix landed before the trip is still hard-feasible.
        assert!(plan.validate(&inst).hard_ok());
        // Restricted mode polls too.
        let err = try_fill_to_upper(&inst, &mut plan, Some(&[UserId(0)]), &flag);
        assert_eq!(err, Err(DeadlineExceeded));
    }

    #[test]
    fn deterministic_output() {
        let inst = open_instance();
        let mut p1 = Plan::for_instance(&inst);
        let mut p2 = Plan::for_instance(&inst);
        fill_to_upper(&inst, &mut p1, None);
        fill_to_upper(&inst, &mut p2, None);
        assert_eq!(p1, p2);
    }
}
