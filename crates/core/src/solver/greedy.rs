//! The Greedy-based ξ-GEPC algorithm (Section III-B, Algorithm 2).
//!
//! Events are conceptually copied `ξ_j` times (`m⁺ = Σ_j ξ_j` copies);
//! users are visited in random order, each greedily taking their
//! favorite still-available events until no further event fits their
//! plan (conflicts) and budget. Copies of the same event conflict with
//! each other, so a user takes at most one copy per event; tracking a
//! per-event remaining-copy counter is therefore equivalent to
//! materializing the copies.
//!
//! The paper proves an approximation ratio of `1 / (2·Uc_max)` for this
//! step (Section III-B.1). The full GEPC solution then applies the
//! step-2 capacity filler (Section III's two-step framework).

use crate::model::Instance;
use crate::plan::Plan;
use crate::solver::{filler, GepcSolver, Solution};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Users per parallel ranking chunk (each costs an `O(m log m)` sort).
const RANK_MIN_CHUNK: usize = 16;

/// Configurable greedy solver. Deterministic for a fixed [`seed`]
/// (`GreedySolver::seeded`): the paper notes the random user order
/// influences total utility (Example 5), so benchmarks fix seeds.
///
/// ```
/// use epplan_core::model::{InstanceBuilder, TimeInterval};
/// use epplan_core::solver::{GepcSolver, GreedySolver};
/// use epplan_geo::Point;
///
/// let mut b = InstanceBuilder::new();
/// let u = b.user(Point::new(0.0, 0.0), 10.0);
/// let e = b.event(Point::new(1.0, 0.0), 1, 5, TimeInterval::new(540, 600));
/// b.utility(u, e, 0.8);
/// let instance = b.build();
///
/// let solution = GreedySolver::seeded(42).solve(&instance);
/// assert_eq!(solution.plan.attendance(e), 1);   // ξ met
/// assert!(solution.fully_feasible());
/// ```
///
/// [`seed`]: GreedySolver::seeded
#[derive(Debug, Clone)]
pub struct GreedySolver {
    /// RNG seed for the user visiting order.
    pub seed: u64,
    /// Run step 2 (fill remaining capacity to `η`) after ξ-GEPC.
    /// Disabled only by ablation benchmarks.
    pub two_step: bool,
}

impl Default for GreedySolver {
    fn default() -> Self {
        GreedySolver {
            seed: 0,
            two_step: true,
        }
    }
}

impl GreedySolver {
    /// Greedy solver with a fixed seed and step 2 enabled.
    pub fn seeded(seed: u64) -> Self {
        GreedySolver {
            seed,
            two_step: true,
        }
    }

    /// Runs only step 1 (ξ-GEPC), without the capacity filler.
    pub fn xi_only(seed: u64) -> Self {
        GreedySolver {
            seed,
            two_step: false,
        }
    }
}

impl GepcSolver for GreedySolver {
    fn solve(&self, instance: &Instance) -> Solution {
        let mut plan = Plan::for_instance(instance);
        // Remaining copies of each event: ξ_j (Algorithm 2's E′ after
        // the copy transformation).
        let mut copies: Vec<u32> = instance.events().iter().map(|e| e.lower).collect();
        let mut total_copies: u64 = copies.iter().map(|&c| c as u64).sum();

        let mut order: Vec<u32> = (0..instance.n_users() as u32).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        order.shuffle(&mut rng);

        // Each user's utility-descending event ranking is independent
        // of every other user's, so all rankings are precomputed in
        // parallel; the take loop below stays sequential (it threads
        // shared copy counters) and reads them in shuffled order.
        //
        // Rankings come from the candidate set, not a dense event scan:
        // only events the user values (μ > 0) *and* can ever afford are
        // sorted. Dropping the unaffordable ones cannot change the
        // output — `can_attend_with` rejects them in every plan state
        // (the round trip to the lone event already busts the budget).
        let ranked_all: Vec<Vec<(crate::model::EventId, f64)>> = if total_copies == 0 {
            Vec::new()
        } else {
            let cands = instance.candidates();
            if epplan_obs::metrics_enabled() {
                epplan_obs::gauge_set("greedy.par.threads", epplan_par::threads() as f64);
                epplan_obs::gauge_set(
                    "greedy.par.chunks",
                    epplan_par::chunk_count(instance.n_users(), RANK_MIN_CHUNK) as f64,
                );
            }
            epplan_par::par_range_map(instance.n_users(), RANK_MIN_CHUNK, |users| {
                users
                    .map(|ui| {
                        let u = crate::model::UserId(ui as u32);
                        let (events, utils) = cands.row(u);
                        let mut ranked: Vec<(crate::model::EventId, f64)> = events
                            .iter()
                            .zip(utils)
                            .map(|(&e, &mu)| (crate::model::EventId(e), mu))
                            .collect();
                        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                        ranked
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };

        'users: for &u in &order {
            if total_copies == 0 {
                break;
            }
            let u = crate::model::UserId(u);
            // The user repeatedly takes their favorite remaining event
            // that fits (Algorithm 2, lines 5–13). Scanning events in
            // descending utility each round matches "find the event
            // that maximizes μ(u_i, e)" with the infeasible ones
            // skipped.
            let ranked = &ranked_all[u.index()];
            loop {
                let mut taken = false;
                for &(e, _) in ranked {
                    if copies[e.index()] == 0 || plan.contains(u, e) {
                        continue;
                    }
                    if instance.can_attend_with(u, plan.user_plan(u), e) {
                        plan.add(u, e);
                        copies[e.index()] -= 1;
                        total_copies -= 1;
                        taken = true;
                        if total_copies == 0 {
                            break 'users;
                        }
                        break;
                    }
                }
                if !taken {
                    break; // budget/conflicts admit nothing more
                }
            }
        }

        if self.two_step {
            filler::fill_to_upper(instance, &mut plan, None);
        }
        Solution::from_plan(instance, plan)
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Event, EventId, TimeInterval, User, UserId, UtilityMatrix};
    use epplan_geo::Point;

    /// Small instance where each event wants exactly 1 user.
    fn small() -> Instance {
        let users = vec![
            User::new(Point::new(0.0, 0.0), 50.0),
            User::new(Point::new(1.0, 0.0), 50.0),
        ];
        let events = vec![
            Event::new(Point::new(0.0, 1.0), 1, 2, TimeInterval::new(0, 59)),
            Event::new(Point::new(0.0, 2.0), 1, 2, TimeInterval::new(60, 119)),
        ];
        let utilities =
            UtilityMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.2, 0.8]]).unwrap();
        Instance::new(users, events, utilities).unwrap()
    }

    #[test]
    fn meets_lower_bounds_when_possible() {
        let inst = small();
        let sol = GreedySolver::seeded(1).solve(&inst);
        assert!(sol.fully_feasible(), "shortfall: {:?}", sol.shortfall);
        assert!(sol.plan.validate(&inst).hard_ok());
        for e in inst.event_ids() {
            assert!(sol.plan.attendance(e) >= inst.event(e).lower);
        }
    }

    #[test]
    fn xi_only_assigns_exactly_lower_bound() {
        let inst = small();
        let sol = GreedySolver::xi_only(1).solve(&inst);
        for e in inst.event_ids() {
            assert_eq!(sol.plan.attendance(e), inst.event(e).lower);
        }
    }

    #[test]
    fn two_step_fills_extra_capacity() {
        let inst = small();
        let xi = GreedySolver::xi_only(1).solve(&inst);
        let full = GreedySolver::seeded(1).solve(&inst);
        assert!(full.utility >= xi.utility);
        // Both users can attend both events here.
        assert_eq!(full.plan.total_assignments(), 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = small();
        let a = GreedySolver::seeded(7).solve(&inst);
        let b = GreedySolver::seeded(7).solve(&inst);
        assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn never_assigns_zero_utility() {
        let mut inst = small();
        inst.set_utility(UserId(0), EventId(0), 0.0);
        inst.set_utility(UserId(1), EventId(0), 0.0);
        let sol = GreedySolver::seeded(3).solve(&inst);
        assert_eq!(sol.plan.attendance(EventId(0)), 0);
        assert_eq!(sol.shortfall, vec![EventId(0)]);
    }

    #[test]
    fn respects_budget() {
        let mut inst = small();
        inst.set_budget(UserId(0), 2.0); // can reach e0 (round trip 2) only
        inst.set_budget(UserId(1), 0.0);
        let sol = GreedySolver::seeded(5).solve(&inst);
        assert!(sol.plan.validate(&inst).hard_ok());
        assert!(sol.plan.user_plan(UserId(1)).is_empty());
    }

    #[test]
    fn conflicting_events_not_in_one_plan() {
        let mut inst = small();
        inst.set_event_time(EventId(1), TimeInterval::new(0, 59));
        let sol = GreedySolver::seeded(2).solve(&inst);
        assert!(sol.plan.validate(&inst).hard_ok());
        for u in inst.user_ids() {
            assert!(sol.plan.user_plan(u).len() <= 1);
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], vec![], UtilityMatrix::zeros(0, 0)).unwrap();
        let sol = GreedySolver::default().solve(&inst);
        assert_eq!(sol.utility, 0.0);
        assert!(sol.fully_feasible());
    }
}
