//! Brute-force exact GEPC solver for small instances.
//!
//! Enumerates, per user, every *individually feasible* event subset
//! (conflict-free, within budget, positive utilities), then searches
//! the cross product with branch-and-bound: partial attendance above
//! `η` prunes immediately and an optimistic utility bound (each
//! remaining user's best subset) prunes dominated branches. Lower
//! bounds `ξ` are checked at the leaves.
//!
//! Used by unit/property tests and the approximation-ratio ablation
//! experiment (A1 in DESIGN.md); the size guards keep accidental
//! exponential blow-ups out of CI.

use crate::model::{EventId, Instance, UserId};
use crate::plan::Plan;
use crate::solver::{GepcSolver, Solution};
use epplan_solve::{BudgetGuard, SolveBudget, SolveError, SolveReport, SolveStatus};

const STAGE: &str = "core.exact";

/// Exact solver with hard instance-size limits.
#[derive(Debug, Clone)]
pub struct ExactSolver {
    /// Maximum number of users accepted.
    pub max_users: usize,
    /// Maximum number of events accepted.
    pub max_events: usize,
}

impl Default for ExactSolver {
    fn default() -> Self {
        ExactSolver {
            max_users: 10,
            max_events: 8,
        }
    }
}

impl ExactSolver {
    /// Lists every individually feasible event subset for `u`,
    /// including the empty one, as bitmasks over `EventId` indices.
    fn feasible_subsets(&self, instance: &Instance, u: UserId) -> Vec<(u32, f64)> {
        let m = instance.n_events();
        let mut out = Vec::new();
        // epplan-lint: allow(sparse/dense-scan) — exhaustive 2^|E| subset enumeration is the exact solver's contract; it only runs on deliberately tiny instances
        'mask: for mask in 0u32..(1 << m) {
            let events: Vec<EventId> = (0..m)
                .filter(|&j| mask & (1 << j) != 0)
                .map(|j| EventId(j as u32))
                .collect();
            let mut utility = 0.0;
            for (k, &a) in events.iter().enumerate() {
                if instance.utility(u, a) <= 0.0 {
                    continue 'mask;
                }
                utility += instance.utility(u, a);
                for &b in &events[k + 1..] {
                    if instance.conflicts(a, b) {
                        continue 'mask;
                    }
                }
            }
            if instance.travel_cost(u, &events) > instance.user(u).budget + 1e-9 {
                continue;
            }
            out.push((mask, utility));
        }
        out
    }

    /// Finds the optimal fully feasible plan, or `None` when no plan
    /// satisfies every constraint including the lower bounds — or when
    /// the instance exceeds the configured size limits (see
    /// [`ExactSolver::try_solve_optimal`] for the typed distinction).
    pub fn solve_optimal(&self, instance: &Instance) -> Option<Solution> {
        self.try_solve_optimal(instance, SolveBudget::UNLIMITED).ok()
    }

    /// Finds the optimal fully feasible plan under `budget`.
    ///
    /// Errors are typed: `BadInput` when the instance exceeds the
    /// configured size limits, `Infeasible` (carrying the empty plan as
    /// a partial) when no plan satisfies every constraint, and
    /// `BudgetExhausted` (carrying the best incumbent found, if any)
    /// when the search runs out of budget.
    pub fn try_solve_optimal(
        &self,
        instance: &Instance,
        budget: SolveBudget,
    ) -> Result<Solution, SolveError<Solution>> {
        if instance.n_users() > self.max_users || instance.n_events() > self.max_events {
            return Err(SolveError::bad_input(
                STAGE,
                format!(
                    "exact solver limited to {}×{} (got {}×{})",
                    self.max_users,
                    self.max_events,
                    instance.n_users(),
                    instance.n_events()
                ),
            ));
        }
        let n = instance.n_users();
        let m = instance.n_events();
        let subsets: Vec<Vec<(u32, f64)>> = instance
            .user_ids()
            .map(|u| {
                let mut s = self.feasible_subsets(instance, u);
                // Try high-utility subsets first for better pruning.
                s.sort_by(|a, b| b.1.total_cmp(&a.1));
                s
            })
            .collect();
        // Optimistic utility of users `u..`: sum of their best subsets.
        let mut suffix_best = vec![0.0; n + 1];
        for u in (0..n).rev() {
            suffix_best[u] =
                suffix_best[u + 1] + subsets[u].first().map_or(0.0, |&(_, ut)| ut);
        }

        struct Ctx<'a> {
            instance: &'a Instance,
            subsets: &'a [Vec<(u32, f64)>],
            suffix_best: &'a [f64],
            attendance: Vec<u32>,
            chosen: Vec<u32>,
            best_utility: f64,
            best: Option<Vec<u32>>,
            guard: BudgetGuard,
        }

        fn dfs(ctx: &mut Ctx<'_>, u: usize, utility: f64) -> Result<(), SolveError<()>> {
            ctx.guard.tick(STAGE)?;
            if utility + ctx.suffix_best[u] <= ctx.best_utility + 1e-12 && ctx.best.is_some()
            {
                return Ok(());
            }
            let n = ctx.subsets.len();
            if u == n {
                // Leaf: verify lower bounds.
                let feasible = ctx
                    .instance
                    .event_ids()
                    .all(|e| ctx.attendance[e.index()] >= ctx.instance.event(e).lower);
                if feasible && (ctx.best.is_none() || utility > ctx.best_utility) {
                    ctx.best_utility = utility;
                    ctx.best = Some(ctx.chosen.clone());
                }
                return Ok(());
            }
            'subset: for &(mask, ut) in &ctx.subsets[u] {
                // Apply with η pruning.
                let mut applied = 0u32;
                for j in 0..ctx.attendance.len() {
                    if mask & (1 << j) != 0 {
                        if ctx.attendance[j] + 1 > ctx.instance.event(EventId(j as u32)).upper
                        {
                            // Roll back partial application.
                            for k in 0..j {
                                if mask & (1 << k) != 0 {
                                    ctx.attendance[k] -= 1;
                                }
                            }
                            let _ = applied;
                            continue 'subset;
                        }
                        ctx.attendance[j] += 1;
                        applied += 1;
                    }
                }
                ctx.chosen[u] = mask;
                let r = dfs(ctx, u + 1, utility + ut);
                for j in 0..ctx.attendance.len() {
                    if mask & (1 << j) != 0 {
                        ctx.attendance[j] -= 1;
                    }
                }
                r?;
            }
            Ok(())
        }

        let mut ctx = Ctx {
            instance,
            subsets: &subsets,
            suffix_best: &suffix_best,
            attendance: vec![0; m],
            chosen: vec![0; n],
            best_utility: f64::NEG_INFINITY,
            best: None,
            guard: BudgetGuard::new(budget),
        };
        let search = dfs(&mut ctx, 0, 0.0);

        let reconstruct = |chosen: &[u32]| {
            let mut plan = Plan::for_instance(instance);
            for (u, mask) in chosen.iter().enumerate() {
                // epplan-lint: allow(sparse/dense-scan) — unpacking a per-user subset bitmask is O(|E|) by construction; exact instances are tiny
                for j in 0..m {
                    if mask & (1 << j) != 0 {
                        plan.add(UserId(u as u32), EventId(j as u32));
                    }
                }
            }
            let mut sol = Solution::from_plan(instance, plan);
            sol.report = SolveReport::single("exact", SolveStatus::Optimal);
            sol
        };

        match search {
            Ok(()) => ctx.best.as_deref().map(reconstruct).ok_or_else(|| {
                SolveError::infeasible(
                    STAGE,
                    "no plan satisfies every constraint including the lower bounds",
                )
                .with_partial(Solution::from_plan(instance, Plan::for_instance(instance)))
            }),
            Err(e) => {
                // Budget ran out mid-search: surface the best incumbent
                // (a fully feasible but possibly sub-optimal plan) when
                // one was found.
                let mut out: SolveError<Solution> = e.discard_partial();
                if let Some(chosen) = ctx.best.as_deref() {
                    let mut sol = reconstruct(chosen);
                    sol.report = SolveReport::single("exact", SolveStatus::BestEffort);
                    out = out.with_partial(sol);
                }
                Err(out)
            }
        }
    }
}

impl GepcSolver for ExactSolver {
    /// Returns the optimal fully feasible plan when one exists, and the
    /// empty plan (with its shortfall report) otherwise.
    fn solve(&self, instance: &Instance) -> Solution {
        self.solve_optimal(instance)
            .unwrap_or_else(|| Solution::from_plan(instance, Plan::for_instance(instance)))
    }

    fn try_solve(
        &self,
        instance: &Instance,
        budget: SolveBudget,
    ) -> Result<Solution, SolveError<Solution>> {
        self.try_solve_optimal(instance, budget)
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Event, TimeInterval, User, UtilityMatrix};
    use epplan_geo::Point;

    fn inst() -> Instance {
        let users = vec![
            User::new(Point::new(0.0, 0.0), 30.0),
            User::new(Point::new(1.0, 0.0), 30.0),
        ];
        let events = vec![
            Event::new(Point::new(0.0, 1.0), 1, 2, TimeInterval::new(0, 59)),
            Event::new(Point::new(0.0, 2.0), 0, 1, TimeInterval::new(60, 119)),
        ];
        let utilities =
            UtilityMatrix::from_rows(vec![vec![0.5, 0.9], vec![0.6, 0.8]]).unwrap();
        Instance::new(users, events, utilities).unwrap()
    }

    #[test]
    fn finds_optimum() {
        let instance = inst();
        let sol = ExactSolver::default().solve_optimal(&instance).unwrap();
        // Best: u0 {e0, e1} = 1.4, u1 {e0} = 0.6 — e1 capacity 1 so only
        // one of them gets it; u0 values it more… check: u1 {e0,e1} =
        // 1.4 and u0 {e0,e1} = 1.4; both want e1 (cap 1). Optimum:
        // one takes {e0,e1}, other {e0} → 1.4 + 0.6 = 2.0 or 1.4 + 0.5
        // = 1.9 → 2.0.
        assert!((sol.utility - 2.0).abs() < 1e-9);
        assert!(sol.fully_feasible());
        assert!(sol.plan.validate(&instance).is_feasible());
    }

    #[test]
    fn detects_infeasible_lower_bound() {
        let mut instance = inst();
        instance.set_event_bounds(EventId(1), 2, 2); // η=2 now, ξ=2
        instance.set_utility(UserId(0), EventId(1), 0.0);
        // Only u1 can attend e1 → ξ=2 unreachable.
        assert!(ExactSolver::default().solve_optimal(&instance).is_none());
    }

    #[test]
    fn trait_fallback_returns_empty_plan() {
        let mut instance = inst();
        instance.set_event_bounds(EventId(1), 2, 2);
        instance.set_utility(UserId(0), EventId(1), 0.0);
        let sol = ExactSolver::default().solve(&instance);
        assert_eq!(sol.plan.total_assignments(), 0);
        assert!(!sol.fully_feasible());
    }

    #[test]
    fn exact_dominates_both_approximations() {
        let instance = inst();
        let exact = ExactSolver::default().solve_optimal(&instance).unwrap();
        let greedy = crate::solver::GreedySolver::seeded(3).solve(&instance);
        let gap = crate::solver::GapBasedSolver::default().solve(&instance);
        assert!(exact.utility >= greedy.utility - 1e-9);
        assert!(exact.utility >= gap.utility - 1e-9);
    }

    #[test]
    fn size_guard_is_typed_bad_input() {
        let n = 11;
        let users = vec![User::new(Point::new(0.0, 0.0), 1.0); n];
        let events = vec![];
        let instance = Instance::new(users, events, UtilityMatrix::zeros(n, 0)).unwrap();
        let err = ExactSolver::default()
            .try_solve_optimal(&instance, SolveBudget::UNLIMITED)
            .unwrap_err();
        assert_eq!(err.kind, epplan_solve::FailureKind::BadInput);
        assert!(err.message.contains("exact solver limited"));
        // The lossy entry point degrades to `None` instead of panicking.
        assert!(ExactSolver::default().solve_optimal(&instance).is_none());
    }

    #[test]
    fn infeasible_error_carries_empty_plan() {
        let mut instance = inst();
        instance.set_event_bounds(EventId(1), 2, 2);
        instance.set_utility(UserId(0), EventId(1), 0.0);
        let err = ExactSolver::default()
            .try_solve_optimal(&instance, SolveBudget::UNLIMITED)
            .unwrap_err();
        assert_eq!(err.kind, epplan_solve::FailureKind::Infeasible);
        let partial = err.partial.expect("empty plan travels as partial");
        assert_eq!(partial.plan.total_assignments(), 0);
    }

    #[test]
    fn budget_exhaustion_is_typed() {
        let instance = inst();
        let err = ExactSolver::default()
            .try_solve_optimal(&instance, SolveBudget::from_iteration_cap(1))
            .unwrap_err();
        assert_eq!(err.kind, epplan_solve::FailureKind::BudgetExhausted);
    }

    #[test]
    fn respects_budget_and_conflicts() {
        let mut instance = inst();
        instance.set_budget(UserId(0), 2.0); // only e0 reachable (cost 2)
        instance.set_event_time(EventId(1), TimeInterval::new(0, 59)); // conflicts e0
        let sol = ExactSolver::default().solve_optimal(&instance).unwrap();
        assert!(sol.plan.validate(&instance).is_feasible());
        // u0 can only do e0; u1 must pick one of e0/e1 (conflict).
        for u in instance.user_ids() {
            assert!(sol.plan.user_plan(u).len() <= 1 || u == UserId(1));
        }
    }
}
