//! GEPC solvers (Section III of the paper).
//!
//! The paper's two-step framework:
//!
//! 1. solve **ξ-GEPC** — the restricted problem with every event's
//!    upper bound temporarily set to its lower bound, so each event
//!    receives exactly `ξ_j` users — with either the
//!    [`GapBasedSolver`] (Section III-A: GAP reduction via event
//!    copies, LP relaxation, Shmoys–Tardos rounding, then the Conflict
//!    Adjusting algorithm) or the [`GreedySolver`] (Section III-B:
//!    Algorithm 2);
//! 2. fill the remaining per-event capacity `η_j − ξ_j` with the
//!    utility-aware greedy of reference \[4\] ([`filler::fill_to_upper`]).
//!
//! [`ExactSolver`] provides a brute-force optimum for small instances,
//! used by tests and the approximation-ratio ablation.

pub mod conflict_adjust;
pub mod exact;
pub mod filler;
mod gap_based;
mod greedy;
mod lns;
mod local_search;

pub use exact::ExactSolver;
pub use gap_based::GapBasedSolver;
pub use greedy::GreedySolver;
pub use lns::LnsSolver;
pub use local_search::LocalSearch;

use crate::model::{EventId, Instance};
use crate::plan::Plan;

pub use epplan_solve::{
    FailureKind, SolveBudget, SolveError, SolveReport, SolveStatus,
};

/// A solution to a GEPC instance.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The produced global plan. Always free of hard violations
    /// (conflicts, budgets, upper bounds, zero-utility assignments).
    pub plan: Plan,
    /// Global utility `U_P` of the plan.
    pub utility: f64,
    /// Events whose participation lower bound `ξ` could not be met —
    /// empty when the plan is fully feasible.
    pub shortfall: Vec<EventId>,
    /// How the plan was obtained: the chain of solver attempts,
    /// including any degradation (e.g. `gap_based (budget exhausted)
    /// -> greedy (best-effort)`). Empty for solvers that do not track
    /// attempts.
    pub report: SolveReport,
}

impl Solution {
    /// Wraps a plan, computing utility and lower-bound shortfalls.
    pub fn from_plan(instance: &Instance, plan: Plan) -> Self {
        let utility = plan.total_utility(instance);
        let shortfall = instance
            .event_ids()
            .filter(|&e| plan.attendance(e) < instance.event(e).lower)
            .collect();
        Solution {
            plan,
            utility,
            shortfall,
            report: SolveReport::default(),
        }
    }

    /// Whether every event met its lower bound.
    pub fn fully_feasible(&self) -> bool {
        self.shortfall.is_empty()
    }
}

/// A GEPC solving strategy.
pub trait GepcSolver {
    /// Produces a plan for `instance`. Implementations must return
    /// plans without hard violations; lower-bound shortfalls are
    /// reported in [`Solution::shortfall`]. This entry point is total:
    /// solvers degrade to a best-effort plan rather than fail.
    fn solve(&self, instance: &Instance) -> Solution;

    /// Fallible entry point: produces a plan under `budget`, returning
    /// a typed [`SolveError`] on bad input, infeasibility, or budget
    /// exhaustion. Where a partial or fallback plan exists it travels
    /// in [`SolveError::partial`]. The default implementation ignores
    /// the budget and delegates to the total [`GepcSolver::solve`] —
    /// solvers with internal iteration structure override it.
    fn try_solve(
        &self,
        instance: &Instance,
        budget: SolveBudget,
    ) -> Result<Solution, SolveError<Solution>> {
        let _ = budget;
        Ok(self.solve(instance))
    }

    /// Short name for logs and benchmark tables.
    fn name(&self) -> &'static str;
}
