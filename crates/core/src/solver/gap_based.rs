//! The GAP-based ξ-GEPC algorithm (Section III-A).
//!
//! Pipeline, exactly as the paper prescribes:
//!
//! 1. **Copy transformation** — each event `e_j` becomes `ξ_j`
//!    identical copies (`m⁺ = Σ_j ξ_j` jobs), mutually conflicting.
//! 2. **GAP reduction** (Theorem 2 constants) — machines are users with
//!    `T_i = (2+ε)·B_i`; job `e_j`-copy on machine `u_i` takes
//!    `p_{i,j} = 2·d(u_i, e_j)` and costs `c_{i,j} = 1 − μ(u_i, e_j)`;
//!    pairs with `μ = 0` are forbidden.
//! 3. **Fractional relaxation + Shmoys–Tardos rounding** via
//!    `epplan-gap` (exact simplex LP at small scale, the
//!    Plotkin–Shmoys–Tardos multiplicative-weights relaxation above it,
//!    per the paper's citation of \[5\]).
//! 4. **Conflict Adjusting** (Algorithm 1) to remove the time conflicts
//!    the GAP reduction ignored, followed by a budget-repair pass
//!    enforcing the real `B_i` (the ST rounding only bounds load by
//!    `T_i + max p`).
//! 5. **Step 2** — fill remaining capacity `η_j − ξ_j` with the
//!    utility-aware greedy of \[4\].

use crate::model::{EventId, Instance, UserId};
use crate::plan::Plan;
use crate::solver::conflict_adjust::{budget_repair, conflict_adjust};
use crate::solver::{filler, GepcSolver, GreedySolver, Solution};
use epplan_fault::FaultAction;
use epplan_gap::{GapConfig, GapInstance, GapSolution, GapSolver as GapPipeline};
use epplan_solve::{
    Certificate, FailureKind, OptimalityCert, SolveBudget, SolveError, SolveReport, SolveStatus,
};
use std::time::Instant;

/// The GAP-based solver. `epsilon` is the `ε` of the reduction's
/// budget scaling `T_i = (2+ε)·B_i`; `gap` configures the fractional
/// method (exact LP vs multiplicative weights).
///
/// ```
/// use epplan_core::model::{InstanceBuilder, TimeInterval};
/// use epplan_core::solver::{GapBasedSolver, GepcSolver};
/// use epplan_geo::Point;
///
/// let mut b = InstanceBuilder::new();
/// let u0 = b.user(Point::new(0.0, 0.0), 10.0);
/// let u1 = b.user(Point::new(0.0, 1.0), 10.0);
/// let e = b.event(Point::new(1.0, 0.0), 2, 3, TimeInterval::new(540, 600));
/// b.utility(u0, e, 0.9);
/// b.utility(u1, e, 0.6);
/// let instance = b.build();
///
/// let solution = GapBasedSolver::default().solve(&instance);
/// assert_eq!(solution.plan.attendance(e), 2); // ξ = 2 met exactly
/// assert!(solution.fully_feasible());
/// ```
#[derive(Debug, Clone)]
pub struct GapBasedSolver {
    /// Budget-scaling epsilon of Theorem 2.
    pub epsilon: f64,
    /// Underlying GAP pipeline configuration.
    pub gap: GapConfig,
    /// Run step 2 (capacity filler) after ξ-GEPC.
    pub two_step: bool,
    /// Independently certify every tier's plan (see [`crate::certify`])
    /// and escalate to the next fallback tier when certification
    /// rejects one. The winning tier's [`Certificate`] is attached to
    /// the report.
    pub certify: bool,
}

impl Default for GapBasedSolver {
    fn default() -> Self {
        GapBasedSolver {
            epsilon: 0.2,
            gap: GapConfig::default(),
            two_step: true,
            certify: false,
        }
    }
}

impl GapBasedSolver {
    /// Default solver with a custom GAP configuration.
    pub fn with_gap_config(gap: GapConfig) -> Self {
        GapBasedSolver {
            gap,
            ..Default::default()
        }
    }

    /// Toggles independent certification of every tier's plan.
    pub fn with_certify(mut self, certify: bool) -> Self {
        self.certify = certify;
        self
    }

    /// Builds the GAP instance of the Theorem-2 reduction, returning it
    /// together with the job → event mapping (`ξ_j` copies per event).
    /// Exposed for the LP-vs-MW ablation experiment and for tests that
    /// verify the reduction constants.
    pub fn build_gap(&self, instance: &Instance) -> (GapInstance, Vec<EventId>) {
        let _sp = epplan_obs::span("solve.reduction");
        // Job list: ξ_j copies of each event, each tagged with the
        // event it copies — the ξ copies share one candidate row in the
        // sparse GAP layout (identical Theorem-2 columns).
        let mut jobs: Vec<EventId> = Vec::new();
        let mut job_group: Vec<u32> = Vec::new();
        // epplan-lint: allow(sparse/dense-scan) — Theorem-2 job emission is one O(|E| + Σξ) pass during reduction build, not a per-user sweep
        for e in instance.event_ids() {
            for _ in 0..instance.event(e).lower {
                jobs.push(e);
                job_group.push(e.0);
            }
        }
        let n = instance.n_users();
        let caps: Vec<f64> = instance
            .users()
            .iter()
            .map(|u| (2.0 + self.epsilon) * u.budget)
            .collect();
        // Transpose the per-user candidate lists into per-event rows of
        // (user, c = 1 − μ, p = 2·d). Users come out ascending per row
        // because the outer loop is ascending; the candidate predicate
        // already excludes μ = 0 pairs, and pairs the user's budget can
        // never cover drop out too (lossless: any feasible plan
        // containing the event costs at least 2·d + fee by the triangle
        // inequality, so budget repair would strip them anyway).
        let cands = instance.candidates();
        let mut rows: Vec<Vec<(u32, f64, f64)>> = vec![Vec::new(); instance.n_events()];
        for u in instance.user_ids() {
            let (events, utils) = cands.row(u);
            for (k, &e) in events.iter().enumerate() {
                rows[e as usize].push((
                    u.0,
                    1.0 - utils[k],
                    2.0 * instance.distance(u, EventId(e)),
                ));
            }
        }
        let gap = GapInstance::from_group_candidates(n, caps, job_group, &rows);
        (gap, jobs)
    }

    /// Post-processes a (possibly partial) GAP assignment into a hard-
    /// feasible GEPC solution: Algorithm 1 conflict adjusting, budget
    /// repair, and the optional step-2 capacity fill.
    ///
    /// Carries the `core.conflict_adjust.apply` fault site: a
    /// `PoisonValue` injection *skips* Algorithm 1 and budget repair —
    /// the raw GAP assignment flows through unrepaired, so downstream
    /// certification (not this function) must catch the corruption.
    /// Any other injected action fails typed.
    fn finish(
        &self,
        instance: &Instance,
        jobs: &[EventId],
        gap_solution: &GapSolution,
    ) -> Result<Solution, SolveError<Solution>> {
        // Raw multiset assignment: user → copies received.
        let mut raw: Vec<Vec<EventId>> = vec![Vec::new(); instance.n_users()];
        for (jk, &machine) in gap_solution.assignment.iter().enumerate() {
            if let (Some(i), Some(&e)) = (machine, jobs.get(jk)) {
                if i < raw.len() {
                    raw[i].push(e);
                }
            }
        }

        let mut poisoned = false;
        if let Some(action) = epplan_fault::point("core.conflict_adjust.apply") {
            match action {
                FaultAction::PoisonValue => poisoned = true,
                other => {
                    return Err(SolveError::from_fault(
                        "core.conflict_adjust",
                        "core.conflict_adjust.apply",
                        other,
                    ))
                }
            }
        }

        // Algorithm 1 + budget enforcement.
        let mut plan = {
            let _sp = epplan_obs::span("solve.conflict_adjust");
            if poisoned {
                // Poison: pass the raw assignment straight through,
                // keeping its time conflicts and budget busts.
                let mut plan = Plan::for_instance(instance);
                for (u, evs) in raw.into_iter().enumerate() {
                    for e in evs {
                        plan.add(UserId(u as u32), e);
                    }
                }
                plan
            } else {
                let mut plan = conflict_adjust(instance, raw);
                budget_repair(instance, &mut plan);
                plan
            }
        };

        if self.two_step && !poisoned {
            let _sp = epplan_obs::span("solve.fill");
            filler::fill_to_upper(instance, &mut plan, None);
        }
        Ok(Solution::from_plan(instance, plan))
    }

    /// Runs the GAP pipeline under `budget` without any fallback. On
    /// failure, a partial GAP assignment (when one exists) is post-
    /// processed into a hard-feasible partial [`Solution`] and attached
    /// to the error.
    pub fn try_solve_gap(
        &self,
        instance: &Instance,
        budget: SolveBudget,
    ) -> Result<Solution, SolveError<Solution>> {
        // Deterministic fault injection in front of the Theorem-2
        // reduction (serial entry point, hit count thread-invariant).
        if let Some(action) = epplan_fault::point("core.reduction.build") {
            return Err(SolveError::from_fault(
                "core.reduction",
                "core.reduction.build",
                action,
            ));
        }
        let (gap, jobs) = self.build_gap(instance);
        let mut config = self.gap.clone();
        config.budget = config.budget.min(budget);
        match GapPipeline::new(config).solve(&gap) {
            Ok(gap_solution) => {
                let mut sol = self.finish(instance, &jobs, &gap_solution)?;
                sol.report = SolveReport::single("gap_based", SolveStatus::Optimal);
                // Seed the optimality half of the certificate: the
                // fractional relaxation's objective lower-bounds the
                // integral GAP cost the plan came from.
                if let Some(bound) = gap_solution.fractional_cost {
                    let mut seed = Certificate::default();
                    seed.optimality.push(OptimalityCert::LpLowerBound {
                        bound,
                        achieved: gap_solution.cost,
                    });
                    sol.report.certificate = Some(seed);
                }
                Ok(sol)
            }
            Err(e) => {
                let partial = e
                    .partial
                    .as_ref()
                    .and_then(|gs| self.finish(instance, &jobs, gs).ok());
                let mut out: SolveError<Solution> = e.discard_partial();
                if let Some(sol) = partial {
                    out = out.with_partial(sol);
                }
                Err(out)
            }
        }
    }

    /// The degradation chain of the GEPC facade: GAP-based solve first;
    /// on any failure (budget exhaustion, numerical trouble, bad GAP
    /// reduction) fall back to the total [`GreedySolver`]; if even the
    /// greedy plan fails hard validation, degrade to an empty (trivially
    /// hard-feasible) plan. The chain of attempts is recorded in the
    /// returned solution's [`SolveReport`].
    ///
    /// Failures still surface as `Err` with the *original* failure kind,
    /// but the error always carries the validated fallback solution in
    /// [`SolveError::partial`], so callers choose between strictness and
    /// graceful degradation.
    pub fn solve_robust(
        &self,
        instance: &Instance,
        budget: SolveBudget,
    ) -> Result<Solution, SolveError<Solution>> {
        // Baseline for the per-stage cost delta attached to the report
        // (only when metrics collection is on — StageMark clones the
        // aggregate map, which we won't pay for by default).
        let mark = epplan_obs::metrics_enabled().then(epplan_obs::StageMark::now);
        let mut report = SolveReport::new();
        // epplan-lint: allow(determinism/wall-clock) — stage wall time feeds the SolveReport only; it never steers solver decisions
        let start = Instant::now();
        let gap_result = {
            let _sp = epplan_obs::span("solve.gap_based");
            self.try_solve_gap(instance, budget)
        };
        // Tier 1: the GAP pipeline. A success still escalates when
        // independent certification rejects the plan.
        let failure: SolveError<Solution> = match gap_result {
            Ok(mut sol) => {
                let seed = sol.report.certificate.take();
                if self.certify {
                    let mut cert = crate::certify::certify(instance, &sol.plan);
                    if let Some(seed) = seed {
                        cert.optimality.extend(seed.optimality);
                    }
                    if cert.hard_ok() {
                        report.record_success("gap_based", SolveStatus::Optimal, start.elapsed());
                        report.certificate = Some(cert);
                        if let Some(mark) = &mark {
                            report.stages = mark.delta();
                        }
                        sol.report = report;
                        return Ok(sol);
                    }
                    let msg = format!(
                        "certification rejected the gap_based plan: {}",
                        cert.violated_constraints().join(", ")
                    );
                    report.record_failure(
                        "gap_based",
                        FailureKind::NumericalInstability,
                        msg.clone(),
                        start.elapsed(),
                    );
                    SolveError::numerical("gap_based", msg)
                } else {
                    report.record_success("gap_based", SolveStatus::Optimal, start.elapsed());
                    if let Some(mark) = &mark {
                        report.stages = mark.delta();
                    }
                    sol.report = report;
                    return Ok(sol);
                }
            }
            Err(e) => {
                report.record_failure("gap_based", e.kind, e.message.clone(), start.elapsed());
                e.discard_partial()
            }
        };

        // Tiers 2–3: greedy, then the empty plan.
        let (mut fallback, certificate) = self.fallback_tiers(instance, &mut report);
        report.certificate = certificate;
        if let Some(mark) = &mark {
            report.stages = mark.delta();
        }
        fallback.report = report;
        Err(failure.with_partial(fallback))
    }

    /// Runs the fallback tiers of the degradation chain — the total
    /// greedy solver, then the trivially hard-feasible empty plan —
    /// recording every attempt in `report`. Returns the surviving
    /// solution plus its [`Certificate`] when certification is on.
    ///
    /// Carries the `core.greedy.fallback` fault site: `PoisonValue`
    /// deterministically corrupts the greedy plan (every user piled
    /// onto every event) so validation — or certification — must catch
    /// it; any other action fails the greedy tier typed.
    fn fallback_tiers(
        &self,
        instance: &Instance,
        report: &mut SolveReport,
    ) -> (Solution, Option<Certificate>) {
        // epplan-lint: allow(determinism/wall-clock) — report-only fallback timing, not a solver decision
        let fb_start = Instant::now();
        let greedy = GreedySolver {
            two_step: self.two_step,
            ..GreedySolver::default()
        };
        let mut fallback = {
            let _sp = epplan_obs::span("solve.greedy_fallback");
            greedy.solve(instance)
        };

        let mut greedy_failure: Option<(FailureKind, String)> = None;
        if let Some(action) = epplan_fault::point("core.greedy.fallback") {
            match action {
                FaultAction::PoisonValue => {
                    let mut plan = fallback.plan.clone();
                    for u in instance.user_ids() {
                        // epplan-lint: allow(sparse/dense-scan) — deliberate poison: the PoisonValue fault action builds a maximally infeasible plan, dense by design
                        for e in instance.event_ids() {
                            plan.add(u, e);
                        }
                    }
                    fallback = Solution::from_plan(instance, plan);
                }
                other => {
                    let e: SolveError<Solution> =
                        SolveError::from_fault("core.greedy", "core.greedy.fallback", other);
                    greedy_failure = Some((e.kind, e.message));
                }
            }
        }

        let mut certificate = None;
        if greedy_failure.is_none() {
            if self.certify {
                let cert = crate::certify::certify(instance, &fallback.plan);
                if cert.hard_ok() {
                    certificate = Some(cert);
                } else {
                    greedy_failure = Some((
                        FailureKind::NumericalInstability,
                        format!(
                            "certification rejected the greedy fallback: {}",
                            cert.violated_constraints().join(", ")
                        ),
                    ));
                }
            } else if !fallback.plan.validate(instance).hard_ok() {
                greedy_failure = Some((
                    FailureKind::NumericalInstability,
                    "greedy fallback produced a hard-infeasible plan".to_string(),
                ));
            }
        }

        match greedy_failure {
            None => {
                report.record_success("greedy", SolveStatus::BestEffort, fb_start.elapsed());
            }
            Some((kind, message)) => {
                report.record_failure("greedy", kind, message, fb_start.elapsed());
                // Last resort: the empty plan is trivially free of
                // hard violations.
                // epplan-lint: allow(determinism/wall-clock) — report-only last-resort timing, not a solver decision
                let empty_start = Instant::now();
                fallback = Solution::from_plan(
                    instance,
                    Plan::empty(instance.n_users(), instance.n_events()),
                );
                if self.certify {
                    certificate = Some(crate::certify::certify(instance, &fallback.plan));
                }
                report.record_success(
                    "best_effort_empty",
                    SolveStatus::BestEffort,
                    empty_start.elapsed(),
                );
            }
        }
        (fallback, certificate)
    }
}

impl GepcSolver for GapBasedSolver {
    fn solve(&self, instance: &Instance) -> Solution {
        match self.solve_robust(instance, SolveBudget::UNLIMITED) {
            Ok(sol) => sol,
            Err(e) => e.partial.unwrap_or_else(|| {
                Solution::from_plan(
                    instance,
                    Plan::empty(instance.n_users(), instance.n_events()),
                )
            }),
        }
    }

    fn try_solve(
        &self,
        instance: &Instance,
        budget: SolveBudget,
    ) -> Result<Solution, SolveError<Solution>> {
        self.solve_robust(instance, budget)
    }

    fn name(&self) -> &'static str {
        "gap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Event, TimeInterval, User, UserId, UtilityMatrix};
    use epplan_geo::Point;

    fn small() -> Instance {
        let users = vec![
            User::new(Point::new(0.0, 0.0), 50.0),
            User::new(Point::new(1.0, 0.0), 50.0),
            User::new(Point::new(2.0, 0.0), 50.0),
        ];
        let events = vec![
            Event::new(Point::new(0.0, 1.0), 2, 3, TimeInterval::new(0, 59)),
            Event::new(Point::new(0.0, 2.0), 1, 2, TimeInterval::new(60, 119)),
        ];
        let utilities = UtilityMatrix::from_rows(vec![
            vec![0.9, 0.4],
            vec![0.7, 0.8],
            vec![0.5, 0.6],
        ]).unwrap();
        Instance::new(users, events, utilities).unwrap()
    }

    #[test]
    fn produces_hard_feasible_plan() {
        let inst = small();
        let sol = GapBasedSolver::default().solve(&inst);
        assert!(sol.plan.validate(&inst).hard_ok());
    }

    #[test]
    fn meets_lower_bounds_when_easy() {
        let inst = small();
        let sol = GapBasedSolver::default().solve(&inst);
        assert!(sol.fully_feasible(), "shortfall {:?}", sol.shortfall);
        for e in inst.event_ids() {
            assert!(sol.plan.attendance(e) >= inst.event(e).lower);
        }
    }

    #[test]
    fn build_gap_constants_match_theorem_2() {
        let inst = small();
        let solver = GapBasedSolver::default();
        let (gap, jobs) = solver.build_gap(&inst);
        // m⁺ = 2 + 1 copies.
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs, vec![EventId(0), EventId(0), EventId(1)]);
        assert_eq!(gap.n_machines(), 3);
        // c = 1 − μ for (u0, e0-copy): 1 − 0.9.
        assert!((gap.cost(0, 0) - 0.1).abs() < 1e-12);
        // p = 2·d(u0, e0) = 2·1.
        assert!((gap.time(0, 0) - 2.0).abs() < 1e-12);
        // T = (2+ε)·B.
        assert!((gap.capacity(0) - 2.2 * 50.0).abs() < 1e-9);
    }

    #[test]
    fn zero_utility_pairs_forbidden_in_gap() {
        let mut inst = small();
        inst.set_utility(UserId(0), EventId(0), 0.0);
        let solver = GapBasedSolver::default();
        let (gap, _) = solver.build_gap(&inst);
        assert!(!gap.allowed(0, 0));
        assert!(!gap.allowed(0, 1)); // second copy of e0
        assert!(gap.allowed(0, 2)); // e1 still fine
    }

    #[test]
    fn two_step_adds_capacity_fill() {
        let inst = small();
        let xi_only = GapBasedSolver {
            two_step: false,
            ..Default::default()
        }
        .solve(&inst);
        let full = GapBasedSolver::default().solve(&inst);
        assert!(full.utility >= xi_only.utility - 1e-9);
        assert!(full.plan.total_assignments() >= xi_only.plan.total_assignments());
    }

    #[test]
    fn infeasible_lower_bounds_reported() {
        let mut inst = small();
        // Demand 3 users for e0 but forbid two of them.
        inst.set_event_bounds(EventId(0), 3, 3);
        inst.set_utility(UserId(1), EventId(0), 0.0);
        inst.set_utility(UserId(2), EventId(0), 0.0);
        let sol = GapBasedSolver::default().solve(&inst);
        assert!(sol.plan.validate(&inst).hard_ok());
        assert!(sol.shortfall.contains(&EventId(0)));
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], vec![], UtilityMatrix::zeros(0, 0)).unwrap();
        let sol = GapBasedSolver::default().solve(&inst);
        assert_eq!(sol.utility, 0.0);
    }

    #[test]
    fn successful_solve_records_single_attempt() {
        let inst = small();
        let sol = GapBasedSolver::default()
            .solve_robust(&inst, SolveBudget::UNLIMITED)
            .unwrap();
        assert_eq!(sol.report.winner(), Some("gap_based"));
        assert!(!sol.report.degraded());
        assert_eq!(sol.report.final_status(), Some(SolveStatus::Optimal));
    }

    #[test]
    fn exhausted_budget_degrades_to_valid_greedy_fallback() {
        let inst = small();
        let budget = SolveBudget::from_iteration_cap(1);
        let err = GapBasedSolver::default()
            .solve_robust(&inst, budget)
            .unwrap_err();
        assert_eq!(err.kind, epplan_solve::FailureKind::BudgetExhausted);
        let fallback = err.partial.expect("fallback plan travels as partial");
        assert!(fallback.plan.validate(&inst).hard_ok());
        // The degradation chain is on record: gap_based failed, the
        // greedy fallback won.
        assert!(fallback.report.degraded());
        assert_eq!(fallback.report.winner(), Some("greedy"));
        assert_eq!(
            fallback.report.final_status(),
            Some(SolveStatus::BestEffort)
        );
    }

    #[test]
    fn total_solve_never_fails_under_tiny_budget() {
        let inst = small();
        let solver = GapBasedSolver {
            gap: GapConfig {
                budget: SolveBudget::from_iteration_cap(1),
                ..GapConfig::default()
            },
            ..Default::default()
        };
        // The trait entry point stays total: the internal budget blows
        // up the GAP pipeline, the greedy fallback takes over.
        let sol = solver.solve(&inst);
        assert!(sol.plan.validate(&inst).hard_ok());
        assert!(sol.report.degraded());
    }

    #[test]
    fn try_solve_trait_entry_matches_solve_robust() {
        let inst = small();
        let solver = GapBasedSolver::default();
        let via_trait = GepcSolver::try_solve(&solver, &inst, SolveBudget::UNLIMITED).unwrap();
        assert!(via_trait.plan.validate(&inst).hard_ok());
        assert_eq!(via_trait.report.winner(), Some("gap_based"));
    }
}
