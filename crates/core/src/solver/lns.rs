//! Large Neighborhood Search (LNS) for GEPC — a third solving strategy
//! beyond the paper's two, exploring the design space its conclusion
//! leaves open.
//!
//! LNS alternates **destroy** (release a random subset of users'
//! assignments) and **repair** (rebuild greedily with the step-2
//! filler, then re-secure any lower bound the destruction broke with
//! the Algorithm-4 transfer machinery), keeping the best plan seen.
//! Because repair reuses the same constraint-checked primitives as the
//! paper's algorithms, every intermediate plan stays hard-feasible.
//!
//! Seeded from the greedy solution, LNS trades extra wall-clock for
//! utility — typically landing between the greedy and GAP-based
//! results at a fraction of the GAP pipeline's cost (see the
//! `gepc/lns` Criterion bench).

use crate::incremental::repair::transfer_users_to;
use crate::model::{Instance, UserId};
use crate::plan::Plan;
use crate::solver::{filler, GepcSolver, GreedySolver, LocalSearch, Solution};
use epplan_solve::{
    BudgetGuard, DeadlineExceeded, DeadlineFlag, FailureKind, SolveBudget, SolveError,
};
use rand::prelude::*;

/// Stage label on budget errors from the budgeted LNS entry point.
const STAGE: &str = "core.lns";

/// Users (or events) per chunk in the acceptance-test scans.
const SCORE_MIN_CHUNK: usize = 256;

/// Plan utility, parallel over user chunks. Chunk subtotals merge in
/// index order, so the value depends only on the fixed chunk plan —
/// every LNS acceptance test sees the same score at any thread count.
fn plan_utility(instance: &Instance, plan: &Plan) -> f64 {
    epplan_par::par_range_reduce(
        instance.n_users(),
        SCORE_MIN_CHUNK,
        |users| {
            users
                .map(|ui| plan.user_utility(instance, UserId(ui as u32)))
                .sum::<f64>()
        },
        |a, b| a + b,
    )
    .unwrap_or(0.0)
}

/// Configurable LNS solver.
#[derive(Debug, Clone)]
pub struct LnsSolver {
    /// RNG seed (destroy choices and the greedy seed).
    pub seed: u64,
    /// Number of destroy/repair iterations.
    pub iterations: usize,
    /// Fraction of users whose plans are released per iteration.
    pub destroy_fraction: f64,
    /// Run a final [`LocalSearch`] polish on the best plan.
    pub polish: bool,
}

impl Default for LnsSolver {
    fn default() -> Self {
        LnsSolver {
            seed: 0,
            iterations: 30,
            destroy_fraction: 0.2,
            polish: true,
        }
    }
}

impl LnsSolver {
    /// LNS with a fixed seed and default intensity.
    pub fn seeded(seed: u64) -> Self {
        LnsSolver {
            seed,
            ..Default::default()
        }
    }

    /// One destroy/repair round on `plan`. A tripped `deadline` aborts
    /// mid-repair with the plan in a valid (possibly under-filled)
    /// state; callers discard it and keep the incumbent.
    fn destroy_and_repair(
        &self,
        instance: &Instance,
        plan: &mut Plan,
        rng: &mut StdRng,
        deadline: Option<&DeadlineFlag>,
    ) -> Result<(), DeadlineExceeded> {
        let n = instance.n_users();
        if n == 0 {
            return Ok(());
        }
        let k = ((n as f64 * self.destroy_fraction).ceil() as usize).clamp(1, n);
        let mut users: Vec<u32> = (0..n as u32).collect();
        users.shuffle(rng);
        let victims: Vec<UserId> = users[..k].iter().map(|&u| UserId(u)).collect();

        // Destroy: release the victims' assignments.
        for &u in &victims {
            for e in plan.user_plan(u).to_vec() {
                plan.remove(u, e);
            }
        }
        // Repair 1: re-secure lower bounds the destruction may have
        // broken, transferring spare users (Algorithm 4 machinery).
        // epplan-lint: allow(sparse/dense-scan) — lower-bound triage is one O(|E|) attendance sweep per LNS iteration; the transfers it triggers dominate the cost
        for e in instance.event_ids() {
            let lower = instance.event(e).lower;
            if plan.attendance(e) < lower {
                if let Some(d) = deadline {
                    d.poll()?;
                }
                let _ = transfer_users_to(instance, plan, e, lower);
            }
        }
        // Repair 2: refill the victims (and any capacity the transfers
        // opened) with the utility-aware filler.
        match deadline {
            Some(d) => {
                filler::try_fill_to_upper(instance, plan, Some(&victims), d)?;
                filler::try_fill_to_upper(instance, plan, None, d)?;
            }
            None => {
                filler::fill_to_upper(instance, plan, Some(&victims));
                filler::fill_to_upper(instance, plan, None);
            }
        }
        Ok(())
    }

    /// [`GepcSolver::solve`] under a per-call [`SolveBudget`]: the
    /// anytime LNS. One guard tick per destroy/repair iteration
    /// enforces the iteration cap; the wall-clock deadline is shared
    /// into the repair machinery via a [`DeadlineFlag`], so a trip cuts
    /// a fill mid-flight instead of waiting the iteration out. On
    /// exhaustion the best plan seen so far travels as the error's
    /// partial — always hard-feasible, never the half-repaired working
    /// copy.
    pub fn solve_budgeted(
        &self,
        instance: &Instance,
        budget: SolveBudget,
    ) -> Result<Solution, SolveError<Solution>> {
        let mut guard = BudgetGuard::new(budget);
        let deadline = guard.deadline_flag();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best = GreedySolver::seeded(self.seed).solve(instance).plan;
        let mut best_utility = plan_utility(instance, &best);
        let mut best_shortfall = count_shortfall(instance, &best);

        let mut current = best.clone();
        for _ in 0..self.iterations {
            if let Err(e) = guard.tick(STAGE) {
                return Err(e
                    .discard_partial()
                    .with_partial(Solution::from_plan(instance, best)));
            }
            if self
                .destroy_and_repair(instance, &mut current, &mut rng, Some(&deadline))
                .is_err()
            {
                // The flag only latches once the monotonic clock passed
                // the deadline, so this point check errs; the
                // interrupted iteration's working copy is discarded.
                let e = match guard.check_deadline(STAGE) {
                    Err(e) => e,
                    Ok(()) => SolveError::new(
                        FailureKind::BudgetExhausted,
                        STAGE,
                        "deadline flag tripped".to_string(),
                    ),
                };
                return Err(e
                    .discard_partial()
                    .with_partial(Solution::from_plan(instance, best)));
            }
            let utility = plan_utility(instance, &current);
            let shortfall = count_shortfall(instance, &current);
            if shortfall < best_shortfall
                || (shortfall == best_shortfall && utility > best_utility + 1e-12)
            {
                best = current.clone();
                best_utility = utility;
                best_shortfall = shortfall;
            } else {
                current = best.clone();
            }
        }
        if let Err(e) = guard.check_deadline(STAGE) {
            // All iterations ran but the deadline is already blown:
            // skip the polish and surface the exhaustion with the
            // unpolished best as the partial.
            return Err(e
                .discard_partial()
                .with_partial(Solution::from_plan(instance, best)));
        }
        if self.polish {
            LocalSearch::default().improve(instance, &mut best);
        }
        Ok(Solution::from_plan(instance, best))
    }
}

impl GepcSolver for LnsSolver {
    fn solve(&self, instance: &Instance) -> Solution {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Seed with the paper's greedy two-step solution.
        let mut best = GreedySolver::seeded(self.seed).solve(instance).plan;
        let mut best_utility = plan_utility(instance, &best);
        let mut best_shortfall = count_shortfall(instance, &best);

        let mut current = best.clone();
        for _ in 0..self.iterations {
            // Infallible without a deadline.
            let _ = self.destroy_and_repair(instance, &mut current, &mut rng, None);
            let utility = plan_utility(instance, &current);
            let shortfall = count_shortfall(instance, &current);
            // Accept lexicographically: fewer shortfalls first, then
            // higher utility.
            if shortfall < best_shortfall
                || (shortfall == best_shortfall && utility > best_utility + 1e-12)
            {
                best = current.clone();
                best_utility = utility;
                best_shortfall = shortfall;
            } else {
                // Restart from the incumbent to avoid drifting into
                // poor regions.
                current = best.clone();
            }
        }
        if self.polish {
            LocalSearch::default().improve(instance, &mut best);
        }
        Solution::from_plan(instance, best)
    }

    fn name(&self) -> &'static str {
        "lns"
    }
}

fn count_shortfall(instance: &Instance, plan: &Plan) -> usize {
    // Exact integer reduction: chunked counting is associative, so the
    // parallel count always equals the serial one.
    epplan_par::par_range_reduce(
        instance.n_events(),
        SCORE_MIN_CHUNK,
        |events| {
            events
                .filter(|&ei| {
                    let e = crate::model::EventId(ei as u32);
                    plan.attendance(e) < instance.event(e).lower
                })
                .count()
        },
        |a, b| a + b,
    )
    .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{InstanceBuilder, TimeInterval};
    use epplan_geo::Point;

    fn random_instance(seed: u64, n_users: usize, n_events: usize) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = InstanceBuilder::new();
        for _ in 0..n_users {
            b.user(
                Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)),
                rng.gen_range(8.0..40.0),
            );
        }
        for k in 0..n_events as u32 {
            let s = 180 * k;
            b.event(
                Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)),
                rng.gen_range(0..3),
                rng.gen_range(3..9),
                TimeInterval::new(s, s + 90),
            );
        }
        for u in 0..n_users as u32 {
            for e in 0..n_events as u32 {
                if rng.gen_bool(0.5) {
                    b.utility(
                        crate::model::UserId(u),
                        crate::model::EventId(e),
                        rng.gen_range(0.05..1.0),
                    );
                }
            }
        }
        b.build()
    }

    #[test]
    fn produces_hard_feasible_plans() {
        for seed in 0..4 {
            let inst = random_instance(seed, 25, 7);
            let sol = LnsSolver::seeded(seed).solve(&inst);
            let v = sol.plan.validate(&inst);
            assert!(v.hard_ok(), "seed {seed}: {:?}", v.violations);
        }
    }

    #[test]
    fn never_worse_than_its_greedy_seed() {
        for seed in 0..4 {
            let inst = random_instance(100 + seed, 30, 8);
            let greedy = GreedySolver::seeded(seed).solve(&inst);
            let lns = LnsSolver::seeded(seed).solve(&inst);
            assert!(
                lns.utility >= greedy.utility - 1e-9,
                "seed {seed}: lns {} < greedy {}",
                lns.utility,
                greedy.utility
            );
            // Lexicographic acceptance also protects lower bounds.
            assert!(lns.shortfall.len() <= greedy.shortfall.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = random_instance(7, 20, 6);
        let a = LnsSolver::seeded(3).solve(&inst);
        let b = LnsSolver::seeded(3).solve(&inst);
        assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn zero_iterations_equals_polished_greedy() {
        let inst = random_instance(9, 20, 6);
        let lns = LnsSolver {
            seed: 1,
            iterations: 0,
            polish: false,
            ..Default::default()
        }
        .solve(&inst);
        let greedy = GreedySolver::seeded(1).solve(&inst);
        assert_eq!(lns.plan, greedy.plan);
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted_solve() {
        let inst = random_instance(11, 20, 6);
        let plain = LnsSolver::seeded(2).solve(&inst);
        let budgeted = LnsSolver::seeded(2)
            .solve_budgeted(&inst, SolveBudget::UNLIMITED)
            .unwrap();
        assert_eq!(plain.plan, budgeted.plan);
    }

    #[test]
    fn zero_deadline_returns_feasible_partial() {
        let inst = random_instance(12, 25, 7);
        let err = LnsSolver::seeded(4)
            .solve_budgeted(
                &inst,
                SolveBudget::from_time_limit(std::time::Duration::ZERO),
            )
            .unwrap_err();
        assert_eq!(err.kind, FailureKind::BudgetExhausted);
        let partial = err.partial.expect("best-so-far travels as the partial");
        // The partial is the greedy seed (or better) and hard-feasible.
        assert!(partial.plan.validate(&inst).hard_ok());
        let greedy = GreedySolver::seeded(4).solve(&inst);
        assert!(partial.utility >= greedy.utility - 1e-9);
    }

    #[test]
    fn iteration_cap_trips_with_partial() {
        let inst = random_instance(13, 20, 6);
        let err = LnsSolver::seeded(5)
            .solve_budgeted(&inst, SolveBudget::from_iteration_cap(3))
            .unwrap_err();
        assert_eq!(err.kind, FailureKind::BudgetExhausted);
        assert!(err.partial.unwrap().plan.validate(&inst).hard_ok());
    }

    #[test]
    fn empty_instance() {
        let inst = InstanceBuilder::new().build();
        let sol = LnsSolver::default().solve(&inst);
        assert_eq!(sol.utility, 0.0);
    }
}
