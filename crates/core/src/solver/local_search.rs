//! Local-search post-optimization of a feasible plan.
//!
//! Neither of the paper's algorithms revisits its choices: greedy
//! commits per user, the GAP pipeline per event copy. This module adds
//! an optional hill-climbing pass over three utility-improving moves —
//! a natural extension the paper leaves open. Every move preserves all
//! hard constraints **and** never breaks an event's already-satisfied
//! lower bound, so the pass composes safely with both solvers:
//!
//! * **add** — give a user an extra event they can afford (what step 2
//!   does, re-checked in case earlier moves opened capacity);
//! * **swap** — replace one event in a user's plan by a higher-utility
//!   one;
//! * **transfer** — hand an assignment to a user who values the event
//!   more (attendance unchanged, so bounds are unaffected).
//!
//! The `ablation-local-search` harness target measures its utility
//! contribution on the city datasets.

use crate::model::{EventId, Instance, UserId};
use crate::plan::Plan;

/// Users per parallel proposal chunk (a proposal costs `O(m · |plan|)`
/// feasibility checks).
const PROPOSE_MIN_CHUNK: usize = 8;

/// A user's best candidate moves, evaluated against a plan snapshot.
/// Application re-validates against the live plan, since earlier users'
/// applied moves may have consumed the capacity a proposal relied on.
#[derive(Debug, Clone, Copy, Default)]
struct Proposal {
    /// Best extra event and its utility.
    add: Option<(EventId, f64)>,
    /// Best `(old, new, gain)` replacement.
    swap: Option<(EventId, EventId, f64)>,
}

/// Configuration for [`LocalSearch::improve`].
#[derive(Debug, Clone, Copy)]
pub struct LocalSearch {
    /// Maximum full improvement sweeps; each sweep is O(n·m) move
    /// evaluations.
    pub max_rounds: usize,
    /// Minimum utility gain for a move to be taken (guards against
    /// floating-point churn).
    pub min_gain: f64,
}

impl Default for LocalSearch {
    fn default() -> Self {
        LocalSearch {
            max_rounds: 8,
            min_gain: 1e-9,
        }
    }
}

impl LocalSearch {
    /// Runs improvement sweeps until a sweep finds no move or the round
    /// budget is spent. Returns the total utility gained.
    pub fn improve(&self, instance: &Instance, plan: &mut Plan) -> f64 {
        if epplan_obs::metrics_enabled() {
            epplan_obs::gauge_set("local_search.par.threads", epplan_par::threads() as f64);
            epplan_obs::gauge_set(
                "local_search.par.chunks",
                epplan_par::chunk_count(instance.n_users(), PROPOSE_MIN_CHUNK) as f64,
            );
        }
        let mut total_gain = 0.0;
        for _ in 0..self.max_rounds {
            let gain = self.sweep(instance, plan);
            total_gain += gain;
            if gain <= self.min_gain {
                break;
            }
        }
        total_gain
    }

    /// One improvement pass: every user's best add/swap is *proposed*
    /// in parallel against a frozen snapshot of the plan, then the
    /// proposals are *applied* sequentially in user-id order, each
    /// re-validated against the live plan (an earlier user's applied
    /// move may have consumed the capacity a later proposal assumed).
    /// The apply order is fixed, so the sweep's outcome depends only on
    /// the snapshot — not on the thread count. Moves invalidated at
    /// apply time are simply dropped; the next sweep re-proposes
    /// against the updated plan.
    fn sweep(&self, instance: &Instance, plan: &mut Plan) -> f64 {
        let snapshot: &Plan = plan;
        // Move candidates come from the candidate set: only events a
        // user values (μ > 0) and can ever afford are proposed. The
        // dropped pairs could never pass `can_attend_with` anyway, so
        // the sweep's outcome is unchanged — each proposal just costs
        // O(candidates(u)) instead of O(events).
        let cands = instance.candidates();
        let proposals: Vec<Proposal> =
            epplan_par::par_range_map(instance.n_users(), PROPOSE_MIN_CHUNK, |users| {
                users
                    .map(|ui| {
                        let u = UserId(ui as u32);
                        Proposal {
                            add: self.propose_add(instance, cands, snapshot, u),
                            swap: self.propose_swap(instance, cands, snapshot, u),
                        }
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();

        let mut gain = 0.0;
        for (ui, p) in proposals.iter().enumerate() {
            let u = UserId(ui as u32);
            if let Some((e, mu)) = p.add {
                if self.add_still_valid(instance, plan, u, e) {
                    plan.add(u, e);
                    gain += mu;
                }
            }
            if let Some((old, new, delta)) = p.swap {
                if self.swap_still_valid(instance, plan, u, old, new) {
                    plan.remove(u, old);
                    plan.add(u, new);
                    gain += delta;
                }
            }
        }
        gain += self.transfers(instance, plan);
        gain
    }

    /// Proposes the best feasible extra event for `u` under `plan`.
    fn propose_add(
        &self,
        instance: &Instance,
        cands: &crate::model::CandidateSet,
        plan: &Plan,
        u: UserId,
    ) -> Option<(EventId, f64)> {
        let mut best: Option<(EventId, f64)> = None;
        let (events, utils) = cands.row(u);
        for (&ei, &mu) in events.iter().zip(utils) {
            let e = EventId(ei);
            if mu <= self.min_gain || plan.contains(u, e) {
                continue;
            }
            if plan.attendance(e) >= instance.event(e).upper {
                continue;
            }
            if !instance.can_attend_with(u, plan.user_plan(u), e) {
                continue;
            }
            if best.is_none_or(|(_, b)| mu > b) {
                best = Some((e, mu));
            }
        }
        best
    }

    /// Re-checks a proposed add against the live plan.
    fn add_still_valid(
        &self,
        instance: &Instance,
        plan: &Plan,
        u: UserId,
        e: EventId,
    ) -> bool {
        !plan.contains(u, e)
            && plan.attendance(e) < instance.event(e).upper
            && instance.can_attend_with(u, plan.user_plan(u), e)
    }

    /// Proposes the best utility-improving swap in `u`'s plan.
    fn propose_swap(
        &self,
        instance: &Instance,
        cands: &crate::model::CandidateSet,
        plan: &Plan,
        u: UserId,
    ) -> Option<(EventId, EventId, f64)> {
        let current: Vec<EventId> = plan.user_plan(u).to_vec();
        let mut best: Option<(EventId, EventId, f64)> = None;
        let (cand_events, cand_utils) = cands.row(u);
        for &old in &current {
            // Removing `old` must not break its lower bound.
            if plan.attendance(old) <= instance.event(old).lower {
                continue;
            }
            let mu_old = instance.utility(u, old);
            let rest: Vec<EventId> = current.iter().copied().filter(|&e| e != old).collect();
            for (&ni, &mu_new) in cand_events.iter().zip(cand_utils) {
                let new = EventId(ni);
                if mu_new <= mu_old + self.min_gain || current.contains(&new) {
                    continue;
                }
                if plan.attendance(new) >= instance.event(new).upper {
                    continue;
                }
                if !instance.can_attend_with(u, &rest, new) {
                    continue;
                }
                let delta = mu_new - mu_old;
                if best.is_none_or(|(_, _, b)| delta > b) {
                    best = Some((old, new, delta));
                }
            }
        }
        best
    }

    /// Re-checks a proposed swap against the live plan (including the
    /// user's own just-applied add, which may conflict with `new`).
    fn swap_still_valid(
        &self,
        instance: &Instance,
        plan: &Plan,
        u: UserId,
        old: EventId,
        new: EventId,
    ) -> bool {
        let current = plan.user_plan(u);
        if !current.contains(&old) || current.contains(&new) {
            return false;
        }
        if plan.attendance(old) <= instance.event(old).lower {
            return false;
        }
        if plan.attendance(new) >= instance.event(new).upper {
            return false;
        }
        let rest: Vec<EventId> = current.iter().copied().filter(|&e| e != old).collect();
        instance.can_attend_with(u, &rest, new)
    }

    /// Transfers assignments to users who value them more. Attendance
    /// is unchanged so participation bounds cannot be affected.
    fn transfers(&self, instance: &Instance, plan: &mut Plan) -> f64 {
        // Per-event receiver candidates (users ascending, with their
        // utilities), transposed once from the user-major candidate
        // lists: O(candidates) total instead of a users × events sweep.
        // Non-candidates either value the event at 0 or cannot afford
        // it alone, so `can_attend_with` would reject them regardless.
        let cands = instance.candidates();
        let mut by_event: Vec<Vec<(u32, f64)>> = vec![Vec::new(); instance.n_events()];
        for u in instance.user_ids() {
            let (events, utils) = cands.row(u);
            for (&e, &mu) in events.iter().zip(utils) {
                by_event[e as usize].push((u.0, mu));
            }
        }
        let mut gain = 0.0;
        // epplan-lint: allow(sparse/dense-scan) — per-event pass over the CSR transpose built above: O(|E| + candidates), not a users × events product
        for e in instance.event_ids() {
            // The current attendee valuing the event least…
            let attendees = plan.attendees(e);
            let Some(&worst) = attendees.iter().min_by(|&&a, &&b| {
                instance
                    .utility(a, e)
                    .total_cmp(&instance.utility(b, e))
                    .then(a.cmp(&b))
            }) else {
                continue;
            };
            let mu_worst = instance.utility(worst, e);
            // …versus the best-valuing feasible outsider.
            let candidate = by_event[e.index()]
                .iter()
                .map(|&(u, mu)| (UserId(u), mu))
                .filter(|&(u, _)| !plan.contains(u, e))
                .filter(|&(_, mu)| mu > mu_worst + self.min_gain)
                .filter(|&(u, _)| instance.can_attend_with(u, plan.user_plan(u), e))
                .max_by(|&(a, mua), &(b, mub)| mua.total_cmp(&mub).then(b.cmp(&a)))
                .map(|(u, _)| u);
            if let Some(receiver) = candidate {
                plan.remove(worst, e);
                plan.add(receiver, e);
                gain += instance.utility(receiver, e) - mu_worst;
            }
        }
        gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{InstanceBuilder, TimeInterval};
    use crate::solver::{GepcSolver, GreedySolver};
    use epplan_geo::Point;

    /// Two events; u0 holds the one it values less and e1 has room.
    #[test]
    fn swap_improves_utility() {
        let mut b = InstanceBuilder::new();
        let u0 = b.user(Point::new(0.0, 0.0), 20.0);
        let e0 = b.event(Point::new(1.0, 0.0), 0, 2, TimeInterval::new(0, 30));
        let e1 = b.event(Point::new(0.0, 1.0), 0, 2, TimeInterval::new(0, 30));
        b.utility(u0, e0, 0.3);
        b.utility(u0, e1, 0.9);
        let inst = b.build();
        let mut plan = Plan::for_instance(&inst);
        plan.add(u0, e0);
        let gain = LocalSearch::default().improve(&inst, &mut plan);
        assert!((gain - 0.6).abs() < 1e-9);
        assert!(plan.contains(u0, e1));
        assert!(!plan.contains(u0, e0));
        assert!(plan.validate(&inst).hard_ok());
    }

    #[test]
    fn swap_respects_lower_bound_of_old_event() {
        let mut b = InstanceBuilder::new();
        let u0 = b.user(Point::new(0.0, 0.0), 20.0);
        let e0 = b.event(Point::new(1.0, 0.0), 1, 2, TimeInterval::new(0, 30));
        let e1 = b.event(Point::new(0.0, 1.0), 0, 2, TimeInterval::new(60, 90));
        b.utility(u0, e0, 0.3);
        b.utility(u0, e1, 0.9);
        let inst = b.build();
        let mut plan = Plan::for_instance(&inst);
        plan.add(u0, e0); // e0 at exactly ξ = 1: swapping would break it
        LocalSearch::default().improve(&inst, &mut plan);
        assert!(plan.contains(u0, e0), "ξ-protected event kept");
        // e1 is later in the day, so the add move still takes it.
        assert!(plan.contains(u0, e1));
    }

    #[test]
    fn transfer_moves_to_higher_value_user() {
        let mut b = InstanceBuilder::new();
        let u0 = b.user(Point::new(0.0, 0.0), 20.0);
        let u1 = b.user(Point::new(0.0, 0.5), 20.0);
        let e0 = b.event(Point::new(1.0, 0.0), 1, 1, TimeInterval::new(0, 30));
        b.utility(u0, e0, 0.2);
        b.utility(u1, e0, 0.8);
        let inst = b.build();
        let mut plan = Plan::for_instance(&inst);
        plan.add(u0, e0);
        let gain = LocalSearch::default().improve(&inst, &mut plan);
        assert!((gain - 0.6).abs() < 1e-9);
        assert!(plan.contains(u1, e0));
        assert_eq!(plan.attendance(e0), 1, "attendance preserved");
    }

    #[test]
    fn never_decreases_utility_or_breaks_feasibility() {
        use epplan_datagen_free::gen_instance;
        // Local mini-generator to avoid a circular dev-dependency on
        // epplan-datagen.
        mod epplan_datagen_free {
            use super::*;
            use rand::prelude::*;
            pub fn gen_instance(seed: u64) -> Instance {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut b = InstanceBuilder::new();
                for _ in 0..30 {
                    b.user(
                        Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)),
                        rng.gen_range(5.0..40.0),
                    );
                }
                for k in 0..8u32 {
                    let s = 60 * k * 3;
                    b.event(
                        Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)),
                        rng.gen_range(0..3),
                        rng.gen_range(3..10),
                        TimeInterval::new(s, s + 90),
                    );
                }
                let (nu, ne) = (b.n_users(), b.n_events());
                for u in 0..nu as u32 {
                    for e in 0..ne as u32 {
                        if rng.gen_bool(0.6) {
                            b.utility(UserId(u), EventId(e), rng.gen_range(0.05..1.0));
                        }
                    }
                }
                b.build()
            }
        }
        for seed in 0..5 {
            let inst = gen_instance(seed);
            let sol = GreedySolver::seeded(seed).solve(&inst);
            let before_shortfall = sol.shortfall.clone();
            let mut plan = sol.plan.clone();
            let before = plan.total_utility(&inst);
            let gain = LocalSearch::default().improve(&inst, &mut plan);
            let after = plan.total_utility(&inst);
            assert!(gain >= 0.0);
            assert!((after - before - gain).abs() < 1e-6);
            assert!(after >= before - 1e-9);
            let v = plan.validate(&inst);
            assert!(v.hard_ok(), "seed {seed}: {:?}", v.violations);
            // Previously-satisfied lower bounds stay satisfied.
            for e in inst.event_ids() {
                if !before_shortfall.contains(&e) {
                    assert!(
                        plan.attendance(e) >= inst.event(e).lower,
                        "seed {seed}: local search broke ξ of {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn idempotent_at_local_optimum() {
        let mut b = InstanceBuilder::new();
        let u0 = b.user(Point::new(0.0, 0.0), 20.0);
        let e0 = b.event(Point::new(1.0, 0.0), 0, 1, TimeInterval::new(0, 30));
        b.utility(u0, e0, 0.5);
        let inst = b.build();
        let mut plan = Plan::for_instance(&inst);
        plan.add(u0, e0);
        let ls = LocalSearch::default();
        assert_eq!(ls.improve(&inst, &mut plan), 0.0);
        let snapshot = plan.clone();
        assert_eq!(ls.improve(&inst, &mut plan), 0.0);
        assert_eq!(plan, snapshot);
    }
}
