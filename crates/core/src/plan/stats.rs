//! Descriptive statistics over a plan, for dashboards, the CLI and the
//! benchmark harness.

use crate::model::{Instance, UserId};
use crate::plan::Plan;

/// Summary statistics of a plan against its instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStatistics {
    /// Global utility `U_P`.
    pub total_utility: f64,
    /// Total (user, event) assignments.
    pub assignments: usize,
    /// Users with at least one event.
    pub active_users: usize,
    /// Events meeting their lower bound.
    pub viable_events: usize,
    /// Events with at least one attendee.
    pub nonempty_events: usize,
    /// Mean events per *active* user (0 when nobody attends anything).
    pub mean_plan_len: f64,
    /// Largest individual plan.
    pub max_plan_len: usize,
    /// Mean seat-fill ratio `n_j / η_j` over events with `η_j > 0`.
    pub mean_fill_ratio: f64,
    /// Mean fraction of budget consumed over active users.
    pub mean_budget_used: f64,
    /// Worst (largest) budget fraction over all users.
    pub max_budget_used: f64,
}

impl PlanStatistics {
    /// Computes all statistics in one pass over the plan.
    pub fn of(instance: &Instance, plan: &Plan) -> Self {
        assert_eq!(plan.n_users(), instance.n_users(), "plan/instance users");
        assert_eq!(plan.n_events(), instance.n_events(), "plan/instance events");
        let total_utility = plan.total_utility(instance);
        let assignments = plan.total_assignments();

        let mut active_users = 0usize;
        let mut max_plan_len = 0usize;
        let mut budget_sum = 0.0;
        let mut budget_max = 0.0f64;
        for u in instance.user_ids() {
            let len = plan.user_plan(u).len();
            if len > 0 {
                active_users += 1;
                max_plan_len = max_plan_len.max(len);
            }
            let budget = instance.user(u).budget;
            if budget > 0.0 {
                let frac = plan.travel_cost(instance, u) / budget;
                budget_max = budget_max.max(frac);
                if len > 0 {
                    budget_sum += frac;
                }
            }
        }

        let mut viable_events = 0usize;
        let mut nonempty_events = 0usize;
        let mut fill_sum = 0.0;
        let mut fill_count = 0usize;
        for e in instance.event_ids() {
            let n = plan.attendance(e);
            let ev = instance.event(e);
            if n >= ev.lower {
                viable_events += 1;
            }
            if n > 0 {
                nonempty_events += 1;
            }
            if ev.upper > 0 {
                fill_sum += n as f64 / ev.upper as f64;
                fill_count += 1;
            }
        }

        PlanStatistics {
            total_utility,
            assignments,
            active_users,
            viable_events,
            nonempty_events,
            mean_plan_len: if active_users > 0 {
                assignments as f64 / active_users as f64
            } else {
                0.0
            },
            max_plan_len,
            mean_fill_ratio: if fill_count > 0 {
                fill_sum / fill_count as f64
            } else {
                0.0
            },
            mean_budget_used: if active_users > 0 {
                budget_sum / active_users as f64
            } else {
                0.0
            },
            max_budget_used: budget_max,
        }
    }

    /// Histogram of plan lengths: `histogram[k]` = users attending
    /// exactly `k` events (index 0 = idle users).
    pub fn plan_length_histogram(instance: &Instance, plan: &Plan) -> Vec<usize> {
        let mut hist = Vec::new();
        for u in instance.user_ids() {
            let len = plan.user_plan(u).len();
            if hist.len() <= len {
                hist.resize(len + 1, 0);
            }
            hist[len] += 1;
        }
        hist
    }
}

impl std::fmt::Display for PlanStatistics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "utility          : {:.3}", self.total_utility)?;
        writeln!(f, "assignments      : {}", self.assignments)?;
        writeln!(f, "active users     : {}", self.active_users)?;
        writeln!(
            f,
            "viable events    : {} (non-empty {})",
            self.viable_events, self.nonempty_events
        )?;
        writeln!(
            f,
            "plan length      : mean {:.2}, max {}",
            self.mean_plan_len, self.max_plan_len
        )?;
        writeln!(f, "mean seat fill   : {:.1}%", 100.0 * self.mean_fill_ratio)?;
        write!(
            f,
            "budget use       : mean {:.1}%, max {:.1}%",
            100.0 * self.mean_budget_used,
            100.0 * self.max_budget_used
        )
    }
}

/// Convenience: the per-user utilities of a plan, for fairness
/// analyses (e.g. plotting who benefits from a replanning).
pub fn user_utilities(instance: &Instance, plan: &Plan) -> Vec<(UserId, f64)> {
    instance
        .user_ids()
        .map(|u| (u, plan.user_utility(instance, u)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{InstanceBuilder, TimeInterval};
    use epplan_geo::Point;

    fn setup() -> (Instance, Plan) {
        let mut b = InstanceBuilder::new();
        let u0 = b.user(Point::new(0.0, 0.0), 10.0);
        let u1 = b.user(Point::new(0.0, 1.0), 10.0);
        let _idle = b.user(Point::new(0.0, 2.0), 10.0);
        let e0 = b.event(Point::new(1.0, 0.0), 1, 2, TimeInterval::new(0, 30));
        let e1 = b.event(Point::new(1.0, 1.0), 2, 4, TimeInterval::new(60, 90));
        b.utility(u0, e0, 0.5);
        b.utility(u0, e1, 0.25);
        b.utility(u1, e0, 0.75);
        let inst = b.build();
        let mut plan = Plan::for_instance(&inst);
        plan.add(u0, e0);
        plan.add(u0, e1);
        plan.add(u1, e0);
        (inst, plan)
    }

    #[test]
    fn computes_counts() {
        let (inst, plan) = setup();
        let s = PlanStatistics::of(&inst, &plan);
        assert_eq!(s.assignments, 3);
        assert_eq!(s.active_users, 2);
        assert_eq!(s.max_plan_len, 2);
        assert!((s.mean_plan_len - 1.5).abs() < 1e-12);
        // e0: 2 ≥ 1 viable; e1: 1 < 2 short.
        assert_eq!(s.viable_events, 1);
        assert_eq!(s.nonempty_events, 2);
        assert!((s.total_utility - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fill_ratio() {
        let (inst, plan) = setup();
        let s = PlanStatistics::of(&inst, &plan);
        // e0: 2/2, e1: 1/4 → mean 0.625.
        assert!((s.mean_fill_ratio - 0.625).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_idle_users() {
        let (inst, plan) = setup();
        let hist = PlanStatistics::plan_length_histogram(&inst, &plan);
        assert_eq!(hist, vec![1, 1, 1]); // one idle, one single, one double
    }

    #[test]
    fn empty_plan_statistics() {
        let (inst, _) = setup();
        let plan = Plan::for_instance(&inst);
        let s = PlanStatistics::of(&inst, &plan);
        assert_eq!(s.active_users, 0);
        assert_eq!(s.mean_plan_len, 0.0);
        assert_eq!(s.max_budget_used, 0.0);
    }

    #[test]
    fn display_renders() {
        let (inst, plan) = setup();
        let s = PlanStatistics::of(&inst, &plan).to_string();
        assert!(s.contains("utility"));
        assert!(s.contains("budget use"));
    }

    #[test]
    fn user_utilities_per_user() {
        let (inst, plan) = setup();
        let us = user_utilities(&inst, &plan);
        assert_eq!(us.len(), 3);
        assert!((us[0].1 - 0.75).abs() < 1e-12);
        assert_eq!(us[2].1, 0.0);
    }
}
