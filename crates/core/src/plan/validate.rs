use crate::model::{EventId, Instance, UserId};
use crate::plan::Plan;

/// A single constraint violation found by [`Plan::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Two events in one user's plan overlap in time (Definition 1,
    /// constraint 1).
    TimeConflict {
        /// The user whose plan conflicts.
        user: UserId,
        /// First conflicting event.
        a: EventId,
        /// Second conflicting event.
        b: EventId,
    },
    /// A user's travel cost exceeds their budget (constraint 2).
    BudgetExceeded {
        /// The over-budget user.
        user: UserId,
        /// Their travel cost `D_i`.
        cost: f64,
        /// Their budget `B_i`.
        budget: f64,
    },
    /// An event has more participants than `η` allows (constraint 3).
    UpperBoundExceeded {
        /// The overfull event.
        event: EventId,
        /// Assigned participants.
        attendance: u32,
        /// The bound `η`.
        upper: u32,
    },
    /// An event has fewer participants than `ξ` requires
    /// (constraint 4). Unlike the other violations this can be an
    /// *instance* property — there may simply not exist enough
    /// reachable interested users — so it is classified separately as
    /// a "soft" shortfall; see [`Validation::hard_ok`].
    LowerBoundShortfall {
        /// The underfull event.
        event: EventId,
        /// Assigned participants.
        attendance: u32,
        /// The bound `ξ`.
        lower: u32,
    },
    /// A user is assigned an event they scored 0 — the paper defines a
    /// zero score as "will not or cannot participate" (Section II).
    ZeroUtilityAssignment {
        /// The user.
        user: UserId,
        /// The zero-scored event.
        event: EventId,
    },
}

/// The outcome of validating a plan against an instance.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Validation {
    /// Every violation found, in deterministic order.
    pub violations: Vec<Violation>,
}

impl Validation {
    /// No violations of any kind: the plan is fully feasible for the
    /// GEPC problem.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }

    /// No *hard* violations — time conflicts, budget overruns, upper
    /// bounds, zero-utility assignments. Lower-bound shortfalls are
    /// tolerated: solvers report them as unfillable events rather than
    /// producing no plan at all.
    pub fn hard_ok(&self) -> bool {
        !self.violations.iter().any(|v| {
            !matches!(v, Violation::LowerBoundShortfall { .. })
        })
    }

    /// Events whose participation lower bound is not met.
    pub fn shortfall_events(&self) -> Vec<EventId> {
        self.violations
            .iter()
            .filter_map(|v| match v {
                Violation::LowerBoundShortfall { event, .. } => Some(*event),
                _ => None,
            })
            .collect()
    }
}

pub(crate) fn validate(plan: &Plan, instance: &Instance) -> Validation {
    let mut violations = Vec::new();
    assert_eq!(plan.n_users(), instance.n_users(), "plan/instance users");
    assert_eq!(plan.n_events(), instance.n_events(), "plan/instance events");

    for u in instance.user_ids() {
        let evs = plan.user_plan(u);
        // Constraint 1: pairwise time conflicts.
        for (i, &a) in evs.iter().enumerate() {
            for &b in &evs[i + 1..] {
                if instance.conflicts(a, b) {
                    violations.push(Violation::TimeConflict { user: u, a, b });
                }
            }
        }
        // Constraint 2: travel budget.
        let cost = instance.travel_cost(u, evs);
        let budget = instance.user(u).budget;
        if cost > budget + 1e-9 {
            violations.push(Violation::BudgetExceeded {
                user: u,
                cost,
                budget,
            });
        }
        // Zero-utility assignments.
        for &e in evs {
            if instance.utility(u, e) <= 0.0 {
                violations.push(Violation::ZeroUtilityAssignment { user: u, event: e });
            }
        }
    }

    // Constraints 3 and 4: participation bounds.
    // epplan-lint: allow(sparse/dense-scan) — bounds are per-event by definition; validation is one O(|E|) pass, not a users × events product
    for e in instance.event_ids() {
        let n = plan.attendance(e);
        let ev = instance.event(e);
        if n > ev.upper {
            violations.push(Violation::UpperBoundExceeded {
                event: e,
                attendance: n,
                upper: ev.upper,
            });
        }
        if n < ev.lower {
            violations.push(Violation::LowerBoundShortfall {
                event: e,
                attendance: n,
                lower: ev.lower,
            });
        }
    }

    Validation { violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Event, TimeInterval, User, UtilityMatrix};
    use epplan_geo::Point;

    fn instance() -> Instance {
        let users = vec![
            User::new(Point::new(0.0, 0.0), 10.0),
            User::new(Point::new(1.0, 0.0), 1.0),
        ];
        let events = vec![
            // e0 and e1 conflict (overlap); e2 is later and far away.
            Event::new(Point::new(0.0, 1.0), 1, 1, TimeInterval::new(60, 120)),
            Event::new(Point::new(0.0, 2.0), 0, 2, TimeInterval::new(90, 150)),
            Event::new(Point::new(50.0, 0.0), 2, 3, TimeInterval::new(200, 260)),
        ];
        let utilities = UtilityMatrix::from_rows(vec![
            vec![0.5, 0.5, 0.5],
            vec![0.5, 0.0, 0.5],
        ]).unwrap();
        Instance::new(users, events, utilities).unwrap()
    }

    #[test]
    fn empty_plan_reports_only_shortfalls() {
        let inst = instance();
        let plan = Plan::for_instance(&inst);
        let v = plan.validate(&inst);
        assert!(v.hard_ok());
        assert!(!v.is_feasible());
        assert_eq!(
            v.shortfall_events(),
            vec![EventId(0), EventId(2)],
            "events with ξ > 0 are short"
        );
    }

    #[test]
    fn detects_time_conflict() {
        let inst = instance();
        let mut plan = Plan::for_instance(&inst);
        plan.add(UserId(0), EventId(0));
        plan.add(UserId(0), EventId(1));
        let v = plan.validate(&inst);
        assert!(v
            .violations
            .iter()
            .any(|x| matches!(x, Violation::TimeConflict { user, .. } if *user == UserId(0))));
        assert!(!v.hard_ok());
    }

    #[test]
    fn detects_budget_overrun() {
        let inst = instance();
        let mut plan = Plan::for_instance(&inst);
        plan.add(UserId(1), EventId(2)); // round trip ~98 ≫ budget 1
        let v = plan.validate(&inst);
        assert!(v
            .violations
            .iter()
            .any(|x| matches!(x, Violation::BudgetExceeded { user, .. } if *user == UserId(1))));
    }

    #[test]
    fn detects_upper_bound() {
        let inst = instance();
        let mut plan = Plan::for_instance(&inst);
        plan.add(UserId(0), EventId(0));
        plan.add(UserId(1), EventId(0)); // η = 1
        let v = plan.validate(&inst);
        assert!(v.violations.iter().any(|x| matches!(
            x,
            Violation::UpperBoundExceeded { event, attendance: 2, upper: 1 } if *event == EventId(0)
        )));
    }

    #[test]
    fn detects_zero_utility_assignment() {
        let inst = instance();
        let mut plan = Plan::for_instance(&inst);
        plan.add(UserId(1), EventId(1)); // μ = 0
        let v = plan.validate(&inst);
        assert!(v.violations.iter().any(|x| matches!(
            x,
            Violation::ZeroUtilityAssignment { user, event }
                if *user == UserId(1) && *event == EventId(1)
        )));
    }

    #[test]
    fn feasible_plan_passes() {
        let inst = instance();
        let mut plan = Plan::for_instance(&inst);
        plan.add(UserId(0), EventId(0)); // fills ξ_0 = 1, cost 2 ≤ 10
        // e2 (ξ=2) stays short; hard constraints all fine.
        let v = plan.validate(&inst);
        assert!(v.hard_ok());
        assert_eq!(v.shortfall_events(), vec![EventId(2)]);
    }
}
