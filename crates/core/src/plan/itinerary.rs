//! Per-user itineraries: the "Plan for Today" an EBSN actually shows
//! its users (Section II: "every day users are provided with their
//! individualized 'Plan for Today'").
//!
//! A [`Plan`] stores *which* events a user attends; an [`Itinerary`]
//! lays them out as the day's route — home → first event → … → home —
//! with per-leg distances, fees, and slack between consecutive events.

use crate::model::{EventId, Instance, TimeInterval, UserId};
use crate::plan::Plan;

/// One attended event within an itinerary.
#[derive(Debug, Clone, PartialEq)]
pub struct Stop {
    /// The event attended.
    pub event: EventId,
    /// Its holding window.
    pub time: TimeInterval,
    /// Distance traveled to reach this stop from the previous location
    /// (home for the first stop).
    pub leg_distance: f64,
    /// Admission fee paid at this stop.
    pub fee: f64,
    /// Free minutes between the previous stop's end and this one's
    /// start (`None` for the first stop).
    pub slack_minutes: Option<u32>,
}

/// A user's day: ordered stops plus the trip home.
#[derive(Debug, Clone, PartialEq)]
pub struct Itinerary {
    /// The user this itinerary belongs to.
    pub user: UserId,
    /// Stops in chronological order.
    pub stops: Vec<Stop>,
    /// Distance of the final leg back home (0 for an empty day).
    pub return_distance: f64,
    /// Total cost `D_i` (all legs + all fees) — identical to
    /// [`Instance::travel_cost`] over the same events.
    pub total_cost: f64,
    /// The user's budget, for convenience.
    pub budget: f64,
}

impl Itinerary {
    /// Builds the itinerary of `user` under `plan`.
    pub fn of(instance: &Instance, plan: &Plan, user: UserId) -> Self {
        let mut events: Vec<EventId> = plan.user_plan(user).to_vec();
        events.sort_by_key(|&e| instance.event(e).time);
        let budget = instance.user(user).budget;

        let mut stops = Vec::with_capacity(events.len());
        let mut prev_location = instance.user(user).location;
        let mut prev_end: Option<u32> = None;
        let mut total_cost = 0.0;
        for &e in &events {
            let ev = instance.event(e);
            let leg = prev_location.distance(&ev.location);
            total_cost += leg + ev.fee;
            stops.push(Stop {
                event: e,
                time: ev.time,
                leg_distance: leg,
                fee: ev.fee,
                slack_minutes: prev_end.map(|end| ev.time.start.saturating_sub(end)),
            });
            prev_location = ev.location;
            prev_end = Some(ev.time.end);
        }
        let return_distance = if events.is_empty() {
            0.0
        } else {
            prev_location.distance(&instance.user(user).location)
        };
        total_cost += return_distance;
        Itinerary {
            user,
            stops,
            return_distance,
            total_cost,
            budget,
        }
    }

    /// Whether the day fits the user's budget.
    pub fn within_budget(&self) -> bool {
        self.total_cost <= self.budget + 1e-9
    }

    /// Whether consecutive stops are conflict-free (they always are for
    /// validated plans; exposed for diagnostics).
    pub fn is_consistent(&self) -> bool {
        self.stops
            .windows(2)
            .all(|w| w[0].time.strictly_before(&w[1].time))
    }
}

impl std::fmt::Display for Itinerary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Plan for {} (budget {:.1}):", self.user, self.budget)?;
        if self.stops.is_empty() {
            return write!(f, "  (free day)");
        }
        for s in &self.stops {
            write!(f, "  {}  {}", s.time, s.event)?;
            write!(f, "  (travel {:.1}", s.leg_distance)?;
            if s.fee > 0.0 {
                write!(f, ", fee {:.1}", s.fee)?;
            }
            if let Some(slack) = s.slack_minutes {
                write!(f, ", {slack} min spare")?;
            }
            writeln!(f, ")")?;
        }
        write!(
            f,
            "  home by +{:.1} — day total {:.1} / {:.1}",
            self.return_distance, self.total_cost, self.budget
        )
    }
}

/// Builds itineraries for every user with a non-empty plan.
pub fn all_itineraries(instance: &Instance, plan: &Plan) -> Vec<Itinerary> {
    instance
        .user_ids()
        .filter(|&u| !plan.user_plan(u).is_empty())
        .map(|u| Itinerary::of(instance, plan, u))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Event, InstanceBuilder};
    use epplan_geo::Point;

    fn setup() -> (Instance, Plan, UserId) {
        let mut b = InstanceBuilder::new();
        let u = b.user(Point::new(0.0, 0.0), 30.0);
        let e0 = b.event(Point::new(3.0, 4.0), 0, 5, TimeInterval::new(600, 660));
        let e1 = b.event_raw(
            Event::new(Point::new(3.0, 0.0), 0, 5, TimeInterval::new(720, 780)).with_fee(2.0),
        );
        b.utility(u, e0, 0.5);
        b.utility(u, e1, 0.5);
        let inst = b.build();
        let mut plan = Plan::for_instance(&inst);
        // Insert out of order; the itinerary must sort by time.
        plan.add(u, EventId(1));
        plan.add(u, EventId(0));
        (inst, plan, u)
    }

    #[test]
    fn stops_in_chronological_order() {
        let (inst, plan, u) = setup();
        let it = Itinerary::of(&inst, &plan, u);
        assert_eq!(it.stops.len(), 2);
        assert_eq!(it.stops[0].event, EventId(0));
        assert_eq!(it.stops[1].event, EventId(1));
        assert!(it.is_consistent());
    }

    #[test]
    fn leg_distances_and_total_match_travel_cost() {
        let (inst, plan, u) = setup();
        let it = Itinerary::of(&inst, &plan, u);
        // home (0,0) → e0 (3,4): 5; e0 → e1 (3,0): 4; e1 → home: 3.
        assert!((it.stops[0].leg_distance - 5.0).abs() < 1e-12);
        assert!((it.stops[1].leg_distance - 4.0).abs() < 1e-12);
        assert!((it.return_distance - 3.0).abs() < 1e-12);
        // + fee 2 → 14 total, identical to Instance::travel_cost.
        assert!((it.total_cost - 14.0).abs() < 1e-12);
        assert!((it.total_cost - plan.travel_cost(&inst, u)).abs() < 1e-12);
        assert!(it.within_budget());
    }

    #[test]
    fn slack_between_stops() {
        let (inst, plan, u) = setup();
        let it = Itinerary::of(&inst, &plan, u);
        assert_eq!(it.stops[0].slack_minutes, None);
        assert_eq!(it.stops[1].slack_minutes, Some(60)); // 660 → 720
    }

    #[test]
    fn fees_recorded_per_stop() {
        let (inst, plan, u) = setup();
        let it = Itinerary::of(&inst, &plan, u);
        assert_eq!(it.stops[0].fee, 0.0);
        assert_eq!(it.stops[1].fee, 2.0);
    }

    #[test]
    fn empty_day() {
        let (inst, _, u) = setup();
        let empty = Plan::for_instance(&inst);
        let it = Itinerary::of(&inst, &empty, u);
        assert!(it.stops.is_empty());
        assert_eq!(it.total_cost, 0.0);
        assert!(it.to_string().contains("free day"));
    }

    #[test]
    fn display_renders_stops() {
        let (inst, plan, u) = setup();
        let s = Itinerary::of(&inst, &plan, u).to_string();
        assert!(s.contains("10:00-11:00"));
        assert!(s.contains("fee 2.0"));
        assert!(s.contains("60 min spare"));
    }

    #[test]
    fn all_itineraries_skips_idle_users() {
        let (inst, plan, _) = setup();
        let its = all_itineraries(&inst, &plan);
        assert_eq!(its.len(), 1);
    }
}
