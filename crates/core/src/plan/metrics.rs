//! Plan metrics: the IEP negative-impact measure.

use crate::plan::Plan;

/// The paper's negative impact of replacing plan `old` with `new`
/// (Section II-B):
///
/// `dif(P, P′) = Σ_{i=1}^{n} |P_i \ P′_i|`
///
/// i.e. the total number of events users *lose*. Newly added events do
/// not count — only cancellations hurt.
///
/// # Panics
/// Panics when the two plans cover different numbers of users. The new
/// plan may cover **more events** (a `NewEvent` operation grows the
/// event dimension); extra events cannot appear in `old`, so they never
/// contribute.
pub fn dif(old: &Plan, new: &Plan) -> usize {
    assert_eq!(old.n_users(), new.n_users(), "plans cover different users");
    let mut total = 0;
    for u in 0..old.n_users() {
        let u = crate::model::UserId(u as u32);
        let new_events = new.user_plan(u);
        total += old
            .user_plan(u)
            .iter()
            .filter(|e| !new_events.contains(e))
            .count();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{EventId, UserId};

    #[test]
    fn identical_plans_have_zero_dif() {
        let mut p = Plan::empty(2, 3);
        p.add(UserId(0), EventId(0));
        p.add(UserId(1), EventId(2));
        assert_eq!(dif(&p, &p.clone()), 0);
    }

    #[test]
    fn additions_are_free() {
        let mut old = Plan::empty(1, 3);
        old.add(UserId(0), EventId(0));
        let mut new = old.clone();
        new.add(UserId(0), EventId(1));
        new.add(UserId(0), EventId(2));
        assert_eq!(dif(&old, &new), 0);
    }

    #[test]
    fn removals_count() {
        let mut old = Plan::empty(2, 3);
        old.add(UserId(0), EventId(0));
        old.add(UserId(0), EventId(1));
        old.add(UserId(1), EventId(2));
        let mut new = old.clone();
        new.remove(UserId(0), EventId(1));
        new.remove(UserId(1), EventId(2));
        assert_eq!(dif(&old, &new), 2);
    }

    #[test]
    fn swap_counts_once() {
        // Paper Example 3: u4 loses e4 but gains e2 → dif = 1.
        let mut old = Plan::empty(1, 4);
        old.add(UserId(0), EventId(2));
        old.add(UserId(0), EventId(3));
        let mut new = Plan::empty(1, 4);
        new.add(UserId(0), EventId(1));
        new.add(UserId(0), EventId(2));
        assert_eq!(dif(&old, &new), 1);
    }

    #[test]
    fn new_plan_may_have_more_events() {
        let mut old = Plan::empty(1, 2);
        old.add(UserId(0), EventId(1));
        let mut new = Plan::empty(1, 3);
        new.add(UserId(0), EventId(1));
        new.add(UserId(0), EventId(2));
        assert_eq!(dif(&old, &new), 0);
    }
}
