//! Global plans and their validation/metrics.
//!
//! A global plan `P = {P_i : P_i ⊆ E}` assigns each user a set of
//! events (Section II). [`Plan`] maintains the per-user sets and the
//! per-event attendance counts `n_j`; [`Validation`] classifies every
//! constraint violation of Definition 1; metrics (global utility,
//! travel costs, the IEP negative impact [`dif`]) live alongside.

mod itinerary;
mod metrics;
mod stats;
mod validate;

pub use itinerary::{all_itineraries, Itinerary, Stop};
pub use metrics::dif;
pub use stats::{user_utilities, PlanStatistics};
pub use validate::{Validation, Violation};

use crate::model::{EventId, Instance, UserId};
use serde::{Deserialize, Serialize};

/// A global plan: one event set per user plus attendance counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Plan {
    /// `assignments[u]` = events of user `u`, in insertion order,
    /// duplicate-free.
    assignments: Vec<Vec<EventId>>,
    /// `attendance[e]` = `n_e`, the number of users assigned to `e`.
    attendance: Vec<u32>,
}

impl Plan {
    /// An empty plan for `n_users` users and `n_events` events.
    pub fn empty(n_users: usize, n_events: usize) -> Self {
        Plan {
            assignments: vec![Vec::new(); n_users],
            attendance: vec![0; n_events],
        }
    }

    /// An empty plan shaped for `instance`.
    pub fn for_instance(instance: &Instance) -> Self {
        Plan::empty(instance.n_users(), instance.n_events())
    }

    /// Number of users the plan covers.
    pub fn n_users(&self) -> usize {
        self.assignments.len()
    }

    /// Number of events the plan covers.
    pub fn n_events(&self) -> usize {
        self.attendance.len()
    }

    /// Grows the event dimension (used after a `NewEvent` operation).
    pub fn resize_events(&mut self, n_events: usize) {
        assert!(n_events >= self.attendance.len(), "cannot shrink events");
        self.attendance.resize(n_events, 0);
    }

    /// The events of user `u` (insertion order).
    #[inline]
    pub fn user_plan(&self, u: UserId) -> &[EventId] {
        &self.assignments[u.index()]
    }

    /// Whether `u` attends `e`.
    pub fn contains(&self, u: UserId, e: EventId) -> bool {
        self.assignments[u.index()].contains(&e)
    }

    /// Attendance count `n_e`.
    #[inline]
    pub fn attendance(&self, e: EventId) -> u32 {
        self.attendance[e.index()]
    }

    /// The users assigned to `e`.
    pub fn attendees(&self, e: EventId) -> Vec<UserId> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, evs)| evs.contains(&e))
            .map(|(u, _)| UserId(u as u32))
            .collect()
    }

    /// Adds `e` to `u`'s plan. Returns `false` (and does nothing) when
    /// already present.
    pub fn add(&mut self, u: UserId, e: EventId) -> bool {
        let evs = &mut self.assignments[u.index()];
        if evs.contains(&e) {
            return false;
        }
        evs.push(e);
        self.attendance[e.index()] += 1;
        true
    }

    /// Removes `e` from `u`'s plan. Returns `false` when absent.
    pub fn remove(&mut self, u: UserId, e: EventId) -> bool {
        let evs = &mut self.assignments[u.index()];
        match evs.iter().position(|&x| x == e) {
            Some(pos) => {
                evs.remove(pos);
                self.attendance[e.index()] -= 1;
                true
            }
            None => false,
        }
    }

    /// Total number of (user, event) assignments.
    pub fn total_assignments(&self) -> usize {
        self.assignments.iter().map(Vec::len).sum()
    }

    /// Global utility `U_P = Σ_i Σ_{e ∈ P_i} μ(u_i, e)`.
    pub fn total_utility(&self, instance: &Instance) -> f64 {
        self.assignments
            .iter()
            .enumerate()
            .map(|(u, evs)| {
                evs.iter()
                    .map(|&e| instance.utility(UserId(u as u32), e))
                    .sum::<f64>()
            })
            .sum()
    }

    /// One user's utility `μ_i`.
    pub fn user_utility(&self, instance: &Instance, u: UserId) -> f64 {
        self.user_plan(u)
            .iter()
            .map(|&e| instance.utility(u, e))
            .sum()
    }

    /// One user's travel cost `D_i` under `instance`.
    pub fn travel_cost(&self, instance: &Instance, u: UserId) -> f64 {
        instance.travel_cost(u, self.user_plan(u))
    }

    /// Validates the plan against every GEPC constraint; see
    /// [`Validation`].
    pub fn validate(&self, instance: &Instance) -> Validation {
        validate::validate(self, instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_roundtrip() {
        let mut p = Plan::empty(2, 3);
        assert!(p.add(UserId(0), EventId(1)));
        assert!(!p.add(UserId(0), EventId(1)), "duplicate add rejected");
        assert_eq!(p.attendance(EventId(1)), 1);
        assert!(p.contains(UserId(0), EventId(1)));
        assert!(p.remove(UserId(0), EventId(1)));
        assert!(!p.remove(UserId(0), EventId(1)));
        assert_eq!(p.attendance(EventId(1)), 0);
    }

    #[test]
    fn attendees_lists_users() {
        let mut p = Plan::empty(3, 1);
        p.add(UserId(0), EventId(0));
        p.add(UserId(2), EventId(0));
        assert_eq!(p.attendees(EventId(0)), vec![UserId(0), UserId(2)]);
        assert_eq!(p.attendance(EventId(0)), 2);
    }

    #[test]
    fn resize_events_grows() {
        let mut p = Plan::empty(1, 1);
        p.resize_events(3);
        assert_eq!(p.n_events(), 3);
        assert_eq!(p.attendance(EventId(2)), 0);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn resize_events_shrink_panics() {
        let mut p = Plan::empty(1, 3);
        p.resize_events(1);
    }

    #[test]
    fn total_assignments_counts_pairs() {
        let mut p = Plan::empty(2, 2);
        p.add(UserId(0), EventId(0));
        p.add(UserId(0), EventId(1));
        p.add(UserId(1), EventId(0));
        assert_eq!(p.total_assignments(), 3);
    }
}
