//! The EBSN data model: users, events, utilities, and instances.
//!
//! Mirrors Section II of the paper: a user is a `(location, budget)`
//! pair; an event is a `(location, ξ, η, t^s, t^t)` 5-tuple; a utility
//! matrix `μ(u_i, e_j) ∈ [0, 1]` links them, with `μ = 0` meaning "will
//! not or cannot participate".

mod builder;
pub(crate) mod candidates;
mod error;
mod event;
mod instance;
mod time;
mod user;
mod utility;

pub use builder::InstanceBuilder;
pub use candidates::CandidateSet;
pub use error::InstanceError;
pub use event::{Event, EventId};
pub use instance::Instance;
pub use time::TimeInterval;
pub use user::{User, UserId};
pub use utility::UtilityMatrix;
