use crate::model::{EventId, UserId};
use serde::{Deserialize, Serialize};

/// The dense user × event utility matrix `μ(u_i, e_j) ∈ [0, 1]`.
///
/// A score of 0 means the user "will not or cannot participate in the
/// corresponding event" (Section II) — solvers never make `μ = 0`
/// assignments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilityMatrix {
    n_users: usize,
    n_events: usize,
    /// User-major dense storage.
    values: Vec<f64>,
}

impl UtilityMatrix {
    /// All-zero matrix of the given shape.
    pub fn zeros(n_users: usize, n_events: usize) -> Self {
        UtilityMatrix {
            n_users,
            n_events,
            values: vec![0.0; n_users * n_events],
        }
    }

    /// Builds from user-major rows; panics on ragged input or values
    /// outside `[0, 1]`.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n_users = rows.len();
        let n_events = rows.first().map_or(0, Vec::len);
        let mut m = UtilityMatrix::zeros(n_users, n_events);
        for (u, row) in rows.into_iter().enumerate() {
            assert_eq!(row.len(), n_events, "ragged utility matrix");
            for (e, v) in row.into_iter().enumerate() {
                m.set(UserId(u as u32), EventId(e as u32), v);
            }
        }
        m
    }

    /// Number of user rows.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of event columns.
    pub fn n_events(&self) -> usize {
        self.n_events
    }

    /// `μ(user, event)`.
    #[inline]
    pub fn get(&self, user: UserId, event: EventId) -> f64 {
        self.values[user.index() * self.n_events + event.index()]
    }

    /// Sets `μ(user, event)`; panics outside `[0, 1]`.
    #[inline]
    pub fn set(&mut self, user: UserId, event: EventId, value: f64) {
        assert!(
            (0.0..=1.0).contains(&value),
            "utility {value} outside [0, 1]"
        );
        self.values[user.index() * self.n_events + event.index()] = value;
    }

    /// The utility row of one user across all events.
    pub fn user_row(&self, user: UserId) -> &[f64] {
        let s = user.index() * self.n_events;
        &self.values[s..s + self.n_events]
    }

    /// Appends an all-zero column for a newly created event and returns
    /// its id (used by the `NewEvent` atomic operation).
    pub fn push_event_column(&mut self) -> EventId {
        let ne = self.n_events;
        let mut values = Vec::with_capacity(self.n_users * (ne + 1));
        for u in 0..self.n_users {
            values.extend_from_slice(&self.values[u * ne..(u + 1) * ne]);
            values.push(0.0);
        }
        self.values = values;
        self.n_events += 1;
        EventId(ne as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_get() {
        let m = UtilityMatrix::from_rows(vec![vec![0.1, 0.2], vec![0.3, 0.4]]);
        assert_eq!(m.n_users(), 2);
        assert_eq!(m.n_events(), 2);
        assert_eq!(m.get(UserId(0), EventId(1)), 0.2);
        assert_eq!(m.get(UserId(1), EventId(0)), 0.3);
        assert_eq!(m.user_row(UserId(1)), &[0.3, 0.4]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_utility_panics() {
        let mut m = UtilityMatrix::zeros(1, 1);
        m.set(UserId(0), EventId(0), 1.5);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        UtilityMatrix::from_rows(vec![vec![0.1], vec![0.2, 0.3]]);
    }

    #[test]
    fn push_event_column_preserves_rows() {
        let mut m = UtilityMatrix::from_rows(vec![vec![0.1, 0.2], vec![0.3, 0.4]]);
        let e = m.push_event_column();
        assert_eq!(e, EventId(2));
        assert_eq!(m.n_events(), 3);
        assert_eq!(m.get(UserId(0), EventId(0)), 0.1);
        assert_eq!(m.get(UserId(1), EventId(1)), 0.4);
        assert_eq!(m.get(UserId(0), EventId(2)), 0.0);
        assert_eq!(m.get(UserId(1), EventId(2)), 0.0);
    }
}
