use crate::model::{EventId, InstanceError, UserId};
use serde::{Content, DeError, Deserialize, Serialize};

/// The user × event utility matrix `μ(u_i, e_j) ∈ [0, 1]`.
///
/// A score of 0 means the user "will not or cannot participate in the
/// corresponding event" (Section II) — solvers never make `μ = 0`
/// assignments.
///
/// Two storage layouts share one API: a dense user-major array (small
/// hand-built instances, builder output) and a CSR layout holding only
/// the non-zero entries (generated instances at `|U| ≥ 10⁵`, where the
/// dense array alone would be gigabytes). `get`/`set` are
/// layout-transparent; the JSON serialization of the dense layout is
/// unchanged from earlier releases.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilityMatrix {
    n_users: usize,
    n_events: usize,
    storage: Storage,
}

#[derive(Debug, Clone, PartialEq)]
enum Storage {
    /// User-major dense values, `n_users * n_events` long.
    Dense(Vec<f64>),
    /// CSR over users: row `u` owns `cols/vals[offsets[u]..offsets[u+1]]`,
    /// columns strictly ascending within a row.
    Sparse {
        offsets: Vec<u32>,
        cols: Vec<u32>,
        vals: Vec<f64>,
    },
}

impl UtilityMatrix {
    /// All-zero matrix of the given shape (dense layout).
    pub fn zeros(n_users: usize, n_events: usize) -> Self {
        UtilityMatrix {
            n_users,
            n_events,
            storage: Storage::Dense(vec![0.0; n_users * n_events]),
        }
    }

    /// Builds from user-major rows; rejects ragged input with a typed
    /// [`InstanceError::ShapeMismatch`]. Panics on values outside
    /// `[0, 1]` (same contract as [`UtilityMatrix::set`]).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, InstanceError> {
        let n_users = rows.len();
        let n_events = rows.first().map_or(0, Vec::len);
        let mut m = UtilityMatrix::zeros(n_users, n_events);
        for (u, row) in rows.into_iter().enumerate() {
            if row.len() != n_events {
                return Err(InstanceError::ShapeMismatch {
                    matrix: (u, row.len()),
                    expected: (n_users, n_events),
                });
            }
            for (e, v) in row.into_iter().enumerate() {
                m.set(UserId(u as u32), EventId(e as u32), v);
            }
        }
        Ok(m)
    }

    /// Builds a CSR matrix from per-user `(event, μ)` lists. Columns
    /// must be strictly ascending within each row and `< n_events`;
    /// values must lie in `[0, 1]`. Entries with `μ = 0` may simply be
    /// omitted — `get` returns 0 for any absent pair.
    pub fn from_sparse_rows(
        n_events: usize,
        rows: &[Vec<(u32, f64)>],
    ) -> Result<Self, InstanceError> {
        let n_users = rows.len();
        let nnz: usize = rows.iter().map(Vec::len).sum();
        assert!(nnz <= u32::MAX as usize, "sparse utility matrix too large");
        let mut offsets = Vec::with_capacity(n_users + 1);
        let mut cols = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        offsets.push(0u32);
        for (u, row) in rows.iter().enumerate() {
            let mut prev: Option<u32> = None;
            for &(c, v) in row {
                if (c as usize) >= n_events || prev.is_some_and(|p| p >= c) {
                    return Err(InstanceError::UnknownId {
                        what: format!(
                            "sparse utility row {u} has out-of-range or out-of-order column {c}"
                        ),
                    });
                }
                if !(0.0..=1.0).contains(&v) {
                    return Err(InstanceError::InvalidUtility {
                        user: UserId(u as u32),
                        event: EventId(c),
                        value: v,
                    });
                }
                prev = Some(c);
                cols.push(c);
                vals.push(v);
            }
            offsets.push(cols.len() as u32);
        }
        Ok(UtilityMatrix {
            n_users,
            n_events,
            storage: Storage::Sparse {
                offsets,
                cols,
                vals,
            },
        })
    }

    /// Number of user rows.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of event columns.
    pub fn n_events(&self) -> usize {
        self.n_events
    }

    /// Whether the CSR layout is in use.
    pub fn is_sparse(&self) -> bool {
        matches!(self.storage, Storage::Sparse { .. })
    }

    /// Number of explicitly stored entries (`n_users * n_events` for
    /// the dense layout).
    pub fn stored_entries(&self) -> usize {
        match &self.storage {
            Storage::Dense(values) => values.len(),
            Storage::Sparse { cols, .. } => cols.len(),
        }
    }

    /// `μ(user, event)`; 0 for pairs absent from the sparse layout.
    #[inline]
    pub fn get(&self, user: UserId, event: EventId) -> f64 {
        match &self.storage {
            Storage::Dense(values) => values[user.index() * self.n_events + event.index()],
            Storage::Sparse {
                offsets,
                cols,
                vals,
            } => {
                let lo = offsets[user.index()] as usize;
                let hi = offsets[user.index() + 1] as usize;
                match cols[lo..hi].binary_search(&(event.index() as u32)) {
                    Ok(k) => vals[lo + k],
                    Err(_) => 0.0,
                }
            }
        }
    }

    /// Sets `μ(user, event)`; panics outside `[0, 1]`. On the sparse
    /// layout an absent pair is spliced in (an absent pair set to 0
    /// stays implicit).
    pub fn set(&mut self, user: UserId, event: EventId, value: f64) {
        assert!(
            (0.0..=1.0).contains(&value),
            "utility {value} outside [0, 1]"
        );
        let n_events = self.n_events;
        match &mut self.storage {
            Storage::Dense(values) => {
                values[user.index() * n_events + event.index()] = value;
            }
            Storage::Sparse {
                offsets,
                cols,
                vals,
            } => {
                let lo = offsets[user.index()] as usize;
                let hi = offsets[user.index() + 1] as usize;
                let col = event.index() as u32;
                match cols[lo..hi].binary_search(&col) {
                    Ok(k) => vals[lo + k] = value,
                    Err(k) => {
                        // epplan-lint: allow(float/exact-eq) — sparse storage: exact 0.0 means "absent", no tolerance wanted
                        if value == 0.0 {
                            return; // absent == implicit zero
                        }
                        cols.insert(lo + k, col);
                        vals.insert(lo + k, value);
                        for o in &mut offsets[user.index() + 1..] {
                            *o += 1;
                        }
                    }
                }
            }
        }
    }

    /// Visits every entry with `μ > 0` in one user's row, in ascending
    /// event order. O(row length) on either layout — this is the
    /// building block of candidate derivation.
    #[inline]
    pub fn for_each_positive_in_row<F: FnMut(EventId, f64)>(&self, user: UserId, mut f: F) {
        match &self.storage {
            Storage::Dense(values) => {
                let s = user.index() * self.n_events;
                // epplan-lint: allow(sparse/dense-scan) — Dense-layout arm: one user's row scan is this storage's native access; large instances use the Sparse arm below
                for (e, &v) in values[s..s + self.n_events].iter().enumerate() {
                    if v > 0.0 {
                        f(EventId(e as u32), v);
                    }
                }
            }
            Storage::Sparse {
                offsets,
                cols,
                vals,
            } => {
                let lo = offsets[user.index()] as usize;
                let hi = offsets[user.index() + 1] as usize;
                for k in lo..hi {
                    if vals[k] > 0.0 {
                        f(EventId(cols[k]), vals[k]);
                    }
                }
            }
        }
    }

    /// Validates the storage structure and every stored value, the way
    /// strict instance validation needs after deserialization: dense
    /// length must match the shape; sparse offsets must be a monotone
    /// prefix array with ascending in-range columns; all stored values
    /// must lie in `[0, 1]`. O(stored entries).
    pub fn validate(&self) -> Result<(), InstanceError> {
        match &self.storage {
            Storage::Dense(values) => {
                if values.len() != self.n_users * self.n_events {
                    return Err(InstanceError::ShapeMismatch {
                        matrix: (self.n_users, values.len()),
                        expected: (self.n_users, self.n_events),
                    });
                }
                for (idx, &v) in values.iter().enumerate() {
                    if !(0.0..=1.0).contains(&v) {
                        return Err(InstanceError::InvalidUtility {
                            user: UserId((idx / self.n_events) as u32),
                            event: EventId((idx % self.n_events) as u32),
                            value: v,
                        });
                    }
                }
            }
            Storage::Sparse {
                offsets,
                cols,
                vals,
            } => {
                let well_formed = offsets.len() == self.n_users + 1
                    && offsets.first() == Some(&0)
                    && offsets.last().copied() == Some(cols.len() as u32)
                    && cols.len() == vals.len()
                    && offsets.windows(2).all(|w| w[0] <= w[1]);
                if !well_formed {
                    return Err(InstanceError::UnknownId {
                        what: "corrupt sparse utility storage (bad offsets)".to_string(),
                    });
                }
                for u in 0..self.n_users {
                    let lo = offsets[u] as usize;
                    let hi = offsets[u + 1] as usize;
                    let row = &cols[lo..hi];
                    if row.iter().any(|&c| (c as usize) >= self.n_events)
                        || row.windows(2).any(|w| w[0] >= w[1])
                    {
                        return Err(InstanceError::UnknownId {
                            what: format!(
                                "corrupt sparse utility storage (row {u} columns)"
                            ),
                        });
                    }
                    for (k, &v) in vals[lo..hi].iter().enumerate() {
                        if !(0.0..=1.0).contains(&v) {
                            return Err(InstanceError::InvalidUtility {
                                user: UserId(u as u32),
                                event: EventId(row[k]),
                                value: v,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Appends an all-zero column for a newly created event and returns
    /// its id (used by the `NewEvent` atomic operation).
    pub fn push_event_column(&mut self) -> EventId {
        let ne = self.n_events;
        if let Storage::Dense(values) = &mut self.storage {
            let mut next = Vec::with_capacity(self.n_users * (ne + 1));
            for u in 0..self.n_users {
                next.extend_from_slice(&values[u * ne..(u + 1) * ne]);
                next.push(0.0);
            }
            *values = next;
        }
        // Sparse layout: a zero column is implicit, only the shape grows.
        self.n_events += 1;
        EventId(ne as u32)
    }
}

// The serde shim has no `flatten`/`untagged`, so the two layouts are
// dispatched by hand: the dense layout keeps the historical
// `{n_users, n_events, values}` JSON shape bit-for-bit, the sparse
// layout writes `{n_users, n_events, offsets, cols, vals}`, and the
// deserializer picks by which field set is present.
impl Serialize for UtilityMatrix {
    fn to_content(&self) -> Content {
        let mut m = vec![
            ("n_users".to_string(), self.n_users.to_content()),
            ("n_events".to_string(), self.n_events.to_content()),
        ];
        match &self.storage {
            Storage::Dense(values) => {
                m.push(("values".to_string(), values.to_content()));
            }
            Storage::Sparse {
                offsets,
                cols,
                vals,
            } => {
                m.push(("offsets".to_string(), offsets.to_content()));
                m.push(("cols".to_string(), cols.to_content()));
                m.push(("vals".to_string(), vals.to_content()));
            }
        }
        Content::Map(m)
    }
}

impl Deserialize for UtilityMatrix {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let m = c
            .as_map()
            .ok_or_else(|| DeError::new("expected map for `UtilityMatrix`"))?;
        let n_users: usize = serde::__field(m, "n_users")?;
        let n_events: usize = serde::__field(m, "n_events")?;
        let storage = if serde::__get(m, "values").is_some() {
            Storage::Dense(serde::__field(m, "values")?)
        } else {
            Storage::Sparse {
                offsets: serde::__field(m, "offsets")?,
                cols: serde::__field(m, "cols")?,
                vals: serde::__field(m, "vals")?,
            }
        };
        Ok(UtilityMatrix {
            n_users,
            n_events,
            storage,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_get() {
        let m = UtilityMatrix::from_rows(vec![vec![0.1, 0.2], vec![0.3, 0.4]]).unwrap();
        assert_eq!(m.n_users(), 2);
        assert_eq!(m.n_events(), 2);
        assert_eq!(m.get(UserId(0), EventId(1)), 0.2);
        assert_eq!(m.get(UserId(1), EventId(0)), 0.3);
        assert!(!m.is_sparse());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_utility_panics() {
        let mut m = UtilityMatrix::zeros(1, 1);
        m.set(UserId(0), EventId(0), 1.5);
    }

    #[test]
    fn ragged_rows_are_a_typed_error() {
        let err = UtilityMatrix::from_rows(vec![vec![0.1], vec![0.2, 0.3]]).unwrap_err();
        assert!(matches!(err, InstanceError::ShapeMismatch { .. }));
    }

    #[test]
    fn push_event_column_preserves_rows() {
        let mut m = UtilityMatrix::from_rows(vec![vec![0.1, 0.2], vec![0.3, 0.4]]).unwrap();
        let e = m.push_event_column();
        assert_eq!(e, EventId(2));
        assert_eq!(m.n_events(), 3);
        assert_eq!(m.get(UserId(0), EventId(0)), 0.1);
        assert_eq!(m.get(UserId(1), EventId(1)), 0.4);
        assert_eq!(m.get(UserId(0), EventId(2)), 0.0);
        assert_eq!(m.get(UserId(1), EventId(2)), 0.0);
    }

    #[test]
    fn sparse_rows_match_dense_semantics() {
        let dense = UtilityMatrix::from_rows(vec![vec![0.1, 0.0, 0.2], vec![0.0, 0.3, 0.0]])
            .unwrap();
        let sparse = UtilityMatrix::from_sparse_rows(
            3,
            &[vec![(0, 0.1), (2, 0.2)], vec![(1, 0.3)]],
        )
        .unwrap();
        assert!(sparse.is_sparse());
        assert_eq!(sparse.stored_entries(), 3);
        for u in 0..2 {
            for e in 0..3 {
                assert_eq!(
                    dense.get(UserId(u), EventId(e)),
                    sparse.get(UserId(u), EventId(e)),
                    "({u}, {e})"
                );
            }
        }
        let mut dense_pos = Vec::new();
        let mut sparse_pos = Vec::new();
        dense.for_each_positive_in_row(UserId(0), |e, v| dense_pos.push((e, v)));
        sparse.for_each_positive_in_row(UserId(0), |e, v| sparse_pos.push((e, v)));
        assert_eq!(dense_pos, sparse_pos);
    }

    #[test]
    fn sparse_rejects_disorder_and_bad_values() {
        assert!(matches!(
            UtilityMatrix::from_sparse_rows(3, &[vec![(2, 0.1), (1, 0.2)]]),
            Err(InstanceError::UnknownId { .. })
        ));
        assert!(matches!(
            UtilityMatrix::from_sparse_rows(3, &[vec![(5, 0.1)]]),
            Err(InstanceError::UnknownId { .. })
        ));
        assert!(matches!(
            UtilityMatrix::from_sparse_rows(3, &[vec![(1, 1.5)]]),
            Err(InstanceError::InvalidUtility { .. })
        ));
    }

    #[test]
    fn sparse_set_splices_and_push_column_is_implicit() {
        let mut m = UtilityMatrix::from_sparse_rows(3, &[vec![(1, 0.3)], vec![]]).unwrap();
        m.set(UserId(1), EventId(0), 0.7);
        assert_eq!(m.get(UserId(1), EventId(0)), 0.7);
        m.set(UserId(0), EventId(2), 0.0); // absent + zero stays implicit
        assert_eq!(m.stored_entries(), 2);
        let e = m.push_event_column();
        assert_eq!(e, EventId(3));
        assert_eq!(m.get(UserId(0), EventId(3)), 0.0);
        m.set(UserId(0), EventId(3), 0.5);
        assert_eq!(m.get(UserId(0), EventId(3)), 0.5);
        assert_eq!(m.get(UserId(0), EventId(1)), 0.3);
    }

    #[test]
    fn serde_roundtrips_both_layouts_and_keeps_dense_shape() {
        let dense = UtilityMatrix::from_rows(vec![vec![0.1, 0.2]]).unwrap();
        let json = serde_json::to_string(&dense).unwrap();
        assert!(json.contains("\"values\""), "dense JSON shape changed: {json}");
        let back: UtilityMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dense);

        let sparse = UtilityMatrix::from_sparse_rows(4, &[vec![(1, 0.5), (3, 0.25)]]).unwrap();
        let json = serde_json::to_string(&sparse).unwrap();
        let back: UtilityMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sparse);
        assert!(back.is_sparse());
    }
}
