use serde::{Deserialize, Serialize};

/// A half-open-in-spirit event time window within the planning horizon,
/// in minutes (e.g. minutes since midnight for the paper's 1-day
/// horizon `H`).
///
/// The paper's conflict rule (Definition 1, constraint 1) is strict:
/// if `e_k` starts before `e_h`, then `e_k` must also **end strictly
/// before `e_h` starts** — back-to-back events conflict, because
/// "`e_4` starts when `e_2` ends leaving no time to go from `e_2` to
/// `e_4`" (Section II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TimeInterval {
    /// Start time `t^s`, in minutes.
    pub start: u32,
    /// End time `t^t`, in minutes; always `> start`.
    pub end: u32,
}

impl TimeInterval {
    /// Creates an interval; panics unless `start < end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start < end, "empty or inverted interval [{start}, {end})");
        TimeInterval { start, end }
    }

    /// Duration in minutes.
    pub fn duration(&self) -> u32 {
        self.end - self.start
    }

    /// The paper's time-conflict relation: two events conflict unless
    /// one ends strictly before the other starts.
    ///
    /// ```
    /// use epplan_core::model::TimeInterval;
    /// // The paper's Example 1: e1 = 1:00–3:00pm, e3 = 1:30–3:00pm
    /// let e1 = TimeInterval::new(13 * 60, 15 * 60);
    /// let e3 = TimeInterval::new(13 * 60 + 30, 15 * 60);
    /// assert!(e1.conflicts_with(&e3));
    /// // e2 = 4:00–6:00pm, e4 = 6:00–8:00pm: back-to-back conflicts.
    /// let e2 = TimeInterval::new(16 * 60, 18 * 60);
    /// let e4 = TimeInterval::new(18 * 60, 20 * 60);
    /// assert!(e2.conflicts_with(&e4));
    /// assert!(!e1.conflicts_with(&e2));
    /// ```
    pub fn conflicts_with(&self, other: &TimeInterval) -> bool {
        !(self.end < other.start || other.end < self.start)
    }

    /// Whether this interval ends strictly before `other` starts
    /// (i.e. both can appear in one plan, in this order).
    pub fn strictly_before(&self, other: &TimeInterval) -> bool {
        self.end < other.start
    }
}

impl std::fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:02}:{:02}-{:02}:{:02}",
            self.start / 60,
            self.start % 60,
            self.end / 60,
            self.end % 60
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_conflicts() {
        let a = TimeInterval::new(60, 120);
        let b = TimeInterval::new(90, 150);
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
    }

    #[test]
    fn containment_conflicts() {
        let a = TimeInterval::new(60, 240);
        let b = TimeInterval::new(90, 120);
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
    }

    #[test]
    fn back_to_back_conflicts() {
        // Paper: e2 (4–6pm) conflicts with e4 (6–8pm).
        let a = TimeInterval::new(16 * 60, 18 * 60);
        let b = TimeInterval::new(18 * 60, 20 * 60);
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
    }

    #[test]
    fn gap_does_not_conflict() {
        let a = TimeInterval::new(60, 120);
        let b = TimeInterval::new(121, 180);
        assert!(!a.conflicts_with(&b));
        assert!(a.strictly_before(&b));
        assert!(!b.strictly_before(&a));
    }

    #[test]
    fn self_conflicts() {
        let a = TimeInterval::new(0, 10);
        assert!(a.conflicts_with(&a));
    }

    #[test]
    #[should_panic(expected = "empty or inverted")]
    fn inverted_interval_panics() {
        TimeInterval::new(10, 10);
    }

    #[test]
    fn display_formats_as_clock_time() {
        let a = TimeInterval::new(13 * 60, 15 * 60);
        assert_eq!(a.to_string(), "13:00-15:00");
    }

    #[test]
    fn duration() {
        assert_eq!(TimeInterval::new(30, 90).duration(), 60);
    }
}
