use crate::model::{
    Event, EventId, Instance, InstanceError, TimeInterval, User, UserId, UtilityMatrix,
};
use epplan_geo::Point;

/// Fluent constructor for [`Instance`]s.
///
/// The positional `Instance::new(users, events, matrix)` constructor is
/// error-prone for hand-built scenarios (tests, examples, seed data):
/// utilities must be entered in exactly the right shape and order. The
/// builder lets callers add users and events incrementally and set
/// utilities by id, with everything else defaulting to zero.
///
/// ```
/// use epplan_core::model::{InstanceBuilder, TimeInterval};
/// use epplan_geo::Point;
///
/// let mut b = InstanceBuilder::new();
/// let alice = b.user(Point::new(0.0, 0.0), 20.0);
/// let bob = b.user(Point::new(5.0, 0.0), 15.0);
/// let yoga = b.event(Point::new(1.0, 1.0), 1, 10, TimeInterval::new(420, 480));
/// b.utility(alice, yoga, 0.8);
/// b.utility(bob, yoga, 0.4);
/// let instance = b.build();
/// assert_eq!(instance.n_users(), 2);
/// assert_eq!(instance.utility(alice, yoga), 0.8);
/// assert_eq!(instance.utility(bob, yoga), 0.4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder {
    users: Vec<User>,
    events: Vec<Event>,
    utilities: Vec<(UserId, EventId, f64)>,
}

impl InstanceBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a user, returning their id.
    pub fn user(&mut self, location: Point, budget: f64) -> UserId {
        self.users.push(User::new(location, budget));
        UserId(self.users.len() as u32 - 1)
    }

    /// Adds a fee-free event, returning its id.
    pub fn event(
        &mut self,
        location: Point,
        lower: u32,
        upper: u32,
        time: TimeInterval,
    ) -> EventId {
        self.events.push(Event::new(location, lower, upper, time));
        EventId(self.events.len() as u32 - 1)
    }

    /// Adds a pre-constructed event (e.g. one with a fee).
    pub fn event_raw(&mut self, event: Event) -> EventId {
        self.events.push(event);
        EventId(self.events.len() as u32 - 1)
    }

    /// Records `μ(user, event) = value`. Later writes win. Panics at
    /// [`build`](Self::build) time if an id is out of range.
    pub fn utility(&mut self, user: UserId, event: EventId, value: f64) -> &mut Self {
        self.utilities.push((user, event, value));
        self
    }

    /// Number of users added so far.
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Number of events added so far.
    pub fn n_events(&self) -> usize {
        self.events.len()
    }

    /// Finalizes the instance. Unset utilities default to 0 ("cannot
    /// participate").
    pub fn build(self) -> Instance {
        let mut matrix = UtilityMatrix::zeros(self.users.len(), self.events.len());
        for (u, e, v) in self.utilities {
            assert!(
                u.index() < self.users.len(),
                "utility references unknown user {u}"
            );
            assert!(
                e.index() < self.events.len(),
                "utility references unknown event {e}"
            );
            matrix.set(u, e, v);
        }
        match Instance::new(self.users, self.events, matrix) {
            Ok(inst) => inst,
            // The matrix was sized from these exact user/event lists.
            Err(_) => unreachable!("builder matrix is rectangular by construction"),
        }
    }

    /// Finalizes the instance under strict validation, returning a
    /// typed [`InstanceError`] instead of panicking on dangling utility
    /// references, NaN or out-of-range utilities, non-positive budgets,
    /// inverted intervals, or `η < ξ`. Prefer this at trust boundaries
    /// (file loaders, generators).
    pub fn try_build(self) -> Result<Instance, InstanceError> {
        let mut matrix = UtilityMatrix::zeros(self.users.len(), self.events.len());
        for (u, e, v) in self.utilities {
            if u.index() >= self.users.len() {
                return Err(InstanceError::UnknownId {
                    what: format!("utility references unknown user {u}"),
                });
            }
            if e.index() >= self.events.len() {
                return Err(InstanceError::UnknownId {
                    what: format!("utility references unknown event {e}"),
                });
            }
            if !(0.0..=1.0).contains(&v) {
                return Err(InstanceError::InvalidUtility {
                    user: u,
                    event: e,
                    value: v,
                });
            }
            matrix.set(u, e, v);
        }
        Instance::try_new(self.users, self.events, matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_incrementally() {
        let mut b = InstanceBuilder::new();
        let u0 = b.user(Point::new(0.0, 0.0), 10.0);
        let u1 = b.user(Point::new(1.0, 0.0), 12.0);
        let e0 = b.event(Point::new(0.0, 1.0), 0, 5, TimeInterval::new(0, 60));
        assert_eq!(u0, UserId(0));
        assert_eq!(u1, UserId(1));
        assert_eq!(e0, EventId(0));
        b.utility(u0, e0, 0.5);
        let inst = b.build();
        assert_eq!(inst.utility(UserId(0), EventId(0)), 0.5);
        assert_eq!(inst.utility(UserId(1), EventId(0)), 0.0);
    }

    #[test]
    fn later_utility_writes_win() {
        let mut b = InstanceBuilder::new();
        let u = b.user(Point::new(0.0, 0.0), 1.0);
        let e = b.event(Point::new(0.0, 0.0), 0, 1, TimeInterval::new(0, 1));
        b.utility(u, e, 0.2);
        b.utility(u, e, 0.9);
        assert_eq!(b.build().utility(u, e), 0.9);
    }

    #[test]
    fn event_with_fee() {
        let mut b = InstanceBuilder::new();
        b.user(Point::new(0.0, 0.0), 10.0);
        let e = b.event_raw(
            Event::new(Point::new(0.0, 0.0), 0, 3, TimeInterval::new(0, 30)).with_fee(2.5),
        );
        let inst = b.build();
        assert_eq!(inst.event(e).fee, 2.5);
    }

    #[test]
    #[should_panic(expected = "unknown event")]
    fn out_of_range_utility_panics() {
        let mut b = InstanceBuilder::new();
        let u = b.user(Point::new(0.0, 0.0), 1.0);
        b.utility(u, EventId(3), 0.5);
        let _ = b.build();
    }

    #[test]
    fn empty_builder_builds_empty_instance() {
        let inst = InstanceBuilder::new().build();
        assert_eq!(inst.n_users(), 0);
        assert_eq!(inst.n_events(), 0);
    }

    #[test]
    fn try_build_rejects_dangling_ids_and_bad_values() {
        use crate::model::InstanceError;

        let mut b = InstanceBuilder::new();
        let u = b.user(Point::new(0.0, 0.0), 1.0);
        b.utility(u, EventId(3), 0.5);
        assert!(matches!(
            b.try_build(),
            Err(InstanceError::UnknownId { .. })
        ));

        let mut b = InstanceBuilder::new();
        let u = b.user(Point::new(0.0, 0.0), 1.0);
        let e = b.event(Point::new(0.0, 0.0), 0, 1, TimeInterval::new(0, 1));
        b.utility(u, e, f64::NAN);
        assert!(matches!(
            b.try_build(),
            Err(InstanceError::InvalidUtility { .. })
        ));

        let mut b = InstanceBuilder::new();
        b.user(Point::new(0.0, 0.0), 0.0); // zero budget
        assert!(matches!(
            b.try_build(),
            Err(InstanceError::InvalidBudget { .. })
        ));
    }

    #[test]
    fn try_build_accepts_well_formed_input() {
        let mut b = InstanceBuilder::new();
        let u = b.user(Point::new(0.0, 0.0), 10.0);
        let e = b.event(Point::new(1.0, 0.0), 0, 2, TimeInterval::new(0, 60));
        b.utility(u, e, 0.7);
        let inst = b.try_build().expect("well-formed");
        assert_eq!(inst.utility(u, e), 0.7);
    }
}
