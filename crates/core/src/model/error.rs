//! Typed construction-time rejection of malformed instances.
//!
//! Shape mismatches are typed errors everywhere: [`Instance::new`] and
//! `UtilityMatrix::from_rows` return [`InstanceError::ShapeMismatch`]
//! rather than panicking (the PR 1 no-panic contract). Data that
//! crosses a trust boundary — deserialized instance files, generated
//! workloads — additionally goes through [`Instance::try_new`] /
//! [`InstanceBuilder::try_build`], which reject every way an instance
//! can be silently broken: NaN or out-of-range utilities, non-positive
//! budgets, inverted time intervals, `η < ξ`, negative fees,
//! non-finite coordinates, and corrupt sparse utility storage.
//!
//! [`Instance::new`]: crate::model::Instance::new
//! [`Instance::try_new`]: crate::model::Instance::try_new
//! [`InstanceBuilder::build`]: crate::model::InstanceBuilder::build
//! [`InstanceBuilder::try_build`]: crate::model::InstanceBuilder::try_build

use crate::model::{EventId, UserId};

/// A reason an instance failed strict validation.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// Utility matrix shape disagrees with the user/event counts.
    ShapeMismatch {
        /// Rows × columns of the supplied matrix.
        matrix: (usize, usize),
        /// Users × events of the instance.
        expected: (usize, usize),
    },
    /// `μ(user, event)` is NaN or outside `[0, 1]`.
    InvalidUtility {
        /// Offending user.
        user: UserId,
        /// Offending event.
        event: EventId,
        /// The rejected value.
        value: f64,
    },
    /// A utility entry references a user or event that does not exist.
    UnknownId {
        /// Human-readable description of the dangling reference.
        what: String,
    },
    /// A user's travel budget is NaN, infinite, or not strictly
    /// positive (a zero budget makes every event unreachable; the paper
    /// assumes `B_i > 0`).
    InvalidBudget {
        /// Offending user.
        user: UserId,
        /// The rejected value.
        value: f64,
    },
    /// A location coordinate is NaN or infinite.
    NonFiniteLocation {
        /// `"user u3"` or `"event e7"`.
        owner: String,
    },
    /// An event's time window is empty or inverted (`start ≥ end`).
    InvertedInterval {
        /// Offending event.
        event: EventId,
        /// The rejected window as `(start, end)`.
        window: (u32, u32),
    },
    /// An event's participation bounds are inverted (`η < ξ`).
    InvertedBounds {
        /// Offending event.
        event: EventId,
        /// Lower bound `ξ`.
        lower: u32,
        /// Upper bound `η`.
        upper: u32,
    },
    /// An event's admission fee is NaN, infinite, or negative.
    InvalidFee {
        /// Offending event.
        event: EventId,
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::ShapeMismatch { matrix, expected } => write!(
                f,
                "utility matrix is {}×{} but the instance has {} users × {} events",
                matrix.0, matrix.1, expected.0, expected.1
            ),
            InstanceError::InvalidUtility { user, event, value } => {
                write!(f, "utility μ({user}, {event}) = {value} is outside [0, 1]")
            }
            InstanceError::UnknownId { what } => write!(f, "{what}"),
            InstanceError::InvalidBudget { user, value } => write!(
                f,
                "budget {value} of {user} must be finite and strictly positive"
            ),
            InstanceError::NonFiniteLocation { owner } => {
                write!(f, "{owner} has a non-finite location coordinate")
            }
            InstanceError::InvertedInterval { event, window } => write!(
                f,
                "{event} has an empty or inverted time window [{}, {})",
                window.0, window.1
            ),
            InstanceError::InvertedBounds {
                event,
                lower,
                upper,
            } => write!(
                f,
                "{event} has lower bound ξ = {lower} above upper bound η = {upper}"
            ),
            InstanceError::InvalidFee { event, value } => {
                write!(f, "{event} has invalid admission fee {value}")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = InstanceError::InvalidUtility {
            user: UserId(2),
            event: EventId(1),
            value: f64::NAN,
        };
        let s = e.to_string();
        assert!(s.contains("u2") && s.contains("e1") && s.contains("[0, 1]"));

        let e = InstanceError::InvertedBounds {
            event: EventId(0),
            lower: 5,
            upper: 2,
        };
        assert!(e.to_string().contains("ξ = 5"));
    }
}
