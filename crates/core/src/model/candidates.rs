//! Per-user candidate lists in a flat CSR/SoA arena.
//!
//! The paper's pruning `Uc_i` observes that a user `u_i` can only ever
//! attend events within `B_i / 2` of home (a round trip costs at least
//! twice the one-way distance, and fees are non-negative), and only
//! events with `μ > 0`. [`CandidateSet`] materializes exactly that set
//! per user, in one contiguous arena — the structure every hot solver
//! path iterates instead of the full `|U| × |E|` matrix.
//!
//! Candidate membership is the *canonical predicate*
//! `μ(u, e) > 0 ∧ 2·d(u, e) + fee(e) ≤ B_u + 1e-9`, the same float
//! expression as single-event feasibility in
//! [`Instance::can_attend_with`]. By the triangle inequality any
//! feasible attendance set containing `e` costs at least
//! `2·d(u, e) + fee(e)`, so pruning non-candidates is lossless: no
//! solver stage can ever want an event outside the list.
//!
//! Derivation probes the geo grid index per user when the instance has
//! enough events to pay for it, and falls back to a direct row scan
//! otherwise (and always for CSR-stored utility matrices, whose rows
//! already are candidate-shaped). Both strategies apply the same
//! predicate and emit events in ascending id order, so the resulting
//! lists are identical — a property pinned by tests below.

use crate::model::{EventId, Instance, UserId};
use epplan_geo::GridIndex;

/// Below this many events a per-user grid probe costs more than just
/// scanning the row.
const GRID_MIN_EVENTS: usize = 32;
/// Users per parallel build chunk (fixed boundaries — thread-count
/// independent, so the arena bytes are too).
const BUILD_MIN_CHUNK: usize = 64;

/// Per-user candidate event lists in one flat CSR arena.
///
/// Row `u` owns `event_ids/utilities[row_offsets[u]..row_offsets[u+1]]`,
/// event ids strictly ascending within a row.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSet {
    row_offsets: Vec<u32>,
    event_ids: Vec<u32>,
    utilities: Vec<f64>,
    n_events: usize,
}

/// The canonical candidate predicate (see the module docs). Every
/// derivation strategy must evaluate exactly this expression — as must
/// any caller that scans a dense row *in lieu of* a candidate row (the
/// filler's restricted repair mode), or the two paths drift apart.
#[inline]
pub(crate) fn is_candidate(instance: &Instance, u: UserId, e: EventId, mu: f64) -> bool {
    mu > 0.0
        && 2.0 * instance.distance(u, e) + instance.event(e).fee
            <= instance.user(u).budget + 1e-9
}

impl CandidateSet {
    /// Derives the candidate lists for `instance`, choosing between a
    /// grid probe of each user's `B_i/2` window and a dense row scan.
    pub fn build(instance: &Instance) -> Self {
        let use_grid =
            !instance.utilities().is_sparse() && instance.n_events() >= GRID_MIN_EVENTS;
        let grid = if use_grid {
            let venues: Vec<_> = instance.events().iter().map(|e| e.location).collect();
            Some(GridIndex::build(&venues))
        } else {
            None
        };
        Self::build_with(instance, grid.as_ref())
    }

    fn build_with(instance: &Instance, grid: Option<&GridIndex>) -> Self {
        let n_users = instance.n_users();
        let parts = epplan_par::par_range_map(n_users, BUILD_MIN_CHUNK, |range| {
            let mut lens: Vec<u32> = Vec::with_capacity(range.len());
            let mut ids: Vec<u32> = Vec::new();
            let mut utils: Vec<f64> = Vec::new();
            let mut probe: Vec<usize> = Vec::new();
            for u in range {
                let user = UserId(u as u32);
                let before = ids.len();
                match grid {
                    Some(grid) => {
                        // Superset window: 2d + fee ≤ B + 1e-9 with
                        // fee ≥ 0 implies d ≤ B/2 + 1e-9.
                        let radius = instance.user(user).budget * 0.5 + 1e-9;
                        probe.clear();
                        grid.for_each_within(&instance.user(user).location, radius, |i| {
                            probe.push(i);
                        });
                        probe.sort_unstable(); // bucket order → id order
                        for &i in &probe {
                            let e = EventId(i as u32);
                            let mu = instance.utility(user, e);
                            if is_candidate(instance, user, e, mu) {
                                ids.push(i as u32);
                                utils.push(mu);
                            }
                        }
                    }
                    None => {
                        instance.utilities().for_each_positive_in_row(user, |e, mu| {
                            if is_candidate(instance, user, e, mu) {
                                ids.push(e.0);
                                utils.push(mu);
                            }
                        });
                    }
                }
                lens.push((ids.len() - before) as u32);
            }
            (lens, ids, utils)
        });

        let nnz: usize = parts.iter().map(|(_, ids, _)| ids.len()).sum();
        assert!(nnz <= u32::MAX as usize, "candidate arena too large");
        let mut row_offsets = Vec::with_capacity(n_users + 1);
        let mut event_ids = Vec::with_capacity(nnz);
        let mut utilities = Vec::with_capacity(nnz);
        row_offsets.push(0u32);
        for (lens, ids, utils) in parts {
            for len in lens {
                let last = *row_offsets.last().unwrap_or(&0);
                row_offsets.push(last + len);
            }
            event_ids.extend_from_slice(&ids);
            utilities.extend_from_slice(&utils);
        }
        CandidateSet {
            row_offsets,
            event_ids,
            utilities,
            n_events: instance.n_events(),
        }
    }

    /// Number of user rows.
    pub fn n_users(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of events in the originating instance (not all of which
    /// necessarily appear as candidates).
    pub fn n_events(&self) -> usize {
        self.n_events
    }

    /// Total number of `(user, event)` candidate pairs in the arena.
    pub fn len(&self) -> usize {
        self.event_ids.len()
    }

    /// Whether no user has any candidate.
    pub fn is_empty(&self) -> bool {
        self.event_ids.is_empty()
    }

    /// Mean candidates per user — the density the bench grids report.
    pub fn density(&self) -> f64 {
        if self.n_users() == 0 {
            0.0
        } else {
            self.len() as f64 / self.n_users() as f64
        }
    }

    /// The arena range owned by one user's row.
    #[inline]
    pub fn row_range(&self, u: UserId) -> std::ops::Range<usize> {
        self.row_offsets[u.index()] as usize..self.row_offsets[u.index() + 1] as usize
    }

    /// One user's candidate events and their utilities, ids ascending.
    #[inline]
    pub fn row(&self, u: UserId) -> (&[u32], &[f64]) {
        let r = self.row_range(u);
        (&self.event_ids[r.clone()], &self.utilities[r])
    }

    /// The full event-id arena (all rows concatenated).
    pub fn event_ids(&self) -> &[u32] {
        &self.event_ids
    }

    /// The full utility arena, parallel to [`Self::event_ids`].
    pub fn utilities(&self) -> &[f64] {
        &self.utilities
    }

    /// The CSR row-offset prefix array, `n_users + 1` long.
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }

    /// Whether `e` is a candidate for `u` (binary search of the row).
    pub fn contains(&self, u: UserId, e: EventId) -> bool {
        let (ids, _) = self.row(u);
        ids.binary_search(&e.0).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Event, TimeInterval, User, UtilityMatrix};
    use epplan_geo::Point;

    fn scattered_instance(n_users: usize, n_events: usize) -> Instance {
        // Deterministic splitmix-style scatter, no external RNG.
        let mut state = 0x9e37u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64)
        };
        let users: Vec<User> = (0..n_users)
            .map(|_| {
                User::new(
                    Point::new(next() * 100.0, next() * 100.0),
                    5.0 + next() * 40.0,
                )
            })
            .collect();
        let events: Vec<Event> = (0..n_events)
            .map(|i| {
                Event::new(
                    Point::new(next() * 100.0, next() * 100.0),
                    0,
                    4,
                    TimeInterval::new(i as u32 * 10, i as u32 * 10 + 5),
                )
                .with_fee(if i % 3 == 0 { next() * 3.0 } else { 0.0 })
            })
            .collect();
        let rows: Vec<Vec<f64>> = (0..n_users)
            .map(|_| {
                (0..n_events)
                    .map(|j| if j % 4 == 0 { 0.0 } else { (next() * 100.0).round() / 100.0 })
                    .collect()
            })
            .collect();
        Instance::new(users, events, UtilityMatrix::from_rows(rows).unwrap()).unwrap()
    }

    #[test]
    fn grid_probe_matches_dense_scan_exactly() {
        let inst = scattered_instance(40, 48);
        let venues: Vec<_> = inst.events().iter().map(|e| e.location).collect();
        let grid = GridIndex::build(&venues);
        let via_grid = CandidateSet::build_with(&inst, Some(&grid));
        let via_scan = CandidateSet::build_with(&inst, None);
        assert_eq!(via_grid, via_scan);
        assert!(!via_grid.is_empty());
    }

    #[test]
    fn rows_are_ascending_and_satisfy_the_predicate() {
        let inst = scattered_instance(25, 48);
        let cs = CandidateSet::build(&inst);
        assert_eq!(cs.n_users(), 25);
        assert_eq!(cs.n_events(), 48);
        for u in inst.user_ids() {
            let (ids, utils) = cs.row(u);
            for w in ids.windows(2) {
                assert!(w[0] < w[1], "row of {u} not strictly ascending");
            }
            for (&e, &mu) in ids.iter().zip(utils) {
                let e = EventId(e);
                assert_eq!(mu, inst.utility(u, e));
                assert!(is_candidate(&inst, u, e, mu));
            }
        }
        // Completeness: everything passing the predicate is present.
        for u in inst.user_ids() {
            for e in inst.event_ids() {
                if is_candidate(&inst, u, e, inst.utility(u, e)) {
                    assert!(cs.contains(u, e), "missing candidate ({u}, {e})");
                }
            }
        }
    }

    #[test]
    fn candidate_set_is_thread_count_invariant() {
        let inst = scattered_instance(150, 48);
        let prev = epplan_par::threads();
        epplan_par::set_threads(1);
        let at1 = CandidateSet::build(&inst);
        epplan_par::set_threads(4);
        let at4 = CandidateSet::build(&inst);
        epplan_par::set_threads(prev);
        assert_eq!(at1, at4);
    }

    #[test]
    fn empty_instance_yields_empty_arena() {
        let inst = Instance::new(vec![], vec![], UtilityMatrix::zeros(0, 0)).unwrap();
        let cs = CandidateSet::build(&inst);
        assert_eq!(cs.n_users(), 0);
        assert!(cs.is_empty());
        assert_eq!(cs.density(), 0.0);
    }
}
