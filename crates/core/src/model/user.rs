use epplan_geo::Point;
use serde::{Deserialize, Serialize};

/// Index of a user within an [`crate::model::Instance`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct UserId(pub u32);

impl UserId {
    /// The index as `usize` for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A user: a place of origin and a travel budget (Section II,
/// `u_i = (l_{u_i}, B_i)`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct User {
    /// Home location; trips start and end here.
    pub location: Point,
    /// Travel budget `B_i`: the user's travel cost `D_i` must satisfy
    /// `D_i ≤ B_i`.
    pub budget: f64,
}

impl User {
    /// Creates a user; panics on a negative budget.
    pub fn new(location: Point, budget: f64) -> Self {
        assert!(budget >= 0.0, "negative travel budget");
        User { location, budget }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_and_index() {
        let id = UserId(7);
        assert_eq!(id.to_string(), "u7");
        assert_eq!(id.index(), 7);
    }

    #[test]
    #[should_panic(expected = "negative travel budget")]
    fn negative_budget_panics() {
        User::new(Point::new(0.0, 0.0), -1.0);
    }
}
