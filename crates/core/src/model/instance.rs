use crate::model::{
    CandidateSet, Event, EventId, InstanceError, TimeInterval, User, UserId, UtilityMatrix,
};
use epplan_geo::Point;
use serde::{Content, DeError, Deserialize, Serialize};
use std::sync::OnceLock;

/// A complete EBSN problem instance: the users `U`, the events `E`,
/// and the utility matrix `μ` (Section II of the paper).
///
/// The instance is the single source of truth for distances, time
/// conflicts and travel costs; plans and solvers hold only indices
/// ([`UserId`], [`EventId`]) into it. Incremental (IEP) atomic
/// operations mutate a cloned instance through the `set_*`/`add_event`
/// methods.
///
/// The per-user candidate lists (`Uc_i`, the CSR arena every hot
/// solver path iterates) are derived lazily on first use and cached;
/// any mutation that can change candidate membership invalidates the
/// cache. The cache never takes part in equality or serialization.
#[derive(Debug, Clone)]
pub struct Instance {
    users: Vec<User>,
    events: Vec<Event>,
    utilities: UtilityMatrix,
    candidates: OnceLock<CandidateSet>,
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.users == other.users
            && self.events == other.events
            && self.utilities == other.utilities
    }
}

// Hand-written (the serde shim has no `skip`): the derived layout for
// the three data fields, with the candidate cache left out and rebuilt
// lazily after deserialization.
impl Serialize for Instance {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("users".to_string(), self.users.to_content()),
            ("events".to_string(), self.events.to_content()),
            ("utilities".to_string(), self.utilities.to_content()),
        ])
    }
}

impl Deserialize for Instance {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let m = c
            .as_map()
            .ok_or_else(|| DeError::new("expected map for `Instance`"))?;
        Ok(Instance {
            users: serde::__field(m, "users")?,
            events: serde::__field(m, "events")?,
            utilities: serde::__field(m, "utilities")?,
            candidates: OnceLock::new(),
        })
    }
}

impl Instance {
    /// Assembles an instance; rejects a utility matrix whose shape
    /// disagrees with the user/event counts with a typed
    /// [`InstanceError::ShapeMismatch`].
    pub fn new(
        users: Vec<User>,
        events: Vec<Event>,
        utilities: UtilityMatrix,
    ) -> Result<Self, InstanceError> {
        if utilities.n_users() != users.len() || utilities.n_events() != events.len() {
            return Err(InstanceError::ShapeMismatch {
                matrix: (utilities.n_users(), utilities.n_events()),
                expected: (users.len(), events.len()),
            });
        }
        Ok(Instance {
            users,
            events,
            utilities,
            candidates: OnceLock::new(),
        })
    }

    /// Assembles an instance under strict validation, rejecting every
    /// silently-broken input a trust boundary can deliver: shape
    /// mismatches, NaN or out-of-range utilities, non-positive budgets,
    /// non-finite coordinates, inverted time windows, `η < ξ`, and
    /// invalid fees. Prefer this over [`Instance::new`] for
    /// deserialized or generated data.
    pub fn try_new(
        users: Vec<User>,
        events: Vec<Event>,
        utilities: UtilityMatrix,
    ) -> Result<Self, InstanceError> {
        let inst = Instance::new(users, events, utilities)?;
        inst.validate_strict()?;
        Ok(inst)
    }

    /// Re-checks the strict invariants of [`Instance::try_new`] on an
    /// already-assembled instance. Useful after deserialization, which
    /// bypasses every constructor check.
    pub fn validate_strict(&self) -> Result<(), InstanceError> {
        if self.utilities.n_users() != self.users.len()
            || self.utilities.n_events() != self.events.len()
        {
            return Err(InstanceError::ShapeMismatch {
                matrix: (self.utilities.n_users(), self.utilities.n_events()),
                expected: (self.users.len(), self.events.len()),
            });
        }
        for u in self.user_ids() {
            let user = self.user(u);
            if !user.budget.is_finite() || user.budget <= 0.0 {
                return Err(InstanceError::InvalidBudget {
                    user: u,
                    value: user.budget,
                });
            }
            if !user.location.x.is_finite() || !user.location.y.is_finite() {
                return Err(InstanceError::NonFiniteLocation {
                    owner: format!("user {u}"),
                });
            }
        }
        for e in self.event_ids() {
            let ev = self.event(e);
            if ev.time.start >= ev.time.end {
                return Err(InstanceError::InvertedInterval {
                    event: e,
                    window: (ev.time.start, ev.time.end),
                });
            }
            if ev.lower > ev.upper {
                return Err(InstanceError::InvertedBounds {
                    event: e,
                    lower: ev.lower,
                    upper: ev.upper,
                });
            }
            if !ev.fee.is_finite() || ev.fee < 0.0 {
                return Err(InstanceError::InvalidFee {
                    event: e,
                    value: ev.fee,
                });
            }
            if !ev.location.x.is_finite() || !ev.location.y.is_finite() {
                return Err(InstanceError::NonFiniteLocation {
                    owner: format!("event {e}"),
                });
            }
        }
        // Validates every *stored* utility entry plus the storage
        // structure itself — O(stored entries), not O(|U|·|E|), so
        // strict validation stays affordable on sparse instances.
        self.utilities.validate()
    }

    /// Number of users `n`.
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Number of events `m`.
    pub fn n_events(&self) -> usize {
        self.events.len()
    }

    /// All user ids `u_0 … u_{n−1}`.
    pub fn user_ids(&self) -> impl Iterator<Item = UserId> {
        (0..self.users.len() as u32).map(UserId)
    }

    /// All event ids `e_0 … e_{m−1}`.
    pub fn event_ids(&self) -> impl Iterator<Item = EventId> {
        (0..self.events.len() as u32).map(EventId)
    }

    /// The user with id `u`.
    #[inline]
    pub fn user(&self, u: UserId) -> &User {
        &self.users[u.index()]
    }

    /// The event with id `e`.
    #[inline]
    pub fn event(&self, e: EventId) -> &Event {
        &self.events[e.index()]
    }

    /// All users as a slice.
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// All events as a slice.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// `μ(u, e)`.
    #[inline]
    pub fn utility(&self, u: UserId, e: EventId) -> f64 {
        self.utilities.get(u, e)
    }

    /// The full utility matrix.
    pub fn utilities(&self) -> &UtilityMatrix {
        &self.utilities
    }

    /// The per-user candidate lists (`Uc_i`), derived on first use and
    /// cached until a mutation invalidates them.
    pub fn candidates(&self) -> &CandidateSet {
        self.candidates.get_or_init(|| {
            let _sp = epplan_obs::span("core.candidates.build");
            let cs = CandidateSet::build(self);
            epplan_obs::gauge_set("gap.candidates.per_user", cs.density());
            cs
        })
    }

    /// Euclidean distance from a user's origin to an event venue.
    #[inline]
    pub fn distance(&self, u: UserId, e: EventId) -> f64 {
        self.user(u).location.distance(&self.event(e).location)
    }

    /// Euclidean distance between two event venues.
    #[inline]
    pub fn event_distance(&self, a: EventId, b: EventId) -> f64 {
        self.event(a).location.distance(&self.event(b).location)
    }

    /// The paper's time-conflict relation on two events.
    #[inline]
    pub fn conflicts(&self, a: EventId, b: EventId) -> bool {
        self.event(a).conflicts_with(self.event(b))
    }

    /// Travel cost `D` of attending `events` (any order): the route
    /// origin → events in start-time order → origin (Section II,
    /// matching the worked example `D_1 = d(u_1,e_1) + d(e_1,e_2) +
    /// d(e_2,u_1)`), plus any admission fees (the Section VII
    /// extension; zero in the base model).
    pub fn travel_cost(&self, u: UserId, events: &[EventId]) -> f64 {
        let fees: f64 = events.iter().map(|&e| self.event(e).fee).sum();
        fees + match events.len() {
            0 => 0.0,
            1 => 2.0 * self.distance(u, events[0]),
            _ => {
                let mut order: Vec<EventId> = events.to_vec();
                order.sort_by_key(|e| self.event(*e).time);
                let mut cost = self.distance(u, order[0]);
                for w in order.windows(2) {
                    cost += self.event_distance(w[0], w[1]);
                }
                cost + self.distance(u, order[order.len() - 1])
            }
        }
    }

    /// Travel cost if `extra` were added to `events`.
    pub fn travel_cost_with(&self, u: UserId, events: &[EventId], extra: EventId) -> f64 {
        let mut all = Vec::with_capacity(events.len() + 1);
        all.extend_from_slice(events);
        all.push(extra);
        self.travel_cost(u, &all)
    }

    /// Whether `extra` can be added to `events` without any time
    /// conflict and within `u`'s budget, with positive utility
    /// (`μ > 0`, since a zero score means "cannot participate").
    pub fn can_attend_with(&self, u: UserId, events: &[EventId], extra: EventId) -> bool {
        self.utility(u, extra) > 0.0
            && !events.iter().any(|&e| self.conflicts(e, extra))
            && self.travel_cost_with(u, events, extra) <= self.user(u).budget + 1e-9
    }

    // ---- mutation API for IEP atomic operations ----
    //
    // Every mutation that can change candidate membership (utility,
    // budget, venue, fee, new event) routes through
    // `invalidate_candidates`; time windows and participation bounds do
    // not enter the candidate predicate, so those setters leave the
    // cache alone (each carries the audited-allow explaining why —
    // `sparse/cache-invalidate` proves the routing for everything else).

    /// Drops the cached CSR candidate lists; the next `candidates()`
    /// call rebuilds them against the current utilities/budgets/events.
    /// Every state-writing mutator must reach this (enforced by the
    /// `sparse/cache-invalidate` lint rule).
    pub fn invalidate_candidates(&mut self) {
        self.candidates.take();
    }

    /// Sets `μ(u, e)`.
    pub fn set_utility(&mut self, u: UserId, e: EventId, value: f64) {
        self.utilities.set(u, e, value);
        self.invalidate_candidates();
    }

    /// Sets a user's travel budget.
    pub fn set_budget(&mut self, u: UserId, budget: f64) {
        assert!(budget >= 0.0, "negative travel budget");
        self.users[u.index()].budget = budget;
        self.invalidate_candidates();
    }

    /// Sets an event's time window.
    pub fn set_event_time(&mut self, e: EventId, time: TimeInterval) {
        // epplan-lint: allow(sparse/cache-invalidate) — time windows are not in the candidate predicate (only μ > 0 and lone-event affordability); conflict checks read them live
        self.events[e.index()].time = time;
    }

    /// Sets an event's venue location.
    pub fn set_event_location(&mut self, e: EventId, location: Point) {
        self.events[e.index()].location = location;
        self.invalidate_candidates();
    }

    /// Sets an event's admission fee (the Section VII extension).
    pub fn set_event_fee(&mut self, e: EventId, fee: f64) {
        assert!(fee >= 0.0, "negative admission fee");
        self.events[e.index()].fee = fee;
        self.invalidate_candidates();
    }

    /// Sets an event's participation bounds; panics if inverted.
    pub fn set_event_bounds(&mut self, e: EventId, lower: u32, upper: u32) {
        assert!(lower <= upper, "lower bound {lower} exceeds upper {upper}");
        // epplan-lint: allow(sparse/cache-invalidate) — participation bounds are plan-side constraints, not part of the per-user candidate predicate
        let ev = &mut self.events[e.index()];
        ev.lower = lower;
        ev.upper = upper;
    }

    /// Appends a new event with the given per-user utilities, returning
    /// its id (the `e_j added` atomic operation).
    pub fn add_event(&mut self, event: Event, utilities: &[f64]) -> EventId {
        assert_eq!(utilities.len(), self.users.len(), "one utility per user");
        self.events.push(event);
        let id = self.utilities.push_event_column();
        debug_assert_eq!(id.index(), self.events.len() - 1);
        for (u, &v) in utilities.iter().enumerate() {
            self.utilities.set(UserId(u as u32), id, v);
        }
        self.invalidate_candidates();
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_by_two() -> Instance {
        let users = vec![
            User::new(Point::new(0.0, 0.0), 10.0),
            User::new(Point::new(10.0, 0.0), 5.0),
        ];
        let events = vec![
            Event::new(Point::new(0.0, 3.0), 1, 2, TimeInterval::new(60, 120)),
            Event::new(Point::new(4.0, 0.0), 0, 2, TimeInterval::new(180, 240)),
        ];
        let utilities =
            UtilityMatrix::from_rows(vec![vec![0.9, 0.5], vec![0.2, 0.0]]).unwrap();
        Instance::new(users, events, utilities).unwrap()
    }

    #[test]
    fn distances() {
        let inst = two_by_two();
        assert_eq!(inst.distance(UserId(0), EventId(0)), 3.0);
        assert_eq!(inst.distance(UserId(0), EventId(1)), 4.0);
        assert_eq!(inst.event_distance(EventId(0), EventId(1)), 5.0);
    }

    #[test]
    fn travel_cost_single_event_is_round_trip() {
        let inst = two_by_two();
        assert_eq!(inst.travel_cost(UserId(0), &[EventId(0)]), 6.0);
    }

    #[test]
    fn travel_cost_route_in_time_order() {
        let inst = two_by_two();
        // e0 (60–120) then e1 (180–240): 3 + 5 + 4 = 12 regardless of
        // the order the ids are passed in.
        let c1 = inst.travel_cost(UserId(0), &[EventId(0), EventId(1)]);
        let c2 = inst.travel_cost(UserId(0), &[EventId(1), EventId(0)]);
        assert_eq!(c1, 12.0);
        assert_eq!(c1, c2);
    }

    #[test]
    fn travel_cost_empty_is_zero() {
        let inst = two_by_two();
        assert_eq!(inst.travel_cost(UserId(0), &[]), 0.0);
    }

    #[test]
    fn can_attend_with_checks_everything() {
        let inst = two_by_two();
        // u0 alone can afford e0 (cost 6 ≤ 10).
        assert!(inst.can_attend_with(UserId(0), &[], EventId(0)));
        // u0 with e0 can't also afford e1 (cost 12 > 10).
        assert!(!inst.can_attend_with(UserId(0), &[EventId(0)], EventId(1)));
        // u1 has zero utility for e1 → cannot attend.
        assert!(!inst.can_attend_with(UserId(1), &[], EventId(1)));
    }

    #[test]
    fn mutation_roundtrip() {
        let mut inst = two_by_two();
        inst.set_budget(UserId(0), 20.0);
        assert_eq!(inst.user(UserId(0)).budget, 20.0);
        inst.set_utility(UserId(1), EventId(1), 0.7);
        assert_eq!(inst.utility(UserId(1), EventId(1)), 0.7);
        inst.set_event_bounds(EventId(0), 0, 5);
        assert_eq!(inst.event(EventId(0)).upper, 5);
        inst.set_event_time(EventId(1), TimeInterval::new(0, 30));
        assert!(!inst.conflicts(EventId(0), EventId(1)));
        inst.set_event_location(EventId(1), Point::new(0.0, 0.0));
        assert_eq!(inst.distance(UserId(0), EventId(1)), 0.0);
    }

    #[test]
    fn candidate_cache_tracks_mutations() {
        let mut inst = two_by_two();
        // u0 on budget 10: e0 costs 6, e1 costs 8 → both candidates.
        // u1 on budget 5: e0 costs 2·√(10²+3²) > 5, e1 has μ = 0 → none.
        let cs = inst.candidates();
        assert_eq!(cs.row(UserId(0)).0, &[0, 1]);
        assert!(cs.row(UserId(1)).0.is_empty());
        assert!(inst.candidates().contains(UserId(0), EventId(1)));

        // Shrinking u0's budget below e1's round trip evicts it.
        inst.set_budget(UserId(0), 7.0);
        assert_eq!(inst.candidates().row(UserId(0)).0, &[0]);

        // Zeroing the utility evicts e0 as well.
        inst.set_utility(UserId(0), EventId(0), 0.0);
        assert!(inst.candidates().row(UserId(0)).0.is_empty());
    }

    // Runtime twin of the `sparse/cache-invalidate` lint rule: one
    // test per mutator proving `candidates()` reflects the mutation
    // (or, for the predicate-neutral setters, that the cache is
    // deliberately retained).

    #[test]
    fn set_utility_rebuilds_candidates() {
        let mut inst = two_by_two();
        assert!(inst.candidates().contains(UserId(0), EventId(0)));
        inst.set_utility(UserId(0), EventId(0), 0.0);
        assert!(!inst.candidates().contains(UserId(0), EventId(0)));
        inst.set_utility(UserId(0), EventId(0), 0.9);
        assert!(inst.candidates().contains(UserId(0), EventId(0)));
    }

    #[test]
    fn set_budget_rebuilds_candidates() {
        let mut inst = two_by_two();
        // u1 on budget 5 affords nothing; raising it to 30 covers e0's
        // 2·√109 ≈ 20.9 round trip (μ = 0.2 > 0).
        assert!(inst.candidates().row(UserId(1)).0.is_empty());
        inst.set_budget(UserId(1), 30.0);
        assert_eq!(inst.candidates().row(UserId(1)).0, &[0]);
    }

    #[test]
    fn set_event_location_rebuilds_candidates() {
        let mut inst = two_by_two();
        assert!(inst.candidates().contains(UserId(0), EventId(1)));
        // Moving e1 to (10, 0) makes u0's round trip 20 > budget 10.
        inst.set_event_location(EventId(1), Point::new(10.0, 0.0));
        assert!(!inst.candidates().contains(UserId(0), EventId(1)));
    }

    #[test]
    fn set_event_fee_rebuilds_candidates() {
        let mut inst = two_by_two();
        assert!(inst.candidates().contains(UserId(0), EventId(1)));
        // e1's round trip costs u0 8 of 10; a fee of 3 breaks it.
        inst.set_event_fee(EventId(1), 3.0);
        assert!(!inst.candidates().contains(UserId(0), EventId(1)));
        inst.set_event_fee(EventId(1), 0.0);
        assert!(inst.candidates().contains(UserId(0), EventId(1)));
    }

    #[test]
    fn add_event_rebuilds_candidates() {
        let mut inst = two_by_two();
        let before = inst.candidates().row(UserId(0)).0.len();
        let e = inst.add_event(
            Event::new(Point::new(1.0, 1.0), 0, 3, TimeInterval::new(300, 360)),
            &[0.4, 0.6],
        );
        let cs = inst.candidates();
        assert!(cs.contains(UserId(0), e));
        assert_eq!(cs.row(UserId(0)).0.len(), before + 1);
        // u1's budget (5) cannot cover the ≈18.1 round trip.
        assert!(!cs.contains(UserId(1), e));
    }

    #[test]
    fn predicate_neutral_setters_keep_the_cache() {
        let mut inst = two_by_two();
        let before = inst.candidates() as *const CandidateSet;
        // Time windows and participation bounds are outside the
        // candidate predicate: the cached lists must survive untouched
        // (the same audited exemption `sparse/cache-invalidate` grants
        // these setters).
        inst.set_event_time(EventId(0), TimeInterval::new(0, 30));
        inst.set_event_bounds(EventId(0), 0, 1);
        let after = inst.candidates() as *const CandidateSet;
        assert!(std::ptr::eq(before, after), "cache was dropped needlessly");
        assert!(inst.candidates().contains(UserId(0), EventId(0)));
    }

    #[test]
    fn fees_are_charged_against_the_budget() {
        let mut inst = two_by_two();
        // u0 round trip to e0 costs 6 of budget 10; a fee of 5 breaks it.
        assert!(inst.can_attend_with(UserId(0), &[], EventId(0)));
        inst.set_event_fee(EventId(0), 5.0);
        assert_eq!(inst.travel_cost(UserId(0), &[EventId(0)]), 11.0);
        assert!(!inst.can_attend_with(UserId(0), &[], EventId(0)));
        inst.set_event_fee(EventId(0), 4.0);
        assert!(inst.can_attend_with(UserId(0), &[], EventId(0)));
    }

    #[test]
    fn add_event_extends_matrix() {
        let mut inst = two_by_two();
        let e = inst.add_event(
            Event::new(Point::new(1.0, 1.0), 1, 3, TimeInterval::new(300, 360)),
            &[0.4, 0.6],
        );
        assert_eq!(e, EventId(2));
        assert_eq!(inst.n_events(), 3);
        assert_eq!(inst.utility(UserId(1), e), 0.6);
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let users = vec![User::new(Point::new(0.0, 0.0), 1.0)];
        let err = Instance::new(users, vec![], UtilityMatrix::zeros(2, 0)).unwrap_err();
        assert!(matches!(
            err,
            InstanceError::ShapeMismatch {
                matrix: (2, 0),
                expected: (1, 0),
            }
        ));
    }

    #[test]
    fn try_new_rejects_shape_mismatch_without_panicking() {
        let users = vec![User::new(Point::new(0.0, 0.0), 1.0)];
        let err = Instance::try_new(users, vec![], UtilityMatrix::zeros(2, 0)).unwrap_err();
        assert!(matches!(err, InstanceError::ShapeMismatch { .. }));
    }

    #[test]
    fn validate_strict_catches_deserialized_corruption() {
        let inst = two_by_two();
        assert!(inst.validate_strict().is_ok());
        let json = serde_json::to_string(&inst).expect("serializable");

        // Serde bypasses every constructor check: patch the JSON the
        // way a corrupt instance file would look.
        let bad = json.replace("0.9", "7.5"); // utility far outside [0, 1]
        let poisoned: Instance = serde_json::from_str(&bad).expect("parses");
        assert!(matches!(
            poisoned.validate_strict(),
            Err(InstanceError::InvalidUtility { .. })
        ));

        let bad = json.replace("\"lower\":1", "\"lower\":9");
        let poisoned: Instance = serde_json::from_str(&bad).expect("parses");
        assert!(matches!(
            poisoned.validate_strict(),
            Err(InstanceError::InvertedBounds { .. })
        ));
    }

    #[test]
    fn try_new_rejects_eta_below_xi_and_inverted_intervals() {
        let users = vec![User::new(Point::new(0.0, 0.0), 10.0)];
        // Bypass Event::new's assert the way serde would.
        let mut event = Event::new(Point::new(0.0, 1.0), 1, 3, TimeInterval::new(0, 60));
        event.lower = 4; // η = 3 < ξ = 4
        let err = Instance::try_new(
            users.clone(),
            vec![event],
            UtilityMatrix::zeros(1, 1),
        )
        .unwrap_err();
        assert!(matches!(err, InstanceError::InvertedBounds { .. }));

        let mut event = Event::new(Point::new(0.0, 1.0), 0, 3, TimeInterval::new(0, 60));
        event.time = TimeInterval { start: 60, end: 60 };
        let err = Instance::try_new(users, vec![event], UtilityMatrix::zeros(1, 1))
            .unwrap_err();
        assert!(matches!(err, InstanceError::InvertedInterval { .. }));
    }
}
