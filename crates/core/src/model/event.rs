use crate::model::TimeInterval;
use epplan_geo::Point;
use serde::{Deserialize, Serialize};

/// Index of an event within an [`crate::model::Instance`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct EventId(pub u32);

impl EventId {
    /// The index as `usize` for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An event: the paper's 5-tuple `e_j = (l_{e_j}, ξ_j, η_j, t^s_j,
/// t^t_j)` (Section II), optionally extended with an admission fee.
///
/// The fee implements the paper's closing suggestion (Section VII):
/// "such costs could take into account not only travel, but also
/// potential costs associated with attending events (e.g., admission
/// fees) … naturally rolled into travel costs and thus treated
/// uniformly". A user's cost `D_i` is their route length **plus** the
/// fees of the events in their plan, all charged against the same
/// budget `B_i`; every algorithm inherits the extension for free.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Venue location.
    pub location: Point,
    /// Participation lower bound `ξ_j`: the event cannot be held with
    /// fewer assigned participants (Definition 1, constraint 4).
    pub lower: u32,
    /// Participation upper bound `η_j` (Definition 1, constraint 3).
    pub upper: u32,
    /// Holding time window.
    pub time: TimeInterval,
    /// Admission fee, charged against the attendee's budget alongside
    /// the travel cost. Zero in the paper's base model.
    #[serde(default)]
    pub fee: f64,
}

impl Event {
    /// Creates a fee-free event; panics unless `lower ≤ upper`.
    pub fn new(location: Point, lower: u32, upper: u32, time: TimeInterval) -> Self {
        assert!(
            lower <= upper,
            "participation lower bound {lower} exceeds upper bound {upper}"
        );
        Event {
            location,
            lower,
            upper,
            time,
            fee: 0.0,
        }
    }

    /// Sets an admission fee (builder style); panics on negative fees.
    pub fn with_fee(mut self, fee: f64) -> Self {
        assert!(fee >= 0.0, "negative admission fee");
        self.fee = fee;
        self
    }

    /// The paper's conflict relation applied to two events.
    pub fn conflicts_with(&self, other: &Event) -> bool {
        self.time.conflicts_with(&other.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_and_index() {
        let id = EventId(3);
        assert_eq!(id.to_string(), "e3");
        assert_eq!(id.index(), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn inverted_bounds_panic() {
        Event::new(Point::new(0.0, 0.0), 5, 3, TimeInterval::new(0, 60));
    }

    #[test]
    fn fee_defaults_to_zero_and_builds() {
        let e = Event::new(Point::new(0.0, 0.0), 0, 5, TimeInterval::new(0, 60));
        assert_eq!(e.fee, 0.0);
        let paid = e.with_fee(12.5);
        assert_eq!(paid.fee, 12.5);
    }

    #[test]
    #[should_panic(expected = "negative admission fee")]
    fn negative_fee_panics() {
        Event::new(Point::new(0.0, 0.0), 0, 5, TimeInterval::new(0, 60)).with_fee(-1.0);
    }

    #[test]
    fn conflicts_delegate_to_time() {
        let a = Event::new(Point::new(0.0, 0.0), 0, 5, TimeInterval::new(0, 60));
        let b = Event::new(Point::new(1.0, 1.0), 0, 5, TimeInterval::new(30, 90));
        let c = Event::new(Point::new(2.0, 2.0), 0, 5, TimeInterval::new(61, 90));
        assert!(a.conflicts_with(&b));
        assert!(!a.conflicts_with(&c));
    }
}
