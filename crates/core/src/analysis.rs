//! Approximation-ratio quantities from the paper's analysis.
//!
//! Both approximation bounds hinge on `Uc_i` — "the number of events
//! that fall within a distance `B_i/2` of `l_{u_i}`" (Section III-A.1),
//! an upper bound on how many events user `i` could ever attend, since
//! a round trip to any event costs at least twice the one-way distance.
//!
//! * GAP-based algorithm: ratio `1/(Uc_max − 1)` (after the LP's
//!   `1 − O(ε)`);
//! * Greedy-based algorithm: ratio `1/(2·Uc_max)`;
//! * IEP `η`-decrease: `1/((n_j − η'_j)(Uc_max − 1))`; `ξ`-increase:
//!   `1/((n_j − η'_j)(Uc_max − 2))`; time-change:
//!   `1/((uc_j + ξ_j − n'_j)(Uc_max − 1))`.
//!
//! [`InstanceAnalysis`] computes these quantities with the spatial grid
//! index so tests and the ablation harness can report measured ratios
//! next to the theoretical bounds.

use crate::model::{Instance, UserId};
use epplan_geo::GridIndex;

/// Static analysis of an instance: reachability counts and the derived
/// approximation bounds.
#[derive(Debug, Clone)]
pub struct InstanceAnalysis {
    /// `Uc_i` per user.
    pub uc: Vec<usize>,
    /// `Uc_max = max_i Uc_i`.
    pub uc_max: usize,
}

impl InstanceAnalysis {
    /// Computes `Uc_i` for every user via a grid index over event
    /// venues.
    pub fn of(instance: &Instance) -> Self {
        let venues: Vec<epplan_geo::Point> =
            instance.events().iter().map(|e| e.location).collect();
        let index = GridIndex::build(&venues);
        let uc: Vec<usize> = instance
            .users()
            .iter()
            .map(|u| index.count_within(&u.location, u.budget / 2.0))
            .collect();
        let uc_max = uc.iter().copied().max().unwrap_or(0);
        InstanceAnalysis { uc, uc_max }
    }

    /// `Uc_i` for one user.
    pub fn uc_of(&self, u: UserId) -> usize {
        self.uc[u.index()]
    }

    /// The paper's greedy-algorithm bound `1/(2·Uc_max)`; `None` when
    /// no user can reach any event (the bound is vacuous).
    pub fn greedy_bound(&self) -> Option<f64> {
        (self.uc_max > 0).then(|| 1.0 / (2.0 * self.uc_max as f64))
    }

    /// The paper's GAP-algorithm bound `1/(Uc_max − 1)`; `None` when
    /// `Uc_max ≤ 1` (bound vacuous or division by zero).
    pub fn gap_bound(&self) -> Option<f64> {
        (self.uc_max > 1).then(|| 1.0 / (self.uc_max as f64 - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Event, TimeInterval, User, UtilityMatrix};
    use epplan_geo::Point;

    fn inst(budgets: &[f64]) -> Instance {
        let users: Vec<User> = budgets
            .iter()
            .map(|&b| User::new(Point::new(0.0, 0.0), b))
            .collect();
        let events = vec![
            Event::new(Point::new(1.0, 0.0), 0, 1, TimeInterval::new(0, 10)),
            Event::new(Point::new(3.0, 0.0), 0, 1, TimeInterval::new(20, 30)),
            Event::new(Point::new(10.0, 0.0), 0, 1, TimeInterval::new(40, 50)),
        ];
        let n = users.len();
        Instance::new(users, events, UtilityMatrix::zeros(n, 3)).unwrap()
    }

    #[test]
    fn uc_counts_events_within_half_budget() {
        // Budget 4 → radius 2 → only the event at distance 1.
        // Budget 8 → radius 4 → events at 1 and 3.
        let instance = inst(&[4.0, 8.0]);
        let a = InstanceAnalysis::of(&instance);
        assert_eq!(a.uc, vec![1, 2]);
        assert_eq!(a.uc_max, 2);
    }

    #[test]
    fn bounds() {
        let instance = inst(&[4.0, 8.0, 30.0]);
        let a = InstanceAnalysis::of(&instance);
        assert_eq!(a.uc_max, 3);
        assert!((a.greedy_bound().unwrap() - 1.0 / 6.0).abs() < 1e-12);
        assert!((a.gap_bound().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn vacuous_bounds() {
        let instance = inst(&[0.5]); // radius 0.25: reaches nothing
        let a = InstanceAnalysis::of(&instance);
        assert_eq!(a.uc_max, 0);
        assert!(a.greedy_bound().is_none());
        assert!(a.gap_bound().is_none());
    }

    #[test]
    fn boundary_event_is_counted() {
        // Budget 2 → radius 1 → the event at exactly distance 1 counts.
        let instance = inst(&[2.0]);
        let a = InstanceAnalysis::of(&instance);
        assert_eq!(a.uc, vec![1]);
    }
}
