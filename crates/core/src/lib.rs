//! Core library for complex event-participant planning.
//!
//! Implements the two problems of *"Complex Event-Participant Planning
//! and Its Incremental Variant"* (Cheng, Yuan, Chen, Giraud-Carrier,
//! Wang — ICDE 2017):
//!
//! * **GEPC** (Global Event Planning with Constraints, Definition 1):
//!   find a global plan assigning users to events that maximizes total
//!   utility subject to per-user time-conflict freedom, per-user travel
//!   budgets, and per-event participation upper (`η`) **and lower
//!   (`ξ`)** bounds. See [`solver`] for the paper's two approximation
//!   algorithms (GAP-based, Section III-A; greedy, Section III-B) and
//!   an exact reference solver.
//! * **IEP** (Incremental Event Planning, Definition 2): after an
//!   atomic change to a user or event, find a new plan of maximum
//!   utility among those minimizing the *negative impact*
//!   `dif(P, P′) = Σ_i |P_i \ P′_i|`. See [`incremental`] for the three
//!   core repair algorithms (Algorithms 3–5) and the reductions of all
//!   other atomic operations onto them.
//!
//! The [`model`] module holds the EBSN data model (users, events,
//! utility matrix, instance); [`plan`] holds plans, constraint
//! validation and metrics; [`analysis`] computes the `Uc` quantities of
//! the paper's approximation-ratio bounds.

// Solver-adjacent code must not panic (uniform workspace gate; the
// epplan-lint `robustness/unwrap` rule enforces the same contract).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `SolveError<Solution>` deliberately carries the best partial plan
// inline so failures can degrade instead of discarding work; the large
// Err variant is the point, not an accident.
#![allow(clippy::result_large_err)]

pub mod analysis;
pub mod certify;
pub mod incremental;
pub mod model;
pub mod plan;
pub mod solver;
