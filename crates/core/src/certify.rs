//! Independent plan certification: the [`epplan_solve::PlanView`]
//! bridge from an [`Instance`] + [`Plan`] pair to the constraint
//! checker in `epplan-solve`.
//!
//! The checker recomputes every GEPC quantity (pairwise time conflicts,
//! per-user travel cost against `B_i`, per-event attendance against
//! `η`/`ξ`, per-assignment utility, `U_P`, and — for the incremental
//! variant — `dif(P, P′)`) **from scratch** through the raw instance
//! accessors. It deliberately does not reuse [`Plan::validate`], the
//! solver-side validator: the two implementations are independent, so a
//! defect (or an injected fault) in one cannot silently vouch for
//! itself through the other.

use crate::model::{EventId, Instance, UserId};
use crate::plan::Plan;
use epplan_solve::{certify_plan, Certificate, PlanView};

/// Adapter exposing an instance/plan pair through the checker's
/// [`PlanView`] interface.
struct CertView<'a> {
    instance: &'a Instance,
    plan: &'a Plan,
}

impl PlanView for CertView<'_> {
    fn n_users(&self) -> usize {
        self.instance.n_users()
    }

    fn n_events(&self) -> usize {
        self.instance.n_events()
    }

    fn assignments(&self, user: usize) -> Vec<usize> {
        self.plan
            .user_plan(UserId(user as u32))
            .iter()
            .map(|e| e.index())
            .collect()
    }

    fn conflicts(&self, a: usize, b: usize) -> bool {
        self.instance.conflicts(EventId(a as u32), EventId(b as u32))
    }

    fn travel_cost(&self, user: usize, events: &[usize]) -> f64 {
        let evs: Vec<EventId> = events.iter().map(|&e| EventId(e as u32)).collect();
        self.instance.travel_cost(UserId(user as u32), &evs)
    }

    fn budget(&self, user: usize) -> f64 {
        self.instance.user(UserId(user as u32)).budget
    }

    fn bounds(&self, event: usize) -> (u32, u32) {
        let e = self.instance.event(EventId(event as u32));
        (e.lower, e.upper)
    }

    fn utility(&self, user: usize, event: usize) -> f64 {
        self.instance.utility(UserId(user as u32), EventId(event as u32))
    }
}

/// Certifies `plan` against every GEPC constraint of `instance`,
/// recomputing `U_P` from scratch. See [`Certificate`] for the verdict
/// structure.
pub fn certify(instance: &Instance, plan: &Plan) -> Certificate {
    let _sp = epplan_obs::span("solve.certify");
    certify_plan(&CertView { instance, plan }, None)
}

/// [`certify`], additionally recomputing the IEP negative impact
/// `dif(old, new)` — assignments of `old` missing from `new` — into
/// [`Certificate::dif`].
pub fn certify_incremental(instance: &Instance, old: &Plan, new: &Plan) -> Certificate {
    let _sp = epplan_obs::span("solve.certify");
    let baseline: Vec<Vec<usize>> = (0..old.n_users())
        .map(|u| {
            old.user_plan(UserId(u as u32))
                .iter()
                .map(|e| e.index())
                .collect()
        })
        .collect();
    certify_plan(&CertView { instance, plan: new }, Some(&baseline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Event, TimeInterval, User, UtilityMatrix};
    use crate::plan::dif;
    use epplan_geo::Point;
    use epplan_solve::certify::constraint;

    fn inst() -> Instance {
        let users = vec![
            User::new(Point::new(0.0, 0.0), 50.0),
            User::new(Point::new(1.0, 0.0), 50.0),
            User::new(Point::new(2.0, 0.0), 0.5), // tight budget
        ];
        let events = vec![
            Event::new(Point::new(0.0, 1.0), 1, 2, TimeInterval::new(0, 59)),
            // Overlaps event 0 in time → conflicting pair.
            Event::new(Point::new(0.0, 2.0), 0, 3, TimeInterval::new(30, 119)),
        ];
        let utilities = UtilityMatrix::from_rows(vec![
            vec![0.9, 0.4],
            vec![0.7, 0.8],
            vec![0.5, 0.0], // zero utility for (u2, e1)
        ]).unwrap();
        Instance::new(users, events, utilities).unwrap()
    }

    #[test]
    fn feasible_plan_certifies_and_matches_solver_validation() {
        let instance = inst();
        let mut plan = Plan::for_instance(&instance);
        plan.add(UserId(0), EventId(0));
        plan.add(UserId(1), EventId(1));
        let cert = certify(&instance, &plan);
        assert!(cert.hard_ok(), "violations: {:?}", cert.hard_violations);
        assert!((cert.utility - (0.9 + 0.8)).abs() < 1e-12);
        assert!(plan.validate(&instance).hard_ok());
    }

    #[test]
    fn conflicting_assignments_are_rejected() {
        let instance = inst();
        let mut plan = Plan::for_instance(&instance);
        plan.add(UserId(0), EventId(0));
        plan.add(UserId(0), EventId(1)); // overlapping intervals
        let cert = certify(&instance, &plan);
        assert!(!cert.hard_ok());
        assert!(cert
            .violated_constraints()
            .contains(&constraint::TIME_CONFLICT));
    }

    #[test]
    fn budget_and_zero_utility_are_rejected() {
        let instance = inst();
        let mut plan = Plan::for_instance(&instance);
        // u2 has budget 0.5; event 0 is far away → budget bust. Its
        // utility for e1 is 0 → zero-utility violation.
        plan.add(UserId(2), EventId(0));
        plan.add(UserId(2), EventId(1));
        let cert = certify(&instance, &plan);
        let names = cert.violated_constraints();
        assert!(names.contains(&constraint::TRAVEL_BUDGET));
        assert!(names.contains(&constraint::ZERO_UTILITY));
    }

    #[test]
    fn incremental_certificate_agrees_with_plan_dif() {
        let instance = inst();
        let mut old = Plan::for_instance(&instance);
        old.add(UserId(0), EventId(0));
        old.add(UserId(1), EventId(1));
        let mut new = Plan::for_instance(&instance);
        new.add(UserId(1), EventId(1));
        let cert = certify_incremental(&instance, &old, &new);
        assert_eq!(cert.dif, Some(1));
        assert_eq!(cert.dif, Some(dif(&old, &new)));
    }
}
