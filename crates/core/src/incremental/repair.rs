//! Shared repair primitives used by the IEP algorithms.

use crate::model::{EventId, Instance, UserId};
use crate::plan::Plan;

/// Result of [`transfer_users_to`].
#[derive(Debug, Clone, Default)]
pub struct TransferResult {
    /// Users moved to the target event (each lost one source event).
    pub moved: Vec<UserId>,
    /// Whether the target reached its requested attendance.
    pub reached: bool,
}

/// The heart of Algorithm 4: raise `event`'s attendance to `target`
/// by transferring users away from events that have spare participants
/// (`n_{j'} > ξ_{j'}`), choosing transfers by largest utility delta
/// `Δ = μ(u, event) − μ(u, source)`.
///
/// The paper stores the Δ's in a heap and eagerly deletes entries
/// invalidated by each transfer (Algorithm 4, lines 12–16); we use the
/// equivalent lazy strategy — every popped entry is re-validated
/// against the current plan, which keeps the code free of bookkeeping
/// index maps while performing the same transfers in the same order.
pub fn transfer_users_to(
    instance: &Instance,
    plan: &mut Plan,
    event: EventId,
    target: u32,
) -> TransferResult {
    let mut result = TransferResult::default();
    if plan.attendance(event) >= target {
        result.reached = true;
        return result;
    }

    // Build the Δ heap over (source event, attendee) pairs.
    #[derive(PartialEq)]
    struct Entry {
        delta: f64,
        user: UserId,
        source: EventId,
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.delta
                .total_cmp(&other.delta)
                .then_with(|| std::cmp::Reverse(self.user).cmp(&std::cmp::Reverse(other.user)))
                .then_with(|| {
                    std::cmp::Reverse(self.source).cmp(&std::cmp::Reverse(other.source))
                })
        }
    }

    let mut heap = std::collections::BinaryHeap::new();
    // epplan-lint: allow(sparse/dense-scan) — donor search must consider every source event once per repair op (O(|E| + assignments)); there is no event→donor inverted index to iterate instead
    for source in instance.event_ids() {
        if source == event {
            continue;
        }
        if plan.attendance(source) <= instance.event(source).lower {
            continue; // no spare users
        }
        for user in plan.attendees(source) {
            if plan.contains(user, event) || instance.utility(user, event) <= 0.0 {
                continue;
            }
            heap.push(Entry {
                delta: instance.utility(user, event) - instance.utility(user, source),
                user,
                source,
            });
        }
    }

    while plan.attendance(event) < target {
        let Some(Entry { user, source, .. }) = heap.pop() else {
            break;
        };
        // Lazy re-validation.
        if !plan.contains(user, source)
            || plan.contains(user, event)
            || plan.attendance(source) <= instance.event(source).lower
            || plan.attendance(event) >= instance.event(event).upper
        {
            continue;
        }
        // Check the swap: replace `source` by `event` in the user's plan.
        let rest: Vec<EventId> = plan
            .user_plan(user)
            .iter()
            .copied()
            .filter(|&e| e != source)
            .collect();
        if !instance.can_attend_with(user, &rest, event) {
            continue;
        }
        plan.remove(user, source);
        plan.add(user, event);
        result.moved.push(user);
    }
    result.reached = plan.attendance(event) >= target;
    result
}

/// Adds users to `event` in descending utility order until its upper
/// bound `η` is hit or no further user qualifies (no conflicts, within
/// budget, positive utility). Returns the users added. This is the
/// "order the other users' utility scores decreasingly" refill loop of
/// Algorithm 5 (lines 8–13) and the repair step of the `η`-increase /
/// `NewEvent` reductions.
pub fn fill_event_to_upper(instance: &Instance, plan: &mut Plan, event: EventId) -> Vec<UserId> {
    let upper = instance.event(event).upper;
    let mut candidates: Vec<UserId> = instance
        .user_ids()
        .filter(|&u| !plan.contains(u, event) && instance.utility(u, event) > 0.0)
        .collect();
    candidates.sort_by(|&a, &b| {
        instance
            .utility(b, event)
            .total_cmp(&instance.utility(a, event))
            .then(a.cmp(&b))
    });
    let mut added = Vec::new();
    for u in candidates {
        if plan.attendance(event) >= upper {
            break;
        }
        if instance.can_attend_with(u, plan.user_plan(u), event) {
            plan.add(u, event);
            added.push(u);
        }
    }
    added
}

/// Removes the lowest-utility events from `user`'s plan until their
/// travel cost fits the (possibly reduced) budget. Returns the removed
/// events (each a negative-impact unit).
pub fn shed_to_budget(instance: &Instance, plan: &mut Plan, user: UserId) -> Vec<EventId> {
    let mut removed = Vec::new();
    while plan.travel_cost(instance, user) > instance.user(user).budget + 1e-9 {
        let Some(&victim) = plan.user_plan(user).iter().min_by(|&&a, &&b| {
            instance
                .utility(user, a)
                .total_cmp(&instance.utility(user, b))
                .then(a.cmp(&b))
        }) else {
            break;
        };
        plan.remove(user, victim);
        removed.push(victim);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Event, TimeInterval, User, UtilityMatrix};
    use epplan_geo::Point;

    /// 3 users, 3 events. All events pairwise non-conflicting, close by.
    fn inst() -> Instance {
        let users = vec![
            User::new(Point::new(0.0, 0.0), 100.0),
            User::new(Point::new(0.0, 1.0), 100.0),
            User::new(Point::new(0.0, 2.0), 100.0),
        ];
        let events = vec![
            Event::new(Point::new(1.0, 0.0), 0, 3, TimeInterval::new(0, 59)),
            Event::new(Point::new(1.0, 1.0), 0, 3, TimeInterval::new(60, 119)),
            Event::new(Point::new(1.0, 2.0), 0, 3, TimeInterval::new(120, 179)),
        ];
        let utilities = UtilityMatrix::from_rows(vec![
            vec![0.9, 0.5, 0.3],
            vec![0.4, 0.8, 0.6],
            vec![0.2, 0.3, 0.7],
        ]).unwrap();
        Instance::new(users, events, utilities).unwrap()
    }

    #[test]
    fn transfer_picks_largest_delta() {
        let instance = inst();
        let mut plan = Plan::for_instance(&instance);
        // e1 has 2 attendees, lower bound 0 → both spare.
        plan.add(UserId(0), EventId(1)); // Δ to e0: 0.9−0.5 = 0.4
        plan.add(UserId(1), EventId(1)); // Δ to e0: 0.4−0.8 = −0.4
        let r = transfer_users_to(&instance, &mut plan, EventId(0), 1);
        assert!(r.reached);
        assert_eq!(r.moved, vec![UserId(0)]);
        assert!(plan.contains(UserId(0), EventId(0)));
        assert!(!plan.contains(UserId(0), EventId(1)));
        assert!(plan.contains(UserId(1), EventId(1)));
    }

    #[test]
    fn transfer_respects_source_lower_bound() {
        let mut instance = inst();
        instance.set_event_bounds(EventId(1), 2, 3); // ξ=2
        let mut plan = Plan::for_instance(&instance);
        plan.add(UserId(0), EventId(1));
        plan.add(UserId(1), EventId(1)); // n=ξ=2: no spare users
        let r = transfer_users_to(&instance, &mut plan, EventId(0), 1);
        assert!(!r.reached);
        assert!(r.moved.is_empty());
    }

    #[test]
    fn transfer_stops_when_target_reached() {
        let instance = inst();
        let mut plan = Plan::for_instance(&instance);
        plan.add(UserId(0), EventId(1));
        plan.add(UserId(1), EventId(1));
        plan.add(UserId(2), EventId(1));
        let r = transfer_users_to(&instance, &mut plan, EventId(0), 2);
        assert!(r.reached);
        assert_eq!(r.moved.len(), 2);
        assert_eq!(plan.attendance(EventId(0)), 2);
        assert_eq!(plan.attendance(EventId(1)), 1);
    }

    #[test]
    fn transfer_skips_zero_utility_users() {
        let mut instance = inst();
        instance.set_utility(UserId(0), EventId(0), 0.0);
        instance.set_utility(UserId(1), EventId(0), 0.0);
        let mut plan = Plan::for_instance(&instance);
        plan.add(UserId(0), EventId(1));
        plan.add(UserId(1), EventId(1));
        let r = transfer_users_to(&instance, &mut plan, EventId(0), 1);
        assert!(!r.reached);
    }

    #[test]
    fn fill_event_orders_by_utility() {
        let mut instance = inst();
        instance.set_event_bounds(EventId(0), 0, 2);
        let mut plan = Plan::for_instance(&instance);
        let added = fill_event_to_upper(&instance, &mut plan, EventId(0));
        // μ to e0: u0 0.9, u1 0.4, u2 0.2 → capacity 2 takes u0, u1.
        assert_eq!(added, vec![UserId(0), UserId(1)]);
        assert_eq!(plan.attendance(EventId(0)), 2);
    }

    #[test]
    fn fill_event_respects_conflicts() {
        let mut instance = inst();
        instance.set_event_time(EventId(1), TimeInterval::new(0, 59)); // conflicts e0
        let mut plan = Plan::for_instance(&instance);
        plan.add(UserId(0), EventId(1));
        let added = fill_event_to_upper(&instance, &mut plan, EventId(0));
        assert!(!added.contains(&UserId(0)));
        assert!(added.contains(&UserId(1)));
    }

    #[test]
    fn shed_to_budget_removes_lowest_utility() {
        let mut instance = inst();
        let mut plan = Plan::for_instance(&instance);
        plan.add(UserId(0), EventId(0));
        plan.add(UserId(0), EventId(1));
        plan.add(UserId(0), EventId(2));
        instance.set_budget(UserId(0), 5.0);
        // Route 0→e0→e1→e2→0 = 1 + 1 + 1 + sqrt(1+4)=2.24 → 5.24 > 5.
        let removed = shed_to_budget(&instance, &mut plan, UserId(0));
        assert!(!removed.is_empty());
        assert_eq!(removed[0], EventId(2), "lowest utility (0.3) goes first");
        assert!(plan.travel_cost(&instance, UserId(0)) <= 5.0 + 1e-9);
    }

    #[test]
    fn shed_noop_when_within_budget() {
        let instance = inst();
        let mut plan = Plan::for_instance(&instance);
        plan.add(UserId(0), EventId(0));
        assert!(shed_to_budget(&instance, &mut plan, UserId(0)).is_empty());
    }
}
