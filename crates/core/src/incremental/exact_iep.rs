//! Exact reference solver for the IEP problem on tiny instances.
//!
//! Definition 2 is lexicographic: among plans minimizing the negative
//! impact `dif(P, P′)`, pick one maximizing utility. The repair
//! algorithms of Section IV only *approximate* the utility part (the
//! paper proves ratios like `1/((n_j−η'_j)(Uc_max−1))`), but their
//! `dif` is claimed **minimal**. This module brute-forces the true
//! lexicographic optimum so tests and the ablation harness can check
//! both claims on instances small enough to enumerate.

use crate::model::{EventId, Instance, UserId};
use crate::plan::{dif, Plan};
use crate::solver::ExactSolver;

/// The exact lexicographic IEP optimum.
#[derive(Debug, Clone)]
pub struct ExactIepResult {
    /// An optimal repaired plan.
    pub plan: Plan,
    /// Its negative impact against the old plan (minimum possible).
    pub dif: usize,
    /// Its utility (maximum among minimum-impact plans).
    pub utility: f64,
}

/// Enumerates every feasible plan of `instance` (hard constraints and
/// lower bounds all satisfied) and returns one minimizing
/// `dif(old_plan, ·)`, breaking ties by maximum utility. Returns
/// `None` when no fully feasible plan exists.
///
/// Complexity is the product over users of their feasible subset
/// counts; the same size guards as [`ExactSolver`] apply.
///
/// # Panics
/// Panics when the instance exceeds `solver`'s size limits.
pub fn exact_iep(
    solver: &ExactSolver,
    instance: &Instance,
    old_plan: &Plan,
) -> Option<ExactIepResult> {
    assert!(
        instance.n_users() <= solver.max_users && instance.n_events() <= solver.max_events,
        "exact IEP limited to {}×{}",
        solver.max_users,
        solver.max_events
    );
    let n = instance.n_users();
    let m = instance.n_events();

    // Per-user individually-feasible subsets (masks) with their
    // utilities and their dif contribution against the old plan.
    let mut per_user: Vec<Vec<(u32, f64, usize)>> = Vec::with_capacity(n);
    for u in instance.user_ids() {
        let old: u32 = old_plan
            .user_plan(u)
            .iter()
            .filter(|e| e.index() < 32)
            .fold(0u32, |acc, e| acc | (1 << e.index()));
        let mut subsets = Vec::new();
        'mask: for mask in 0u32..(1 << m) {
            let events: Vec<EventId> = (0..m)
                .filter(|&j| mask & (1 << j) != 0)
                .map(|j| EventId(j as u32))
                .collect();
            let mut utility = 0.0;
            for (k, &a) in events.iter().enumerate() {
                if instance.utility(u, a) <= 0.0 {
                    continue 'mask;
                }
                utility += instance.utility(u, a);
                for &b in &events[k + 1..] {
                    if instance.conflicts(a, b) {
                        continue 'mask;
                    }
                }
            }
            if instance.travel_cost(u, &events) > instance.user(u).budget + 1e-9 {
                continue;
            }
            let lost = (old & !mask).count_ones() as usize;
            subsets.push((mask, utility, lost));
        }
        // Try low-dif, high-utility subsets first for better pruning.
        subsets.sort_by(|a, b| a.2.cmp(&b.2).then(b.1.total_cmp(&a.1)));
        per_user.push(subsets);
    }

    // Optimistic per-suffix bounds: minimum additional dif and maximum
    // additional utility from users `u..`.
    let mut suffix_min_dif = vec![0usize; n + 1];
    let mut suffix_max_util = vec![0.0f64; n + 1];
    for u in (0..n).rev() {
        let min_dif = per_user[u].iter().map(|&(_, _, d)| d).min().unwrap_or(0);
        let max_util = per_user[u]
            .iter()
            .map(|&(_, ut, _)| ut)
            .fold(0.0f64, f64::max);
        suffix_min_dif[u] = suffix_min_dif[u + 1] + min_dif;
        suffix_max_util[u] = suffix_max_util[u + 1] + max_util;
    }

    struct Ctx<'a> {
        instance: &'a Instance,
        per_user: &'a [Vec<(u32, f64, usize)>],
        suffix_min_dif: &'a [usize],
        suffix_max_util: &'a [f64],
        attendance: Vec<u32>,
        chosen: Vec<u32>,
        best: Option<(usize, f64, Vec<u32>)>,
    }

    fn better(best: &Option<(usize, f64, Vec<u32>)>, dif: usize, util: f64) -> bool {
        match best {
            None => true,
            Some((bd, bu, _)) => dif < *bd || (dif == *bd && util > *bu + 1e-12),
        }
    }

    fn dfs(ctx: &mut Ctx<'_>, u: usize, cur_dif: usize, cur_util: f64) {
        // Lexicographic pruning.
        if let Some((bd, bu, _)) = &ctx.best {
            let opt_dif = cur_dif + ctx.suffix_min_dif[u];
            let opt_util = cur_util + ctx.suffix_max_util[u];
            if opt_dif > *bd || (opt_dif == *bd && opt_util <= *bu + 1e-12) {
                return;
            }
        }
        let n = ctx.per_user.len();
        if u == n {
            let feasible = ctx
                .instance
                .event_ids()
                .all(|e| ctx.attendance[e.index()] >= ctx.instance.event(e).lower);
            if feasible && better(&ctx.best, cur_dif, cur_util) {
                ctx.best = Some((cur_dif, cur_util, ctx.chosen.clone()));
            }
            return;
        }
        'subset: for &(mask, ut, lost) in &ctx.per_user[u] {
            for j in 0..ctx.attendance.len() {
                if mask & (1 << j) != 0
                    && ctx.attendance[j] + 1 > ctx.instance.event(EventId(j as u32)).upper
                {
                    // Roll back what we applied so far in this subset.
                    for k in 0..j {
                        if mask & (1 << k) != 0 {
                            ctx.attendance[k] -= 1;
                        }
                    }
                    continue 'subset;
                } else if mask & (1 << j) != 0 {
                    ctx.attendance[j] += 1;
                }
            }
            ctx.chosen[u] = mask;
            dfs(ctx, u + 1, cur_dif + lost, cur_util + ut);
            for j in 0..ctx.attendance.len() {
                if mask & (1 << j) != 0 {
                    ctx.attendance[j] -= 1;
                }
            }
        }
    }

    let mut ctx = Ctx {
        instance,
        per_user: &per_user,
        suffix_min_dif: &suffix_min_dif,
        suffix_max_util: &suffix_max_util,
        attendance: vec![0; m],
        chosen: vec![0; n],
        best: None,
    };
    dfs(&mut ctx, 0, 0, 0.0);

    let (_, _, chosen) = ctx.best?;
    let mut plan = Plan::for_instance(instance);
    for (u, mask) in chosen.iter().enumerate() {
        for j in 0..m {
            if mask & (1 << j) != 0 {
                plan.add(UserId(u as u32), EventId(j as u32));
            }
        }
    }
    let d = dif(old_plan, &plan);
    let utility = plan.total_utility(instance);
    Some(ExactIepResult {
        plan,
        dif: d,
        utility,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::{AtomicOp, IncrementalPlanner};
    use crate::model::{InstanceBuilder, TimeInterval};
    use epplan_geo::Point;

    /// Small instance mirroring the paper's Example 3 shape.
    fn setup() -> (Instance, Plan) {
        let mut b = InstanceBuilder::new();
        let u: Vec<UserId> = (0..4)
            .map(|k| b.user(Point::new(0.0, k as f64), 50.0))
            .collect();
        let e0 = b.event(Point::new(1.0, 0.0), 0, 4, TimeInterval::new(0, 59));
        let e1 = b.event(Point::new(1.0, 1.0), 0, 4, TimeInterval::new(60, 119));
        for (k, &uu) in u.iter().enumerate() {
            b.utility(uu, e0, 0.3 + 0.1 * k as f64);
            b.utility(uu, e1, 0.9 - 0.1 * k as f64);
        }
        let inst = b.build();
        let mut plan = Plan::for_instance(&inst);
        for &uu in &u {
            plan.add(uu, e0);
            plan.add(uu, e1);
        }
        (inst, plan)
    }

    #[test]
    fn eta_decrease_dif_matches_exact_minimum() {
        let (inst, plan) = setup();
        let op = AtomicOp::EtaDecrease {
            event: EventId(0),
            new_upper: 2,
        };
        let approx = IncrementalPlanner.apply(&inst, &plan, &op);
        let exact = exact_iep(&ExactSolver::default(), &approx.instance, &plan)
            .expect("feasible");
        // Algorithm 3's dif is provably minimal.
        assert_eq!(approx.dif, exact.dif);
        // And its utility is within the approximation of the optimum.
        assert!(approx.utility <= exact.utility + 1e-9);
    }

    #[test]
    fn xi_increase_dif_matches_exact_minimum() {
        let (inst, plan) = setup();
        // First make e0 scarce so the transfer machinery fires:
        // restrict e1 and demand more participants on e0… simpler:
        // raise e0's ξ beyond its current attendance is impossible
        // (everyone already attends). Remove two users from e0 first.
        let mut plan2 = plan.clone();
        plan2.remove(UserId(0), EventId(0));
        plan2.remove(UserId(1), EventId(0));
        let op = AtomicOp::XiIncrease {
            event: EventId(0),
            new_lower: 3,
        };
        let approx = IncrementalPlanner.apply(&inst, &plan2, &op);
        let exact = exact_iep(&ExactSolver::default(), &approx.instance, &plan2)
            .expect("feasible");
        assert_eq!(approx.dif, exact.dif, "Algorithm 4 dif is minimal");
    }

    #[test]
    fn exact_iep_prefers_min_dif_over_utility() {
        // A plan where a higher-utility alternative exists but costs a
        // removal: the exact optimum must keep dif = 0.
        let mut b = InstanceBuilder::new();
        let u0 = b.user(Point::new(0.0, 0.0), 50.0);
        let e0 = b.event(Point::new(1.0, 0.0), 0, 1, TimeInterval::new(0, 59));
        let e1 = b.event(Point::new(1.0, 0.5), 0, 1, TimeInterval::new(0, 59));
        b.utility(u0, e0, 0.4);
        b.utility(u0, e1, 0.9); // conflicts with e0, higher utility
        let inst = b.build();
        let mut old = Plan::for_instance(&inst);
        old.add(u0, e0);
        let exact = exact_iep(&ExactSolver::default(), &inst, &old).unwrap();
        assert_eq!(exact.dif, 0, "keeping e0 costs nothing");
        assert!(exact.plan.contains(u0, e0));
        // (Definition 2's lexicographic order sacrifices the 0.5 gain.)
        assert!((exact.utility - 0.4).abs() < 1e-12);
    }

    #[test]
    fn returns_none_when_infeasible() {
        let mut b = InstanceBuilder::new();
        let u0 = b.user(Point::new(0.0, 0.0), 50.0);
        let e0 = b.event(Point::new(1.0, 0.0), 2, 3, TimeInterval::new(0, 59));
        b.utility(u0, e0, 0.5);
        let inst = b.build(); // ξ = 2 with a single user: impossible
        let old = Plan::for_instance(&inst);
        assert!(exact_iep(&ExactSolver::default(), &inst, &old).is_none());
    }

    #[test]
    fn empty_change_has_zero_dif() {
        let (inst, plan) = setup();
        let exact = exact_iep(&ExactSolver::default(), &inst, &plan).unwrap();
        assert_eq!(exact.dif, 0);
        assert!(exact.utility >= plan.total_utility(&inst) - 1e-9);
    }
}
