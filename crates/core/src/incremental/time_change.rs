//! Algorithm 5: the `t^s/t^t` Changing algorithm (Section IV-C), also
//! reused for event-location changes (which affect budgets the same
//! way a time shift affects conflicts).
//!
//! 1. Remove `e_j` from every attendee whose plan now conflicts with
//!    the new time (lines 1–4); we also drop attendees whose *travel
//!    cost* no longer fits their budget — a time shift reorders the
//!    user's route, which the paper's cost model implies but its
//!    pseudo-code does not spell out.
//! 2. If attendance still meets `ξ_j`, stop (lines 5–6).
//! 3. Otherwise refill from non-attendees in descending utility order
//!    up to `η_j` (lines 8–13).
//! 4. If still short of `ξ_j`, fall back to Algorithm 4's transfer
//!    machinery (lines 16–18).

use crate::model::{EventId, Instance, UserId};
use crate::plan::Plan;
use crate::solver::filler;

use super::repair::{fill_event_to_upper, transfer_users_to};

/// Outcome of the time/location-change repair.
#[derive(Debug, Clone)]
pub struct TimeChangeOutcome {
    /// Attendees who had to drop the event (`uc_j` in the paper).
    pub removed: Vec<UserId>,
    /// Users transferred from other events in the Algorithm-4 fallback.
    pub moved: Vec<UserId>,
    /// Whether `ξ_j` is met afterwards.
    pub reached: bool,
}

/// Applies the time-change repair in place. `instance` must already
/// carry the new time window (or location).
pub fn time_change(instance: &Instance, plan: &mut Plan, event: EventId) -> TimeChangeOutcome {
    // Lines 1–4: drop attendees whose plans the change breaks.
    let mut removed = Vec::new();
    for u in plan.attendees(event) {
        let rest: Vec<EventId> = plan
            .user_plan(u)
            .iter()
            .copied()
            .filter(|&e| e != event)
            .collect();
        let conflicted = rest.iter().any(|&e| instance.conflicts(e, event));
        let over_budget = instance.travel_cost_with(u, &rest, event)
            > instance.user(u).budget + 1e-9;
        if conflicted || over_budget {
            plan.remove(u, event);
            removed.push(u);
        }
    }

    let lower = instance.event(event).lower;
    if plan.attendance(event) >= lower {
        // Lines 5–6. Freed users may still pick up replacements —
        // additions only, no extra negative impact.
        if !removed.is_empty() {
            filler::fill_to_upper(instance, plan, Some(&removed));
        }
        return TimeChangeOutcome {
            removed,
            moved: Vec::new(),
            reached: true,
        };
    }

    // Lines 8–13: refill from other users, best utility first.
    fill_event_to_upper(instance, plan, event);
    if plan.attendance(event) >= lower {
        if !removed.is_empty() {
            filler::fill_to_upper(instance, plan, Some(&removed));
        }
        return TimeChangeOutcome {
            removed,
            moved: Vec::new(),
            reached: true,
        };
    }

    // Lines 16–18: Algorithm 4 with ξ' := ξ_j from the current n_j.
    let transfer = transfer_users_to(instance, plan, event, lower);
    let mut touched = removed.clone();
    touched.extend_from_slice(&transfer.moved);
    if !touched.is_empty() {
        filler::fill_to_upper(instance, plan, Some(&touched));
    }
    TimeChangeOutcome {
        removed,
        moved: transfer.moved,
        reached: transfer.reached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Event, TimeInterval, User, UtilityMatrix};
    use epplan_geo::Point;

    /// u0 attends e0 and e1; u1, u2 idle. e2 has spare users scenario
    /// covered in dedicated tests below.
    fn setup() -> (Instance, Plan) {
        let users = vec![
            User::new(Point::new(0.0, 0.0), 100.0),
            User::new(Point::new(0.0, 1.0), 100.0),
            User::new(Point::new(0.0, 2.0), 100.0),
        ];
        let events = vec![
            Event::new(Point::new(1.0, 0.0), 1, 2, TimeInterval::new(0, 59)),
            Event::new(Point::new(1.0, 1.0), 0, 2, TimeInterval::new(60, 119)),
        ];
        let utilities = UtilityMatrix::from_rows(vec![
            vec![0.9, 0.8],
            vec![0.5, 0.4],
            vec![0.3, 0.2],
        ]).unwrap();
        let instance = Instance::new(users, events, utilities).unwrap();
        let mut plan = Plan::for_instance(&instance);
        plan.add(UserId(0), EventId(0));
        plan.add(UserId(0), EventId(1));
        (instance, plan)
    }

    #[test]
    fn noop_when_no_conflicts_created() {
        let (mut instance, mut plan) = setup();
        instance.set_event_time(EventId(0), TimeInterval::new(10, 50));
        let before = plan.clone();
        let out = time_change(&instance, &mut plan, EventId(0));
        assert!(out.reached);
        assert!(out.removed.is_empty());
        assert_eq!(plan, before);
    }

    #[test]
    fn removes_conflicted_attendee_and_refills() {
        let (mut instance, mut plan) = setup();
        // Shift e0 onto e1's slot: u0 cannot keep both.
        instance.set_event_time(EventId(0), TimeInterval::new(60, 119));
        let out = time_change(&instance, &mut plan, EventId(0));
        assert_eq!(out.removed, vec![UserId(0)]);
        // ξ_0 = 1 → refilled from u1 (utility 0.5 > 0.3).
        assert!(out.reached);
        assert!(plan.contains(UserId(1), EventId(0)));
        assert!(plan.contains(UserId(0), EventId(1)), "u0 keeps e1");
        assert!(plan.validate(&instance).hard_ok());
    }

    #[test]
    fn falls_back_to_transfers_when_no_fresh_users() {
        let (mut instance, mut plan) = setup();
        // Make u1/u2 uninterested in e0 directly… but attending e1 with
        // spare capacity so the Algorithm-4 fallback can move them.
        plan.add(UserId(1), EventId(1));
        plan.add(UserId(2), EventId(1));
        instance.set_event_bounds(EventId(1), 0, 3);
        // Shift e0 to overlap e1: u0 drops e0 (keeps higher-utility e0?
        // u0's μ(e0)=0.9 > μ(e1)=0.8 — but Algorithm 5 removes e_j from
        // conflicted attendees unconditionally).
        instance.set_event_time(EventId(0), TimeInterval::new(60, 119));
        let out = time_change(&instance, &mut plan, EventId(0));
        assert_eq!(out.removed, vec![UserId(0)]);
        // Direct refill fails (everyone attends the conflicting e1),
        // so the Algorithm-4 transfer step swaps someone out of e1.
        // All three Δ's tie at 0.1; the deterministic tie-break picks
        // the smallest user id, u0 — who thereby swaps back into e0.
        assert!(out.reached);
        assert_eq!(out.moved, vec![UserId(0)]);
        assert!(plan.contains(UserId(0), EventId(0)));
        assert!(!plan.contains(UserId(0), EventId(1)));
        assert!(plan.contains(UserId(1), EventId(1)));
        assert!(plan.validate(&instance).hard_ok());
    }

    #[test]
    fn reports_unreachable_lower_bound() {
        let (mut instance, mut plan) = setup();
        instance.set_utility(UserId(1), EventId(0), 0.0);
        instance.set_utility(UserId(2), EventId(0), 0.0);
        // Pin u0 to e1 (ξ = 1 with u0 its only attendee) so the
        // Algorithm-4 fallback cannot swap them back into e0 either.
        instance.set_event_bounds(EventId(1), 1, 2);
        instance.set_event_time(EventId(0), TimeInterval::new(60, 119));
        let out = time_change(&instance, &mut plan, EventId(0));
        assert!(!out.reached);
        assert_eq!(plan.attendance(EventId(0)), 0);
    }

    #[test]
    fn location_change_over_budget_attendee_dropped() {
        let (mut instance, mut plan) = setup();
        // Move e0's venue out of u0's budget.
        instance.set_event_location(EventId(0), Point::new(1000.0, 0.0));
        let out = time_change(&instance, &mut plan, EventId(0));
        assert!(out.removed.contains(&UserId(0)));
        assert!(!plan.contains(UserId(0), EventId(0)));
        assert!(plan.validate(&instance).hard_ok());
    }

    #[test]
    fn freed_user_picks_up_replacement() {
        let (mut instance, mut plan) = setup();
        // Add a third event u0 could take after losing e0.
        let e2 = instance.add_event(
            Event::new(Point::new(1.0, 0.5), 0, 2, TimeInterval::new(200, 260)),
            &[0.6, 0.1, 0.1],
        );
        plan.resize_events(instance.n_events());
        instance.set_event_time(EventId(0), TimeInterval::new(60, 119));
        let out = time_change(&instance, &mut plan, EventId(0));
        assert!(out.removed.contains(&UserId(0)));
        assert!(plan.contains(UserId(0), e2), "filler found the new slot");
    }
}
